//! # pcr — Progressive Compressed Records
//!
//! A Rust implementation of *"Progressive Compressed Records: Taking a
//! Byte out of Deep Learning Data"* (Kuchnik, Amvrosiadis, Smith — VLDB
//! 2021), including every substrate the paper depends on: a pure-Rust
//! progressive JPEG codec, the PCR storage format, simulated storage
//! devices, a prefetching data loader, synthetic evaluation datasets, a
//! small neural-network trainer, scan-group autotuning policies, and the
//! experiment harness that regenerates the paper's tables and figures.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`jpeg`] | `pcr-jpeg` | baseline + progressive JPEG, transcode, scan splitting |
//! | [`core`] | `pcr-core` | the PCR record/dataset format and baseline layouts |
//! | [`storage`] | `pcr-storage` | device models, page cache, object store |
//! | [`loader`] | `pcr-loader` | prefetching loaders with stall accounting |
//! | [`datasets`] | `pcr-datasets` | synthetic ImageNet/HAM/Cars/CelebA stand-ins |
//! | [`nn`] | `pcr-nn` | MLP models, SGD, LR schedules, gradient probes |
//! | [`metrics`] | `pcr-metrics` | MSSIM, statistics, regression, histograms |
//! | [`sim`] | `pcr-sim` | queueing lemmas, pipeline sim, time-to-accuracy |
//! | [`autotune`] | `pcr-autotune` | plateau detection, selection rules, mixtures |
//!
//! ## Quickstart
//!
//! ```
//! use pcr::core::{PcrRecordBuilder, PcrRecord, SampleMeta};
//! use pcr::jpeg::ImageBuf;
//!
//! // Encode two images into one PCR record.
//! let img = ImageBuf::from_raw(32, 32, 3, vec![120; 32 * 32 * 3]).unwrap();
//! let mut builder = PcrRecordBuilder::with_default_groups();
//! builder.add_image(SampleMeta { label: 0, id: "a".into() }, &img, 85).unwrap();
//! builder.add_image(SampleMeta { label: 1, id: "b".into() }, &img, 85).unwrap();
//! let bytes = builder.build().unwrap();
//!
//! // Read only the prefix needed for scan group 2 — sequential I/O.
//! let record = PcrRecord::parse(&bytes).unwrap();
//! let prefix = &bytes[..record.offset_for_group(2)];
//! let view = PcrRecord::parse(prefix).unwrap();
//! let preview = view.decode_image(0, 2).unwrap();
//! assert_eq!(preview.width(), 32);
//! ```

#![forbid(unsafe_code)]

pub use pcr_autotune as autotune;
pub use pcr_core as core;
pub use pcr_datasets as datasets;
pub use pcr_jpeg as jpeg;
pub use pcr_loader as loader;
pub use pcr_metrics as metrics;
pub use pcr_nn as nn;
pub use pcr_sim as sim;
pub use pcr_storage as storage;
