//! Online fidelity control: the paper's *dynamic* compression knob made
//! real (section 4.5). A [`FidelityController`] starts an experiment at
//! full image quality, watches the training loss with `pcr-autotune`'s
//! [`PlateauDetector`], and — once learning plateaus — drops the wall-clock
//! loader's scan-group prefix to the cheapest group whose quality score
//! (MSSIM against full quality, via `pcr-metrics`) clears a threshold.
//!
//! The policy layer is deliberately separate from the mechanism layer: the
//! controller only *chooses* a scan group; [`ParallelLoader::run_epoch_at`]
//! obeys it through the same [`ReadPlanner`](crate::source::ReadPlanner)
//! every loader plans with, so the epoch record order is untouched by
//! fidelity decisions and runs stay comparable across policies.

use crate::parallel::{ParallelLoader, WallClockEpoch};
use pcr_autotune::{select_lowest_qualifying, PlateauDetector, DEFAULT_MSSIM_THRESHOLD};
use pcr_core::{DecisionLogWriter, DecisionRecord, MetaDb, PcrRecord, RecordScratch};
use pcr_metrics::{msssim, EpochFaultCounters, FidelityEpoch, FidelityTrace, Plane, TriggerKind};
use pcr_storage::{Clock, ObjectStore};

/// Configuration of the online fidelity policy.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityConfig {
    /// Quality-score threshold a group must clear to be selectable
    /// (default: the paper's 95% MSSIM rule).
    pub threshold: f64,
    /// Plateau-detector look-back window in epochs.
    pub plateau_window: usize,
    /// Minimum relative loss improvement over the window to count as
    /// progress.
    pub min_rel_improvement: f64,
    /// Keep watching for plateaus after the first switch and re-select
    /// (the selection rule may pick a different group if scores change).
    pub retune: bool,
}

impl Default for FidelityConfig {
    fn default() -> Self {
        Self {
            threshold: DEFAULT_MSSIM_THRESHOLD,
            plateau_window: 3,
            min_rel_improvement: 0.01,
            retune: false,
        }
    }
}

/// One recorded controller decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FidelityDecision {
    /// Loss observation count at which the switch happened.
    pub at_observation: usize,
    /// Scan group switched to.
    pub scan_group: usize,
}

/// The online fidelity controller: consumes per-epoch losses, emits the
/// scan group the next epoch should read at.
#[derive(Debug, Clone)]
pub struct FidelityController {
    config: FidelityConfig,
    detector: PlateauDetector,
    /// `(group, quality score)` per candidate group, higher is better.
    scores: Vec<(usize, f64)>,
    current: usize,
    observations: usize,
    tuned: bool,
    decisions: Vec<FidelityDecision>,
}

impl FidelityController {
    /// Creates a controller over candidate `scores` (`(group, score)`
    /// pairs, e.g. from [`probe_group_scores`]). Training starts at the
    /// highest candidate group — full quality — exactly as the paper
    /// prescribes.
    pub fn new(config: FidelityConfig, scores: Vec<(usize, f64)>) -> Self {
        let current =
            scores.iter().map(|&(g, _)| g).max().expect("at least one candidate scan group");
        let detector = PlateauDetector::new(config.plateau_window, config.min_rel_improvement);
        Self { config, detector, scores, current, observations: 0, tuned: false, decisions: Vec::new() }
    }

    /// The scan group the next epoch should read at.
    pub fn group(&self) -> usize {
        self.current
    }

    /// The candidate quality scores the controller selects from.
    pub fn scores(&self) -> &[(usize, f64)] {
        &self.scores
    }

    /// Every switch the controller has made, in order.
    pub fn decisions(&self) -> &[FidelityDecision] {
        &self.decisions
    }

    /// The candidate scores in the decision log's wire shape
    /// (`(u16 group, MSSIM)`); groups beyond `u16::MAX` saturate.
    pub fn probe_scores_wire(&self) -> Vec<(u16, f64)> {
        self.scores
            .iter()
            .map(|&(g, s)| (u16::try_from(g).unwrap_or(u16::MAX), s))
            .collect()
    }

    /// The trigger kind explaining the *next* epoch's scan group, given
    /// what [`FidelityController::observe_loss`] just returned: a switch
    /// is a [`TriggerKind::Plateau`] the first time and a
    /// [`TriggerKind::Retune`] afterwards; no switch is a
    /// [`TriggerKind::Hold`].
    pub fn trigger_after(&self, switched: Option<usize>) -> TriggerKind {
        match switched {
            Some(_) if self.decisions.len() <= 1 => TriggerKind::Plateau,
            Some(_) => TriggerKind::Retune,
            None => TriggerKind::Hold,
        }
    }

    /// Feeds one epoch's training loss. Returns `Some(group)` when the
    /// controller switches scan groups (learning plateaued and a cheaper
    /// qualifying group exists), `None` otherwise.
    pub fn observe_loss(&mut self, loss: f64) -> Option<usize> {
        self.observations += 1;
        let plateaued = self.detector.push(loss);
        if !plateaued || (self.tuned && !self.config.retune) {
            return None;
        }
        // Tuning phase: the cheapest group whose score clears the
        // threshold (falls back to the highest group when none qualify).
        let chosen = select_lowest_qualifying(&self.scores, self.config.threshold);
        self.tuned = true;
        self.detector.reset();
        if chosen == self.current {
            return None;
        }
        self.current = chosen;
        self.decisions.push(FidelityDecision { at_observation: self.observations, scan_group: chosen });
        Some(chosen)
    }
}

/// Measures MSSIM-vs-full-quality per candidate scan group over a sample
/// of stored records — the per-run `pcr-metrics` reading a
/// [`FidelityController`] selects with.
///
/// Reads flow through the clocked store path ([`Clock::Wall`]), so probe
/// traffic is visible in the device/cache statistics like any other read;
/// probe before training (or reset the device) if that matters to an
/// experiment. At most `max_images` images are decoded.
pub fn probe_group_scores(
    store: &ObjectStore,
    db: &MetaDb,
    candidates: &[usize],
    max_images: usize,
) -> Vec<(usize, f64)> {
    probe_source_scores(store, db, candidates, max_images)
}

/// [`probe_group_scores`] over any PCR-format
/// [`RecordSource`](crate::source::RecordSource) — e.g. a
/// `ShardedSource` whose plans point into packed shard objects. Full
/// records are fetched via the source's own full-quality read plan, so
/// the probe works identically for per-record objects and shard ranges.
/// (Baseline sources whose bytes are not `.pcr` records contribute no
/// samples; their candidates score 0.)
pub fn probe_source_scores<S: crate::source::RecordSource + ?Sized>(
    store: &ObjectStore,
    source: &S,
    candidates: &[usize],
    max_images: usize,
) -> Vec<(usize, f64)> {
    let mut candidates: Vec<usize> = candidates.to_vec();
    candidates.sort_unstable();
    candidates.dedup();
    let mut sums = vec![0.0f64; candidates.len()];
    // Per-candidate sample counts: a group whose decode fails for some
    // image must not have its mean deflated by images it never scored.
    let mut counts = vec![0u64; candidates.len()];
    let mut measured = 0usize;
    let mut scratch = RecordScratch::new();
    'records: for idx in 0..source.num_records() {
        // A plan at usize::MAX clamps to the full record for PCR sources.
        let plan = source.plan(idx, usize::MAX);
        let Ok(read) = store.read(Clock::Wall, plan.name, plan.offset, plan.len) else {
            continue;
        };
        let Ok(rec) = PcrRecord::parse(&read.data) else { continue };
        let full_group = rec.num_groups();
        for i in 0..rec.num_images() {
            if measured >= max_images.max(1) {
                break 'records;
            }
            let Ok(full) = rec.decode_image_with(i, full_group, &mut scratch) else { continue };
            let full_luma = full.to_luma();
            let reference = Plane::from_u8(
                full_luma.width() as usize,
                full_luma.height() as usize,
                full_luma.data(),
            );
            for (slot, &g) in candidates.iter().enumerate() {
                let g = g.clamp(1, full_group);
                let Ok(img) = rec.decode_image_with(i, g, &mut scratch) else { continue };
                let luma = img.to_luma();
                let plane =
                    Plane::from_u8(luma.width() as usize, luma.height() as usize, luma.data());
                sums[slot] += msssim(&reference, &plane);
                counts[slot] += 1;
            }
            measured += 1;
        }
    }
    candidates
        .into_iter()
        .zip(sums.into_iter().zip(counts))
        .map(|(g, (s, n))| (g, s / n.max(1) as f64))
        .collect()
}

impl<S: crate::source::RecordSource + ?Sized + 'static> ParallelLoader<S> {
    /// Runs `epochs` wall-clock epochs under online fidelity control:
    /// each epoch reads at the controller's current scan group, `loss_of`
    /// reports that epoch's training loss back to the controller (which
    /// may then switch groups for the *next* epoch), and the whole
    /// trajectory — group chosen, bytes read, cache hit rate, throughput,
    /// loss — is returned as a [`FidelityTrace`] ready for JSON export.
    pub fn run_dynamic<F>(
        &self,
        epochs: u64,
        controller: &mut FidelityController,
        loss_of: F,
    ) -> FidelityTrace
    where
        F: FnMut(u64, &WallClockEpoch) -> f64,
    {
        self.run_dynamic_logged(epochs, controller, loss_of, None)
            .expect("run_dynamic without a log sink cannot fail")
    }

    /// [`ParallelLoader::run_dynamic`] with the container's audit plane
    /// attached: when `log` is given, every epoch's decision — trigger
    /// kind, probe scores, scan group, bytes read vs a fixed full-quality
    /// epoch, cache hit rate, loss — is appended to the durable decision
    /// log (FORMAT.md §7) as it happens, so the trajectory survives in
    /// the artifact. The returned trace carries the same schema (plus
    /// wall-clock throughput, which the durable log deliberately omits
    /// to stay byte-deterministic under seeded replay).
    pub fn run_dynamic_logged<F>(
        &self,
        epochs: u64,
        controller: &mut FidelityController,
        mut loss_of: F,
        mut log: Option<&mut DecisionLogWriter>,
    ) -> pcr_core::Result<FidelityTrace>
    where
        F: FnMut(u64, &WallClockEpoch) -> f64,
    {
        // What a fixed full-quality epoch reads, for the bytes-saved
        // rollup (a plan at usize::MAX clamps to the full record).
        let source = self.source();
        let bytes_full: u64 =
            (0..source.num_records()).map(|i| source.plan(i, usize::MAX).len).sum();
        let mut trace = FidelityTrace::new();
        let mut trigger = TriggerKind::Start;
        for epoch in 0..epochs {
            let scan_group = controller.group();
            let result = self.run_epoch_at(epoch, scan_group);
            let loss = loss_of(epoch, &result);
            let switched = controller.observe_loss(loss);
            let entry = FidelityEpoch {
                epoch,
                scan_group,
                trigger,
                probe_scores: controller.probe_scores_wire(),
                bytes_read: result.bytes,
                images: result.images as u64,
                images_per_sec: result.images_per_sec(),
                cache_hit_rate: self.store().cache_hit_rate(),
                loss,
                faults: EpochFaultCounters {
                    retries: result.faults.retries,
                    degraded_records: result.faults.degraded_records,
                    quarantined_records: result.faults.quarantined_records,
                    quarantined_images: result.faults.quarantined_images(),
                },
            };
            if let Some(w) = log.as_deref_mut() {
                w.append(&DecisionRecord::from_epoch(&entry, bytes_full))?;
                // Additive audit record (FORMAT.md §7): only epochs the
                // storage plane actually degraded get one, so zero-fault
                // runs serialize byte-identically to pre-fault-plane
                // builds. Field reuse: `images` = degraded records,
                // `loss` = quarantined records.
                if entry.faults.degraded_records > 0 || entry.faults.quarantined_records > 0 {
                    w.append(&DecisionRecord {
                        epoch,
                        trigger: TriggerKind::Degraded,
                        scan_group: u16::try_from(scan_group).unwrap_or(u16::MAX),
                        bytes_read: result.bytes,
                        bytes_full,
                        images: entry.faults.degraded_records,
                        cache_hit_rate: self.store().cache_hit_rate(),
                        loss: entry.faults.quarantined_records as f64,
                        probe_scores: Vec::new(),
                    })?;
                }
            }
            trace.push(entry);
            trigger = controller.trigger_after(switched);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DecodeMode, LoaderConfig};
    use crate::loader::populate_store;
    use crate::parallel::ParallelConfig;
    use pcr_core::{PcrDatasetBuilder, SampleMeta};
    use pcr_storage::DeviceProfile;
    use std::sync::Arc;

    fn fixture(n: usize) -> (Arc<ObjectStore>, Arc<MetaDb>) {
        let mut b = PcrDatasetBuilder::new(4, 10).with_name_prefix("f");
        for i in 0..n {
            let mut data = Vec::new();
            for y in 0..32u32 {
                for x in 0..32u32 {
                    data.push(((x * 3 + y * 7 + i as u32 * 5) % 256) as u8);
                    data.push(((x + y) % 256) as u8);
                    data.push((y % 256) as u8);
                }
            }
            let img = pcr_jpeg::ImageBuf::from_raw(32, 32, 3, data).unwrap();
            b.add_image(SampleMeta { label: (i % 3) as u32, id: format!("s{i}") }, &img, 85)
                .unwrap();
        }
        let ds = b.finish().unwrap();
        let store = ObjectStore::with_cache(DeviceProfile::ram(), 256 << 20);
        populate_store(&store, &ds);
        (Arc::new(store), Arc::new(ds.db.clone()))
    }

    fn scores() -> Vec<(usize, f64)> {
        vec![(1, 0.62), (2, 0.88), (5, 0.96), (10, 1.0)]
    }

    #[test]
    fn starts_at_full_quality_and_switches_on_plateau() {
        let cfg = FidelityConfig { plateau_window: 2, ..FidelityConfig::default() };
        let mut ctrl = FidelityController::new(cfg, scores());
        assert_eq!(ctrl.group(), 10, "training starts at full quality");
        // Improving losses: no switch.
        for loss in [2.0, 1.5, 1.1] {
            assert_eq!(ctrl.observe_loss(loss), None);
            assert_eq!(ctrl.group(), 10);
        }
        // Flat tail: plateau trips, cheapest group clearing 0.95 wins.
        let mut switched = None;
        for _ in 0..6 {
            if let Some(g) = ctrl.observe_loss(1.0) {
                switched = Some(g);
                break;
            }
        }
        assert_eq!(switched, Some(5));
        assert_eq!(ctrl.group(), 5);
        assert_eq!(ctrl.decisions().len(), 1);
    }

    #[test]
    fn without_retune_first_decision_sticks() {
        let cfg =
            FidelityConfig { plateau_window: 2, min_rel_improvement: 0.05, retune: false, ..FidelityConfig::default() };
        let mut ctrl = FidelityController::new(cfg, scores());
        for _ in 0..20 {
            ctrl.observe_loss(1.0);
        }
        assert_eq!(ctrl.group(), 5);
        assert_eq!(ctrl.decisions().len(), 1, "no second switch without retune");
    }

    #[test]
    fn probe_scores_increase_with_group_and_saturate() {
        let (store, db) = fixture(6);
        let scores = probe_group_scores(&store, &db, &[1, 5, 10], 8);
        assert_eq!(scores.len(), 3);
        let s: std::collections::HashMap<usize, f64> = scores.iter().copied().collect();
        assert!(s[&1] <= s[&5] + 0.02, "group 1 {} vs group 5 {}", s[&1], s[&5]);
        assert!(s[&10] > 0.999, "full quality MSSIM {}", s[&10]);
    }

    #[test]
    fn dynamic_run_reads_fewer_bytes_than_fixed_full_quality() {
        let (store, db) = fixture(16);
        let cfg = ParallelConfig {
            loader: LoaderConfig { threads: 2, decode: DecodeMode::Skip, ..LoaderConfig::at_group(10) },
            ..ParallelConfig::default()
        };
        let loader = ParallelLoader::new(Arc::clone(&store), Arc::clone(&db), cfg);
        let epochs = 6u64;
        // Loss improves twice then flatlines: the plateau detector trips
        // partway through, and remaining epochs read a short prefix.
        let loss_at = |e: u64| if e == 0 { 1.0 } else { 0.5 };

        let fixed_bytes = epochs * db.bytes_at_group(10);
        let fidelity = FidelityConfig { plateau_window: 1, ..FidelityConfig::default() };
        let mut ctrl = FidelityController::new(fidelity, scores());
        let trace = loader.run_dynamic(epochs, &mut ctrl, |e, _| loss_at(e));

        assert_eq!(trace.epochs.len(), epochs as usize);
        assert_eq!(trace.total_images(), epochs * db.num_images() as u64);
        assert_eq!(trace.groups_used(), vec![10, 5], "full quality, then tuned");
        assert!(
            trace.total_bytes() < fixed_bytes,
            "dynamic {} must beat fixed {fixed_bytes}",
            trace.total_bytes()
        );
        // The tuned epochs read the group-5 prefix exactly.
        let tuned: Vec<_> =
            trace.epochs.iter().filter(|e| e.scan_group == 5).collect();
        assert!(!tuned.is_empty());
        for e in tuned {
            assert_eq!(e.bytes_read, db.bytes_at_group(5));
        }
        // Wall-clock traffic went through the cache: repeat epochs hit.
        assert!(store.cache_hit_rate() > 0.5, "hit rate {}", store.cache_hit_rate());
    }
}
