//! Compatibility facade over [`crate::parallel`] — the original
//! multi-threaded decode pipeline API, now a thin adapter onto the
//! wall-clock [`ParallelLoader`] and therefore onto the unified data
//! plane: reads planned by `RecordSource`/`ReadPlanner` and executed
//! through the store's single clocked path
//! (`ObjectStore::read(Clock::Wall, …)`), so pipeline traffic shows up
//! in the page cache and device statistics like every other loader's.
//!
//! New code should use [`crate::parallel`] directly: it shares
//! [`LoaderConfig`]/[`DecodeMode`] with the virtual-time loader, supports
//! emulated storage latency, per-worker decode scratch reuse, wall-clock
//! epoch reporting, and non-`MetaDb` sources (e.g.
//! [`crate::sharded::ShardedSource`]). This module keeps the earlier
//! `spawn_epoch(store, db, PipelineConfig, epoch)` shape working for
//! existing callers and adds nothing of its own.

use crate::config::{DecodeMode, LoaderConfig};
use crate::parallel::{EpochStream, IoModel, ParallelConfig, ParallelLoader};
use crossbeam::channel::Receiver;
use pcr_core::MetaDb;
use pcr_storage::ObjectStore;
use std::sync::Arc;

pub use crate::parallel::{Minibatch, ParallelStats as PipelineStats};

/// Pipeline configuration (legacy shape; converted to [`ParallelConfig`]).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Decode worker threads.
    pub threads: usize,
    /// Scan group to read and decode.
    pub scan_group: usize,
    /// Images per minibatch.
    pub batch_size: usize,
    /// Bounded prefetch depth (records buffered ahead of the consumer).
    pub prefetch: usize,
    /// Shuffle seed; `None` preserves record order.
    pub shuffle_seed: Option<u64>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self { threads: 4, scan_group: 10, batch_size: 32, prefetch: 8, shuffle_seed: Some(0) }
    }
}

impl From<PipelineConfig> for ParallelConfig {
    fn from(c: PipelineConfig) -> Self {
        ParallelConfig {
            loader: LoaderConfig {
                threads: c.threads,
                scan_group: c.scan_group,
                shuffle: c.shuffle_seed.is_some(),
                seed: c.shuffle_seed.unwrap_or(0),
                decode: DecodeMode::Real,
                retry: crate::retry::RetryPolicy::default(),
            },
            batch_size: c.batch_size,
            prefetch_records: c.prefetch,
            prefetch_batches: c.prefetch,
            io: IoModel::Instant,
            segment_workers: 1,
        }
    }
}

/// A running pipeline: a receiver of minibatches plus worker handles.
pub struct RunningPipeline {
    /// Minibatch stream; iterate until disconnect for a full epoch.
    pub batches: Receiver<Minibatch>,
    /// Shared statistics.
    pub stats: Arc<PipelineStats>,
    workers: Vec<std::thread::JoinHandle<()>>,
    assembler: Option<std::thread::JoinHandle<()>>,
}

impl RunningPipeline {
    /// Waits for all threads to finish. Drops the batch receiver first,
    /// so calling this mid-epoch cancels cleanly instead of deadlocking;
    /// drain `batches` before calling if you want the full epoch.
    pub fn join(self) {
        let RunningPipeline { batches, workers, assembler, stats: _ } = self;
        drop(batches);
        for w in workers {
            let _ = w.join();
        }
        if let Some(a) = assembler {
            let _ = a.join();
        }
    }
}

/// Spawns the pipeline for one epoch over the records in `db` (which must
/// be present in `store` under their DB names).
pub fn spawn_epoch(
    store: Arc<ObjectStore>,
    db: Arc<MetaDb>,
    config: PipelineConfig,
    epoch: u64,
) -> RunningPipeline {
    let loader = ParallelLoader::new(store, db, config.into());
    let EpochStream { batches, stats, workers, assembler } = loader.spawn_epoch(epoch);
    RunningPipeline { batches, stats, workers, assembler }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr_core::{PcrDatasetBuilder, SampleMeta};
    use pcr_storage::DeviceProfile;
    use std::sync::atomic::Ordering;

    fn make(n: usize) -> (Arc<ObjectStore>, Arc<MetaDb>) {
        let mut b = PcrDatasetBuilder::new(4, 10).with_name_prefix("p");
        for i in 0..n {
            let mut data = Vec::new();
            for y in 0..32u32 {
                for x in 0..32u32 {
                    data.push(((x * 3 + y * 7 + i as u32 * 5) % 256) as u8);
                    data.push(((x + y) % 256) as u8);
                    data.push((y % 256) as u8);
                }
            }
            let img = pcr_jpeg::ImageBuf::from_raw(32, 32, 3, data).unwrap();
            b.add_image(SampleMeta { label: (i % 3) as u32, id: format!("s{i}") }, &img, 85)
                .unwrap();
        }
        let ds = b.finish().unwrap();
        let store = ObjectStore::new(DeviceProfile::ram());
        crate::loader::populate_store(&store, &ds);
        (Arc::new(store), Arc::new(ds.db.clone()))
    }

    #[test]
    fn delivers_all_images_in_batches() {
        let (store, db) = make(13);
        let cfg = PipelineConfig { threads: 3, batch_size: 4, ..Default::default() };
        let pipe = spawn_epoch(store, db, cfg, 0);
        let mut total = 0usize;
        let mut full_batches = 0usize;
        for b in pipe.batches.iter() {
            assert_eq!(b.images.len(), b.labels.len());
            if b.images.len() == 4 {
                full_batches += 1;
            }
            total += b.images.len();
        }
        assert_eq!(total, 13);
        assert_eq!(full_batches, 3); // 13 = 3*4 + 1
        pipe.join();
    }

    #[test]
    fn partial_quality_decodes_through_pipeline() {
        let (store, db) = make(8);
        let cfg = PipelineConfig { threads: 2, scan_group: 1, batch_size: 8, ..Default::default() };
        let pipe = spawn_epoch(Arc::clone(&store), db, cfg, 0);
        let stats = Arc::clone(&pipe.stats);
        let mut total = 0usize;
        for b in pipe.batches.iter() {
            total += b.images.len();
            for img in &b.images {
                assert_eq!(img.width(), 32);
            }
        }
        assert_eq!(total, 8);
        pipe.join();
        // Scan-group-1 reads are much smaller than the stored records —
        // visible both in the pipeline stats and, since wall-clock reads
        // run through the clocked store path, in the device statistics.
        let read = stats.bytes_read.load(Ordering::Relaxed);
        assert!(read > 0);
        assert!(read < store.total_bytes() / 2, "read {read} of {}", store.total_bytes());
        assert_eq!(store.device_stats().bytes, read, "device saw the same traffic");
    }

    #[test]
    fn stats_track_decode_work() {
        let (store, db) = make(6);
        let cfg = PipelineConfig { threads: 2, batch_size: 3, ..Default::default() };
        let pipe = spawn_epoch(store, db, cfg, 0);
        let stats = Arc::clone(&pipe.stats);
        for _ in pipe.batches.iter() {}
        pipe.join();
        assert_eq!(stats.images_decoded.load(Ordering::Relaxed), 6);
        assert!(stats.bytes_read.load(Ordering::Relaxed) > 0);
        // Decode throughput comes from wall-clock Instant deltas; a coarse
        // or virtualized CI clock can legitimately measure zero, so the
        // strictly-positive check is opt-in (PCR_STRICT_TIMING=1).
        if std::env::var_os("PCR_STRICT_TIMING").is_some() {
            assert!(stats.decode_images_per_cpu_sec() > 0.0);
        }
    }

    #[test]
    fn consumer_can_drop_early() {
        let (store, db) = make(20);
        let cfg = PipelineConfig { threads: 4, batch_size: 2, prefetch: 2, ..Default::default() };
        let pipe = spawn_epoch(store, db, cfg, 0);
        // Take just one batch and drop the receiver: workers must exit.
        let first = pipe.batches.iter().next().expect("one batch");
        assert_eq!(first.images.len(), 2);
        drop(pipe.batches);
        for w in pipe.workers {
            w.join().expect("worker exits cleanly");
        }
        if let Some(a) = pipe.assembler {
            a.join().expect("assembler exits cleanly");
        }
    }

    #[test]
    fn shuffling_is_epoch_dependent() {
        // 8 records: enough that two epochs drawing the same permutation
        // by chance (legitimate for any shuffle at tiny n) cannot happen
        // in practice.
        let (store, db) = make(32);
        let order_of = |epoch: u64| {
            let cfg = PipelineConfig {
                threads: 1,
                batch_size: 4,
                shuffle_seed: Some(9),
                ..Default::default()
            };
            let pipe = spawn_epoch(Arc::clone(&store), Arc::clone(&db), cfg, epoch);
            let labels: Vec<u32> =
                pipe.batches.iter().flat_map(|b| b.labels).collect();
            pipe.join();
            labels
        };
        let e0 = order_of(0);
        let e1 = order_of(1);
        assert_eq!(e0.len(), 32);
        assert_ne!(e0, e1, "different epochs shuffle differently");
        assert_eq!(order_of(0), e0, "same epoch is deterministic");
    }
}
