//! A real multi-threaded prefetch pipeline (the role DALI's
//! `ExternalSource` / the tf.data C++ loader play in the paper's
//! implementation): worker threads pull record indices from a work queue,
//! read scan-group prefixes, decode them with `pcr-jpeg`, and push decoded
//! records into a bounded channel; the consumer assembles minibatches.
//!
//! Unlike [`crate::loader::PcrLoader`] (which computes a deterministic
//! virtual-time schedule), this pipeline performs *actual* concurrent
//! decode work, so it is the component to use when the decoded pixels are
//! needed and wall-clock decode throughput matters.

use crossbeam::channel::{bounded, unbounded, Receiver};
use pcr_core::{MetaDb, PcrRecord};
use pcr_jpeg::ImageBuf;
use pcr_storage::ObjectStore;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Decode worker threads.
    pub threads: usize,
    /// Scan group to read and decode.
    pub scan_group: usize,
    /// Images per minibatch.
    pub batch_size: usize,
    /// Bounded prefetch depth (records buffered ahead of the consumer).
    pub prefetch: usize,
    /// Shuffle seed; `None` preserves record order.
    pub shuffle_seed: Option<u64>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self { threads: 4, scan_group: 10, batch_size: 32, prefetch: 8, shuffle_seed: Some(0) }
    }
}

/// One delivered minibatch.
#[derive(Debug)]
pub struct Minibatch {
    /// Decoded images.
    pub images: Vec<ImageBuf>,
    /// Matching labels.
    pub labels: Vec<u32>,
}

/// Aggregate pipeline statistics (filled once the epoch completes).
#[derive(Debug, Default)]
pub struct PipelineStats {
    /// Compressed bytes read.
    pub bytes_read: AtomicU64,
    /// Images decoded.
    pub images_decoded: AtomicU64,
    /// Total decode nanoseconds across workers.
    pub decode_nanos: AtomicU64,
}

impl PipelineStats {
    /// Mean decode throughput in images/second of summed worker CPU time.
    pub fn decode_images_per_cpu_sec(&self) -> f64 {
        let n = self.images_decoded.load(Ordering::Relaxed) as f64;
        let secs = self.decode_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        if secs > 0.0 {
            n / secs
        } else {
            0.0
        }
    }
}

/// A running pipeline: a receiver of minibatches plus worker handles.
pub struct RunningPipeline {
    /// Minibatch stream; iterate until disconnect for a full epoch.
    pub batches: Receiver<Minibatch>,
    /// Shared statistics.
    pub stats: Arc<PipelineStats>,
    workers: Vec<std::thread::JoinHandle<()>>,
    assembler: Option<std::thread::JoinHandle<()>>,
}

impl RunningPipeline {
    /// Waits for all threads to finish (the batch receiver must be drained
    /// or dropped first).
    pub fn join(mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(a) = self.assembler.take() {
            let _ = a.join();
        }
    }
}

/// Spawns the pipeline for one epoch over the records in `db` (which must
/// be present in `store` under their DB names).
pub fn spawn_epoch(
    store: Arc<ObjectStore>,
    db: Arc<MetaDb>,
    config: PipelineConfig,
    epoch: u64,
) -> RunningPipeline {
    let stats = Arc::new(PipelineStats::default());
    // Work queue of record indices.
    let (work_tx, work_rx) = unbounded::<usize>();
    let mut order: Vec<usize> = (0..db.records.len()).collect();
    if let Some(seed) = config.shuffle_seed {
        let mut rng = StdRng::seed_from_u64(seed ^ epoch.wrapping_mul(0x9E37));
        order.shuffle(&mut rng);
    }
    for idx in order {
        work_tx.send(idx).expect("queue open");
    }
    drop(work_tx);

    // Decoded-record channel (bounded: the prefetch queue of Appendix A.1).
    let (rec_tx, rec_rx) = bounded::<(Vec<ImageBuf>, Vec<u32>)>(config.prefetch.max(1));
    let mut workers = Vec::with_capacity(config.threads.max(1));
    for _ in 0..config.threads.max(1) {
        let work_rx = work_rx.clone();
        let rec_tx = rec_tx.clone();
        let store = Arc::clone(&store);
        let db = Arc::clone(&db);
        let stats = Arc::clone(&stats);
        let g = config.scan_group;
        workers.push(std::thread::spawn(move || {
            while let Ok(idx) = work_rx.recv() {
                let meta = &db.records[idx];
                let read_len = meta.group_offsets[g.min(meta.group_offsets.len() - 1)];
                let Some(read) = store.read_at(0.0, &meta.name, 0, read_len) else {
                    continue; // missing object: skip record
                };
                stats.bytes_read.fetch_add(read_len, Ordering::Relaxed);
                let t0 = std::time::Instant::now();
                let Ok(rec) = PcrRecord::parse(&read.data) else { continue };
                let gg = rec.available_groups().min(g).max(1);
                let mut images = Vec::with_capacity(rec.num_images());
                let mut ok = true;
                for i in 0..rec.num_images() {
                    match rec.decode_image(i, gg) {
                        Ok(img) => images.push(img),
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
                stats
                    .decode_nanos
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                if !ok {
                    continue;
                }
                stats.images_decoded.fetch_add(images.len() as u64, Ordering::Relaxed);
                if rec_tx.send((images, rec.labels())).is_err() {
                    return; // consumer gone
                }
            }
        }));
    }
    drop(rec_tx);

    // Assembler: records -> fixed-size minibatches.
    let (batch_tx, batch_rx) = bounded::<Minibatch>(config.prefetch.max(1));
    let batch_size = config.batch_size.max(1);
    let assembler = std::thread::spawn(move || {
        let mut images: Vec<ImageBuf> = Vec::new();
        let mut labels: Vec<u32> = Vec::new();
        while let Ok((imgs, labs)) = rec_rx.recv() {
            images.extend(imgs);
            labels.extend(labs);
            while images.len() >= batch_size {
                let rest_i = images.split_off(batch_size);
                let rest_l = labels.split_off(batch_size);
                let batch = Minibatch {
                    images: std::mem::replace(&mut images, rest_i),
                    labels: std::mem::replace(&mut labels, rest_l),
                };
                if batch_tx.send(batch).is_err() {
                    return;
                }
            }
        }
        if !images.is_empty() {
            let _ = batch_tx.send(Minibatch { images, labels });
        }
    });

    RunningPipeline { batches: batch_rx, stats, workers, assembler: Some(assembler) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr_core::{PcrDatasetBuilder, SampleMeta};
    use pcr_storage::DeviceProfile;

    fn make(n: usize) -> (Arc<ObjectStore>, Arc<MetaDb>) {
        let mut b = PcrDatasetBuilder::new(4, 10).with_name_prefix("p");
        for i in 0..n {
            let mut data = Vec::new();
            for y in 0..32u32 {
                for x in 0..32u32 {
                    data.push(((x * 3 + y * 7 + i as u32 * 5) % 256) as u8);
                    data.push(((x + y) % 256) as u8);
                    data.push((y % 256) as u8);
                }
            }
            let img = pcr_jpeg::ImageBuf::from_raw(32, 32, 3, data).unwrap();
            b.add_image(SampleMeta { label: (i % 3) as u32, id: format!("s{i}") }, &img, 85)
                .unwrap();
        }
        let ds = b.finish().unwrap();
        let store = ObjectStore::new(DeviceProfile::ram());
        crate::loader::populate_store(&store, &ds);
        (Arc::new(store), Arc::new(ds.db.clone()))
    }

    #[test]
    fn delivers_all_images_in_batches() {
        let (store, db) = make(13);
        let cfg = PipelineConfig { threads: 3, batch_size: 4, ..Default::default() };
        let pipe = spawn_epoch(store, db, cfg, 0);
        let mut total = 0usize;
        let mut full_batches = 0usize;
        for b in pipe.batches.iter() {
            assert_eq!(b.images.len(), b.labels.len());
            if b.images.len() == 4 {
                full_batches += 1;
            }
            total += b.images.len();
        }
        assert_eq!(total, 13);
        assert_eq!(full_batches, 3); // 13 = 3*4 + 1
        pipe.join();
    }

    #[test]
    fn partial_quality_decodes_through_pipeline() {
        let (store, db) = make(8);
        let cfg = PipelineConfig { threads: 2, scan_group: 1, batch_size: 8, ..Default::default() };
        let pipe = spawn_epoch(Arc::clone(&store), db, cfg, 0);
        let mut total = 0usize;
        for b in pipe.batches.iter() {
            total += b.images.len();
            for img in &b.images {
                assert_eq!(img.width(), 32);
            }
        }
        assert_eq!(total, 8);
        pipe.join();
        // Scan-group-1 reads are much smaller than the stored records.
        let read = store.device_stats().bytes;
        assert!(read > 0);
        assert!(read < store.total_bytes() / 2, "read {read} of {}", store.total_bytes());
    }

    #[test]
    fn stats_track_decode_work() {
        let (store, db) = make(6);
        let cfg = PipelineConfig { threads: 2, batch_size: 3, ..Default::default() };
        let pipe = spawn_epoch(store, db, cfg, 0);
        let stats = Arc::clone(&pipe.stats);
        for _ in pipe.batches.iter() {}
        pipe.join();
        assert_eq!(stats.images_decoded.load(Ordering::Relaxed), 6);
        assert!(stats.bytes_read.load(Ordering::Relaxed) > 0);
        // Decode throughput comes from wall-clock Instant deltas; a coarse
        // or virtualized CI clock can legitimately measure zero, so the
        // strictly-positive check is opt-in (PCR_STRICT_TIMING=1).
        if std::env::var_os("PCR_STRICT_TIMING").is_some() {
            assert!(stats.decode_images_per_cpu_sec() > 0.0);
        }
    }

    #[test]
    fn consumer_can_drop_early() {
        let (store, db) = make(20);
        let cfg = PipelineConfig { threads: 4, batch_size: 2, prefetch: 2, ..Default::default() };
        let pipe = spawn_epoch(store, db, cfg, 0);
        // Take just one batch and drop the receiver: workers must exit.
        let first = pipe.batches.iter().next().expect("one batch");
        assert_eq!(first.images.len(), 2);
        drop(pipe.batches);
        for w in pipe.workers {
            w.join().expect("worker exits cleanly");
        }
        if let Some(a) = pipe.assembler {
            a.join().expect("assembler exits cleanly");
        }
    }

    #[test]
    fn shuffling_is_epoch_dependent() {
        let (store, db) = make(12);
        let order_of = |epoch: u64| {
            let cfg = PipelineConfig {
                threads: 1,
                batch_size: 4,
                shuffle_seed: Some(9),
                ..Default::default()
            };
            let pipe = spawn_epoch(Arc::clone(&store), Arc::clone(&db), cfg, epoch);
            let labels: Vec<u32> =
                pipe.batches.iter().flat_map(|b| b.labels).collect();
            pipe.join();
            labels
        };
        let e0 = order_of(0);
        let e1 = order_of(1);
        assert_eq!(e0.len(), 12);
        assert_ne!(e0, e1, "different epochs shuffle differently");
        assert_eq!(order_of(0), e0, "same epoch is deterministic");
    }
}
