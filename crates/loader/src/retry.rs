//! Retry, backoff, and fidelity degradation around the storage read path.
//!
//! Every loader read goes through [`read_with_retry`]: transient
//! [`ReadError`]s are retried under a [`RetryPolicy`] — capped
//! decorrelated-jitter backoff, a per-read deadline on modeled service
//! time, and a shared per-epoch retry budget ([`RetryBudget`]) so a
//! pathological store cannot stall an epoch forever.
//!
//! When retries are exhausted, [`deliver_with_degradation`] makes PCR's
//! progressive structure the recovery mechanism: scan-group prefixes are
//! nested, so if groups `k+1..=G` of a record are unreadable the loader
//! steps the request down — `G, G-1, …, 1` — and delivers the record at
//! the longest intact prefix instead of failing the epoch. Records whose
//! shortest prefix is still unreadable (or undecodable — silent bit flips
//! surface here as decode failures) go to a bounded quarantine with exact
//! per-label accounting, so the delivered label multiset always equals
//! the expected multiset minus the quarantined one.
//!
//! Backoff is deterministic: the jitter is a pure hash of
//! `(policy seed, record, group, attempt)`, never a clock or RNG, so a
//! seeded fault plan replays the identical recovery sequence on both the
//! virtual and wall timelines.

use crate::source::{ReadPlan, RecordSource};
use pcr_jpeg::ImageBuf;
use pcr_storage::{Clock, ObjectStore, ReadError, ReadResult};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// How many quarantined records keep full detail (index + error text);
/// past the cap only the exact counters and label counts grow.
pub const QUARANTINE_DETAIL_CAP: usize = 64;

/// Retry/backoff policy wrapped around every loader read.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries per read after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// First backoff delay in seconds.
    pub base_backoff_s: f64,
    /// Backoff cap in seconds.
    pub max_backoff_s: f64,
    /// Per-read deadline on *modeled service time* in seconds (0 = off):
    /// a read whose device service exceeds it is treated as
    /// [`ReadError::Timeout`] and retried — the knob that turns injected
    /// latency spikes into recoverable faults.
    pub read_deadline_s: f64,
    /// Total backoff seconds one epoch may spend across all of its
    /// workers; once exhausted, failures stop retrying and degrade (or
    /// quarantine) immediately.
    pub epoch_retry_budget_s: f64,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff_s: 1e-3,
            max_backoff_s: 0.1,
            read_deadline_s: 0.0,
            epoch_retry_budget_s: 30.0,
            seed: 0,
        }
    }
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl RetryPolicy {
    /// A policy that never retries (reads fail fast into degradation).
    pub fn none() -> Self {
        Self { max_retries: 0, epoch_retry_budget_s: 0.0, ..Self::default() }
    }

    /// The next backoff delay after a delay of `prev` seconds:
    /// decorrelated jitter (`sleep = min(cap, base + u * (prev*3 - base))`
    /// with `u` a deterministic hash of `(seed, key, attempt)` in [0,1)),
    /// so delays spread without a shared RNG and replay exactly.
    pub fn backoff(&self, prev: f64, key: u64, attempt: u32) -> f64 {
        let u = unit(mix(self.seed ^ mix(key) ^ u64::from(attempt)));
        let span = (prev * 3.0 - self.base_backoff_s).max(0.0);
        (self.base_backoff_s + u * span).min(self.max_backoff_s)
    }
}

/// A shared per-epoch budget of backoff seconds, decremented by every
/// retry on any worker. Stored as integer microseconds so concurrent
/// spends stay exact.
#[derive(Debug)]
pub struct RetryBudget(AtomicU64);

impl RetryBudget {
    /// A budget of `seconds` (values beyond ~584k years saturate).
    pub fn new(seconds: f64) -> Self {
        let micros = if seconds.is_finite() && seconds >= 0.0 {
            (seconds * 1e6).min(u64::MAX as f64) as u64
        } else if seconds.is_infinite() && seconds > 0.0 {
            u64::MAX
        } else {
            0
        };
        Self(AtomicU64::new(micros))
    }

    /// Attempts to reserve `seconds` from the budget; false when the
    /// remaining budget is smaller (nothing is deducted then).
    pub fn try_spend(&self, seconds: f64) -> bool {
        let want = (seconds.max(0.0) * 1e6).min(u64::MAX as f64) as u64;
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            if cur < want {
                return false;
            }
            match self.0.compare_exchange_weak(
                cur,
                cur - want,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Remaining budget in seconds.
    pub fn remaining_s(&self) -> f64 {
        self.0.load(Ordering::Relaxed) as f64 / 1e6
    }
}

/// Which timeline a retried read runs on. Backoff on the wall timeline is
/// slept by the caller-provided closure; on the virtual timeline it is
/// charged by issuing each attempt later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Timeline {
    /// Real worker threads ([`Clock::Wall`]).
    Wall,
    /// The virtual-time engine: attempts issue at `start` plus the
    /// backoff accumulated so far.
    Virtual {
        /// Virtual time of the first attempt.
        start: f64,
    },
}

/// Retries accumulated across one record's delivery attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RetryOutcome {
    /// Failed attempts that were retried.
    pub retries: u32,
    /// Backoff seconds spent (slept on the wall timeline, charged to the
    /// virtual one).
    pub backoff_s: f64,
}

/// Reads `plan` with retry/backoff under `policy`, spending from the
/// epoch's shared `budget`. `key` seeds the jitter (callers pass a hash
/// of record/group). `sleep` realizes backoff on the wall timeline (pass
/// a no-op for [`Timeline::Virtual`] — the delay is charged by issuing
/// later instead). Counters accumulate into `out` so ladder steps share
/// one outcome.
#[allow(clippy::too_many_arguments)] // the retry loop's full context; bundling would obscure call sites
pub fn read_with_retry(
    store: &ObjectStore,
    plan: &ReadPlan<'_>,
    timeline: Timeline,
    policy: &RetryPolicy,
    budget: &RetryBudget,
    key: u64,
    sleep: &mut dyn FnMut(f64),
    out: &mut RetryOutcome,
) -> Result<ReadResult, ReadError> {
    let mut prev_delay = policy.base_backoff_s;
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let clock = match timeline {
            Timeline::Wall => Clock::Wall,
            Timeline::Virtual { start } => Clock::Virtual(start + out.backoff_s),
        };
        let failure = match store.read(clock, plan.name, plan.offset, plan.len) {
            Ok(read) => {
                let service = read.finish - read.start;
                if policy.read_deadline_s > 0.0 && service > policy.read_deadline_s {
                    ReadError::Timeout {
                        object: plan.name.to_string(),
                        offset: plan.offset,
                        service_s: service,
                    }
                } else {
                    return Ok(read);
                }
            }
            Err(e) => e,
        };
        if !failure.is_retryable() || attempt > policy.max_retries {
            return Err(failure);
        }
        let delay = policy.backoff(prev_delay, key, attempt);
        if !budget.try_spend(delay) {
            return Err(failure);
        }
        prev_delay = delay;
        out.retries += 1;
        out.backoff_s += delay;
        sleep(delay);
    }
}

/// What a decode-time integrity check concluded about delivered bytes.
pub enum DecodeCheck {
    /// Bytes accepted without decoding (`DecodeMode::Skip`/`Modeled` —
    /// silent corruption cannot be observed in these modes).
    Accepted,
    /// Bytes decoded into images.
    Images(Vec<ImageBuf>),
    /// Bytes delivered but undecodable at this group — treated like a
    /// corrupt range: the ladder steps down to a shorter prefix.
    Failed,
}

/// The outcome of delivering one record through retry + degradation.
#[derive(Debug)]
pub enum Delivery {
    /// The record was delivered, possibly at a lower scan group than
    /// requested.
    Delivered {
        /// The successful read (of the delivered group's prefix).
        read: ReadResult,
        /// Scan group actually delivered.
        group: usize,
        /// True when `group` is lower than requested because of faults.
        degraded: bool,
        /// Decoded images (empty when the decode check ran in
        /// [`DecodeCheck::Accepted`] mode).
        images: Vec<ImageBuf>,
    },
    /// Every prefix down to group 1 was unreadable or undecodable.
    Quarantined {
        /// Human-readable reason (the last failure seen).
        reason: String,
    },
}

/// Delivers record `idx` at the longest intact scan-group prefix.
///
/// Tries `requested_group` first; on persistent read failure or a failed
/// decode check, steps down one group at a time (skipping groups whose
/// plan is byte-identical to the one that just failed) and quarantines
/// only when group 1 itself cannot be delivered. `decode_check` is called
/// once per successful read with the delivered bytes and the group; real
/// decoding modes validate there, so silent bit flips degrade instead of
/// propagating corrupt pixels.
#[allow(clippy::too_many_arguments)]
pub fn deliver_with_degradation<S: RecordSource + ?Sized>(
    store: &ObjectStore,
    source: &S,
    idx: usize,
    requested_group: usize,
    timeline: Timeline,
    policy: &RetryPolicy,
    budget: &RetryBudget,
    sleep: &mut dyn FnMut(f64),
    decode_check: &mut dyn FnMut(&ReadResult, usize) -> DecodeCheck,
    out: &mut RetryOutcome,
) -> Delivery {
    let requested = requested_group.max(1);
    let mut last_failure = String::new();
    let mut failed_plan: Option<(u64, u64)> = None;
    for group in (1..=requested).rev() {
        let plan = source.plan(idx, group);
        // A lower group that plans the exact same bytes (clamped formats,
        // baseline whole-object reads) cannot succeed where this one just
        // failed — don't burn retries on it.
        if failed_plan == Some((plan.offset, plan.len)) {
            continue;
        }
        let key = mix((idx as u64) << 8 | group as u64);
        match read_with_retry(store, &plan, timeline, policy, budget, key, sleep, out) {
            Ok(read) => match decode_check(&read, group) {
                DecodeCheck::Accepted => {
                    return Delivery::Delivered {
                        read,
                        group,
                        degraded: group < requested,
                        images: Vec::new(),
                    }
                }
                DecodeCheck::Images(images) => {
                    return Delivery::Delivered {
                        read,
                        group,
                        degraded: group < requested,
                        images,
                    }
                }
                DecodeCheck::Failed => {
                    last_failure =
                        format!("undecodable at group {group} ({} bytes)", read.data.len());
                    failed_plan = Some((plan.offset, plan.len));
                }
            },
            Err(e) => {
                let not_found = matches!(e, ReadError::NotFound { .. });
                last_failure = e.to_string();
                failed_plan = Some((plan.offset, plan.len));
                if not_found {
                    // The object itself is gone; no prefix can help.
                    break;
                }
            }
        }
    }
    Delivery::Quarantined { reason: last_failure }
}

/// One quarantined record (detail kept for the first
/// [`QUARANTINE_DETAIL_CAP`] records).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Record index in the source.
    pub record: usize,
    /// Why it could not be delivered.
    pub reason: String,
}

/// Exact per-epoch fault accounting: retry totals, degradation counts,
/// and the quarantined label multiset. The invariant the chaos harness
/// checks: `delivered labels + quarantined_labels == expected labels`,
/// as exact multisets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Read attempts that were retried.
    pub retries: u64,
    /// Backoff seconds spent (wall: slept; virtual: charged).
    pub backoff_s: f64,
    /// Records delivered below their requested scan group.
    pub degraded_records: u64,
    /// Records quarantined (no prefix deliverable).
    pub quarantined_records: u64,
    /// Exact label → count multiset of quarantined images.
    pub quarantined_labels: BTreeMap<u32, u64>,
    /// Per-record detail, capped at [`QUARANTINE_DETAIL_CAP`].
    pub quarantine: Vec<QuarantineEntry>,
}

impl FaultReport {
    /// True when the epoch saw no retries, degradations, or quarantines.
    pub fn is_clean(&self) -> bool {
        self.retries == 0 && self.degraded_records == 0 && self.quarantined_records == 0
    }

    /// Total quarantined images (labels).
    pub fn quarantined_images(&self) -> u64 {
        self.quarantined_labels.values().sum()
    }

    /// Records a quarantined record: exact counters always, detail only
    /// under the cap.
    pub fn note_quarantine(&mut self, record: usize, labels: &[u32], reason: String) {
        self.quarantined_records += 1;
        for &label in labels {
            *self.quarantined_labels.entry(label).or_insert(0) += 1;
        }
        if self.quarantine.len() < QUARANTINE_DETAIL_CAP {
            self.quarantine.push(QuarantineEntry { record, reason });
        }
    }

    /// Folds another report into this one (used to merge per-worker
    /// accounting into the epoch's).
    pub fn merge(&mut self, other: &FaultReport) {
        self.retries += other.retries;
        self.backoff_s += other.backoff_s;
        self.degraded_records += other.degraded_records;
        self.quarantined_records += other.quarantined_records;
        for (&label, &n) in &other.quarantined_labels {
            *self.quarantined_labels.entry(label).or_insert(0) += n;
        }
        for e in &other.quarantine {
            if self.quarantine.len() >= QUARANTINE_DETAIL_CAP {
                break;
            }
            self.quarantine.push(e.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr_storage::{DeviceProfile, FaultPlan};

    fn plan_of(name: &str) -> ReadPlan<'_> {
        ReadPlan { name, offset: 0, len: 1024 }
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let p = RetryPolicy { base_backoff_s: 0.01, max_backoff_s: 0.05, ..RetryPolicy::default() };
        let a = p.backoff(0.01, 7, 1);
        assert_eq!(a, p.backoff(0.01, 7, 1), "same inputs, same delay");
        assert!(a >= p.base_backoff_s && a <= p.max_backoff_s);
        assert!(p.backoff(10.0, 7, 2) <= p.max_backoff_s, "cap holds");
        assert_ne!(p.backoff(0.01, 7, 1), p.backoff(0.01, 8, 1), "keys decorrelate");
    }

    #[test]
    fn budget_spends_exactly_and_refuses_overdraft() {
        let b = RetryBudget::new(0.005);
        assert!(b.try_spend(0.003));
        assert!(!b.try_spend(0.003), "only 2ms left");
        assert!(b.try_spend(0.002));
        assert!(b.remaining_s() < 1e-9);
        assert!(RetryBudget::new(f64::INFINITY).try_spend(1e9));
        assert!(!RetryBudget::new(0.0).try_spend(1e-6));
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        let store = ObjectStore::new(DeviceProfile::ram());
        store.put("rec", vec![9; 4096]);
        store.set_fault_plan(Some(FaultPlan {
            seed: 1,
            transient: 1.0,
            transient_repeats: 2,
            ..FaultPlan::default()
        }));
        let policy = RetryPolicy { base_backoff_s: 1e-6, max_backoff_s: 1e-5, ..RetryPolicy::default() };
        let budget = RetryBudget::new(1.0);
        let mut out = RetryOutcome::default();
        let mut slept = 0.0;
        let read = read_with_retry(
            &store,
            &plan_of("rec"),
            Timeline::Wall,
            &policy,
            &budget,
            42,
            &mut |s| slept += s,
            &mut out,
        )
        .expect("third attempt succeeds");
        assert_eq!(read.data.len(), 1024);
        assert_eq!(out.retries, 2);
        assert!((slept - out.backoff_s).abs() < 1e-12);
    }

    #[test]
    fn corrupt_ranges_fail_fast_without_retries() {
        let store = ObjectStore::new(DeviceProfile::ram());
        store.put("rec", vec![9; 4096]);
        store.set_fault_plan(Some(FaultPlan { seed: 1, corrupt: 1.0, ..FaultPlan::default() }));
        let budget = RetryBudget::new(1.0);
        let mut out = RetryOutcome::default();
        let err = read_with_retry(
            &store,
            &plan_of("rec"),
            Timeline::Wall,
            &RetryPolicy::default(),
            &budget,
            0,
            &mut |_| {},
            &mut out,
        )
        .expect_err("corrupt is persistent");
        assert!(matches!(err, pcr_storage::ReadError::CorruptRange { .. }));
        assert_eq!(out.retries, 0, "non-retryable errors spend nothing");
    }

    #[test]
    fn exhausted_budget_stops_retrying() {
        let store = ObjectStore::new(DeviceProfile::ram());
        store.put("rec", vec![9; 4096]);
        store.set_fault_plan(Some(FaultPlan {
            seed: 1,
            transient: 1.0,
            transient_repeats: 100,
            ..FaultPlan::default()
        }));
        let policy =
            RetryPolicy { max_retries: 50, base_backoff_s: 1e-3, ..RetryPolicy::default() };
        let budget = RetryBudget::new(0.0);
        let mut out = RetryOutcome::default();
        let r = read_with_retry(
            &store,
            &plan_of("rec"),
            Timeline::Wall,
            &policy,
            &budget,
            0,
            &mut |_| {},
            &mut out,
        );
        assert!(r.is_err());
        assert_eq!(out.retries, 0);
    }

    #[test]
    fn virtual_timeline_charges_backoff_by_issuing_later() {
        let store = ObjectStore::new(DeviceProfile::ram());
        store.put("rec", vec![9; 4096]);
        store.set_fault_plan(Some(FaultPlan {
            seed: 4,
            transient: 1.0,
            transient_repeats: 1,
            ..FaultPlan::default()
        }));
        let policy =
            RetryPolicy { base_backoff_s: 0.25, max_backoff_s: 0.25, ..RetryPolicy::default() };
        let budget = RetryBudget::new(10.0);
        let mut out = RetryOutcome::default();
        let read = read_with_retry(
            &store,
            &plan_of("rec"),
            Timeline::Virtual { start: 1.0 },
            &policy,
            &budget,
            0,
            &mut |_| {},
            &mut out,
        )
        .expect("retry succeeds");
        assert_eq!(out.retries, 1);
        assert!(
            read.start >= 1.0 + 0.25 - 1e-9,
            "second attempt issues after the backoff: start {}",
            read.start
        );
    }

    #[test]
    fn fault_report_reconciles_label_multisets() {
        let mut r = FaultReport::default();
        r.note_quarantine(3, &[1, 1, 2], "corrupt".into());
        r.note_quarantine(9, &[2], "torn".into());
        assert_eq!(r.quarantined_records, 2);
        assert_eq!(r.quarantined_images(), 4);
        assert_eq!(r.quarantined_labels.get(&1), Some(&2));
        assert_eq!(r.quarantined_labels.get(&2), Some(&2));
        assert_eq!(r.quarantine.len(), 2);
        let mut m = FaultReport::default();
        m.merge(&r);
        m.merge(&r);
        assert_eq!(m.quarantined_images(), 8);
        assert!(!m.is_clean());
    }

    #[test]
    fn quarantine_detail_is_bounded() {
        let mut r = FaultReport::default();
        for i in 0..(QUARANTINE_DETAIL_CAP + 40) {
            r.note_quarantine(i, &[0], "x".into());
        }
        assert_eq!(r.quarantine.len(), QUARANTINE_DETAIL_CAP);
        assert_eq!(r.quarantined_records as usize, QUARANTINE_DETAIL_CAP + 40);
        assert_eq!(r.quarantined_images() as usize, QUARANTINE_DETAIL_CAP + 40);
    }
}
