//! Loader configuration: thread count, prefetch depth, scan group, decode
//! modeling. [`LoaderConfig`] is shared by the virtual-time
//! ([`crate::loader::PcrLoader`]) and wall-clock ([`crate::parallel`])
//! paths so experiments can switch between modeled and measured runs.

/// How the loader accounts for JPEG decode cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecodeMode {
    /// Do not decode; byte accounting only (pure reader benchmarks, which
    /// the paper notes are bandwidth-bound regardless of decoding).
    Skip,
    /// Actually decode every image with `pcr-jpeg`, attributing measured
    /// CPU time to the worker's virtual timeline.
    Real,
    /// Charge a modeled per-byte decode cost. The default constants follow
    /// the paper's Appendix A.5: ~150 progressive images/s per core at
    /// ~110 KiB/image.
    Modeled {
        /// Seconds of CPU per byte of compressed data.
        seconds_per_byte: f64,
    },
}

impl DecodeMode {
    /// Modeled progressive-JPEG decode cost (paper A.5: 150 img/s/core on
    /// ~110KiB ImageNet images -> ~6e-8 s/B).
    pub fn modeled_progressive() -> Self {
        DecodeMode::Modeled { seconds_per_byte: 1.0 / (150.0 * 110.0 * 1024.0) }
    }

    /// Modeled baseline-JPEG decode cost (230 img/s/core -> ~40-50% faster
    /// than progressive, matching the paper's measured overhead).
    pub fn modeled_baseline() -> Self {
        DecodeMode::Modeled { seconds_per_byte: 1.0 / (230.0 * 110.0 * 1024.0) }
    }
}

/// Data loader configuration (the paper uses 4-8 prefetch threads).
#[derive(Debug, Clone, PartialEq)]
pub struct LoaderConfig {
    /// Worker (prefetch) threads.
    pub threads: usize,
    /// Scan group to read (1..=10); `num_groups` means full quality.
    pub scan_group: usize,
    /// Shuffle record order each epoch.
    pub shuffle: bool,
    /// Shuffle seed.
    pub seed: u64,
    /// Decode cost accounting.
    pub decode: DecodeMode,
    /// Retry/backoff policy around every read (see [`crate::retry`]).
    /// With a clean store the policy is never exercised; under faults it
    /// governs retries, deadlines, and the per-epoch retry budget.
    pub retry: crate::retry::RetryPolicy,
}

impl Default for LoaderConfig {
    fn default() -> Self {
        Self {
            threads: 8,
            scan_group: 10,
            shuffle: true,
            seed: 0,
            decode: DecodeMode::modeled_progressive(),
            retry: crate::retry::RetryPolicy::default(),
        }
    }
}

impl LoaderConfig {
    /// Convenience constructor for a scan group.
    pub fn at_group(scan_group: usize) -> Self {
        Self { scan_group, ..Self::default() }
    }

    /// The record visitation order for `epoch` over `n` records — shared by
    /// the virtual-time and wall-clock loaders so a fixed `(seed, epoch)`
    /// pair names the same schedule in both, letting experiments switch
    /// between modeled and measured runs without changing the data order.
    /// Delegates to [`crate::source::ReadPlanner`], the single owner of the
    /// shuffle math.
    pub fn epoch_order(&self, n: usize, epoch: u64) -> Vec<usize> {
        crate::source::ReadPlanner::from_config(self).epoch_order(n, epoch)
    }

    /// Streaming form of [`LoaderConfig::epoch_order`]: the same schedule
    /// as a constant-size [`crate::order::EpochOrder`] bijection, with no
    /// allocation proportional to `n`.
    pub fn epoch_iter(&self, n: usize, epoch: u64) -> crate::order::EpochOrder {
        crate::source::ReadPlanner::from_config(self).epoch_iter(n, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_costs_reflect_paper_overhead() {
        let (DecodeMode::Modeled { seconds_per_byte: prog },
             DecodeMode::Modeled { seconds_per_byte: base }) =
            (DecodeMode::modeled_progressive(), DecodeMode::modeled_baseline())
        else {
            panic!("constructors must return Modeled")
        };
        let overhead = prog / base - 1.0;
        assert!(
            (0.4..=0.6).contains(&overhead),
            "progressive decode overhead {overhead:.2} should be 40-50%"
        );
    }

    #[test]
    fn default_matches_paper_loader() {
        let c = LoaderConfig::default();
        assert_eq!(c.threads, 8);
        assert_eq!(c.scan_group, 10);
        assert!(c.shuffle);
    }
}
