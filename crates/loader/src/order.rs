//! Streaming epoch order: a seeded Feistel-network bijection over
//! `[0, n)` that replaces the materialized Fisher–Yates permutation.
//!
//! The old `epoch_order` allocated a `Vec<usize>` of every record index
//! and shuffled it — O(n) memory at the start of *every* epoch, which is
//! exactly the cost the ROADMAP's "tens of millions of records" item
//! forbids. An [`EpochOrder`] is instead a pure function: a four-round
//! Feistel network over the smallest even-bit-width domain covering `n`,
//! with round keys derived from `(seed, epoch)` by splitmix64, restricted
//! to `[0, n)` by cycle-walking. The whole object is a few machine words
//! — cloning it, sharing it across worker threads, or indexing it at
//! random position `i` are all O(1).
//!
//! Properties the loaders rely on (proved by `tests/properties.rs`):
//!
//! * **Permutation**: for any `n` (including non-powers-of-two) every
//!   index in `[0, n)` is produced exactly once per epoch.
//! * **Determinism**: a fixed `(seed, epoch)` pair names the same order
//!   for every loader, every scan group, and every worker count.
//! * **Per-epoch variation**: different seeds or epochs give different
//!   orders (for any `n` large enough that distinct permutations exist in
//!   practice).
//!
//! Cycle-walking keeps the bijection exact on non-power-of-two domains:
//! the Feistel network permutes `[0, 2^(2h))` where `2^(2h) >= n`; any
//! output landing in `[n, 2^(2h))` is fed back through the network until
//! it lands in `[0, n)`. Because the network is a bijection of the larger
//! domain, the walk terminates and the restriction is itself a bijection
//! of `[0, n)`; the domain is less than `4n`, so the expected walk length
//! is under 4 steps.

/// A streaming, allocation-free record permutation for one epoch.
///
/// Iterate it for the epoch order, or call [`EpochOrder::get`] for random
/// access. The struct is a handful of words however large `n` is; clone
/// it freely (each clone iterates independently from position 0).
///
/// ```
/// use pcr_loader::EpochOrder;
///
/// let order = EpochOrder::shuffled(10, 7, 0);
/// let mut seen: Vec<usize> = order.clone().collect();
/// seen.sort_unstable();
/// assert_eq!(seen, (0..10).collect::<Vec<_>>());
/// assert_eq!(order.get(3), order.clone().nth(3).unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochOrder {
    /// Domain size: indices produced are exactly `0..n`.
    n: u64,
    /// Bits per Feistel half; the network permutes `[0, 2^(2*half_bits))`.
    half_bits: u32,
    /// Per-round keys derived from `(seed, epoch)`; all zero + `identity`
    /// never happens because identity orders skip the network entirely.
    keys: [u64; FEISTEL_ROUNDS],
    /// When set, `get(i) == i` (shuffle disabled).
    identity: bool,
    /// Iterator cursor (position in the *order*, not a record index).
    next: u64,
}

/// Feistel rounds. Four rounds of a strong mixing function are the
/// textbook minimum for statistical indistinguishability; the shuffle
/// needs decorrelation, not cryptography.
const FEISTEL_ROUNDS: usize = 4;

/// splitmix64: the key-stream generator (public-domain constants from
/// Steele et al., "Fast splittable pseudorandom number generators").
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The Feistel round function: mixes one half with the round key. Only
/// the low `half_bits` of the result are used by the caller.
fn round_fn(half: u64, key: u64) -> u64 {
    let mut z = half ^ key;
    z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    z ^ (z >> 33)
}

impl EpochOrder {
    /// The shuffled order for `epoch` over `n` records under `seed` — the
    /// same schedule for every loader holding the same `(seed, epoch)`.
    pub fn shuffled(n: usize, seed: u64, epoch: u64) -> Self {
        let n = n as u64;
        // Smallest even bit width whose domain covers n: the Feistel
        // halves must be equal-width for the swap to stay a bijection.
        let bits = u64::BITS - n.saturating_sub(1).leading_zeros();
        let half_bits = bits.div_ceil(2).max(1);
        // Distinct epochs must decorrelate even when `seed` is 0, so the
        // key stream is seeded from an invertible mix of both.
        let mut state = seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut keys = [0u64; FEISTEL_ROUNDS];
        for k in &mut keys {
            *k = splitmix64(&mut state);
        }
        Self { n, half_bits, keys, identity: n <= 1, next: 0 }
    }

    /// The identity order `0, 1, .., n-1` (shuffle disabled).
    pub fn identity(n: usize) -> Self {
        Self { n: n as u64, half_bits: 1, keys: [0; FEISTEL_ROUNDS], identity: true, next: 0 }
    }

    /// Number of records in the epoch.
    pub fn num_records(&self) -> usize {
        self.n as usize
    }

    /// One pass of the Feistel network over the `2^(2*half_bits)` domain.
    fn network(&self, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut left = (x >> self.half_bits) & mask;
        let mut right = x & mask;
        for &key in &self.keys {
            let (l, r) = (right, left ^ (round_fn(right, key) & mask));
            left = l;
            right = r;
        }
        (left << self.half_bits) | right
    }

    /// The record index at position `i` of the order.
    ///
    /// # Panics
    /// Panics when `i >= self.num_records()` — positions, like slice
    /// indexes, must be in range.
    pub fn get(&self, i: usize) -> usize {
        let i = i as u64;
        assert!(i < self.n, "epoch-order position {i} out of range (n = {})", self.n);
        if self.identity {
            return i as usize;
        }
        // Cycle-walk: the network permutes the covering power-of-four
        // domain; re-apply until the value lands in [0, n). The domain is
        // < 4n, so this terminates in ~4 expected steps, and restricting
        // a bijection this way is itself a bijection.
        let mut x = self.network(i);
        while x >= self.n {
            x = self.network(x);
        }
        x as usize
    }
}

impl Iterator for EpochOrder {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.next >= self.n {
            return None;
        }
        let i = self.next as usize;
        self.next += 1;
        Some(self.get(i))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.n - self.next) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for EpochOrder {}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(order: EpochOrder) -> Vec<usize> {
        order.collect()
    }

    #[test]
    fn every_index_exactly_once_across_sizes() {
        for n in [0usize, 1, 2, 3, 7, 16, 17, 100, 255, 256, 257, 1000] {
            let mut seen = collect(EpochOrder::shuffled(n, 42, 3));
            seen.sort_unstable();
            assert_eq!(seen, (0..n).collect::<Vec<_>>(), "n = {n}");
        }
    }

    #[test]
    fn deterministic_and_epoch_sensitive() {
        let a = collect(EpochOrder::shuffled(100, 7, 5));
        assert_eq!(a, collect(EpochOrder::shuffled(100, 7, 5)));
        assert_ne!(a, collect(EpochOrder::shuffled(100, 7, 6)), "epochs differ");
        assert_ne!(a, collect(EpochOrder::shuffled(100, 8, 5)), "seeds differ");
        assert_ne!(a, (0..100).collect::<Vec<_>>(), "shuffle actually shuffles");
    }

    #[test]
    fn random_access_matches_iteration() {
        let order = EpochOrder::shuffled(37, 11, 2);
        let seq = collect(order.clone());
        for (i, &idx) in seq.iter().enumerate() {
            assert_eq!(order.get(i), idx);
        }
        assert_eq!(order.len(), 37);
    }

    #[test]
    fn identity_order_is_sequential() {
        assert_eq!(collect(EpochOrder::identity(5)), vec![0, 1, 2, 3, 4]);
        assert_eq!(EpochOrder::identity(0).next(), None);
    }

    #[test]
    fn order_is_constant_size_in_n() {
        // The whole point: epoch start allocates nothing proportional to n.
        assert!(std::mem::size_of::<EpochOrder>() <= 64);
        let big = EpochOrder::shuffled(10_000_000, 1, 1);
        assert_eq!(big.num_records(), 10_000_000);
        let first: Vec<usize> = big.take(4).collect();
        assert_eq!(first.len(), 4);
    }
}
