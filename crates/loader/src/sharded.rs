//! Streaming packed shard containers: [`ShardedSource`] plans *ranged*
//! reads into shard objects so every loader — the virtual-time
//! [`crate::loader::PcrLoader`], the wall-clock
//! [`crate::parallel::ParallelLoader`], and the fidelity-controlled
//! [`ParallelLoader::run_dynamic`](crate::parallel::ParallelLoader::run_dynamic)
//! — streams a `pcr-core` container ([`PcrContainer`]) exactly as it
//! streams per-record objects.
//!
//! The container's shard footers give every record an `(offset, length)`
//! inside its shard file plus per-scan-group offsets; [`ShardedSource`]
//! turns a global record index and a scan group into
//! `ReadPlan { shard object, record offset, prefix length }`. Epoch order
//! comes from the same [`crate::source::ReadPlanner`] as every other
//! source, so the shuffle is *cross-shard* by construction — records are
//! permuted globally, not shard-by-shard — and fidelity decisions change
//! only how many bytes each visit reads.
//!
//! [`open_container_store`] is the one-call path from a packed directory
//! to a running loader: open + integrity-verify the container, load each
//! shard into an [`ObjectStore`] fronting a file-backed device profile
//! (NVMe-class by default), and configure per-shard readahead so a
//! loader's adjacent ranged reads within a shard coalesce in the page
//! cache.

use crate::source::{ReadPlan, RecordSource};
use pcr_core::container::{PcrContainer, ShardRecord};
use pcr_core::{RecordScratch, Result};
use pcr_jpeg::ImageBuf;
use pcr_storage::{DeviceProfile, ObjectStore};
use std::path::Path;
use std::sync::Arc;

/// A [`RecordSource`] over a packed shard container: global record
/// indices map to ranged reads `[record offset, record offset +
/// prefix_len(g))` inside shard objects. Records are the container's
/// own [`ShardRecord`] footer entries (offset, group offsets, labels,
/// CRC), flattened with their shard index for O(1) global lookup.
#[derive(Debug, Clone)]
pub struct ShardedSource {
    /// Object names of the shards, in container order.
    shard_names: Vec<String>,
    /// `(shard index, footer entry)` for every record, in container
    /// (dataset) order.
    records: Vec<(u32, ShardRecord)>,
    /// Scan groups per record.
    num_groups: usize,
}

impl ShardedSource {
    /// Builds a source from an opened container's shard indexes,
    /// materializing every footer entry (for a lazily-opened columnar
    /// container this is the one place the footer columns are read).
    pub fn from_container(container: &PcrContainer) -> Result<Self> {
        let shard_names: Vec<String> =
            container.manifest.shards.iter().map(|s| s.file_name.clone()).collect();
        let mut records = Vec::with_capacity(container.num_records());
        for (si, shard) in container.shards.iter().enumerate() {
            for rec in shard.entries() {
                records.push((si as u32, rec?));
            }
        }
        Ok(Self { shard_names, records, num_groups: container.num_groups() })
    }

    /// Scan groups per record.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Total images across all records.
    pub fn num_images(&self) -> usize {
        self.records.iter().map(|(_, r)| r.labels.len()).sum()
    }

    /// Name of record `idx` (as carried in the shard footer).
    pub fn record_name(&self, idx: usize) -> &str {
        &self.records[idx].1.name
    }

    /// Object name of the shard holding record `idx`.
    pub fn shard_of(&self, idx: usize) -> &str {
        &self.shard_names[self.records[idx].0 as usize]
    }

    /// Bytes an epoch reads at scan group `g` — matches
    /// `MetaDb::bytes_at_group` for the same records.
    pub fn bytes_at_group(&self, g: usize) -> u64 {
        self.records.iter().map(|(_, r)| r.prefix_len(g)).sum()
    }
}

impl RecordSource for ShardedSource {
    fn num_records(&self) -> usize {
        self.records.len()
    }

    fn plan(&self, idx: usize, scan_group: usize) -> ReadPlan<'_> {
        let (shard, rec) = &self.records[idx];
        ReadPlan {
            name: &self.shard_names[*shard as usize],
            offset: rec.offset,
            len: rec.prefix_len(scan_group),
        }
    }

    fn labels(&self, idx: usize) -> &[u32] {
        &self.records[idx].1.labels
    }

    fn decode_real(
        &self,
        _idx: usize,
        bytes: &[u8],
        scan_group: usize,
        scratch: &mut RecordScratch,
    ) -> Option<Vec<ImageBuf>> {
        // Identical to the MetaDb path by construction: the planned range
        // *is* a `.pcr` record prefix, wherever in the shard it came from.
        crate::source::decode_pcr_prefix(bytes, scan_group, scratch)
    }

    fn decode_real_segmented(
        &self,
        _idx: usize,
        bytes: &[u8],
        scan_group: usize,
        scratch: &mut RecordScratch,
        segment_workers: usize,
    ) -> Option<Vec<ImageBuf>> {
        crate::source::decode_pcr_prefix_segmented(bytes, scan_group, scratch, segment_workers)
    }
}

/// How [`open_container_store`] materializes a container as an object
/// store.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStoreConfig {
    /// Simulated device fronting the shard objects.
    pub profile: DeviceProfile,
    /// Page-cache size in bytes (0 disables caching).
    pub cache_bytes: u64,
    /// Per-shard readahead granularity in bytes (0 disables): ranged
    /// reads are extended to the next boundary so a loader revisiting
    /// adjacent records — or the same record at a higher scan group —
    /// hits cache instead of the device.
    pub readahead: u64,
    /// Verify every record's CRC-32 while loading shards; corrupted
    /// containers are rejected before any loader runs.
    pub verify: bool,
}

impl Default for ShardStoreConfig {
    fn default() -> Self {
        Self {
            profile: DeviceProfile::nvme_local(),
            cache_bytes: 256 << 20,
            readahead: 256 << 10,
            verify: true,
        }
    }
}

/// An opened, store-backed container ready to stream.
#[derive(Debug)]
pub struct OpenedContainer {
    /// The parsed container (manifest + shard indexes).
    pub container: PcrContainer,
    /// Object store holding one object per shard file.
    pub store: Arc<ObjectStore>,
    /// Read-planning source over the shard objects.
    pub source: Arc<ShardedSource>,
}

/// Opens the container at `dir` and loads its shards into an
/// [`ObjectStore`] under their manifest file names, verifying record
/// checksums (unless disabled) and configuring readahead. The returned
/// [`OpenedContainer`] plugs directly into any loader:
///
/// ```no_run
/// use pcr_loader::sharded::{open_container_store, ShardStoreConfig};
/// use pcr_loader::{LoaderConfig, PcrLoader};
///
/// let opened = open_container_store(std::path::Path::new("data/derm"), &ShardStoreConfig::default())?;
/// let epoch = PcrLoader::over(&opened.store, &*opened.source, LoaderConfig::at_group(2))
///     .run_epoch(0, 0.0);
/// println!("{} images from {} shards", epoch.images, opened.container.shards.len());
/// # Ok::<(), pcr_core::Error>(())
/// ```
pub fn open_container_store(dir: &Path, config: &ShardStoreConfig) -> Result<OpenedContainer> {
    let container = PcrContainer::open(dir)?;
    let store = Arc::new(ObjectStore::with_cache(config.profile.clone(), config.cache_bytes));
    store.set_readahead(config.readahead);
    for i in 0..container.shards.len() {
        let bytes = if config.verify {
            container.read_shard_verified(i)?
        } else {
            container.read_shard(i)?
        };
        store.put(&container.manifest.shards[i].file_name, bytes);
    }
    let source = Arc::new(ShardedSource::from_container(&container)?);
    Ok(OpenedContainer { container, store, source })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DecodeMode, LoaderConfig};
    use crate::loader::{populate_store, PcrLoader};
    use crate::parallel::{ParallelConfig, ParallelLoader};
    use pcr_core::container::write_container;
    use pcr_core::{PcrDatasetBuilder, SampleMeta};
    use std::sync::atomic::Ordering;

    fn dataset(n: usize) -> pcr_core::PcrDataset {
        let mut b = PcrDatasetBuilder::new(3, 10).with_name_prefix("sh");
        for i in 0..n {
            let mut data = Vec::new();
            for y in 0..32u32 {
                for x in 0..32u32 {
                    data.push(((x * 3 + y * 7 + i as u32 * 5) % 256) as u8);
                    data.push(((x + y) % 256) as u8);
                    data.push((y % 256) as u8);
                }
            }
            let img = pcr_jpeg::ImageBuf::from_raw(32, 32, 3, data).unwrap();
            b.add_image(SampleMeta { label: (i % 4) as u32, id: format!("s{i}") }, &img, 85)
                .unwrap();
        }
        b.finish().unwrap()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pcr-sharded-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sharded_plans_are_ranged_reads() {
        let dir = tmpdir("plans");
        let ds = dataset(9); // 3 records of 3 images
        write_container(&ds, &dir, 2).unwrap();
        let opened = open_container_store(&dir, &ShardStoreConfig::default()).unwrap();
        let src = &opened.source;
        assert_eq!(src.num_records(), 3);
        assert_eq!(src.num_images(), 9);
        // Record 1 lives in shard 0 *after* record 0: nonzero offset.
        let plan = src.plan(1, 2);
        assert_eq!(plan.name, "shard-00000.pcrshard");
        assert!(plan.offset > pcr_core::container::SHARD_HEADER_LEN);
        assert_eq!(plan.len, ds.db.records[1].prefix_len(2));
        // Record 2 lives in shard 1.
        assert_eq!(src.plan(2, 2).name, "shard-00001.pcrshard");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn virtual_epoch_over_shards_matches_metadb_bytes_and_labels() {
        let dir = tmpdir("virtual");
        let ds = dataset(12);
        write_container(&ds, &dir, 2).unwrap();
        let opened = open_container_store(&dir, &ShardStoreConfig::default()).unwrap();

        let mem_store = ObjectStore::new(DeviceProfile::nvme_local());
        populate_store(&mem_store, &ds);

        for g in [1usize, 5, 10] {
            let cfg = LoaderConfig { decode: DecodeMode::Skip, ..LoaderConfig::at_group(g) };
            let sharded =
                PcrLoader::over(&opened.store, &*opened.source, cfg.clone()).run_epoch(0, 0.0);
            let memory = PcrLoader::new(&mem_store, &ds.db, cfg).run_epoch(0, 0.0);
            assert_eq!(sharded.bytes, memory.bytes, "group {g}");
            assert_eq!(sharded.images, memory.images);
            let labels = |r: &crate::loader::EpochResult| {
                let mut l: Vec<u32> =
                    r.records.iter().flat_map(|rec| rec.labels.clone()).collect();
                l.sort_unstable();
                l
            };
            assert_eq!(labels(&sharded), labels(&memory));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_loader_streams_shards_with_real_decode() {
        let dir = tmpdir("parallel");
        let ds = dataset(10);
        write_container(&ds, &dir, 2).unwrap();
        let opened = open_container_store(&dir, &ShardStoreConfig::default()).unwrap();
        let loader = ParallelLoader::new(
            Arc::clone(&opened.store),
            Arc::clone(&opened.source),
            ParallelConfig { batch_size: 4, ..ParallelConfig::real(3, 2) },
        );
        let stream = loader.spawn_epoch(0);
        let mut images = 0usize;
        for b in stream.batches.iter() {
            assert_eq!(b.images.len(), b.labels.len());
            for img in &b.images {
                assert_eq!(img.width(), 32);
            }
            images += b.images.len();
        }
        let stats = Arc::clone(&stream.stats);
        stream.join();
        assert_eq!(images, 10);
        assert_eq!(stats.images_decoded.load(Ordering::Relaxed), 10);
        // Group-2 prefix reads: well under the full container size.
        let read = stats.bytes_read.load(Ordering::Relaxed);
        assert_eq!(read, opened.source.bytes_at_group(2));
        assert!(read < opened.container.total_data_bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_shard_is_rejected_before_streaming() {
        let dir = tmpdir("reject");
        let ds = dataset(6);
        write_container(&ds, &dir, 2).unwrap();
        // Corrupt one data byte (CRC still in footer).
        let container = PcrContainer::open(&dir).unwrap();
        let path = container.shard_path(0);
        let mut bytes = std::fs::read(&path).unwrap();
        let (_, rec) = container.record(0).unwrap();
        bytes[rec.offset as usize + 40] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();
        let err = open_container_store(&dir, &ShardStoreConfig::default()).unwrap_err();
        assert!(matches!(err, pcr_core::Error::Corrupt(_)), "{err:?}");
        // Opting out of verification loads anyway (for forensics).
        let cfg = ShardStoreConfig { verify: false, ..ShardStoreConfig::default() };
        assert!(open_container_store(&dir, &cfg).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn readahead_coalesces_within_a_shard() {
        let dir = tmpdir("readahead");
        let ds = dataset(12);
        write_container(&ds, &dir, 4).unwrap();
        let cfg = ShardStoreConfig { readahead: 1 << 20, ..ShardStoreConfig::default() };
        let opened = open_container_store(&dir, &cfg).unwrap();
        assert_eq!(opened.store.readahead(), 1 << 20);
        // A low-group epoch touches every record; with 1 MiB readahead the
        // first read per shard pulls the whole (small) shard into cache.
        let cfg = LoaderConfig { decode: DecodeMode::Skip, ..LoaderConfig::at_group(1) };
        let _ = PcrLoader::over(&opened.store, &*opened.source, cfg.clone()).run_epoch(0, 0.0);
        let stats = opened.store.device_stats();
        assert!(
            stats.reads < opened.source.num_records() as u64,
            "readahead should collapse per-record device reads ({} reads)",
            stats.reads
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
