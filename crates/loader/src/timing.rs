//! Wall-clock measurement helpers.
//!
//! This is the one place in the loader crate allowed to touch
//! `std::time::Instant` (see the `clock-discipline` rule in
//! `pcr-analyze`). Everything else in the crate runs on virtual time —
//! the clocked read path hands out `Clock::Virtual` timestamps — so a
//! stray `Instant::now()` in loader code is almost always a bug where
//! host wall-clock leaks into a simulated timeline. Real measurements
//! (e.g. timing an actual JPEG decode in `DecodeMode::Real`) must go
//! through [`measure`], which keeps the sites auditable.

/// Runs `f` and returns its result together with the elapsed wall-clock
/// seconds.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_value_and_nonnegative_time() {
        let (v, secs) = measure(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
