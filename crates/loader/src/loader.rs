//! The PCR data loader: a closed system of prefetch workers reading record
//! prefixes from simulated storage, optionally decoding them, and emitting
//! a time-ordered stream of loaded records (paper Appendix A.1).
//!
//! Timing is virtual (driven by the storage model) so experiments are
//! deterministic; decode cost is either modeled or measured from real
//! `pcr-jpeg` work and charged to the worker's virtual timeline. Workers
//! are greedy: each grabs the next record as soon as it finishes its
//! previous one — exactly the "loader operates as a closed system, starting
//! the next piece of work after the last is finished" model.
//!
//! For the *measured* (real threads, wall-clock) counterpart of this
//! loader see [`crate::parallel`]; both share [`LoaderConfig`] and the
//! per-epoch record order.

use crate::config::{DecodeMode, LoaderConfig};
use crate::retry::{
    deliver_with_degradation, DecodeCheck, Delivery, FaultReport, RetryBudget, RetryOutcome,
    Timeline,
};
use crate::source::{ReadPlanner, RecordSource};
use pcr_core::{MetaDb, RecordScratch};
use pcr_jpeg::ImageBuf;
use pcr_storage::ObjectStore;

/// Timing and contents of one loaded record.
#[derive(Debug, Clone)]
pub struct LoadedRecord {
    /// Index into the epoch's record order.
    pub seq: usize,
    /// Record index in the metadata DB.
    pub record: usize,
    /// Worker that loaded it.
    pub worker: usize,
    /// Virtual time the read was issued.
    pub issued: f64,
    /// Virtual time the read completed.
    pub read_finish: f64,
    /// Virtual time decode completed (== ready time).
    pub ready: f64,
    /// Compressed bytes read.
    pub bytes: u64,
    /// Labels of the record's images.
    pub labels: Vec<u32>,
    /// Decoded images (empty unless [`DecodeMode::Real`]).
    pub images: Vec<ImageBuf>,
    /// Scan group actually delivered — equal to the planner's group
    /// unless faults degraded this record to a shorter intact prefix.
    pub delivered_group: usize,
    /// True when faults degraded this record below the requested group.
    pub degraded: bool,
}

/// Result of streaming one epoch.
#[derive(Debug)]
pub struct EpochResult {
    /// Loaded records sorted by *ready time* (the order the training loop
    /// would receive them), which generally differs from the shuffled
    /// issue order because small records finish before large ones.
    ///
    /// Contract: every element keeps its [`LoadedRecord::seq`] position in
    /// the epoch's issue order, so consumers that need the schedule itself
    /// (e.g. to compare shuffles across seeds, or to align with the
    /// wall-clock loader's delivery) must reconstruct it by sorting on
    /// `seq` — see `shuffle_changes_order_deterministically` in this
    /// module's tests for the canonical pattern.
    pub records: Vec<LoadedRecord>,
    /// Total images delivered.
    pub images: usize,
    /// Total compressed bytes read.
    pub bytes: u64,
    /// Virtual time at which the last record became ready.
    pub duration: f64,
    /// Retry/degradation/quarantine accounting for the epoch. Clean runs
    /// report [`FaultReport::is_clean`].
    pub faults: FaultReport,
}

impl EpochResult {
    /// Loader throughput in images/second of virtual time.
    pub fn images_per_sec(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.images as f64 / self.duration
        }
    }

    /// Mean bytes per image actually read.
    pub fn mean_image_bytes(&self) -> f64 {
        if self.images == 0 {
            0.0
        } else {
            self.bytes as f64 / self.images as f64
        }
    }
}

/// The PCR loader over an object store populated with `.pcr` records.
///
/// Generic over its [`RecordSource`]: the default `MetaDb` plans
/// whole-object prefix reads over records stored one object each
/// ([`populate_store`]); a `ShardedSource` (see [`crate::sharded`]) plans
/// ranged reads into packed shard files. Construct the former with
/// [`PcrLoader::new`], anything else with [`PcrLoader::over`].
#[derive(Debug)]
pub struct PcrLoader<'a, S: RecordSource + ?Sized = MetaDb> {
    store: &'a ObjectStore,
    source: &'a S,
    config: LoaderConfig,
}

impl<'a> PcrLoader<'a, MetaDb> {
    /// Creates a loader over a metadata DB. Records must exist in `store`
    /// under the names in `db` (use [`populate_store`]).
    pub fn new(store: &'a ObjectStore, db: &'a MetaDb, config: LoaderConfig) -> Self {
        Self::over(store, db, config)
    }
}

impl<'a, S: RecordSource + ?Sized> PcrLoader<'a, S> {
    /// Creates a loader over any [`RecordSource`] — e.g. a
    /// `ShardedSource` whose plans point into packed shard objects.
    pub fn over(store: &'a ObjectStore, source: &'a S, config: LoaderConfig) -> Self {
        Self { store, source, config }
    }

    /// Streams one epoch starting at virtual time `start`, returning every
    /// record with its ready timestamp.
    pub fn run_epoch(&self, epoch: u64, start: f64) -> EpochResult {
        let planner = ReadPlanner::from_config(&self.config);
        run_virtual_epoch(self.store, self.source, &self.config, &planner, epoch, start)
    }
}

/// The virtual-time epoch engine every modeled loader runs on: a greedy
/// closed system of `config.threads` workers over any [`RecordSource`],
/// reading through the clocked store path ([`Clock::Virtual`](pcr_storage::Clock::Virtual)) and
/// charging decode cost per [`DecodeMode`].
///
/// [`PcrLoader`] and both [`crate::baseline_loader`] loaders are thin
/// wrappers over this one function — the worker/timing model exists in
/// exactly one place.
pub fn run_virtual_epoch<S: RecordSource + ?Sized>(
    store: &ObjectStore,
    source: &S,
    config: &LoaderConfig,
    planner: &ReadPlanner,
    epoch: u64,
    start: f64,
) -> EpochResult {
    // Streaming order: the Feistel bijection yields indices one at a
    // time, so epoch start allocates nothing proportional to n.
    let order = planner.epoch_iter(source.num_records(), epoch);
    let mut scratch = RecordScratch::new();
    let threads = config.threads.max(1);
    let budget = RetryBudget::new(config.retry.epoch_retry_budget_s);
    let mut faults = FaultReport::default();
    // Each worker's virtual "free at" time.
    let mut free_at = vec![start; threads];
    let mut out: Vec<LoadedRecord> = Vec::with_capacity(order.num_records());
    for (seq, rec_idx) in order.enumerate() {
        // Greedy: the earliest-free worker takes the next record.
        let worker = (0..threads)
            .min_by(|&a, &b| free_at[a].partial_cmp(&free_at[b]).expect("no NaN"))
            .expect("threads >= 1");
        let issued = free_at[worker];
        // Decode cost accumulates across ladder attempts (failed decodes
        // are charged too, matching the wall-clock workers' semantics).
        let mut decode_cost = 0.0f64;
        let mut decode_check = |read: &pcr_storage::ReadResult, _group: usize| match config.decode
        {
            DecodeMode::Skip | DecodeMode::Modeled { .. } => DecodeCheck::Accepted,
            DecodeMode::Real => {
                let (decoded, elapsed) = crate::timing::measure(|| {
                    source.decode_real(rec_idx, &read.data, planner.scan_group, &mut scratch)
                });
                decode_cost += elapsed;
                match decoded {
                    Some(images) => DecodeCheck::Images(images),
                    None => DecodeCheck::Failed,
                }
            }
        };
        let mut outcome = RetryOutcome::default();
        let delivery = deliver_with_degradation(
            store,
            source,
            rec_idx,
            planner.scan_group,
            Timeline::Virtual { start: issued },
            &config.retry,
            &budget,
            &mut |_| {}, // virtual: backoff is charged by issuing later
            &mut decode_check,
            &mut outcome,
        );
        faults.retries += u64::from(outcome.retries);
        faults.backoff_s += outcome.backoff_s;
        match delivery {
            Delivery::Delivered { read, group, degraded, images } => {
                if let DecodeMode::Modeled { seconds_per_byte } = config.decode {
                    decode_cost = read.data.len() as f64 * seconds_per_byte;
                }
                if degraded {
                    faults.degraded_records += 1;
                }
                let ready = read.finish + decode_cost;
                free_at[worker] = ready;
                out.push(LoadedRecord {
                    seq,
                    record: rec_idx,
                    worker,
                    issued,
                    read_finish: read.finish,
                    ready,
                    bytes: read.data.len() as u64,
                    labels: source.labels(rec_idx).to_vec(),
                    images,
                    delivered_group: group,
                    degraded,
                });
            }
            Delivery::Quarantined { reason } => {
                // The worker spent its backoff and any decode attempts
                // but delivers nothing; the record's labels are accounted
                // in the quarantine multiset.
                faults.note_quarantine(rec_idx, source.labels(rec_idx), reason);
                free_at[worker] = issued + outcome.backoff_s + decode_cost;
            }
        }
    }
    out.sort_by(|a, b| a.ready.partial_cmp(&b.ready).expect("no NaN"));
    let images = out.iter().map(|r| r.labels.len()).sum();
    let bytes = out.iter().map(|r| r.bytes).sum();
    let duration = out.last().map_or(0.0, |r| r.ready - start);
    EpochResult { records: out, images, bytes, duration, faults }
}

/// Loads every record of a PCR dataset into an object store under its DB
/// name.
pub fn populate_store(store: &ObjectStore, dataset: &pcr_core::PcrDataset) {
    for (meta, bytes) in dataset.db.records.iter().zip(&dataset.records) {
        store.put(&meta.name, bytes.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr_core::{PcrDatasetBuilder, SampleMeta};
    use pcr_jpeg::ImageBuf;
    use pcr_storage::DeviceProfile;

    fn make_dataset(n: usize) -> pcr_core::PcrDataset {
        let mut b = PcrDatasetBuilder::new(4, 10).with_name_prefix("t");
        for i in 0..n {
            let mut data = Vec::new();
            for y in 0..40u32 {
                for x in 0..40u32 {
                    data.push(((x * 7 + y * 3 + i as u32 * 11) % 256) as u8);
                    data.push(((x + y) % 256) as u8);
                    data.push(((x * y) % 256) as u8);
                }
            }
            let img = ImageBuf::from_raw(40, 40, 3, data).unwrap();
            b.add_image(SampleMeta { label: (i % 2) as u32, id: format!("i{i}") }, &img, 85)
                .unwrap();
        }
        b.finish().unwrap()
    }

    fn setup(n: usize, profile: DeviceProfile) -> (ObjectStore, pcr_core::MetaDb) {
        let ds = make_dataset(n);
        let store = ObjectStore::new(profile);
        populate_store(&store, &ds);
        (store, ds.db)
    }

    #[test]
    fn epoch_delivers_every_image_once() {
        let (store, db) = setup(12, DeviceProfile::ssd_sata());
        let loader = PcrLoader::new(&store, &db, LoaderConfig::at_group(10));
        let r = loader.run_epoch(0, 0.0);
        assert_eq!(r.images, 12);
        assert_eq!(r.records.len(), 3);
        assert!(r.duration > 0.0);
    }

    #[test]
    fn lower_scan_groups_read_fewer_bytes_and_finish_sooner() {
        let (store, db) = setup(12, DeviceProfile::hdd_7200rpm());
        let full = PcrLoader::new(&store, &db, LoaderConfig::at_group(10)).run_epoch(0, 0.0);
        store.device().reset();
        let low = PcrLoader::new(&store, &db, LoaderConfig::at_group(1)).run_epoch(0, 0.0);
        assert!(low.bytes < full.bytes / 2, "{} vs {}", low.bytes, full.bytes);
        assert!(low.duration < full.duration);
        assert!(low.images_per_sec() > full.images_per_sec());
    }

    #[test]
    fn shuffle_changes_order_deterministically() {
        let (store, db) = setup(16, DeviceProfile::ram());
        let mk = |seed| {
            let cfg = LoaderConfig { seed, ..LoaderConfig::at_group(5) };
            let loader = PcrLoader::new(&store, &db, cfg);
            // `records` is delivered in ready-time order, which tracks
            // record size rather than the shuffle; reconstruct the issue
            // order from `seq` to observe the shuffled schedule itself.
            let mut by_seq: Vec<(usize, usize)> = loader
                .run_epoch(0, 0.0)
                .records
                .iter()
                .map(|r| (r.seq, r.record))
                .collect();
            by_seq.sort_unstable();
            by_seq.into_iter().map(|(_, rec)| rec).collect::<Vec<_>>()
        };
        let a1 = mk(7);
        let a2 = mk(7);
        let b = mk(8);
        assert_eq!(a1, a2, "same seed, same order");
        assert_ne!(a1, b, "different seed, different order");
    }

    #[test]
    fn real_decode_produces_images() {
        let (store, db) = setup(4, DeviceProfile::ram());
        let cfg = LoaderConfig { decode: DecodeMode::Real, ..LoaderConfig::at_group(2) };
        let loader = PcrLoader::new(&store, &db, cfg);
        let r = loader.run_epoch(0, 0.0);
        let total: usize = r.records.iter().map(|rec| rec.images.len()).sum();
        assert_eq!(total, 4);
        assert_eq!(r.records[0].images[0].width(), 40);
        // Real decode charges measured wall-clock time to the virtual
        // timeline; a coarse CI clock can measure zero, so the strict
        // inequality is opt-in (PCR_STRICT_TIMING=1).
        if std::env::var_os("PCR_STRICT_TIMING").is_some() {
            assert!(r.records[0].ready > r.records[0].read_finish);
        }
    }

    #[test]
    fn more_threads_increase_overlap_on_slow_decode() {
        let (store, db) = setup(16, DeviceProfile::ram());
        let run = |threads| {
            store.device().reset();
            let cfg = LoaderConfig {
                threads,
                decode: DecodeMode::Modeled { seconds_per_byte: 1e-6 },
                ..LoaderConfig::at_group(10)
            };
            PcrLoader::new(&store, &db, cfg).run_epoch(0, 0.0).duration
        };
        let one = run(1);
        let eight = run(8);
        assert!(
            eight < one / 2.0,
            "8 threads ({eight:.4}s) should be much faster than 1 ({one:.4}s)"
        );
    }

    #[test]
    fn reads_are_sequential_prefix_reads() {
        let (store, db) = setup(8, DeviceProfile::hdd_7200rpm());
        let loader = PcrLoader::new(&store, &db, LoaderConfig::at_group(3));
        let _ = loader.run_epoch(0, 0.0);
        let stats = store.device_stats();
        // One read per record, each a single request (no per-scan seeks).
        assert_eq!(stats.reads, 2);
    }
}
