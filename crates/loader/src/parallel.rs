//! The real wall-clock PCR read path: an OS-thread worker pool that reads
//! record byte-prefixes from an [`ObjectStore`], decodes truncated
//! progressive JPEGs with `pcr-jpeg`, and yields [`Minibatch`]es to the
//! consumer through double-buffered prefetch channels.
//!
//! This is the measured counterpart of the *modeled*
//! [`crate::loader::PcrLoader`]: both share [`LoaderConfig`] (thread
//! count, scan group, shuffle seed, [`DecodeMode`]) and visit records in
//! the identical per-epoch order, so an experiment can swap a queueing
//! model for real threads contending over real buffers without changing
//! anything else. Where the virtual-time loader *charges* decode cost to a
//! simulated clock, the workers here *spend* it — per-worker
//! [`pcr_core::RecordScratch`] buffers and the store's zero-copy
//! [`pcr_storage::ByteView`] reads keep the hot loop allocation-free so
//! the pipeline runs as fast as the hardware allows.
//!
//! Structure (paper Appendix A.1's loader, realized with OS threads):
//!
//! ```text
//! shared EpochOrder bijection + atomic cursor (no materialized order)
//!   ├── worker 0 ─ read prefix ─ [emulate I/O] ─ decode ──┐
//!   ├── worker 1 ─ ...                                    ├─ bounded record
//!   └── worker W ─ ...                                    │  channel
//!                                                         ▼  (prefetch_records)
//!                                             assembler: records → batches
//!                                                         │  bounded batch
//!                                                         ▼  channel
//!                                               consumer (train loop)      (prefetch_batches)
//! ```
//!
//! Both channels are bounded, so a slow consumer exerts backpressure all
//! the way to the reads; `prefetch_batches = 2` is classic double
//! buffering (one batch being consumed, one staged).

use crate::config::{DecodeMode, LoaderConfig};
use crate::order::EpochOrder;
use crate::retry::{
    deliver_with_degradation, DecodeCheck, Delivery, FaultReport, RetryBudget, RetryOutcome,
    RetryPolicy, Timeline,
};
use crate::source::{ReadPlanner, RecordSource};
use crossbeam::channel::{bounded, Receiver};
use pcr_core::{MetaDb, RecordScratch};
use pcr_jpeg::ImageBuf;
use pcr_storage::ObjectStore;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How the wall-clock pipeline realizes storage time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoModel {
    /// Serve reads at memory speed (the store is RAM-resident). Worker
    /// scaling then measures pure decode parallelism.
    #[default]
    Instant,
    /// Sleep each read's modeled service time — the duration the clocked
    /// store path returns for a [`Clock::Wall`](pcr_storage::Clock::Wall) read — on the issuing
    /// worker thread. Cached bytes cost only request overhead, so a warm
    /// page cache speeds emulated I/O exactly as it would a real device.
    /// Requests to different records are assumed to hit independent
    /// backends — the remote-object-store regime — so worker counts
    /// overlap first-byte latencies exactly like a real multi-connection
    /// loader.
    EmulatedLatency,
}

/// Configuration of the wall-clock parallel loader: the shared
/// [`LoaderConfig`] plus the knobs that only exist once real channels and
/// batches are involved.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelConfig {
    /// Shared loader parameters: `threads` is the worker-pool size,
    /// `scan_group` the prefix quality, `shuffle`/`seed` the epoch order,
    /// `decode` what workers do with the bytes ([`DecodeMode::Real`]
    /// decodes pixels; [`DecodeMode::Skip`] delivers labels only;
    /// [`DecodeMode::Modeled`] sleeps the modeled per-byte cost).
    pub loader: LoaderConfig,
    /// Images per delivered [`Minibatch`].
    pub batch_size: usize,
    /// Bounded depth of the worker → assembler record channel.
    pub prefetch_records: usize,
    /// Bounded depth of the assembler → consumer batch channel; 2 is
    /// double buffering.
    pub prefetch_batches: usize,
    /// Storage-time realization.
    pub io: IoModel,
    /// Threads each worker may split one image's restart-marker entropy
    /// segments across (see
    /// [`pcr_core::PcrRecord::decode_image_segmented`]). 1 (the default)
    /// decodes sequentially; higher values only take effect on records
    /// encoded with restart markers (`pcr pack --restart-interval`) —
    /// marker-less records fall back to the sequential path with
    /// identical output.
    pub segment_workers: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            loader: LoaderConfig { threads: 4, decode: DecodeMode::Real, ..LoaderConfig::default() },
            batch_size: 32,
            prefetch_records: 8,
            prefetch_batches: 2,
            io: IoModel::Instant,
            segment_workers: 1,
        }
    }
}

impl ParallelConfig {
    /// Real decode of scan group `g` with `threads` workers; everything
    /// else defaulted.
    pub fn real(threads: usize, scan_group: usize) -> Self {
        Self {
            loader: LoaderConfig {
                threads,
                scan_group,
                decode: DecodeMode::Real,
                ..LoaderConfig::default()
            },
            ..Self::default()
        }
    }

    /// [`ParallelConfig::real`] with restart-segment parallelism: each of
    /// the `threads` workers may additionally fan one image's entropy
    /// segments out over `segment_workers` threads.
    pub fn real_segmented(threads: usize, scan_group: usize, segment_workers: usize) -> Self {
        Self { segment_workers: segment_workers.max(1), ..Self::real(threads, scan_group) }
    }
}

/// One delivered minibatch.
#[derive(Debug)]
pub struct Minibatch {
    /// Decoded images (empty unless [`DecodeMode::Real`]).
    pub images: Vec<ImageBuf>,
    /// Labels; always present, parallel to `images` under
    /// [`DecodeMode::Real`].
    pub labels: Vec<u32>,
}

/// Aggregate pipeline statistics, updated live by the workers.
#[derive(Debug, Default)]
pub struct ParallelStats {
    /// Compressed bytes read.
    pub bytes_read: AtomicU64,
    /// Records fully processed.
    pub records_loaded: AtomicU64,
    /// Images decoded (0 unless [`DecodeMode::Real`]).
    pub images_decoded: AtomicU64,
    /// Total decode nanoseconds summed across workers.
    pub decode_nanos: AtomicU64,
    /// Total emulated-I/O wait nanoseconds summed across workers.
    pub io_wait_nanos: AtomicU64,
    /// Read attempts that were retried (faulted then re-issued).
    pub retries: AtomicU64,
    /// Records delivered below the requested scan group.
    pub degraded_records: AtomicU64,
    /// Records quarantined (no scan-group prefix deliverable).
    pub quarantined_records: AtomicU64,
    /// Total backoff microseconds slept across workers.
    pub backoff_micros: AtomicU64,
    /// Exact quarantine accounting (label multiset + bounded detail),
    /// merged in by workers as records are quarantined.
    pub quarantine: Mutex<FaultReport>,
}

impl ParallelStats {
    /// Mean decode throughput in images/second of summed worker CPU time.
    pub fn decode_images_per_cpu_sec(&self) -> f64 {
        let n = self.images_decoded.load(Ordering::Relaxed) as f64;
        let secs = self.decode_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        if secs > 0.0 {
            n / secs
        } else {
            0.0
        }
    }

    /// Consolidated fault accounting: the quarantine's exact label
    /// multiset plus the live retry/degradation counters.
    pub fn fault_report(&self) -> FaultReport {
        let mut r = self.quarantine.lock().map(|g| g.clone()).unwrap_or_default();
        r.retries = self.retries.load(Ordering::Relaxed);
        r.degraded_records = self.degraded_records.load(Ordering::Relaxed);
        r.backoff_s = self.backoff_micros.load(Ordering::Relaxed) as f64 / 1e6;
        r
    }
}

/// A running epoch: a stream of minibatches plus live statistics.
///
/// Iterate [`EpochStream::batches`] until disconnect for the full epoch,
/// then call [`EpochStream::join`]; dropping the receiver early tears the
/// pipeline down cleanly (workers notice the closed channel and exit).
pub struct EpochStream {
    /// Minibatch stream; iterate until disconnect for a full epoch.
    pub batches: Receiver<Minibatch>,
    /// Shared statistics, live while the epoch runs.
    pub stats: Arc<ParallelStats>,
    pub(crate) workers: Vec<std::thread::JoinHandle<()>>,
    pub(crate) assembler: Option<std::thread::JoinHandle<()>>,
}

impl EpochStream {
    /// Waits for all pipeline threads to finish. Drops the batch receiver
    /// first, so calling this mid-epoch cancels cleanly (workers notice
    /// the closed channel) instead of deadlocking; drain `batches` before
    /// calling if you want the full epoch.
    pub fn join(self) {
        let EpochStream { batches, workers, assembler, stats: _ } = self;
        drop(batches);
        for w in workers {
            let _ = w.join();
        }
        if let Some(a) = assembler {
            let _ = a.join();
        }
    }
}

/// Wall-clock results of one fully drained epoch.
#[derive(Debug, Clone)]
pub struct WallClockEpoch {
    /// Images delivered (labels delivered under non-decoding modes).
    pub images: usize,
    /// Minibatches delivered.
    pub batches: usize,
    /// Compressed bytes read.
    pub bytes: u64,
    /// Real elapsed seconds from spawn to last batch.
    pub wall_seconds: f64,
    /// Summed worker decode seconds (CPU cost of the epoch).
    pub decode_cpu_seconds: f64,
    /// Retry/degradation/quarantine accounting for the epoch. Clean runs
    /// report [`FaultReport::is_clean`].
    pub faults: FaultReport,
}

impl WallClockEpoch {
    /// Delivered throughput in images per wall-clock second.
    pub fn images_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.images as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Mean compressed bytes read per image.
    pub fn mean_image_bytes(&self) -> f64 {
        if self.images == 0 {
            0.0
        } else {
            self.bytes as f64 / self.images as f64
        }
    }
}

/// The wall-clock parallel loader over an object store populated with
/// `.pcr` records (use [`crate::loader::populate_store`]) or packed
/// shards (see [`crate::sharded`]).
///
/// Generic over its [`RecordSource`], defaulting to `MetaDb`; every
/// source streams through the identical worker pool, channels, and
/// clocked read path, so sharded and per-record layouts are compared on
/// mechanism-identical footing.
#[derive(Debug)]
pub struct ParallelLoader<S: RecordSource + ?Sized = MetaDb> {
    store: Arc<ObjectStore>,
    source: Arc<S>,
    config: ParallelConfig,
}

impl<S: RecordSource + ?Sized> Clone for ParallelLoader<S> {
    fn clone(&self) -> Self {
        Self {
            store: Arc::clone(&self.store),
            source: Arc::clone(&self.source),
            config: self.config.clone(),
        }
    }
}

impl<S: RecordSource + ?Sized + 'static> ParallelLoader<S> {
    /// Creates a loader. The source's planned object names must exist in
    /// `store`.
    pub fn new(store: Arc<ObjectStore>, source: Arc<S>, config: ParallelConfig) -> Self {
        Self { store, source, config }
    }

    /// The configuration.
    pub fn config(&self) -> &ParallelConfig {
        &self.config
    }

    /// The object store this loader reads from.
    pub fn store(&self) -> &Arc<ObjectStore> {
        &self.store
    }

    /// The record source this loader plans reads over.
    pub fn source(&self) -> &Arc<S> {
        &self.source
    }

    /// Spawns the worker pool and assembler for one epoch and returns the
    /// live stream. Reads at the configured scan group; see
    /// [`ParallelLoader::spawn_epoch_at`] for a per-epoch override.
    pub fn spawn_epoch(&self, epoch: u64) -> EpochStream {
        self.spawn_epoch_at(epoch, self.config.loader.scan_group)
    }

    /// Spawns one epoch reading at `scan_group` instead of the configured
    /// group — the hook a [`crate::fidelity::FidelityController`] uses to
    /// adjust fidelity online. The epoch record order is a function of
    /// `(seed, epoch)` only, so changing the group never changes which
    /// records are visited or in what order.
    pub fn spawn_epoch_at(&self, epoch: u64, scan_group: usize) -> EpochStream {
        let cfg = &self.config;
        let stats = Arc::new(ParallelStats::default());
        let planner = ReadPlanner::from_config(&cfg.loader).at_group(scan_group);

        // Work queue: the shared streaming epoch order plus an atomic
        // cursor. Workers claim the next *position* with a fetch-add and
        // resolve it to a record index through the Feistel bijection —
        // no per-epoch Vec, no O(n) channel backlog, just a few words of
        // state however many records the catalog holds.
        let order = Arc::new(planner.epoch_iter(self.source.num_records(), epoch));
        let cursor = Arc::new(AtomicUsize::new(0));
        // One retry budget per epoch, shared by all workers.
        let budget = Arc::new(RetryBudget::new(cfg.loader.retry.epoch_retry_budget_s));

        // Worker → assembler channel (bounded: the prefetch queue).
        // Workers send the record *index* with the decoded images; the
        // assembler resolves labels straight from the shared source, so
        // no per-record label Vec is ever allocated or copied.
        let (rec_tx, rec_rx) = bounded::<(Vec<ImageBuf>, usize)>(cfg.prefetch_records.max(1));
        let threads = cfg.loader.threads.max(1);
        let mut workers = Vec::with_capacity(threads);
        for w in 0..threads {
            let order = Arc::clone(&order);
            let cursor = Arc::clone(&cursor);
            let rec_tx = rec_tx.clone();
            let store = Arc::clone(&self.store);
            let source = Arc::clone(&self.source);
            let stats = Arc::clone(&stats);
            let decode = cfg.loader.decode;
            let planner = planner.clone();
            let io = cfg.io;
            let segment_workers = cfg.segment_workers.max(1);
            let retry = cfg.loader.retry.clone();
            let budget = Arc::clone(&budget);
            let handle = std::thread::Builder::new()
                .name(format!("pcr-parallel-{w}"))
                .spawn(move || {
                    worker_loop(
                        &order,
                        &cursor,
                        &rec_tx,
                        &store,
                        &*source,
                        &stats,
                        &planner,
                        decode,
                        io,
                        segment_workers,
                        &retry,
                        &budget,
                    )
                })
                .expect("spawn worker");
            workers.push(handle);
        }
        drop(rec_tx);

        // Assembler: records → fixed-size minibatches, double-buffered.
        let (batch_tx, batch_rx) = bounded::<Minibatch>(cfg.prefetch_batches.max(1));
        let batch_size = cfg.batch_size.max(1);
        let pairs_images = matches!(cfg.loader.decode, DecodeMode::Real);
        let asm_source = Arc::clone(&self.source);
        let assembler = std::thread::Builder::new()
            .name("pcr-assembler".into())
            .spawn(move || {
                let mut images: Vec<ImageBuf> = Vec::new();
                let mut labels: Vec<u32> = Vec::new();
                // Determinism invariant, checked under pcr-debug-sync:
                // within one epoch every record index reaches the
                // assembler at most once, whatever the worker interleaving.
                #[cfg(feature = "pcr-debug-sync")]
                let mut delivered_once = std::collections::HashSet::new();
                while let Ok((imgs, idx)) = rec_rx.recv() {
                    #[cfg(feature = "pcr-debug-sync")]
                    assert!(
                        delivered_once.insert(idx),
                        "pcr-debug-sync: record {idx} delivered to the assembler twice in one epoch"
                    );
                    images.extend(imgs);
                    labels.extend_from_slice(asm_source.labels(idx));
                    // Under Real decode images and labels stay parallel;
                    // otherwise images is empty and labels set the pace.
                    let filled = |i: &Vec<ImageBuf>, l: &Vec<u32>| {
                        if pairs_images { i.len() } else { l.len() }
                    };
                    while filled(&images, &labels) >= batch_size {
                        let rest_i = images.split_off(batch_size.min(images.len()));
                        let rest_l = labels.split_off(batch_size.min(labels.len()));
                        let batch = Minibatch {
                            images: std::mem::replace(&mut images, rest_i),
                            labels: std::mem::replace(&mut labels, rest_l),
                        };
                        if batch_tx.send(batch).is_err() {
                            return;
                        }
                    }
                }
                if !images.is_empty() || !labels.is_empty() {
                    let _ = batch_tx.send(Minibatch { images, labels });
                }
            })
            .expect("spawn assembler");

        EpochStream { batches: batch_rx, stats, workers, assembler: Some(assembler) }
    }

    /// Runs one epoch to completion, draining every batch, and reports
    /// wall-clock throughput.
    pub fn run_epoch(&self, epoch: u64) -> WallClockEpoch {
        self.run_epoch_at(epoch, self.config.loader.scan_group)
    }

    /// Runs one epoch at `scan_group` (see [`ParallelLoader::spawn_epoch_at`])
    /// to completion and reports wall-clock throughput.
    pub fn run_epoch_at(&self, epoch: u64, scan_group: usize) -> WallClockEpoch {
        let t0 = Instant::now();
        let stream = self.spawn_epoch_at(epoch, scan_group);
        let mut images = 0usize;
        let mut batches = 0usize;
        let pairs_images = matches!(self.config.loader.decode, DecodeMode::Real);
        for b in stream.batches.iter() {
            images += if pairs_images { b.images.len() } else { b.labels.len() };
            batches += 1;
        }
        let wall_seconds = t0.elapsed().as_secs_f64();
        let stats = Arc::clone(&stream.stats);
        stream.join();
        WallClockEpoch {
            images,
            batches,
            bytes: stats.bytes_read.load(Ordering::Relaxed),
            wall_seconds,
            decode_cpu_seconds: stats.decode_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            faults: stats.fault_report(),
        }
    }
}

/// One worker: claim epoch-order positions from the shared atomic
/// cursor, resolve each to a record index through the streaming
/// [`EpochOrder`] bijection, read planned prefixes through the clocked
/// store path — with retry/backoff and fidelity degradation on failure —
/// realize I/O time, decode, push downstream. Returns when the order is
/// exhausted or the consumer disappears.
#[allow(clippy::too_many_arguments)]
fn worker_loop<S: RecordSource + ?Sized>(
    order: &EpochOrder,
    cursor: &AtomicUsize,
    rec_tx: &crossbeam::channel::Sender<(Vec<ImageBuf>, usize)>,
    store: &ObjectStore,
    source: &S,
    stats: &ParallelStats,
    planner: &ReadPlanner,
    decode: DecodeMode,
    io: IoModel,
    segment_workers: usize,
    retry: &RetryPolicy,
    budget: &RetryBudget,
) {
    let mut scratch = RecordScratch::new();
    loop {
        let pos = cursor.fetch_add(1, Ordering::Relaxed);
        if pos >= order.num_records() {
            return; // epoch drained
        }
        let idx = order.get(pos);
        // The same clocked, cached, counted read path the virtual-time
        // loader uses — wrapped in retry/backoff, with fidelity
        // degradation stepping down the scan-group prefix when a range
        // stays unreadable. Real decode doubles as the integrity check:
        // silently flipped bits surface as decode failures and degrade
        // instead of propagating corrupt pixels.
        let mut decode_check = |read: &pcr_storage::ReadResult, _group: usize| match decode {
            DecodeMode::Skip | DecodeMode::Modeled { .. } => DecodeCheck::Accepted,
            DecodeMode::Real => {
                let t0 = Instant::now();
                let decoded = source.decode_real_segmented(
                    idx,
                    &read.data,
                    planner.scan_group,
                    &mut scratch,
                    segment_workers,
                );
                stats.decode_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                match decoded {
                    Some(images) => DecodeCheck::Images(images),
                    None => DecodeCheck::Failed,
                }
            }
        };
        let mut outcome = RetryOutcome::default();
        let delivery = deliver_with_degradation(
            store,
            source,
            idx,
            planner.scan_group,
            Timeline::Wall,
            retry,
            budget,
            &mut |s| std::thread::sleep(Duration::from_secs_f64(s)),
            &mut decode_check,
            &mut outcome,
        );
        stats.retries.fetch_add(u64::from(outcome.retries), Ordering::Relaxed);
        stats
            .backoff_micros
            .fetch_add((outcome.backoff_s * 1e6) as u64, Ordering::Relaxed);
        let (read, images, degraded) = match delivery {
            Delivery::Delivered { read, group: _, degraded, images } => (read, images, degraded),
            Delivery::Quarantined { reason } => {
                stats.quarantined_records.fetch_add(1, Ordering::Relaxed);
                if let Ok(mut q) = stats.quarantine.lock() {
                    q.note_quarantine(idx, source.labels(idx), reason);
                }
                continue;
            }
        };
        if degraded {
            stats.degraded_records.fetch_add(1, Ordering::Relaxed);
        }
        let read_len = read.data.len() as u64;
        stats.bytes_read.fetch_add(read_len, Ordering::Relaxed);
        if io == IoModel::EmulatedLatency {
            let service = read.finish - read.start;
            let t0 = Instant::now();
            std::thread::sleep(Duration::from_secs_f64(service.max(0.0)));
            stats.io_wait_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        if let DecodeMode::Modeled { seconds_per_byte } = decode {
            // Wall-clock realization of the modeled cost, so modeled
            // and real runs remain comparable end to end.
            let modeled = read_len as f64 * seconds_per_byte;
            std::thread::sleep(Duration::from_secs_f64(modeled));
        }
        if !images.is_empty() {
            stats.images_decoded.fetch_add(images.len() as u64, Ordering::Relaxed);
        }
        // Labels travel as the record index — the assembler reads the
        // slices out of the shared source, so the per-record
        // `labels().to_vec()` allocation is gone from the hot loop.
        stats.records_loaded.fetch_add(1, Ordering::Relaxed);
        if rec_tx.send((images, idx)).is_err() {
            return; // consumer gone
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr_core::{PcrDatasetBuilder, SampleMeta};
    use pcr_storage::DeviceProfile;

    fn make(n: usize, profile: DeviceProfile) -> (Arc<ObjectStore>, Arc<MetaDb>) {
        make_restart(n, profile, 0)
    }

    fn make_restart(
        n: usize,
        profile: DeviceProfile,
        restart_interval: u16,
    ) -> (Arc<ObjectStore>, Arc<MetaDb>) {
        let mut b = PcrDatasetBuilder::new(4, 10)
            .with_name_prefix("w")
            .with_restart_interval(restart_interval);
        for i in 0..n {
            let mut data = Vec::new();
            for y in 0..32u32 {
                for x in 0..32u32 {
                    data.push(((x * 3 + y * 7 + i as u32 * 5) % 256) as u8);
                    data.push(((x + y) % 256) as u8);
                    data.push((y % 256) as u8);
                }
            }
            let img = pcr_jpeg::ImageBuf::from_raw(32, 32, 3, data).unwrap();
            b.add_image(SampleMeta { label: (i % 3) as u32, id: format!("s{i}") }, &img, 85)
                .unwrap();
        }
        let ds = b.finish().unwrap();
        let store = ObjectStore::new(profile);
        crate::loader::populate_store(&store, &ds);
        (Arc::new(store), Arc::new(ds.db.clone()))
    }

    fn sorted_labels(loader: &ParallelLoader, epoch: u64) -> Vec<u32> {
        let stream = loader.spawn_epoch(epoch);
        let mut labels: Vec<u32> = stream.batches.iter().flat_map(|b| b.labels).collect();
        stream.join();
        labels.sort_unstable();
        labels
    }

    /// Under pcr-debug-sync every mutex acquisition in the storage layer
    /// feeds the lock-order graph and every channel pop checks its
    /// happens-before stamp; a contended real-decode epoch completing
    /// without tripping an assertion — twice, with identical delivered
    /// multisets — is the pass.
    #[cfg(feature = "pcr-debug-sync")]
    #[test]
    fn debug_sync_epoch_is_deterministic_and_clean() {
        let (store, db) = make(11, DeviceProfile::ram());
        let cfg = ParallelConfig { batch_size: 3, ..ParallelConfig::real(4, 10) };
        let loader = ParallelLoader::new(store, db, cfg);
        let a = sorted_labels(&loader, 1);
        assert_eq!(a.len(), 11);
        assert_eq!(a, sorted_labels(&loader, 1));
    }

    #[test]
    fn real_decode_delivers_every_image_once() {
        let (store, db) = make(13, DeviceProfile::ram());
        let cfg = ParallelConfig { batch_size: 4, ..ParallelConfig::real(3, 10) };
        let loader = ParallelLoader::new(store, db, cfg);
        let stream = loader.spawn_epoch(0);
        let mut total = 0usize;
        for b in stream.batches.iter() {
            assert_eq!(b.images.len(), b.labels.len());
            assert!(b.images.len() <= 4);
            total += b.images.len();
        }
        assert_eq!(total, 13);
        let stats = Arc::clone(&stream.stats);
        stream.join();
        assert_eq!(stats.images_decoded.load(Ordering::Relaxed), 13);
        assert_eq!(stats.records_loaded.load(Ordering::Relaxed), 4);
        assert!(stats.bytes_read.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn worker_count_does_not_change_delivered_multiset() {
        let (store, db) = make(17, DeviceProfile::ram());
        let labels_at = |threads: usize| {
            let cfg = ParallelConfig {
                batch_size: 5,
                ..ParallelConfig::real(threads, 2)
            };
            sorted_labels(&ParallelLoader::new(Arc::clone(&store), Arc::clone(&db), cfg), 3)
        };
        let two = labels_at(2);
        assert_eq!(two.len(), 17);
        assert_eq!(two, labels_at(8));
    }

    #[test]
    fn segment_workers_deliver_identical_pixels() {
        // A restart-marker dataset decoded with segment parallelism must
        // deliver the exact pixels of the sequential path — the loader
        // face of the jpeg crate's exactness guarantee.
        let (store, db) = make_restart(9, DeviceProfile::ram(), 1);
        let pixels_at = |segment_workers: usize| {
            let cfg = ParallelConfig {
                batch_size: 3,
                segment_workers,
                ..ParallelConfig::real(2, 10)
            };
            let loader = ParallelLoader::new(Arc::clone(&store), Arc::clone(&db), cfg);
            let stream = loader.spawn_epoch(5);
            let mut imgs: Vec<Vec<u8>> =
                stream.batches.iter().flat_map(|b| b.images).map(|i| i.data().to_vec()).collect();
            stream.join();
            imgs.sort_unstable();
            imgs
        };
        let seq = pixels_at(1);
        assert_eq!(seq.len(), 9);
        assert_eq!(seq, pixels_at(4));
    }

    #[test]
    fn skip_mode_delivers_labels_without_pixels() {
        let (store, db) = make(10, DeviceProfile::ram());
        let cfg = ParallelConfig {
            loader: LoaderConfig { threads: 2, decode: DecodeMode::Skip, ..LoaderConfig::at_group(1) },
            batch_size: 4,
            ..ParallelConfig::default()
        };
        let loader = ParallelLoader::new(store, db, cfg);
        let stream = loader.spawn_epoch(0);
        let mut labels = 0usize;
        for b in stream.batches.iter() {
            assert!(b.images.is_empty());
            assert!(b.labels.len() <= 4);
            labels += b.labels.len();
        }
        assert_eq!(labels, 10);
        let stats = Arc::clone(&stream.stats);
        stream.join();
        assert_eq!(stats.images_decoded.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn run_epoch_reports_wall_clock_throughput() {
        let (store, db) = make(8, DeviceProfile::ram());
        let loader = ParallelLoader::new(store, db, ParallelConfig::real(2, 5));
        let r = loader.run_epoch(0);
        assert_eq!(r.images, 8);
        assert!(r.bytes > 0);
        assert!(r.mean_image_bytes() > 0.0);
        // Wall-clock measurements need a trustworthy monotonic clock; a
        // coarse CI clock can measure zero, so these are opt-in
        // (PCR_STRICT_TIMING=1, matching the loader timing tests).
        if std::env::var_os("PCR_STRICT_TIMING").is_some() {
            assert!(r.wall_seconds > 0.0);
            assert!(r.images_per_sec() > 0.0);
        }
    }

    #[test]
    fn lower_scan_groups_read_fewer_bytes() {
        let (store, db) = make(12, DeviceProfile::ram());
        let at = |g: usize| {
            let loader =
                ParallelLoader::new(Arc::clone(&store), Arc::clone(&db), ParallelConfig::real(2, g));
            loader.run_epoch(0).bytes
        };
        let low = at(1);
        let full = at(10);
        assert!(low < full / 2, "group-1 bytes {low} vs full {full}");
    }

    #[test]
    fn emulated_io_latency_overlaps_across_workers() {
        // Skip decode so the epoch is pure emulated I/O: with per-request
        // latency dominating, W workers overlap W sleeps and the epoch
        // shrinks accordingly even on a single core.
        let (store, db) = make(24, DeviceProfile::hdd_7200rpm());
        let run = |threads: usize| {
            let cfg = ParallelConfig {
                loader: LoaderConfig {
                    threads,
                    decode: DecodeMode::Skip,
                    ..LoaderConfig::at_group(1)
                },
                io: IoModel::EmulatedLatency,
                ..ParallelConfig::default()
            };
            ParallelLoader::new(Arc::clone(&store), Arc::clone(&db), cfg).run_epoch(0)
        };
        let one = run(1);
        let six = run(6);
        // thread::sleep never returns early, so a single worker's epoch
        // is floored at 24 serialized emulated seeks (~300ms) and any
        // epoch at one seek — assertable even under coarse clocks.
        assert!(one.wall_seconds > 0.012, "epoch covers at least one seek");
        assert_eq!(one.images, six.images);
        // The >2x overlap ratio additionally assumes the 6-worker run is
        // not descheduled for long stretches; strict mode only.
        if std::env::var_os("PCR_STRICT_TIMING").is_some() {
            assert!(one.wall_seconds > six.wall_seconds * 2.0,
                "1 worker {:.3}s should be >2x slower than 6 workers {:.3}s",
                one.wall_seconds, six.wall_seconds);
        }
    }

    #[test]
    fn consumer_can_drop_early() {
        let (store, db) = make(40, DeviceProfile::ram());
        let cfg = ParallelConfig { batch_size: 2, prefetch_records: 2, ..ParallelConfig::real(4, 10) };
        let loader = ParallelLoader::new(store, db, cfg);
        let stream = loader.spawn_epoch(0);
        let first = stream.batches.iter().next().expect("one batch");
        assert_eq!(first.images.len(), 2);
        drop(stream.batches);
        for w in stream.workers {
            w.join().expect("worker exits cleanly");
        }
        if let Some(a) = stream.assembler {
            a.join().expect("assembler exits cleanly");
        }
    }

    #[test]
    fn epoch_order_matches_virtual_time_loader() {
        // The wall-clock path must visit records in the same per-epoch
        // order as PcrLoader so modeled and measured runs are comparable.
        let cfg = LoaderConfig { seed: 42, ..LoaderConfig::at_group(3) };
        let a = cfg.epoch_order(20, 7);
        let b = cfg.epoch_order(20, 7);
        let c = cfg.epoch_order(20, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
