//! Loaders for the baseline storage formats, sharing the PCR loader's
//! worker/timing model so throughput comparisons are apples-to-apples:
//!
//! * [`RecordFileLoader`] reads whole fixed-quality record files
//!   sequentially (TFRecord-style).
//! * [`FilePerImageLoader`] reads one object per image — the small random
//!   accesses of PyTorch's `ImageFolder` (paper Figure 1).

use crate::config::{DecodeMode, LoaderConfig};
use crate::loader::{EpochResult, LoadedRecord};
use pcr_storage::ObjectStore;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Metadata the baseline loaders need per object: name and image labels.
#[derive(Debug, Clone)]
pub struct ObjectMeta {
    /// Object name in the store.
    pub name: String,
    /// Labels of images in the object (one for File-per-Image).
    pub labels: Vec<u32>,
}

fn run_generic(
    store: &ObjectStore,
    objects: &[ObjectMeta],
    config: &LoaderConfig,
    epoch: u64,
    start: f64,
) -> EpochResult {
    let mut order: Vec<usize> = (0..objects.len()).collect();
    if config.shuffle {
        let mut rng = StdRng::seed_from_u64(config.seed ^ epoch.wrapping_mul(0x9E37));
        order.shuffle(&mut rng);
    }
    let threads = config.threads.max(1);
    let mut free_at = vec![start; threads];
    let mut out = Vec::with_capacity(order.len());
    for (seq, &idx) in order.iter().enumerate() {
        let worker = (0..threads)
            .min_by(|&a, &b| free_at[a].partial_cmp(&free_at[b]).expect("no NaN"))
            .expect("threads >= 1");
        let issued = free_at[worker];
        let meta = &objects[idx];
        let read = store.read_all_at(issued, &meta.name).expect("object present");
        let decode_time = match config.decode {
            DecodeMode::Skip => 0.0,
            DecodeMode::Modeled { seconds_per_byte } => read.data.len() as f64 * seconds_per_byte,
            DecodeMode::Real => {
                // Baseline formats store plain JPEGs or record files; real
                // decode here is only supported for File-per-Image objects.
                let t0 = std::time::Instant::now();
                let _ = pcr_jpeg::decode(&read.data);
                t0.elapsed().as_secs_f64()
            }
        };
        let ready = read.finish + decode_time;
        free_at[worker] = ready;
        out.push(LoadedRecord {
            seq,
            record: idx,
            worker,
            issued,
            read_finish: read.finish,
            ready,
            bytes: read.data.len() as u64,
            labels: meta.labels.clone(),
            images: Vec::new(),
        });
    }
    out.sort_by(|a, b| a.ready.partial_cmp(&b.ready).expect("no NaN"));
    let images = out.iter().map(|r| r.labels.len()).sum();
    let bytes = out.iter().map(|r| r.bytes).sum();
    let duration = out.last().map_or(0.0, |r| r.ready - start);
    EpochResult { records: out, images, bytes, duration }
}

/// Loader over fixed-quality record files.
#[derive(Debug)]
pub struct RecordFileLoader<'a> {
    store: &'a ObjectStore,
    objects: Vec<ObjectMeta>,
    config: LoaderConfig,
}

impl<'a> RecordFileLoader<'a> {
    /// Creates a loader; `objects` name record files already in the store.
    pub fn new(store: &'a ObjectStore, objects: Vec<ObjectMeta>, config: LoaderConfig) -> Self {
        Self { store, objects, config }
    }

    /// Streams one epoch.
    pub fn run_epoch(&self, epoch: u64, start: f64) -> EpochResult {
        run_generic(self.store, &self.objects, &self.config, epoch, start)
    }
}

/// Loader issuing one read per image object.
#[derive(Debug)]
pub struct FilePerImageLoader<'a> {
    store: &'a ObjectStore,
    objects: Vec<ObjectMeta>,
    config: LoaderConfig,
}

impl<'a> FilePerImageLoader<'a> {
    /// Creates a loader; `objects` name individual image files.
    pub fn new(store: &'a ObjectStore, objects: Vec<ObjectMeta>, config: LoaderConfig) -> Self {
        Self { store, objects, config }
    }

    /// Streams one epoch.
    pub fn run_epoch(&self, epoch: u64, start: f64) -> EpochResult {
        run_generic(self.store, &self.objects, &self.config, epoch, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr_core::{RecordFileBuilder, SampleMeta};
    use pcr_jpeg::ImageBuf;
    use pcr_storage::DeviceProfile;

    fn img(i: u32) -> ImageBuf {
        let mut data = Vec::new();
        for y in 0..32u32 {
            for x in 0..32u32 {
                data.push(((x * 5 + y * 3 + i * 7) % 256) as u8);
                data.push(((x + y) % 256) as u8);
                data.push((x % 256) as u8);
            }
        }
        ImageBuf::from_raw(32, 32, 3, data).unwrap()
    }

    #[test]
    fn record_layout_beats_file_per_image_on_hdd() {
        // Same 32 images stored both ways on an HDD; the record layout's
        // sequential access must win (paper Figure 1).
        let store = ObjectStore::new(DeviceProfile::hdd_7200rpm());
        let mut objects_fpi = Vec::new();
        let mut rb = RecordFileBuilder::new();
        for i in 0..32u32 {
            let jpeg = pcr_jpeg::encode(&img(i), &pcr_jpeg::EncodeConfig::baseline(85)).unwrap();
            store.put(&format!("img-{i}"), jpeg.clone());
            objects_fpi.push(ObjectMeta { name: format!("img-{i}"), labels: vec![i % 2] });
            rb.add_jpeg(SampleMeta { label: i % 2, id: format!("i{i}") }, jpeg);
        }
        store.put("rec-0", rb.build().unwrap());
        let cfg = LoaderConfig { decode: DecodeMode::Skip, ..LoaderConfig::at_group(10) };

        let fpi = FilePerImageLoader::new(&store, objects_fpi, cfg.clone()).run_epoch(0, 0.0);
        store.device().reset();
        let rec = RecordFileLoader::new(
            &store,
            vec![ObjectMeta { name: "rec-0".into(), labels: (0..32).map(|i| i % 2).collect() }],
            cfg,
        )
        .run_epoch(0, 0.0);

        assert_eq!(fpi.images, 32);
        assert_eq!(rec.images, 32);
        assert!(
            rec.duration < fpi.duration / 4.0,
            "record {rec:.4?}s vs file-per-image {fpi:.4?}s",
            rec = rec.duration,
            fpi = fpi.duration
        );
    }

    #[test]
    fn file_per_image_issues_one_read_per_image() {
        let store = ObjectStore::new(DeviceProfile::ssd_sata());
        let mut objects = Vec::new();
        for i in 0..5u32 {
            store.put(&format!("f{i}"), vec![0u8; 1000]);
            objects.push(ObjectMeta { name: format!("f{i}"), labels: vec![0] });
        }
        let cfg = LoaderConfig { decode: DecodeMode::Skip, ..Default::default() };
        let r = FilePerImageLoader::new(&store, objects, cfg).run_epoch(0, 0.0);
        assert_eq!(store.device_stats().reads, 5);
        assert_eq!(r.bytes, 5000);
    }
}
