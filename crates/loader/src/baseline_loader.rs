//! Loaders for the baseline storage formats — not parallel
//! implementations but *sources* plugged into the same single data
//! plane as the PCR loaders: baseline objects implement
//! [`crate::source::RecordSource`] with whole-object read plans, the
//! shared [`crate::loader::run_virtual_epoch`] engine supplies the
//! worker/timing model, and every byte flows through the store's one
//! clocked read path (`ObjectStore::read(Clock::Virtual, …)`), so the
//! page cache, readahead, and device statistics treat baseline and PCR
//! traffic identically. Throughput comparisons are apples-to-apples by
//! construction, not by discipline:
//!
//! * [`RecordFileLoader`] reads whole fixed-quality record files
//!   sequentially (TFRecord-style).
//! * [`FilePerImageLoader`] reads one object per image — the small random
//!   accesses of PyTorch's `ImageFolder` (paper Figure 1).
//!
//! Neither has a scan-group knob: [`crate::source::ReadPlanner`] plans
//! the full object regardless of the configured group, which is exactly
//! the cost the paper's Figure 1 charges them with.

use crate::config::LoaderConfig;
use crate::loader::{run_virtual_epoch, EpochResult};
use crate::source::ReadPlanner;
use pcr_storage::ObjectStore;

pub use crate::source::ObjectMeta;

fn run_generic(
    store: &ObjectStore,
    objects: &[ObjectMeta],
    config: &LoaderConfig,
    epoch: u64,
    start: f64,
) -> EpochResult {
    // Baseline objects implement RecordSource with whole-object plans, so
    // the virtual-time engine (workers, shuffle, decode accounting) is the
    // same one the PCR loader runs on — apples-to-apples by construction.
    run_virtual_epoch(store, objects, config, &ReadPlanner::from_config(config), epoch, start)
}

/// Loader over fixed-quality record files.
#[derive(Debug)]
pub struct RecordFileLoader<'a> {
    store: &'a ObjectStore,
    objects: Vec<ObjectMeta>,
    config: LoaderConfig,
}

impl<'a> RecordFileLoader<'a> {
    /// Creates a loader; `objects` name record files already in the store.
    pub fn new(store: &'a ObjectStore, objects: Vec<ObjectMeta>, config: LoaderConfig) -> Self {
        Self { store, objects, config }
    }

    /// Streams one epoch.
    pub fn run_epoch(&self, epoch: u64, start: f64) -> EpochResult {
        run_generic(self.store, &self.objects, &self.config, epoch, start)
    }
}

/// Loader issuing one read per image object.
#[derive(Debug)]
pub struct FilePerImageLoader<'a> {
    store: &'a ObjectStore,
    objects: Vec<ObjectMeta>,
    config: LoaderConfig,
}

impl<'a> FilePerImageLoader<'a> {
    /// Creates a loader; `objects` name individual image files.
    pub fn new(store: &'a ObjectStore, objects: Vec<ObjectMeta>, config: LoaderConfig) -> Self {
        Self { store, objects, config }
    }

    /// Streams one epoch.
    pub fn run_epoch(&self, epoch: u64, start: f64) -> EpochResult {
        run_generic(self.store, &self.objects, &self.config, epoch, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DecodeMode;
    use pcr_core::{RecordFileBuilder, SampleMeta};
    use pcr_jpeg::ImageBuf;
    use pcr_storage::DeviceProfile;

    fn img(i: u32) -> ImageBuf {
        let mut data = Vec::new();
        for y in 0..32u32 {
            for x in 0..32u32 {
                data.push(((x * 5 + y * 3 + i * 7) % 256) as u8);
                data.push(((x + y) % 256) as u8);
                data.push((x % 256) as u8);
            }
        }
        ImageBuf::from_raw(32, 32, 3, data).unwrap()
    }

    #[test]
    fn record_layout_beats_file_per_image_on_hdd() {
        // Same 32 images stored both ways on an HDD; the record layout's
        // sequential access must win (paper Figure 1).
        let store = ObjectStore::new(DeviceProfile::hdd_7200rpm());
        let mut objects_fpi = Vec::new();
        let mut rb = RecordFileBuilder::new();
        for i in 0..32u32 {
            let jpeg = pcr_jpeg::encode(&img(i), &pcr_jpeg::EncodeConfig::baseline(85)).unwrap();
            store.put(&format!("img-{i}"), jpeg.clone());
            objects_fpi.push(ObjectMeta { name: format!("img-{i}"), labels: vec![i % 2] });
            rb.add_jpeg(SampleMeta { label: i % 2, id: format!("i{i}") }, jpeg);
        }
        store.put("rec-0", rb.build().unwrap());
        let cfg = LoaderConfig { decode: DecodeMode::Skip, ..LoaderConfig::at_group(10) };

        let fpi = FilePerImageLoader::new(&store, objects_fpi, cfg.clone()).run_epoch(0, 0.0);
        store.device().reset();
        let rec = RecordFileLoader::new(
            &store,
            vec![ObjectMeta { name: "rec-0".into(), labels: (0..32).map(|i| i % 2).collect() }],
            cfg,
        )
        .run_epoch(0, 0.0);

        assert_eq!(fpi.images, 32);
        assert_eq!(rec.images, 32);
        assert!(
            rec.duration < fpi.duration / 4.0,
            "record {rec:.4?}s vs file-per-image {fpi:.4?}s",
            rec = rec.duration,
            fpi = fpi.duration
        );
    }

    #[test]
    fn file_per_image_issues_one_read_per_image() {
        let store = ObjectStore::new(DeviceProfile::ssd_sata());
        let mut objects = Vec::new();
        for i in 0..5u32 {
            store.put(&format!("f{i}"), vec![0u8; 1000]);
            objects.push(ObjectMeta { name: format!("f{i}"), labels: vec![0] });
        }
        let cfg = LoaderConfig { decode: DecodeMode::Skip, ..Default::default() };
        let r = FilePerImageLoader::new(&store, objects, cfg).run_epoch(0, 0.0);
        assert_eq!(store.device_stats().reads, 5);
        assert_eq!(r.bytes, 5000);
    }
}
