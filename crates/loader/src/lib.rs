//! # pcr-loader
//!
//! The data-loading pipeline of the paper's Appendix A.1: a closed system
//! of prefetch workers that read record byte-prefixes from (simulated)
//! storage, decode them, and emit a time-ordered stream of loaded records
//! for the compute unit. Includes equivalent loaders for the baseline
//! formats (fixed-quality record files and file-per-image) so end-to-end
//! comparisons share one worker/timing model.

#![warn(missing_docs)]

pub mod baseline_loader;
pub mod config;
pub mod loader;
pub mod pipeline;

pub use baseline_loader::{FilePerImageLoader, ObjectMeta, RecordFileLoader};
pub use config::{DecodeMode, LoaderConfig};
pub use pipeline::{spawn_epoch, Minibatch, PipelineConfig, PipelineStats, RunningPipeline};
pub use loader::{populate_store, EpochResult, LoadedRecord, PcrLoader};
