//! # pcr-loader
//!
//! The data-loading pipelines of the paper's Appendix A.1, in two
//! interchangeable flavors sharing one [`LoaderConfig`]:
//!
//! * [`loader::PcrLoader`] — the *virtual-time* loader: a closed system of
//!   prefetch workers whose reads and decodes are charged to a simulated
//!   clock, so experiments are deterministic and device-independent.
//! * [`parallel::ParallelLoader`] — the *wall-clock* loader: a real
//!   OS-thread worker pool over bounded crossbeam channels that reads
//!   record prefixes, decodes truncated progressive JPEGs, and yields
//!   [`Minibatch`]es with double-buffered prefetch.
//!
//! Equivalent loaders for the baseline formats (fixed-quality record
//! files and file-per-image) live in [`baseline_loader`] so end-to-end
//! comparisons share one worker/timing model.
//!
//! All of them plan reads through one abstraction — [`source::RecordSource`]
//! (what to read) + [`source::ReadPlanner`] (how much, in which order) —
//! and read through the store's single clocked path
//! ([`pcr_storage::ObjectStore::read`]), so wall-clock workers share the
//! page cache, readahead, and device statistics with the virtual-time
//! loader. On top sits the policy layer: [`fidelity::FidelityController`]
//! adjusts the scan-group prefix online from loss plateaus and MSSIM
//! scores — the paper's *dynamic* compression knob.
//!
//! ```
//! use std::sync::Arc;
//! use pcr_core::{PcrDatasetBuilder, SampleMeta};
//! use pcr_jpeg::ImageBuf;
//! use pcr_loader::{populate_store, ParallelConfig, ParallelLoader, PcrLoader, LoaderConfig};
//! use pcr_storage::{DeviceProfile, ObjectStore};
//!
//! // A 6-image dataset in 2 records.
//! let mut b = PcrDatasetBuilder::new(3, 10);
//! for i in 0..6u32 {
//!     let img = ImageBuf::from_raw(16, 16, 3, vec![(40 * i) as u8; 16 * 16 * 3]).unwrap();
//!     b.add_image(SampleMeta { label: i % 2, id: format!("img{i}") }, &img, 85).unwrap();
//! }
//! let ds = b.finish().unwrap();
//! let store = Arc::new(ObjectStore::new(DeviceProfile::ssd_sata()));
//! populate_store(&store, &ds);
//! let db = Arc::new(ds.db.clone());
//!
//! // Virtual time: modeled epoch at scan group 2.
//! let modeled = PcrLoader::new(&store, &db, LoaderConfig::at_group(2)).run_epoch(0, 0.0);
//! assert_eq!(modeled.images, 6);
//!
//! // Wall clock: the same records through real worker threads.
//! let measured = ParallelLoader::new(store, db, ParallelConfig::real(2, 2)).run_epoch(0);
//! assert_eq!(measured.images, 6);
//! assert_eq!(measured.bytes, modeled.bytes);
//! ```

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod baseline_loader;
pub mod config;
pub mod fidelity;
pub mod loader;
pub mod order;
pub mod parallel;
pub mod pipeline;
pub mod retry;
pub mod sharded;
pub mod source;
pub mod timing;

pub use baseline_loader::{FilePerImageLoader, ObjectMeta, RecordFileLoader};
pub use config::{DecodeMode, LoaderConfig};
pub use fidelity::{
    probe_group_scores, probe_source_scores, FidelityConfig, FidelityController, FidelityDecision,
};
pub use loader::{populate_store, run_virtual_epoch, EpochResult, LoadedRecord, PcrLoader};
pub use order::EpochOrder;
pub use parallel::{
    EpochStream, IoModel, Minibatch, ParallelConfig, ParallelLoader, ParallelStats, WallClockEpoch,
};
pub use pipeline::{spawn_epoch, PipelineConfig, PipelineStats, RunningPipeline};
pub use retry::{
    deliver_with_degradation, read_with_retry, DecodeCheck, Delivery, FaultReport,
    QuarantineEntry, RetryBudget, RetryOutcome, RetryPolicy, Timeline, QUARANTINE_DETAIL_CAP,
};
pub use sharded::{open_container_store, OpenedContainer, ShardStoreConfig, ShardedSource};
pub use source::{ReadPlan, ReadPlanner, RecordSource};
