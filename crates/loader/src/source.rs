//! The shared record-source abstraction behind every loader: *what* to
//! read ([`RecordSource`]), *how much* of it and in *which order*
//! ([`ReadPlanner`]).
//!
//! Before this module existed the prefix-length math and epoch-order
//! plumbing lived in three copies — the virtual-time
//! [`crate::loader::PcrLoader`], the wall-clock [`crate::parallel`]
//! workers, and [`crate::baseline_loader`]'s generic loop. All three now
//! implement against these two types, so a policy layer (the
//! [`crate::fidelity::FidelityController`]) can change the scan-group
//! prefix online and every loader obeys without further plumbing.

use crate::config::LoaderConfig;
use crate::order::EpochOrder;
use pcr_core::{MetaDb, PcrRecord, RecordScratch};
use pcr_jpeg::ImageBuf;

/// One planned read: which object, and which byte range of it.
///
/// A `len` past the object's end is clamped by the store, so "the whole
/// object" is expressed as `len == u64::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadPlan<'a> {
    /// Object name in the store.
    pub name: &'a str,
    /// Byte offset of the read.
    pub offset: u64,
    /// Byte length of the read (clamped to the object size by the store).
    pub len: u64,
}

/// A collection of records a loader can plan reads over: the PCR metadata
/// DB ([`MetaDb`]) or a list of baseline-format objects ([`[ObjectMeta]`]).
///
/// The trait answers three questions per record index: what bytes to read
/// for a given scan group ([`RecordSource::plan`]), what labels it carries
/// ([`RecordSource::labels`]), and how to turn read bytes into pixels
/// ([`RecordSource::decode_real`]).
pub trait RecordSource: Send + Sync {
    /// Number of records.
    fn num_records(&self) -> usize;

    /// The read covering record `idx` at scan group `scan_group`.
    fn plan(&self, idx: usize, scan_group: usize) -> ReadPlan<'_>;

    /// Labels of the record's images, in order.
    fn labels(&self, idx: usize) -> &[u32];

    /// Decodes the bytes of record `idx` (as planned by
    /// [`RecordSource::plan`]) into images at `scan_group`. Returns `None`
    /// when the bytes cannot be decoded; loaders skip such records.
    fn decode_real(
        &self,
        idx: usize,
        bytes: &[u8],
        scan_group: usize,
        scratch: &mut RecordScratch,
    ) -> Option<Vec<ImageBuf>>;

    /// Like [`RecordSource::decode_real`], but may split one image's
    /// restart-marker entropy segments across up to `segment_workers`
    /// threads. Sources whose format carries no restart markers (or that
    /// simply don't implement segment parallelism) fall back to the
    /// sequential decode; output is identical either way.
    fn decode_real_segmented(
        &self,
        idx: usize,
        bytes: &[u8],
        scan_group: usize,
        scratch: &mut RecordScratch,
        _segment_workers: usize,
    ) -> Option<Vec<ImageBuf>> {
        self.decode_real(idx, bytes, scan_group, scratch)
    }
}

/// Decodes a planned `.pcr` record prefix into images at `scan_group`,
/// clamped to the groups the bytes actually contain — the one decode
/// implementation every PCR-format source (`MetaDb`,
/// [`crate::sharded::ShardedSource`]) shares, so clamping semantics can
/// never diverge between the per-record and sharded layouts.
pub(crate) fn decode_pcr_prefix(
    bytes: &[u8],
    scan_group: usize,
    scratch: &mut RecordScratch,
) -> Option<Vec<ImageBuf>> {
    decode_pcr_prefix_segmented(bytes, scan_group, scratch, 1)
}

/// [`decode_pcr_prefix`] with restart-segment parallelism: each image's
/// entropy segments decode on up to `segment_workers` threads (see
/// [`pcr_core::PcrRecord::decode_image_segmented`]). Marker-less records
/// take the sequential path unchanged.
pub(crate) fn decode_pcr_prefix_segmented(
    bytes: &[u8],
    scan_group: usize,
    scratch: &mut RecordScratch,
    segment_workers: usize,
) -> Option<Vec<ImageBuf>> {
    let rec = PcrRecord::parse(bytes).ok()?;
    let g = rec.available_groups().min(scan_group).max(1);
    let mut images = Vec::with_capacity(rec.num_images());
    for i in 0..rec.num_images() {
        images.push(rec.decode_image_segmented(i, g, scratch, segment_workers).ok()?);
    }
    Some(images)
}

impl RecordSource for MetaDb {
    fn num_records(&self) -> usize {
        self.records.len()
    }

    fn plan(&self, idx: usize, scan_group: usize) -> ReadPlan<'_> {
        let meta = &self.records[idx];
        ReadPlan { name: &meta.name, offset: 0, len: meta.prefix_len(scan_group) }
    }

    fn labels(&self, idx: usize) -> &[u32] {
        &self.records[idx].labels
    }

    fn decode_real(
        &self,
        _idx: usize,
        bytes: &[u8],
        scan_group: usize,
        scratch: &mut RecordScratch,
    ) -> Option<Vec<ImageBuf>> {
        decode_pcr_prefix(bytes, scan_group, scratch)
    }

    fn decode_real_segmented(
        &self,
        _idx: usize,
        bytes: &[u8],
        scan_group: usize,
        scratch: &mut RecordScratch,
        segment_workers: usize,
    ) -> Option<Vec<ImageBuf>> {
        decode_pcr_prefix_segmented(bytes, scan_group, scratch, segment_workers)
    }
}

/// Metadata the baseline loaders need per object: name and image labels.
#[derive(Debug, Clone)]
pub struct ObjectMeta {
    /// Object name in the store.
    pub name: String,
    /// Labels of images in the object (one for File-per-Image).
    pub labels: Vec<u32>,
}

impl RecordSource for [ObjectMeta] {
    fn num_records(&self) -> usize {
        self.len()
    }

    fn plan(&self, idx: usize, _scan_group: usize) -> ReadPlan<'_> {
        // Baseline formats have no scan groups: always the whole object.
        ReadPlan { name: &self[idx].name, offset: 0, len: u64::MAX }
    }

    fn labels(&self, idx: usize) -> &[u32] {
        &self[idx].labels
    }

    fn decode_real(
        &self,
        _idx: usize,
        bytes: &[u8],
        _scan_group: usize,
        _scratch: &mut RecordScratch,
    ) -> Option<Vec<ImageBuf>> {
        // File-per-Image objects are single JPEGs; record-file blobs are
        // not decodable here and yield no images (byte/timing accounting
        // still applies).
        Some(pcr_jpeg::decode(bytes).map(|img| vec![img]).unwrap_or_default())
    }
}

/// The read-planning policy: which scan group to read and the per-epoch
/// record order. One `ReadPlanner` is the single owner of both pieces of
/// math; loaders never compute prefixes or shuffles themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadPlanner {
    /// Scan group to plan reads at.
    pub scan_group: usize,
    /// Shuffle record order each epoch.
    pub shuffle: bool,
    /// Shuffle seed.
    pub seed: u64,
}

impl ReadPlanner {
    /// Planner following a [`LoaderConfig`]'s scan group and shuffle.
    pub fn from_config(config: &LoaderConfig) -> Self {
        Self { scan_group: config.scan_group, shuffle: config.shuffle, seed: config.seed }
    }

    /// The same planner at a different scan group — how a fidelity
    /// controller overrides quality without touching the epoch order.
    pub fn at_group(mut self, scan_group: usize) -> Self {
        self.scan_group = scan_group;
        self
    }

    /// The record visitation order for `epoch` over `n` records as a
    /// streaming [`EpochOrder`]: a seeded Feistel bijection over `[0, n)`
    /// that allocates nothing proportional to `n`. A fixed `(seed, epoch)`
    /// pair names the same schedule for every loader and every scan group,
    /// so modeled, measured, and fidelity-controlled runs all visit
    /// identical data in identical order.
    pub fn epoch_iter(&self, n: usize, epoch: u64) -> EpochOrder {
        if self.shuffle {
            EpochOrder::shuffled(n, self.seed, epoch)
        } else {
            EpochOrder::identity(n)
        }
    }

    /// [`ReadPlanner::epoch_iter`] collected into a `Vec` — for consumers
    /// that genuinely need the whole order materialized (tests, small-n
    /// analysis). Loader hot paths stream [`ReadPlanner::epoch_iter`]
    /// instead; nothing on the epoch-start path allocates O(n).
    pub fn epoch_order(&self, n: usize, epoch: u64) -> Vec<usize> {
        self.epoch_iter(n, epoch).collect()
    }

    /// Plans the read for record `idx` of `source` at this planner's scan
    /// group.
    pub fn plan<'s, S: RecordSource + ?Sized>(&self, source: &'s S, idx: usize) -> ReadPlan<'s> {
        source.plan(idx, self.scan_group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr_core::RecordMeta;

    fn db() -> MetaDb {
        MetaDb {
            records: vec![RecordMeta {
                name: "r0".into(),
                num_images: 2,
                group_offsets: vec![10, 100, 250, 400],
                labels: vec![3, 4],
            }],
        }
    }

    #[test]
    fn metadb_plans_prefix_reads() {
        let db = db();
        assert_eq!(db.plan(0, 2), ReadPlan { name: "r0", offset: 0, len: 250 });
        // Clamped to the record's group count.
        assert_eq!(db.plan(0, 99).len, 400);
        assert_eq!(db.labels(0), &[3, 4]);
    }

    #[test]
    fn object_lists_plan_whole_object_reads() {
        let objects = [ObjectMeta { name: "img-0".into(), labels: vec![1] }];
        let plan = objects[..].plan(0, 3);
        assert_eq!(plan.name, "img-0");
        assert_eq!(plan.len, u64::MAX, "scan group is ignored: whole object");
    }

    #[test]
    fn epoch_order_is_scan_group_independent() {
        let planner = ReadPlanner { scan_group: 10, shuffle: true, seed: 7 };
        let a = planner.epoch_order(20, 3);
        let b = planner.clone().at_group(1).epoch_order(20, 3);
        assert_eq!(a, b, "fidelity decisions must never change the schedule");
        assert_ne!(a, planner.epoch_order(20, 4), "epochs differ");
    }

    #[test]
    fn planner_matches_loader_config_shuffle() {
        let cfg = LoaderConfig { seed: 42, ..LoaderConfig::at_group(3) };
        let planner = ReadPlanner::from_config(&cfg);
        assert_eq!(planner.epoch_order(16, 9), cfg.epoch_order(16, 9));
    }
}
