//! Failure injection for the PCR record format: corrupted and truncated
//! records must error cleanly, and valid prefixes must keep working even
//! when the suffix is garbage.

use pcr_core::{PcrRecord, PcrRecordBuilder, RecordFile, RecordFileBuilder, SampleMeta};
use pcr_jpeg::ImageBuf;

fn img(seed: u32) -> ImageBuf {
    let mut data = Vec::new();
    for y in 0..32u32 {
        for x in 0..32u32 {
            data.push(((x * 7 + y + seed * 13) % 256) as u8);
            data.push(((x + y * 2) % 256) as u8);
            data.push(((x * y + seed) % 256) as u8);
        }
    }
    ImageBuf::from_raw(32, 32, 3, data).unwrap()
}

fn record(n: usize) -> Vec<u8> {
    let mut b = PcrRecordBuilder::with_default_groups();
    for i in 0..n {
        b.add_image(SampleMeta { label: i as u32, id: format!("r{i}") }, &img(i as u32), 85)
            .unwrap();
    }
    b.build().unwrap()
}

#[test]
fn every_truncation_parses_or_errors() {
    let bytes = record(3);
    for len in 0..bytes.len() {
        // Parse may succeed (prefix semantics) or fail (inside the index);
        // in either case decode attempts must not panic.
        if let Ok(rec) = PcrRecord::parse(&bytes[..len]) {
            let g = rec.available_groups();
            if g >= 1 {
                for i in 0..rec.num_images() {
                    rec.decode_image(i, g).expect("available group must decode");
                }
            }
        }
    }
}

#[test]
fn bit_flips_in_index_are_rejected_or_contained() {
    let bytes = record(2);
    let full = PcrRecord::parse(&bytes).unwrap();
    let index_end = full.offset_for_group(0);
    for pos in 4..index_end.min(120) {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x55;
        // Must not panic; decode attempts on a successfully parsed record
        // may fail (Jpeg/Truncated errors) but also must not panic.
        if let Ok(rec) = PcrRecord::parse(&corrupt) {
            for g in 1..=rec.available_groups() {
                for i in 0..rec.num_images() {
                    let _ = rec.decode_image(i, g);
                }
            }
        }
    }
}

#[test]
fn flips_in_scan_data_do_not_break_other_images() {
    // Corrupt a byte inside image 1's scan-1 chunk; image 0 must still
    // decode at full quality (isolation between images' entropy data).
    let bytes = record(2);
    let rec = PcrRecord::parse(&bytes).unwrap();
    let good0 = rec.decode_image(0, 10).unwrap();
    // Find image 1's group-1 chunk region: after headers + image0's chunk.
    let headers_end = rec.offset_for_group(0);
    let group1_len = rec.offset_for_group(1) - headers_end;
    let mid_of_second = headers_end + group1_len * 3 / 4;
    let mut corrupt = bytes.clone();
    corrupt[mid_of_second] ^= 0xFF;
    let rec2 = PcrRecord::parse(&corrupt).unwrap();
    assert_eq!(rec2.decode_image(0, 10).unwrap(), good0);
}

#[test]
fn record_file_bitflips_always_detected() {
    let mut b = RecordFileBuilder::new();
    for i in 0..3 {
        b.add_image(SampleMeta { label: i, id: format!("x{i}") }, &img(i), 80).unwrap();
    }
    let bytes = b.build().unwrap();
    // The FNV checksum must catch any single-byte payload flip.
    for pos in (8..bytes.len() - 8).step_by(5) {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x01;
        assert!(
            RecordFile::parse(&corrupt).is_err(),
            "flip at {pos} went undetected"
        );
    }
}

#[test]
fn wrong_magic_and_version_rejected() {
    let bytes = record(1);
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    assert!(PcrRecord::parse(&wrong_magic).is_err());
    let mut wrong_version = bytes.clone();
    wrong_version[4] = 0xFF;
    assert!(PcrRecord::parse(&wrong_version).is_err());
}

#[test]
fn absurd_counts_do_not_allocate_unbounded() {
    // Claim 4 billion images in a 60-byte buffer: the reader must hit
    // Truncated long before allocating per-image state for them.
    let bytes = record(1);
    let mut evil = bytes[..60.min(bytes.len())].to_vec();
    evil[6] = 0xFF;
    evil[7] = 0xFF;
    evil[8] = 0xFF;
    evil[9] = 0xFF;
    assert!(PcrRecord::parse(&evil).is_err());
}
