//! Error types for the PCR storage format.

use std::fmt;

/// Errors from PCR encoding, decoding, or metadata handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The byte stream does not start with the PCR magic number.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The stream ended before a complete structure was read.
    Truncated {
        /// What was being parsed.
        context: &'static str,
    },
    /// Structural inconsistency in a record.
    Malformed(String),
    /// Requested scan group is not present in the bytes supplied.
    GroupUnavailable {
        /// The group that was requested.
        requested: usize,
        /// Groups actually available.
        available: usize,
    },
    /// Stored bytes fail checksum verification (bit rot, torn write, or
    /// tampering) — raised by the sharded container reader.
    Corrupt(String),
    /// An underlying JPEG codec failure.
    Jpeg(pcr_jpeg::Error),
    /// Encoder input invalid.
    BadInput(String),
}

impl Error {
    /// A [`Error::Corrupt`] that consistently names the damaged file and
    /// the byte offset where verification failed — the two facts an
    /// operator needs to locate the damage with a hexdump. Use this for
    /// every corruption site that knows its position; offset-free
    /// corruption (e.g. a poisoned lock) uses `Error::Corrupt` directly.
    pub fn corrupt_at(file: impl fmt::Display, offset: u64, what: impl fmt::Display) -> Self {
        Error::Corrupt(format!("{file} @ byte {offset}: {what}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadMagic => write!(f, "not a PCR stream (bad magic)"),
            Error::BadVersion(v) => write!(f, "unsupported PCR version {v}"),
            Error::Truncated { context } => write!(f, "truncated PCR stream while reading {context}"),
            Error::Malformed(s) => write!(f, "malformed PCR record: {s}"),
            Error::GroupUnavailable { requested, available } => {
                write!(f, "scan group {requested} unavailable (have {available})")
            }
            Error::Corrupt(s) => write!(f, "checksum mismatch: {s}"),
            Error::Jpeg(e) => write!(f, "jpeg error: {e}"),
            Error::BadInput(s) => write!(f, "bad input: {s}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Jpeg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pcr_jpeg::Error> for Error {
    fn from(e: pcr_jpeg::Error) -> Self {
        Error::Jpeg(e)
    }
}

/// Result alias for PCR operations.
pub type Result<T> = std::result::Result<T, Error>;
