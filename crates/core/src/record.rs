//! The `.pcr` record format: label metadata, per-image JPEG headers, then
//! scan groups — deltas of the same quality from every image stored
//! together so a single sequential read of a byte *prefix* yields the whole
//! record at a chosen quality (paper section 3).
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! magic "PCR1" | version u16 | num_images u32 | num_groups u16 |
//! restart_interval u16 (version 2 only) | index_len u64
//! index: per image {
//!     label u32 | id bytes (u32-prefixed) | header_len u32 |
//!     group_len u32 x num_groups
//! }
//! headers: concatenated JPEG header chunks (SOI..SOF, global tables)
//! group 1: image 0 scan-1 chunk | image 1 scan-1 chunk | ...
//! group 2: ...
//! ...
//! group N
//! ```
//!
//! Reading quality `g` = reading bytes `[0, offset_for_group(g))` — strictly
//! sequential I/O, no holes, no duplication.

use crate::error::{Error, Result};
use crate::wire::{put_bytes, put_u16, put_u32, put_u64, Reader};
use pcr_jpeg::scansplit::{scan_chunks, split_scans};
use pcr_jpeg::{EncodeConfig, ImageBuf};

/// Magic prefix of every `.pcr` stream.
pub const MAGIC: &[u8; 4] = b"PCR1";
/// Original format version: no restart metadata.
pub const VERSION: u16 = 1;
/// Format version carrying a `restart_interval u16` header field — the
/// requested JPEG restart interval the record's images were encoded
/// with, enabling segment-parallel decode of a single image. Records
/// built with interval 0 keep [`VERSION`] and stay byte-identical to
/// pre-restart writers.
pub const VERSION_RESTART: u16 = 2;
/// Scan groups produced by the default progressive script for color images.
pub const DEFAULT_NUM_GROUPS: usize = 10;

/// Per-sample metadata stored in the record index ("scan group 0").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleMeta {
    /// Class label.
    pub label: u32,
    /// Free-form sample identifier (e.g. original file name).
    pub id: String,
}

/// Borrowed per-sample metadata, viewing the record buffer directly (the
/// zero-copy counterpart of [`SampleMeta`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleMetaRef<'a> {
    /// Class label.
    pub label: u32,
    /// Sample identifier, borrowed from the record bytes.
    pub id: &'a str,
}

impl SampleMetaRef<'_> {
    /// Copies the borrowed metadata into an owned [`SampleMeta`].
    pub fn to_owned(self) -> SampleMeta {
        SampleMeta { label: self.label, id: self.id.to_string() }
    }
}

/// Reusable buffers for [`PcrRecord::decode_image_with`]: the assembled
/// JPEG byte stream plus the decoder's coefficient/sample planes. One
/// `RecordScratch` per worker thread removes every per-image intermediate
/// allocation from a data-loading hot loop.
#[derive(Debug, Default)]
pub struct RecordScratch {
    jpeg: Vec<u8>,
    decode: pcr_jpeg::DecodeScratch,
}

impl RecordScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Builds a `.pcr` record from progressive JPEG images.
#[derive(Debug)]
pub struct PcrRecordBuilder {
    num_groups: usize,
    restart_interval: u16,
    entries: Vec<(SampleMeta, Vec<u8>, pcr_jpeg::ScanLayout)>,
}

impl PcrRecordBuilder {
    /// Creates a builder with the given number of scan groups (each scan of
    /// the default script maps to one group).
    pub fn new(num_groups: usize) -> Self {
        Self { num_groups: num_groups.max(1), restart_interval: 0, entries: Vec::new() }
    }

    /// Builder with the standard 10 groups.
    pub fn with_default_groups() -> Self {
        Self::new(DEFAULT_NUM_GROUPS)
    }

    /// Requests restart markers every `interval` MCU units in images this
    /// builder encodes itself (see [`PcrRecordBuilder::add_image`]; the
    /// JPEG encoder rounds the interval up per scan to MCU-row multiples).
    /// A non-zero interval switches the record to [`VERSION_RESTART`];
    /// zero keeps the byte-identical [`VERSION`] layout.
    pub fn with_restart_interval(mut self, interval: u16) -> Self {
        self.restart_interval = interval;
        self
    }

    /// Adds an already-progressive JPEG byte stream.
    pub fn add_progressive_jpeg(&mut self, meta: SampleMeta, jpeg: Vec<u8>) -> Result<()> {
        let layout = split_scans(&jpeg)?;
        if layout.num_scans() > self.num_groups {
            return Err(Error::BadInput(format!(
                "image has {} scans but record has {} groups",
                layout.num_scans(),
                self.num_groups
            )));
        }
        self.entries.push((meta, jpeg, layout));
        Ok(())
    }

    /// Encodes raw pixels as progressive JPEG at `quality` (with this
    /// builder's restart interval, if any) and adds them.
    pub fn add_image(&mut self, meta: SampleMeta, img: &ImageBuf, quality: u8) -> Result<()> {
        let cfg = EncodeConfig::progressive(quality).with_restart_interval(self.restart_interval);
        let jpeg = pcr_jpeg::encode(img, &cfg)?;
        self.add_progressive_jpeg(meta, jpeg)
    }

    /// Adds a sequential (baseline) JPEG by losslessly transcoding it to
    /// progressive first — the `jpegtran` conversion step of the paper.
    pub fn add_baseline_jpeg(&mut self, meta: SampleMeta, jpeg: &[u8]) -> Result<()> {
        let prog = pcr_jpeg::to_progressive(jpeg)?;
        self.add_progressive_jpeg(meta, prog)
    }

    /// Number of images added so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no images were added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the record.
    pub fn build(self) -> Result<Vec<u8>> {
        if self.entries.is_empty() {
            return Err(Error::BadInput("record needs at least one image".into()));
        }
        let num_groups = self.num_groups;

        let too_big = |what: &str| Error::BadInput(format!("{what} exceeds format limit"));

        // Index section.
        let mut index = Vec::new();
        for (meta, jpeg, layout) in &self.entries {
            put_u32(&mut index, meta.label);
            put_bytes(&mut index, meta.id.as_bytes());
            put_u32(&mut index, u32::try_from(layout.header_len).map_err(|_| too_big("JPEG header"))?);
            let _ = jpeg;
            for g in 0..num_groups {
                let len = if g < layout.num_scans() { layout.scan_size(g) } else { 0 };
                put_u32(&mut index, u32::try_from(len).map_err(|_| too_big("scan group"))?);
            }
        }

        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        let version = if self.restart_interval == 0 { VERSION } else { VERSION_RESTART };
        put_u16(&mut out, version);
        put_u32(&mut out, u32::try_from(self.entries.len()).map_err(|_| too_big("image count"))?);
        put_u16(&mut out, u16::try_from(num_groups).map_err(|_| too_big("group count"))?);
        if version == VERSION_RESTART {
            put_u16(&mut out, self.restart_interval);
        }
        put_u64(&mut out, index.len() as u64);
        out.extend_from_slice(&index);

        // Headers.
        for (_, jpeg, layout) in &self.entries {
            // pcr-lint: allow(no-panic-in-hot-path) — header_len came from
            // split_scans over this same jpeg buffer, so the slice is in bounds.
            out.extend_from_slice(&jpeg[..layout.header_len]);
        }
        // Scan groups.
        for g in 0..num_groups {
            for (_, jpeg, layout) in &self.entries {
                if g < layout.num_scans() {
                    let chunks = scan_chunks(jpeg, layout);
                    // pcr-lint: allow(no-panic-in-hot-path) — g < num_scans()
                    // and scan_chunks returns one chunk per scan.
                    out.extend_from_slice(chunks[g]);
                }
            }
        }
        Ok(out)
    }
}

/// A parsed `.pcr` record over a (possibly prefix-truncated) byte buffer.
///
/// Parsing is zero-copy: sample ids are borrowed `&str` views of the
/// buffer, image headers and scan chunks are returned as `&[u8]` slices,
/// and all section offsets are precomputed so every accessor is O(1) —
/// the properties the wall-clock parallel loader's hot loop relies on.
#[derive(Debug, Clone)]
pub struct PcrRecord<'a> {
    data: &'a [u8],
    num_groups: usize,
    restart_interval: u16,
    labels: Vec<u32>,
    ids: Vec<&'a str>,
    /// `header_starts[i]..header_starts[i + 1]` is image `i`'s JPEG header;
    /// length `num_images + 1`.
    header_starts: Vec<usize>,
    /// Absolute chunk offsets: `chunk_starts[(g - 1) * (num_images + 1) + i]`
    /// is where image `i`'s group-`g` chunk begins; the final entry of each
    /// group row is the group's end offset, so adjacent deltas within a row
    /// are the chunk lengths.
    chunk_starts: Vec<usize>,
}

impl<'a> PcrRecord<'a> {
    /// Parses a record from bytes. The buffer may be a prefix of the full
    /// record (the PCR partial-read path) as long as the index section is
    /// complete; [`PcrRecord::available_groups`] reports how much quality
    /// the prefix actually covers.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        let mut r = Reader::new(data);
        if r.bytes(4, "magic")? != MAGIC {
            return Err(Error::BadMagic);
        }
        let version = r.u16("version")?;
        if version != VERSION && version != VERSION_RESTART {
            return Err(Error::BadVersion(version));
        }
        let num_images = r.u32("num_images")? as usize;
        let num_groups = r.u16("num_groups")? as usize;
        let restart_interval =
            if version == VERSION_RESTART { r.u16("restart_interval")? } else { 0 };
        let index_len = r.u64("index_len")? as usize;
        let index_start = r.pos();
        if num_groups == 0 {
            return Err(Error::Malformed("zero scan groups".into()));
        }
        // Every index entry occupies at least label + id-length prefix +
        // header_len + one u32 per group, so an absurd declared image count
        // in a short buffer must fail here rather than drive the capacity
        // of the allocations below.
        let min_entry_bytes = 4 + 4 + 4 + 4 * num_groups;
        if num_images.saturating_mul(min_entry_bytes) > r.remaining() {
            return Err(Error::Truncated { context: "record index" });
        }
        // The four allocations below are bounded by the min_entry_bytes check
        // above: num_images is at most remaining/16, and
        // num_groups*(num_images+1) is at most remaining/4 + u16::MAX — both
        // linear in the actual buffer size.
        let mut labels = Vec::with_capacity(num_images); // pcr-lint: allow(bounded-alloc)
        let mut ids = Vec::with_capacity(num_images); // pcr-lint: allow(bounded-alloc)
        let mut header_starts = Vec::with_capacity(num_images + 1); // pcr-lint: allow(bounded-alloc)
        // Filled with raw chunk lengths during the scan, then prefix-summed
        // into absolute offsets so every later slice is O(1).
        let mut chunk_starts = vec![0usize; num_groups * (num_images + 1)]; // pcr-lint: allow(bounded-alloc)
        let mut header_end = 0usize; // running sum; rebased below
        header_starts.push(0);
        for i in 0..num_images {
            labels.push(r.u32("label")?);
            // Borrow the id bytes directly out of the record buffer.
            let id = std::str::from_utf8(r.prefixed_bytes("sample id")?)
                .map_err(|_| Error::Malformed("sample id not UTF-8".into()))?;
            ids.push(id);
            header_end += r.u32("header_len")? as usize;
            header_starts.push(header_end);
            for g in 0..num_groups {
                // pcr-lint: allow(no-panic-in-hot-path) — g < num_groups and
                // i < num_images, so the flat index is within the row grid.
                chunk_starts[g * (num_images + 1) + i + 1] = r.u32("group_len")? as usize;
            }
        }
        if r.pos() != index_start + index_len {
            return Err(Error::Malformed(format!(
                "index length {} != declared {}",
                r.pos() - index_start,
                index_len
            )));
        }
        let headers_start = r.pos();
        for h in &mut header_starts {
            *h += headers_start;
        }
        // Groups are laid out back to back after the headers; turn each
        // row of lengths into absolute offsets.
        // `header_starts` always holds num_images + 1 >= 1 entries (0 is
        // pushed before the loop), so `last()` cannot be empty.
        let mut base = header_starts.last().copied().unwrap_or(headers_start);
        for row in chunk_starts.chunks_exact_mut(num_images + 1) {
            row[0] = base; // pcr-lint: allow(no-panic-in-hot-path) — row.len() == num_images + 1 >= 1
            for k in 1..row.len() {
                row[k] += row[k - 1]; // pcr-lint: allow(no-panic-in-hot-path) — k in 1..row.len()
            }
            base = row[num_images]; // pcr-lint: allow(no-panic-in-hot-path) — row.len() == num_images + 1
        }
        Ok(Self { data, num_groups, restart_interval, labels, ids, header_starts, chunk_starts })
    }

    /// Number of images in the record.
    pub fn num_images(&self) -> usize {
        self.labels.len()
    }

    /// Number of scan groups the record was built with.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Requested restart interval the record's images were encoded with
    /// (0 for version-1 records and marker-less version-2 streams).
    pub fn restart_interval(&self) -> u16 {
        self.restart_interval
    }

    /// Number of restart-entropy segments in image `i`'s group-`g` chunk:
    /// `RSTn` markers + 1 for chunks holding a scan, 0 for empty chunks
    /// (grayscale images pad unused color groups with zero-length chunks).
    /// Marker-less streams therefore report 1 per non-empty chunk.
    pub fn segment_count(&self, i: usize, g: usize) -> Result<usize> {
        let chunk = self.chunk(i, g)?;
        let sos = chunk
            .windows(2)
            .position(|w| w == [0xFF, 0xDA])
            .map(|p| p + 2);
        let Some(sos) = sos else { return Ok(0) };
        let hdr_len = match chunk.get(sos..sos + 2) {
            // pcr-lint: allow(no-panic-in-hot-path) — l is the 2-byte slice just matched
            Some(l) => usize::from(u16::from_be_bytes([l[0], l[1]])),
            None => return Err(Error::Truncated { context: "scan header" }),
        };
        let entropy = chunk
            .get(sos + hdr_len..)
            .ok_or(Error::Truncated { context: "scan entropy" })?;
        Ok(pcr_jpeg::bitio::split_restart_segments(entropy).len())
    }

    /// Metadata of image `i`, borrowed from the record buffer.
    ///
    /// # Panics
    /// Like slice indexing, panics when `i >= num_images()`.
    pub fn meta(&self, i: usize) -> SampleMetaRef<'a> {
        // pcr-lint: allow(no-panic-in-hot-path) — documented index contract;
        // labels and ids both have num_images entries by parse invariant.
        SampleMetaRef { label: self.labels[i], id: self.ids[i] }
    }

    /// All labels in image order.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Index of image `i`'s group-`g` row start in `chunk_starts`.
    #[inline]
    fn chunk_index(&self, i: usize, g: usize) -> usize {
        (g - 1) * (self.num_images() + 1) + i
    }

    /// Total bytes of scan group `g` (1-based) across all images.
    pub fn group_size(&self, g: usize) -> usize {
        assert!(g >= 1 && g <= self.num_groups, "group out of range");
        // pcr-lint: allow(no-panic-in-hot-path) — the assert above keeps both
        // flat indices inside the num_groups * (num_images + 1) grid.
        self.chunk_starts[self.chunk_index(self.num_images(), g)]
            // pcr-lint: allow(no-panic-in-hot-path) — same bound as above
            - self.chunk_starts[self.chunk_index(0, g)]
    }

    /// Bytes that must be read (from offset 0) to decode every image at scan
    /// group `g`. `g == 0` covers just metadata + headers.
    pub fn offset_for_group(&self, g: usize) -> usize {
        assert!(g <= self.num_groups, "group out of range");
        if g == 0 {
            // header_starts holds num_images + 1 >= 1 entries by parse invariant.
            self.header_starts.last().copied().unwrap_or(0)
        } else {
            // pcr-lint: allow(no-panic-in-hot-path) — the assert above keeps
            // the flat index inside the chunk_starts grid.
            self.chunk_starts[self.chunk_index(self.num_images(), g)]
        }
    }

    /// Full record length in bytes.
    pub fn total_len(&self) -> usize {
        self.offset_for_group(self.num_groups)
    }

    /// Highest scan group fully contained in the supplied buffer.
    pub fn available_groups(&self) -> usize {
        let mut g = 0usize;
        while g < self.num_groups && self.data.len() >= self.offset_for_group(g + 1) {
            g += 1;
        }
        g
    }

    fn image_header(&self, i: usize) -> Result<&'a [u8]> {
        let (off, end) = match (self.header_starts.get(i), self.header_starts.get(i + 1)) {
            (Some(&off), Some(&end)) => (off, end),
            _ => return Err(Error::BadInput(format!("image index {i} out of range"))),
        };
        self.data.get(off..end).ok_or(Error::Truncated { context: "image header" })
    }

    fn chunk(&self, i: usize, g: usize) -> Result<&'a [u8]> {
        let idx = self.chunk_index(i, g);
        let (off, end) = match (self.chunk_starts.get(idx), self.chunk_starts.get(idx + 1)) {
            (Some(&off), Some(&end)) => (off, end),
            _ => return Err(Error::BadInput(format!("image {i} group {g} out of range"))),
        };
        self.data.get(off..end).ok_or(Error::Truncated { context: "scan group chunk" })
    }

    /// Reassembles a decodable JPEG for image `i` using scans up to group
    /// `g` (clamped to the image's own scan count), appending it to `out`
    /// (which is cleared first). The allocation-free path: `out` retains
    /// its capacity across calls.
    pub fn jpeg_at_group_into(&self, i: usize, g: usize, out: &mut Vec<u8>) -> Result<()> {
        if g == 0 || g > self.num_groups {
            return Err(Error::BadInput(format!("scan group {g} out of range")));
        }
        if g > self.available_groups() {
            return Err(Error::GroupUnavailable { requested: g, available: self.available_groups() });
        }
        out.clear();
        out.extend_from_slice(self.image_header(i)?);
        for gg in 1..=g {
            out.extend_from_slice(self.chunk(i, gg)?);
        }
        out.extend_from_slice(&[0xFF, 0xD9]); // EOI
        Ok(())
    }

    /// Reassembles a decodable JPEG for image `i` using scans up to group
    /// `g` (clamped to the image's own scan count).
    pub fn jpeg_at_group(&self, i: usize, g: usize) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.jpeg_at_group_into(i, g, &mut out)?;
        Ok(out)
    }

    /// Decodes image `i` at scan group `g`.
    pub fn decode_image(&self, i: usize, g: usize) -> Result<ImageBuf> {
        let jpeg = self.jpeg_at_group(i, g)?;
        Ok(pcr_jpeg::decode(&jpeg)?)
    }

    /// Decodes image `i` at scan group `g`, reusing `scratch` for the
    /// assembled JPEG stream and the decoder's working planes. Equivalent
    /// to [`PcrRecord::decode_image`] but the only allocation that escapes
    /// is the returned image's pixel buffer.
    pub fn decode_image_with(&self, i: usize, g: usize, scratch: &mut RecordScratch) -> Result<ImageBuf> {
        let mut jpeg = std::mem::take(&mut scratch.jpeg);
        let assembled = self.jpeg_at_group_into(i, g, &mut jpeg);
        let decoded = assembled.and_then(|()| {
            pcr_jpeg::decode_with(&jpeg, &mut scratch.decode).map_err(Error::from)
        });
        scratch.jpeg = jpeg;
        decoded
    }

    /// Like [`PcrRecord::decode_image_with`], but decodes the image's
    /// restart-marker entropy segments on up to `workers` threads (see
    /// [`pcr_jpeg::decode_with_workers`]). For `workers <= 1`, or a
    /// stream without restart markers, this is the sequential path —
    /// output is byte-identical either way.
    pub fn decode_image_segmented(
        &self,
        i: usize,
        g: usize,
        scratch: &mut RecordScratch,
        workers: usize,
    ) -> Result<ImageBuf> {
        let mut jpeg = std::mem::take(&mut scratch.jpeg);
        let assembled = self.jpeg_at_group_into(i, g, &mut jpeg);
        let decoded = assembled.and_then(|()| {
            pcr_jpeg::decode_with_workers(&jpeg, &mut scratch.decode, workers)
                .map_err(Error::from)
        });
        scratch.jpeg = jpeg;
        decoded
    }

    /// Per-group cumulative read sizes `[offset_for_group(0..=N)]` — the
    /// series plotted in the paper's Figure 16.
    pub fn cumulative_group_offsets(&self) -> Vec<usize> {
        (0..=self.num_groups).map(|g| self.offset_for_group(g)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image(seed: u32, w: u32, h: u32) -> ImageBuf {
        let mut data = Vec::with_capacity((w * h * 3) as usize);
        let mut s = seed.wrapping_mul(2654435761).max(1);
        for y in 0..h {
            for x in 0..w {
                s = s.wrapping_mul(48271) % 0x7FFF_FFFF;
                let base = ((x * 5 + y * 3 + seed * 17) % 256) as u8;
                data.push(base);
                data.push(base.wrapping_add((s & 0x1F) as u8));
                data.push((255 - base).wrapping_sub((s & 0x0F) as u8));
            }
        }
        ImageBuf::from_raw(w, h, 3, data).unwrap()
    }

    fn build_record(n: usize) -> Vec<u8> {
        let mut b = PcrRecordBuilder::with_default_groups();
        for i in 0..n {
            let img = test_image(i as u32 + 1, 48, 32);
            b.add_image(
                SampleMeta { label: (i % 3) as u32, id: format!("img{i:04}") },
                &img,
                85,
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn build_and_parse_roundtrip() {
        let bytes = build_record(4);
        let rec = PcrRecord::parse(&bytes).unwrap();
        assert_eq!(rec.num_images(), 4);
        assert_eq!(rec.num_groups(), 10);
        assert_eq!(rec.available_groups(), 10);
        assert_eq!(rec.total_len(), bytes.len());
        assert_eq!(rec.meta(2).id, "img0002");
        assert_eq!(rec.labels(), vec![0, 1, 2, 0]);
    }

    #[test]
    fn full_group_decode_matches_direct_decode() {
        let mut b = PcrRecordBuilder::with_default_groups();
        let img = test_image(7, 40, 40);
        let jpeg = pcr_jpeg::encode(&img, &EncodeConfig::progressive(85)).unwrap();
        b.add_progressive_jpeg(SampleMeta { label: 0, id: "x".into() }, jpeg.clone()).unwrap();
        let bytes = b.build().unwrap();
        let rec = PcrRecord::parse(&bytes).unwrap();
        let from_record = rec.decode_image(0, 10).unwrap();
        let direct = pcr_jpeg::decode(&jpeg).unwrap();
        assert_eq!(from_record, direct);
    }

    #[test]
    fn prefix_read_yields_lower_groups() {
        let bytes = build_record(3);
        let rec = PcrRecord::parse(&bytes).unwrap();
        for g in [1usize, 2, 5] {
            let prefix = &bytes[..rec.offset_for_group(g)];
            let view = PcrRecord::parse(prefix).unwrap();
            assert_eq!(view.available_groups(), g, "group {g}");
            for i in 0..3 {
                let img = view.decode_image(i, g).unwrap();
                assert_eq!(img.width(), 48);
            }
            // One more group must be refused.
            assert!(matches!(
                view.jpeg_at_group(0, g + 1),
                Err(Error::GroupUnavailable { .. })
            ));
        }
    }

    #[test]
    fn prefix_quality_increases_with_groups() {
        let img = test_image(3, 64, 64);
        let mut b = PcrRecordBuilder::with_default_groups();
        b.add_image(SampleMeta { label: 0, id: "a".into() }, &img, 90).unwrap();
        let bytes = b.build().unwrap();
        let rec = PcrRecord::parse(&bytes).unwrap();
        let reference = rec.decode_image(0, 10).unwrap();
        let mut last = 0f64;
        for g in [1usize, 2, 5, 10] {
            let out = rec.decode_image(0, g).unwrap();
            let p = pcr_jpeg::psnr(&reference, &out);
            assert!(p >= last - 0.75, "group {g}: psnr {p} < {last}");
            last = p;
        }
        assert!(last.is_infinite());
    }

    #[test]
    fn scratch_decode_matches_plain_decode_across_records() {
        let bytes_a = build_record(3);
        let bytes_b = build_record(2);
        let mut scratch = RecordScratch::new();
        for bytes in [&bytes_a, &bytes_b] {
            let rec = PcrRecord::parse(bytes).unwrap();
            for g in [1usize, 4, 10] {
                for i in 0..rec.num_images() {
                    let plain = rec.decode_image(i, g).unwrap();
                    let pooled = rec.decode_image_with(i, g, &mut scratch).unwrap();
                    assert_eq!(plain, pooled, "image {i} group {g}");
                }
            }
        }
    }

    #[test]
    fn meta_borrows_record_bytes() {
        let bytes = build_record(2);
        let rec = PcrRecord::parse(&bytes).unwrap();
        let m = rec.meta(1);
        assert_eq!(m.label, 1);
        assert_eq!(m.id, "img0001");
        // The id is a view into the buffer, not a copy.
        let range = bytes.as_ptr_range();
        assert!(range.contains(&m.id.as_ptr()));
        assert_eq!(m.to_owned(), SampleMeta { label: 1, id: "img0001".into() });
    }

    #[test]
    fn offsets_are_monotone_and_match_total() {
        let bytes = build_record(5);
        let rec = PcrRecord::parse(&bytes).unwrap();
        let offs = rec.cumulative_group_offsets();
        assert_eq!(offs.len(), 11);
        for w in offs.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(*offs.last().unwrap(), bytes.len());
    }

    #[test]
    fn group_sizes_sum_to_payload() {
        let bytes = build_record(2);
        let rec = PcrRecord::parse(&bytes).unwrap();
        let groups_total: usize = (1..=10).map(|g| rec.group_size(g)).sum();
        assert_eq!(rec.offset_for_group(0) + groups_total, bytes.len());
    }

    #[test]
    fn rejects_garbage_and_truncated_index() {
        assert!(matches!(PcrRecord::parse(b"nope"), Err(Error::BadMagic)));
        let bytes = build_record(2);
        // Cut inside the index.
        assert!(PcrRecord::parse(&bytes[..20]).is_err());
    }

    #[test]
    fn restart_record_is_v2_and_reports_segments() {
        let img = test_image(5, 48, 40);
        let mut b = PcrRecordBuilder::with_default_groups().with_restart_interval(2);
        b.add_image(SampleMeta { label: 0, id: "r".into() }, &img, 88).unwrap();
        let bytes = b.build().unwrap();
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), VERSION_RESTART);
        let rec = PcrRecord::parse(&bytes).unwrap();
        assert_eq!(rec.restart_interval(), 2);
        // At least one scan group splits into multiple entropy segments.
        let max_segs = (1..=10).map(|g| rec.segment_count(0, g).unwrap()).max().unwrap();
        assert!(max_segs > 1, "expected multi-segment groups, got max {max_segs}");
        // Restart framing never changes pixels: decode equals the
        // marker-less encode of the same image at every group level.
        let mut plain = PcrRecordBuilder::with_default_groups();
        plain.add_image(SampleMeta { label: 0, id: "r".into() }, &img, 88).unwrap();
        let plain_bytes = plain.build().unwrap();
        let plain_rec = PcrRecord::parse(&plain_bytes).unwrap();
        for g in [1usize, 4, 10] {
            assert_eq!(
                rec.decode_image(0, g).unwrap(),
                plain_rec.decode_image(0, g).unwrap(),
                "group {g}"
            );
        }
    }

    #[test]
    fn interval_zero_keeps_v1_layout() {
        let img = test_image(6, 32, 32);
        let mut a = PcrRecordBuilder::with_default_groups();
        a.add_image(SampleMeta { label: 1, id: "z".into() }, &img, 85).unwrap();
        let mut b = PcrRecordBuilder::with_default_groups().with_restart_interval(0);
        b.add_image(SampleMeta { label: 1, id: "z".into() }, &img, 85).unwrap();
        let a = a.build().unwrap();
        let b = b.build().unwrap();
        assert_eq!(a, b, "interval 0 must stay byte-identical to the v1 writer");
        assert_eq!(u16::from_le_bytes([a[4], a[5]]), VERSION);
        let rec = PcrRecord::parse(&a).unwrap();
        assert_eq!(rec.restart_interval(), 0);
        // Marker-less chunks report exactly one entropy segment each.
        for g in 1..=10 {
            assert_eq!(rec.segment_count(0, g).unwrap(), 1, "group {g}");
        }
    }

    #[test]
    fn unknown_version_rejected() {
        let mut bytes = build_record(1);
        bytes[4] = 9;
        assert!(matches!(PcrRecord::parse(&bytes), Err(Error::BadVersion(9))));
    }

    #[test]
    fn empty_builder_rejected() {
        assert!(PcrRecordBuilder::with_default_groups().build().is_err());
    }

    #[test]
    fn baseline_jpeg_transcoded_on_add() {
        let img = test_image(9, 32, 32);
        let base = pcr_jpeg::encode(&img, &EncodeConfig::baseline(80)).unwrap();
        let mut b = PcrRecordBuilder::with_default_groups();
        b.add_baseline_jpeg(SampleMeta { label: 1, id: "b".into() }, &base).unwrap();
        let bytes = b.build().unwrap();
        let rec = PcrRecord::parse(&bytes).unwrap();
        // Full-quality decode equals the baseline decode (lossless transcode).
        assert_eq!(rec.decode_image(0, 10).unwrap(), pcr_jpeg::decode(&base).unwrap());
    }

    #[test]
    fn grayscale_images_have_six_scans_padded_groups() {
        let img = test_image(4, 32, 32).to_luma();
        let mut b = PcrRecordBuilder::with_default_groups();
        b.add_image(SampleMeta { label: 0, id: "g".into() }, &img, 85).unwrap();
        let bytes = b.build().unwrap();
        let rec = PcrRecord::parse(&bytes).unwrap();
        // Groups 7..=10 are empty for the grayscale image.
        for g in 7..=10 {
            assert_eq!(rec.group_size(g), 0);
        }
        let full = rec.decode_image(0, 10).unwrap();
        let at6 = rec.decode_image(0, 6).unwrap();
        assert_eq!(full, at6);
    }
}
