//! The `.pcr` record format: label metadata, per-image JPEG headers, then
//! scan groups — deltas of the same quality from every image stored
//! together so a single sequential read of a byte *prefix* yields the whole
//! record at a chosen quality (paper section 3).
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! magic "PCR1" | version u16 | num_images u32 | num_groups u16 | index_len u64
//! index: per image {
//!     label u32 | id bytes (u32-prefixed) | header_len u32 |
//!     group_len u32 x num_groups
//! }
//! headers: concatenated JPEG header chunks (SOI..SOF, global tables)
//! group 1: image 0 scan-1 chunk | image 1 scan-1 chunk | ...
//! group 2: ...
//! ...
//! group N
//! ```
//!
//! Reading quality `g` = reading bytes `[0, offset_for_group(g))` — strictly
//! sequential I/O, no holes, no duplication.

use crate::error::{Error, Result};
use crate::wire::{put_bytes, put_u16, put_u32, put_u64, Reader};
use pcr_jpeg::scansplit::{scan_chunks, split_scans};
use pcr_jpeg::{EncodeConfig, ImageBuf};

/// Magic prefix of every `.pcr` stream.
pub const MAGIC: &[u8; 4] = b"PCR1";
/// Current format version.
pub const VERSION: u16 = 1;
/// Scan groups produced by the default progressive script for color images.
pub const DEFAULT_NUM_GROUPS: usize = 10;

/// Per-sample metadata stored in the record index ("scan group 0").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleMeta {
    /// Class label.
    pub label: u32,
    /// Free-form sample identifier (e.g. original file name).
    pub id: String,
}

/// Index entry: metadata plus the byte sizes of every per-image chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IndexEntry {
    meta: SampleMeta,
    header_len: u32,
    group_lens: Vec<u32>,
}

/// Builds a `.pcr` record from progressive JPEG images.
#[derive(Debug)]
pub struct PcrRecordBuilder {
    num_groups: usize,
    entries: Vec<(SampleMeta, Vec<u8>, pcr_jpeg::ScanLayout)>,
}

impl PcrRecordBuilder {
    /// Creates a builder with the given number of scan groups (each scan of
    /// the default script maps to one group).
    pub fn new(num_groups: usize) -> Self {
        Self { num_groups: num_groups.max(1), entries: Vec::new() }
    }

    /// Builder with the standard 10 groups.
    pub fn with_default_groups() -> Self {
        Self::new(DEFAULT_NUM_GROUPS)
    }

    /// Adds an already-progressive JPEG byte stream.
    pub fn add_progressive_jpeg(&mut self, meta: SampleMeta, jpeg: Vec<u8>) -> Result<()> {
        let layout = split_scans(&jpeg)?;
        if layout.num_scans() > self.num_groups {
            return Err(Error::BadInput(format!(
                "image has {} scans but record has {} groups",
                layout.num_scans(),
                self.num_groups
            )));
        }
        self.entries.push((meta, jpeg, layout));
        Ok(())
    }

    /// Encodes raw pixels as progressive JPEG at `quality` and adds them.
    pub fn add_image(&mut self, meta: SampleMeta, img: &ImageBuf, quality: u8) -> Result<()> {
        let jpeg = pcr_jpeg::encode(img, &EncodeConfig::progressive(quality))?;
        self.add_progressive_jpeg(meta, jpeg)
    }

    /// Adds a sequential (baseline) JPEG by losslessly transcoding it to
    /// progressive first — the `jpegtran` conversion step of the paper.
    pub fn add_baseline_jpeg(&mut self, meta: SampleMeta, jpeg: &[u8]) -> Result<()> {
        let prog = pcr_jpeg::to_progressive(jpeg)?;
        self.add_progressive_jpeg(meta, prog)
    }

    /// Number of images added so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no images were added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the record.
    pub fn build(self) -> Result<Vec<u8>> {
        if self.entries.is_empty() {
            return Err(Error::BadInput("record needs at least one image".into()));
        }
        let num_groups = self.num_groups;

        // Index section.
        let mut index = Vec::new();
        for (meta, jpeg, layout) in &self.entries {
            put_u32(&mut index, meta.label);
            put_bytes(&mut index, meta.id.as_bytes());
            put_u32(&mut index, layout.header_len as u32);
            let _ = jpeg;
            for g in 0..num_groups {
                let len = if g < layout.num_scans() { layout.scan_size(g) as u32 } else { 0 };
                put_u32(&mut index, len);
            }
        }

        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u16(&mut out, VERSION);
        put_u32(&mut out, self.entries.len() as u32);
        put_u16(&mut out, num_groups as u16);
        put_u64(&mut out, index.len() as u64);
        out.extend_from_slice(&index);

        // Headers.
        for (_, jpeg, layout) in &self.entries {
            out.extend_from_slice(&jpeg[..layout.header_len]);
        }
        // Scan groups.
        for g in 0..num_groups {
            for (_, jpeg, layout) in &self.entries {
                if g < layout.num_scans() {
                    let chunks = scan_chunks(jpeg, layout);
                    out.extend_from_slice(chunks[g]);
                }
            }
        }
        Ok(out)
    }
}

/// A parsed `.pcr` record over a (possibly prefix-truncated) byte buffer.
#[derive(Debug, Clone)]
pub struct PcrRecord<'a> {
    data: &'a [u8],
    num_groups: usize,
    entries: Vec<IndexEntry>,
    /// Byte offset where the headers section begins.
    headers_start: usize,
}

impl<'a> PcrRecord<'a> {
    /// Parses a record from bytes. The buffer may be a prefix of the full
    /// record (the PCR partial-read path) as long as the index section is
    /// complete; [`PcrRecord::available_groups`] reports how much quality
    /// the prefix actually covers.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        let mut r = Reader::new(data);
        if r.bytes(4, "magic")? != MAGIC {
            return Err(Error::BadMagic);
        }
        let version = r.u16("version")?;
        if version != VERSION {
            return Err(Error::BadVersion(version));
        }
        let num_images = r.u32("num_images")? as usize;
        let num_groups = r.u16("num_groups")? as usize;
        let index_len = r.u64("index_len")? as usize;
        let index_start = r.pos();
        if num_groups == 0 {
            return Err(Error::Malformed("zero scan groups".into()));
        }
        // Every index entry occupies at least label + id-length prefix +
        // header_len + one u32 per group, so an absurd declared image count
        // in a short buffer must fail here rather than drive the capacity
        // of the allocation below.
        let min_entry_bytes = 4 + 4 + 4 + 4 * num_groups;
        if num_images.saturating_mul(min_entry_bytes) > r.remaining() {
            return Err(Error::Truncated { context: "record index" });
        }
        let mut entries = Vec::with_capacity(num_images);
        for _ in 0..num_images {
            let label = r.u32("label")?;
            let id = String::from_utf8(r.prefixed_bytes("sample id")?.to_vec())
                .map_err(|_| Error::Malformed("sample id not UTF-8".into()))?;
            let header_len = r.u32("header_len")?;
            let mut group_lens = Vec::with_capacity(num_groups);
            for _ in 0..num_groups {
                group_lens.push(r.u32("group_len")?);
            }
            entries.push(IndexEntry { meta: SampleMeta { label, id }, header_len, group_lens });
        }
        if r.pos() != index_start + index_len {
            return Err(Error::Malformed(format!(
                "index length {} != declared {}",
                r.pos() - index_start,
                index_len
            )));
        }
        Ok(Self { data, num_groups, entries, headers_start: r.pos() })
    }

    /// Number of images in the record.
    pub fn num_images(&self) -> usize {
        self.entries.len()
    }

    /// Number of scan groups the record was built with.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Metadata of image `i`.
    pub fn meta(&self, i: usize) -> &SampleMeta {
        &self.entries[i].meta
    }

    /// All labels in image order.
    pub fn labels(&self) -> Vec<u32> {
        self.entries.iter().map(|e| e.meta.label).collect()
    }

    fn headers_len(&self) -> usize {
        self.entries.iter().map(|e| e.header_len as usize).sum()
    }

    /// Total bytes of scan group `g` (1-based) across all images.
    pub fn group_size(&self, g: usize) -> usize {
        assert!(g >= 1 && g <= self.num_groups, "group out of range");
        self.entries.iter().map(|e| e.group_lens[g - 1] as usize).sum()
    }

    /// Bytes that must be read (from offset 0) to decode every image at scan
    /// group `g`. `g == 0` covers just metadata + headers.
    pub fn offset_for_group(&self, g: usize) -> usize {
        assert!(g <= self.num_groups, "group out of range");
        let mut end = self.headers_start + self.headers_len();
        for gg in 1..=g {
            end += self.group_size(gg);
        }
        end
    }

    /// Full record length in bytes.
    pub fn total_len(&self) -> usize {
        self.offset_for_group(self.num_groups)
    }

    /// Highest scan group fully contained in the supplied buffer.
    pub fn available_groups(&self) -> usize {
        let mut g = 0usize;
        while g < self.num_groups && self.data.len() >= self.offset_for_group(g + 1) {
            g += 1;
        }
        g
    }

    fn image_header(&self, i: usize) -> Result<&'a [u8]> {
        let mut off = self.headers_start;
        for e in &self.entries[..i] {
            off += e.header_len as usize;
        }
        let len = self.entries[i].header_len as usize;
        if off + len > self.data.len() {
            return Err(Error::Truncated { context: "image header" });
        }
        Ok(&self.data[off..off + len])
    }

    fn chunk(&self, i: usize, g: usize) -> Result<&'a [u8]> {
        // Start of group g's region.
        let mut off = self.headers_start + self.headers_len();
        for gg in 1..g {
            off += self.group_size(gg);
        }
        for e in &self.entries[..i] {
            off += e.group_lens[g - 1] as usize;
        }
        let len = self.entries[i].group_lens[g - 1] as usize;
        if off + len > self.data.len() {
            return Err(Error::Truncated { context: "scan group chunk" });
        }
        Ok(&self.data[off..off + len])
    }

    /// Reassembles a decodable JPEG for image `i` using scans up to group
    /// `g` (clamped to the image's own scan count).
    pub fn jpeg_at_group(&self, i: usize, g: usize) -> Result<Vec<u8>> {
        if g == 0 || g > self.num_groups {
            return Err(Error::BadInput(format!("scan group {g} out of range")));
        }
        if g > self.available_groups() {
            return Err(Error::GroupUnavailable { requested: g, available: self.available_groups() });
        }
        let e = &self.entries[i];
        let mut out = Vec::new();
        out.extend_from_slice(self.image_header(i)?);
        for gg in 1..=g {
            if e.group_lens[gg - 1] > 0 {
                out.extend_from_slice(self.chunk(i, gg)?);
            }
        }
        out.extend_from_slice(&[0xFF, 0xD9]); // EOI
        Ok(out)
    }

    /// Decodes image `i` at scan group `g`.
    pub fn decode_image(&self, i: usize, g: usize) -> Result<ImageBuf> {
        let jpeg = self.jpeg_at_group(i, g)?;
        Ok(pcr_jpeg::decode(&jpeg)?)
    }

    /// Per-group cumulative read sizes `[offset_for_group(0..=N)]` — the
    /// series plotted in the paper's Figure 16.
    pub fn cumulative_group_offsets(&self) -> Vec<usize> {
        (0..=self.num_groups).map(|g| self.offset_for_group(g)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image(seed: u32, w: u32, h: u32) -> ImageBuf {
        let mut data = Vec::with_capacity((w * h * 3) as usize);
        let mut s = seed.wrapping_mul(2654435761).max(1);
        for y in 0..h {
            for x in 0..w {
                s = s.wrapping_mul(48271) % 0x7FFF_FFFF;
                let base = ((x * 5 + y * 3 + seed * 17) % 256) as u8;
                data.push(base);
                data.push(base.wrapping_add((s & 0x1F) as u8));
                data.push((255 - base).wrapping_sub((s & 0x0F) as u8));
            }
        }
        ImageBuf::from_raw(w, h, 3, data).unwrap()
    }

    fn build_record(n: usize) -> Vec<u8> {
        let mut b = PcrRecordBuilder::with_default_groups();
        for i in 0..n {
            let img = test_image(i as u32 + 1, 48, 32);
            b.add_image(
                SampleMeta { label: (i % 3) as u32, id: format!("img{i:04}") },
                &img,
                85,
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn build_and_parse_roundtrip() {
        let bytes = build_record(4);
        let rec = PcrRecord::parse(&bytes).unwrap();
        assert_eq!(rec.num_images(), 4);
        assert_eq!(rec.num_groups(), 10);
        assert_eq!(rec.available_groups(), 10);
        assert_eq!(rec.total_len(), bytes.len());
        assert_eq!(rec.meta(2).id, "img0002");
        assert_eq!(rec.labels(), vec![0, 1, 2, 0]);
    }

    #[test]
    fn full_group_decode_matches_direct_decode() {
        let mut b = PcrRecordBuilder::with_default_groups();
        let img = test_image(7, 40, 40);
        let jpeg = pcr_jpeg::encode(&img, &EncodeConfig::progressive(85)).unwrap();
        b.add_progressive_jpeg(SampleMeta { label: 0, id: "x".into() }, jpeg.clone()).unwrap();
        let bytes = b.build().unwrap();
        let rec = PcrRecord::parse(&bytes).unwrap();
        let from_record = rec.decode_image(0, 10).unwrap();
        let direct = pcr_jpeg::decode(&jpeg).unwrap();
        assert_eq!(from_record, direct);
    }

    #[test]
    fn prefix_read_yields_lower_groups() {
        let bytes = build_record(3);
        let rec = PcrRecord::parse(&bytes).unwrap();
        for g in [1usize, 2, 5] {
            let prefix = &bytes[..rec.offset_for_group(g)];
            let view = PcrRecord::parse(prefix).unwrap();
            assert_eq!(view.available_groups(), g, "group {g}");
            for i in 0..3 {
                let img = view.decode_image(i, g).unwrap();
                assert_eq!(img.width(), 48);
            }
            // One more group must be refused.
            assert!(matches!(
                view.jpeg_at_group(0, g + 1),
                Err(Error::GroupUnavailable { .. })
            ));
        }
    }

    #[test]
    fn prefix_quality_increases_with_groups() {
        let img = test_image(3, 64, 64);
        let mut b = PcrRecordBuilder::with_default_groups();
        b.add_image(SampleMeta { label: 0, id: "a".into() }, &img, 90).unwrap();
        let bytes = b.build().unwrap();
        let rec = PcrRecord::parse(&bytes).unwrap();
        let reference = rec.decode_image(0, 10).unwrap();
        let mut last = 0f64;
        for g in [1usize, 2, 5, 10] {
            let out = rec.decode_image(0, g).unwrap();
            let p = pcr_jpeg::psnr(&reference, &out);
            assert!(p >= last - 0.75, "group {g}: psnr {p} < {last}");
            last = p;
        }
        assert!(last.is_infinite());
    }

    #[test]
    fn offsets_are_monotone_and_match_total() {
        let bytes = build_record(5);
        let rec = PcrRecord::parse(&bytes).unwrap();
        let offs = rec.cumulative_group_offsets();
        assert_eq!(offs.len(), 11);
        for w in offs.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(*offs.last().unwrap(), bytes.len());
    }

    #[test]
    fn group_sizes_sum_to_payload() {
        let bytes = build_record(2);
        let rec = PcrRecord::parse(&bytes).unwrap();
        let groups_total: usize = (1..=10).map(|g| rec.group_size(g)).sum();
        assert_eq!(rec.offset_for_group(0) + groups_total, bytes.len());
    }

    #[test]
    fn rejects_garbage_and_truncated_index() {
        assert!(matches!(PcrRecord::parse(b"nope"), Err(Error::BadMagic)));
        let bytes = build_record(2);
        // Cut inside the index.
        assert!(PcrRecord::parse(&bytes[..20]).is_err());
    }

    #[test]
    fn empty_builder_rejected() {
        assert!(PcrRecordBuilder::with_default_groups().build().is_err());
    }

    #[test]
    fn baseline_jpeg_transcoded_on_add() {
        let img = test_image(9, 32, 32);
        let base = pcr_jpeg::encode(&img, &EncodeConfig::baseline(80)).unwrap();
        let mut b = PcrRecordBuilder::with_default_groups();
        b.add_baseline_jpeg(SampleMeta { label: 1, id: "b".into() }, &base).unwrap();
        let bytes = b.build().unwrap();
        let rec = PcrRecord::parse(&bytes).unwrap();
        // Full-quality decode equals the baseline decode (lossless transcode).
        assert_eq!(rec.decode_image(0, 10).unwrap(), pcr_jpeg::decode(&base).unwrap());
    }

    #[test]
    fn grayscale_images_have_six_scans_padded_groups() {
        let img = test_image(4, 32, 32).to_luma();
        let mut b = PcrRecordBuilder::with_default_groups();
        b.add_image(SampleMeta { label: 0, id: "g".into() }, &img, 85).unwrap();
        let bytes = b.build().unwrap();
        let rec = PcrRecord::parse(&bytes).unwrap();
        // Groups 7..=10 are empty for the grayscale image.
        for g in 7..=10 {
            assert_eq!(rec.group_size(g), 0);
        }
        let full = rec.decode_image(0, 10).unwrap();
        let at6 = rec.decode_image(0, 6).unwrap();
        assert_eq!(full, at6);
    }
}
