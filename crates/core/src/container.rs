//! The sharded on-disk PCR container — the canonical persistent layout.
//!
//! The paper's encoder "transforms a set of JPEG files into a directory";
//! at production scale that directory must be a real container tools can
//! pack, inspect, and stream, not one loose file per record. A container
//! is a directory of *shards* plus a manifest:
//!
//! ```text
//! <dir>/
//!   manifest.pcrm          # shard list: file names, counts, footer CRCs
//!   shard-00000.pcrshard   # concatenated .pcr records + footer index
//!   shard-00001.pcrshard
//!   ...
//! ```
//!
//! Each shard is self-describing: a fixed header, the record bytes
//! back-to-back, and a footer index (per-record byte offsets, scan-group
//! offsets, labels, CRC-32 checksums) found through a fixed-size trailer
//! at the end of the file — so a reader seeks to the tail, parses the
//! index, and can then serve any `[record_offset, record_offset +
//! prefix_len(g))` range with one ranged read. That range arithmetic is
//! exactly what `pcr-loader`'s `ShardedSource` feeds the
//! `ObjectStore`/`ByteView` read path.
//!
//! Two footer encodings exist. Version 1/2 shards store the index as
//! variable-length rows, parsed eagerly at open. Version 3 — the default
//! written by this crate — stores it as fixed-stride *columns*
//! ([`crate::colfooter`]) plus zone-map stats in the manifest, so
//! [`PcrContainer::open`] reads only each shard's header and a 52-byte
//! tail and resolves record entries lazily by arithmetic
//! ([`ShardIndex::entry`]) — O(1) open regardless of catalog size.
//!
//! The normative byte-level specification (with a worked hexdump) lives
//! in `docs/FORMAT.md`; this module is its implementation. The older
//! one-file-per-record layout in [`crate::fsdir`] remains for small
//! debugging datasets but is superseded by this container.
//!
//! ```
//! use pcr_core::container::{write_container, PcrContainer};
//! use pcr_core::{PcrDatasetBuilder, SampleMeta};
//! use pcr_jpeg::ImageBuf;
//!
//! let mut b = PcrDatasetBuilder::new(2, 10);
//! for i in 0..6u32 {
//!     let img = ImageBuf::from_raw(16, 16, 3, vec![(i * 37) as u8; 16 * 16 * 3]).unwrap();
//!     b.add_image(SampleMeta { label: i % 2, id: format!("i{i}") }, &img, 85).unwrap();
//! }
//! let ds = b.finish().unwrap();
//!
//! let dir = std::env::temp_dir().join(format!("pcr-doc-container-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let manifest = write_container(&ds, &dir, 2).unwrap();
//! assert_eq!(manifest.shards.len(), 2, "3 records, 2 per shard");
//!
//! let container = PcrContainer::open(&dir).unwrap();
//! assert_eq!(container.num_records(), 3);
//! assert_eq!(container.num_images(), 6);
//! container.verify().unwrap();
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::colfooter::{self, ColumnarIndex, COLUMNAR_VERSION};
use crate::dataset::{PcrDataset, RecordMeta};
use crate::error::{Error, Result};
use crate::wire::{crc32, put_bytes, put_u16, put_u32, put_u64, Reader};
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Magic prefix of a shard file.
pub const SHARD_MAGIC: &[u8; 4] = b"PCRS";
/// Magic suffix (last four bytes) of a shard file's trailer.
pub const FOOTER_MAGIC: &[u8; 4] = b"PCRF";
/// Magic prefix of the container manifest.
pub const MANIFEST_MAGIC: &[u8; 4] = b"PCRM";
/// File name of the manifest inside a container directory.
pub const MANIFEST_FILE: &str = "manifest.pcrm";
/// Container format version written by default: version 3, the columnar
/// footer of [`crate::colfooter`] plus zone-map stats in the manifest.
pub const CONTAINER_VERSION: u16 = COLUMNAR_VERSION;
/// The original row-footer container version, still written on request
/// ([`write_container_versioned`]) and always readable.
pub const CONTAINER_VERSION_ROWS: u16 = 1;
/// Size in bytes of a shard file's fixed header.
pub const SHARD_HEADER_LEN: u64 = 12;
/// Size in bytes of a shard file's fixed trailer.
pub const SHARD_TRAILER_LEN: u64 = 12;

/// One record's entry in a shard footer: everything a loader needs to plan
/// a ranged prefix read, plus an integrity checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecord {
    /// Record name (carried over from the metadata DB, e.g.
    /// `train-00017.pcr`).
    pub name: String,
    /// Absolute byte offset of the record's first byte in the shard file.
    pub offset: u64,
    /// Number of images in the record.
    pub num_images: u32,
    /// `group_offsets[g]` = bytes of this record needed to decode at scan
    /// group `g`, *relative to `offset`* (length `num_groups + 1`; the
    /// last entry is the full record length).
    pub group_offsets: Vec<u64>,
    /// Labels of the record's images, in order.
    pub labels: Vec<u32>,
    /// CRC-32 of the record's bytes.
    pub crc32: u32,
}

impl ShardRecord {
    /// Full record length in bytes.
    pub fn len(&self) -> u64 {
        // The parser always stores num_groups + 1 >= 1 offsets; a
        // hand-built empty Vec degrades to length 0 rather than panicking.
        self.group_offsets.last().copied().unwrap_or(0)
    }

    /// True when the record holds no bytes (never produced by the writer).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of this record needed to decode every image at scan group
    /// `g`, clamped to the record's group count — the same prefix math as
    /// [`crate::dataset::RecordMeta::prefix_len`].
    pub fn prefix_len(&self, g: usize) -> u64 {
        let last = self.group_offsets.len().saturating_sub(1);
        self.group_offsets.get(g.min(last)).copied().unwrap_or(0)
    }
}

/// How a [`ShardIndex`] holds its footer entries.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Backing {
    /// Row footer (versions 1 and 2): every entry parsed eagerly.
    Rows(Vec<ShardRecord>),
    /// Columnar footer (version 3): entries resolved lazily by column
    /// arithmetic — possibly straight off the open file.
    Columnar(ColumnarIndex),
}

/// The parsed index of one shard: header fields plus a row or columnar
/// view of the footer entries.
///
/// Entries are accessed through [`ShardIndex::entry`] /
/// [`ShardIndex::entries`]; for a columnar shard opened lazily these
/// perform a handful of small ranged reads per record, so resolving one
/// record is O(1) in the shard's record count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardIndex {
    /// Shard file name (relative to the container directory).
    pub file_name: String,
    /// Number of scan groups per record.
    pub num_groups: u16,
    /// Shard header format version (1/2 = row footer, 3 = columnar).
    pub version: u16,
    backing: Backing,
    /// Total shard file length in bytes (header + records + footer +
    /// trailer).
    pub file_len: u64,
    /// CRC-32 of the footer bytes, as stored in the trailer.
    pub footer_crc: u32,
}

/// Parses a version-1/2 row footer: length-prefixed name, offset, image
/// count, group offsets, labels, and CRC per record, back to back.
fn parse_row_footer(
    footer: &[u8],
    num_groups: u16,
    record_count: usize,
    footer_start: u64,
) -> Result<Vec<ShardRecord>> {
    // The header's record_count is not covered by any CRC: bound it by
    // what the footer could possibly hold (each entry is at least a
    // name length, offset, image count, G+1 offsets, and a CRC) before
    // trusting it with an allocation.
    let min_entry = 4 + 8 + 4 + (num_groups as usize + 1) * 8 + 4;
    if record_count > footer.len() / min_entry {
        return Err(Error::Malformed(format!(
            "shard claims {record_count} records but its footer is {} bytes",
            footer.len()
        )));
    }
    let mut f = Reader::new(footer);
    // pcr-lint: allow(bounded-alloc) — record_count <= footer.len()/min_entry, checked above
    let mut records = Vec::with_capacity(record_count);
    for _ in 0..record_count {
        let name = String::from_utf8(f.prefixed_bytes("record name")?.to_vec())
            .map_err(|_| Error::Malformed("record name not UTF-8".into()))?;
        let offset = f.u64("record offset")?;
        let num_images = f.u32("record image count")?;
        // pcr-lint: allow(bounded-alloc) — num_groups is a u16, so at most 65536 entries
        let mut group_offsets = Vec::with_capacity(num_groups as usize + 1);
        for _ in 0..=num_groups {
            group_offsets.push(f.u64("record group offset")?);
        }
        // Prefix lengths must be cumulative: a decreasing sequence
        // would plan ranged reads past the record's end (or wrap the
        // per-group deltas every consumer computes).
        // pcr-lint: allow(no-panic-in-hot-path) — windows(2) yields exactly 2 elements
        if group_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(Error::Malformed(
                "record group offsets are not non-decreasing".into(),
            ));
        }
        if num_images as usize > f.remaining() / 4 {
            return Err(Error::Truncated { context: "record labels" });
        }
        // pcr-lint: allow(bounded-alloc) — num_images bounded by remaining/4 just above
        let mut labels = Vec::with_capacity(num_images as usize);
        for _ in 0..num_images {
            labels.push(f.u32("record label")?);
        }
        let crc = f.u32("record crc")?;
        let rec = ShardRecord { name, offset, num_images, group_offsets, labels, crc32: crc };
        // Untrusted footer fields: checked add so a crafted offset
        // cannot wrap past the bounds check and panic at slice time.
        if rec.offset.checked_add(rec.len()).is_none_or(|end| end > footer_start) {
            return Err(Error::Malformed(format!(
                "record {} extends past the footer ({} + {} > {footer_start})",
                rec.name,
                rec.offset,
                rec.len()
            )));
        }
        records.push(rec);
    }
    if f.remaining() != 0 {
        return Err(Error::Malformed("trailing bytes in shard footer".into()));
    }
    Ok(records)
}

impl ShardIndex {
    /// Parses a complete shard file (header, trailer, footer; record
    /// bytes are *not* checksummed here — see
    /// [`PcrContainer::verify`]). This is the strict path: the footer
    /// CRC is always verified and every entry is validated, for row and
    /// columnar footers alike. [`PcrContainer::open`] uses the lazy path
    /// in [`crate::colfooter`] for columnar shards instead.
    pub fn parse(file_name: &str, bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        if r.bytes(4, "shard magic")? != SHARD_MAGIC {
            return Err(Error::BadMagic);
        }
        let version = r.u16("shard version")?;
        if !matches!(version, 1 | 2 | COLUMNAR_VERSION) {
            return Err(Error::BadVersion(version));
        }
        let num_groups = r.u16("shard group count")?;
        let record_count = r.u32("shard record count")?;
        let file_len = bytes.len() as u64;
        if file_len < SHARD_HEADER_LEN + SHARD_TRAILER_LEN {
            return Err(Error::Truncated { context: "shard trailer" });
        }
        // Trailer: footer_len (u32), footer_crc (u32), "PCRF".
        // pcr-lint: allow(no-panic-in-hot-path) — file_len >= HEADER + TRAILER checked above
        let trailer = &bytes[bytes.len() - SHARD_TRAILER_LEN as usize..];
        let mut t = Reader::new(trailer);
        let footer_len = t.u32("footer length")? as u64;
        let footer_crc = t.u32("footer crc")?;
        if t.bytes(4, "footer magic")? != FOOTER_MAGIC {
            return Err(Error::BadMagic);
        }
        let footer_start = file_len
            .checked_sub(SHARD_TRAILER_LEN + footer_len)
            .ok_or(Error::Truncated { context: "shard footer" })?;
        if footer_start < SHARD_HEADER_LEN {
            return Err(Error::Malformed("shard footer overlaps header".into()));
        }
        // pcr-lint: allow(no-panic-in-hot-path) — HEADER <= footer_start (checked
        // above) and checked_sub proved footer_start + TRAILER <= file_len.
        let footer = &bytes[footer_start as usize..(file_len - SHARD_TRAILER_LEN) as usize];
        if crc32(footer) != footer_crc {
            return Err(Error::corrupt_at(file_name, footer_start, "shard footer CRC mismatch"));
        }
        let backing = if version == COLUMNAR_VERSION {
            Backing::Columnar(ColumnarIndex::from_footer(
                num_groups,
                record_count,
                footer,
                footer_start,
                file_len,
            )?)
        } else {
            Backing::Rows(parse_row_footer(
                footer,
                num_groups,
                record_count as usize,
                footer_start,
            )?)
        };
        Ok(Self {
            file_name: file_name.to_string(),
            num_groups,
            version,
            backing,
            file_len,
            footer_crc,
        })
    }

    /// Records in the shard.
    pub fn len(&self) -> usize {
        match &self.backing {
            Backing::Rows(v) => v.len(),
            Backing::Columnar(c) => c.len(),
        }
    }

    /// True when the shard holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves record `k`'s index entry. O(1) in the shard's record
    /// count for both backings; for a lazily-opened columnar shard this
    /// issues a handful of small ranged reads.
    pub fn entry(&self, k: usize) -> Result<ShardRecord> {
        match &self.backing {
            Backing::Rows(v) => v.get(k).cloned().ok_or_else(|| {
                Error::BadInput(format!("record {k} out of range ({} records in shard)", v.len()))
            }),
            Backing::Columnar(c) => c.entry(k),
        }
    }

    /// Iterates all entries in on-disk order.
    pub fn entries(&self) -> impl Iterator<Item = Result<ShardRecord>> + '_ {
        (0..self.len()).map(move |k| self.entry(k))
    }

    /// Total images across the shard's records — O(1) for columnar
    /// shards (descriptor field).
    pub fn num_images(&self) -> usize {
        match &self.backing {
            Backing::Rows(v) => v.iter().map(|r| r.num_images as usize).sum(),
            Backing::Columnar(c) => c.num_images(),
        }
    }

    /// Total record-data bytes (excluding header, footer, and trailer) —
    /// O(1) for columnar shards (records are packed back to back).
    pub fn data_bytes(&self) -> u64 {
        match &self.backing {
            Backing::Rows(v) => v.iter().map(|r| r.len()).sum(),
            Backing::Columnar(c) => c.data_bytes(),
        }
    }

    /// Record-data bytes a loader reads per epoch at scan group `g`.
    /// Prefer the manifest's zone-map stats where present — for a lazy
    /// columnar shard this reads the whole group-offset column.
    pub fn bytes_at_group(&self, g: usize) -> Result<u64> {
        match &self.backing {
            Backing::Rows(v) => Ok(v.iter().map(|r| r.prefix_len(g)).sum()),
            Backing::Columnar(c) => c.bytes_at_group(g),
        }
    }

    /// Smallest and largest full record length in the shard — O(1) for
    /// columnar shards (descriptor zone map), computed for row shards.
    pub fn record_len_bounds(&self) -> (u64, u64) {
        match &self.backing {
            Backing::Rows(v) if v.is_empty() => (0, 0),
            Backing::Rows(v) => v.iter().fold((u64::MAX, 0), |(lo, hi), r| {
                (lo.min(r.len()), hi.max(r.len()))
            }),
            Backing::Columnar(c) => c.record_len_bounds(),
        }
    }

    /// True when this shard uses the columnar (version 3) footer.
    pub fn is_columnar(&self) -> bool {
        matches!(self.backing, Backing::Columnar(_))
    }

    /// Footer bytes read by lazy entry resolution since open (always 0
    /// for row shards, whose footer is parsed up front).
    pub fn index_bytes_read(&self) -> u64 {
        match &self.backing {
            Backing::Rows(_) => 0,
            Backing::Columnar(c) => c.index_bytes_read(),
        }
    }
}

/// Maximum distinct labels recorded in a shard's manifest histogram.
/// Beyond this the histogram is truncated and marked incomplete.
pub const LABEL_HIST_CAP: usize = 64;

/// Per-shard zone-map statistics carried in a version-3 manifest, so a
/// reader can answer byte-budget questions (`bytes_at_group`, totals)
/// without touching any shard footer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Total record-data bytes in the shard.
    pub data_bytes: u64,
    /// Smallest full record length.
    pub min_record_len: u64,
    /// Largest full record length.
    pub max_record_len: u64,
    /// `bytes_at_group[g]` = record-data bytes an epoch reads at scan
    /// group `g` (length `num_groups + 1`).
    pub bytes_at_group: Vec<u64>,
    /// `(label, count)` pairs, ascending by label, capped at
    /// [`LABEL_HIST_CAP`] distinct labels.
    pub label_hist: Vec<(u32, u64)>,
    /// False when the shard had more distinct labels than the cap.
    pub hist_complete: bool,
}

impl ShardStats {
    /// Computes the stats for one shard's records at write time.
    fn compute(num_groups: u16, metas: &[&RecordMeta]) -> Self {
        // pcr-lint: allow(bounded-alloc) — writer side; u16 bounds it at 512KiB
        let mut bytes_at_group = vec![0u64; num_groups as usize + 1];
        let mut hist = std::collections::BTreeMap::new();
        let (mut data_bytes, mut min_len, mut max_len) = (0u64, u64::MAX, 0u64);
        for m in metas {
            let len = m.total_len();
            data_bytes += len;
            min_len = min_len.min(len);
            max_len = max_len.max(len);
            for (g, slot) in bytes_at_group.iter_mut().enumerate() {
                *slot += m.prefix_len(g);
            }
            for &label in &m.labels {
                *hist.entry(label).or_insert(0u64) += 1;
            }
        }
        if metas.is_empty() {
            min_len = 0;
        }
        let hist_complete = hist.len() <= LABEL_HIST_CAP;
        let label_hist = hist.into_iter().take(LABEL_HIST_CAP).collect();
        Self {
            data_bytes,
            min_record_len: min_len,
            max_record_len: max_len,
            bytes_at_group,
            label_hist,
            hist_complete,
        }
    }
}

/// One shard's summary line in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSummary {
    /// Shard file name, relative to the container directory.
    pub file_name: String,
    /// Expected shard file length in bytes.
    pub file_len: u64,
    /// Records in the shard.
    pub records: u32,
    /// Images in the shard.
    pub images: u32,
    /// Expected CRC-32 of the shard's footer — ties the manifest to the
    /// exact shard files it was written with.
    pub footer_crc: u32,
    /// Zone-map statistics (version-3 manifests; `None` in version 1).
    pub stats: Option<ShardStats>,
}

/// The container manifest: shard enumeration plus shared parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerManifest {
    /// Container format version.
    pub version: u16,
    /// Scan groups per record (uniform across the container).
    pub num_groups: u16,
    /// Shards in order.
    pub shards: Vec<ShardSummary>,
}

impl ContainerManifest {
    /// Total records across all shards.
    pub fn num_records(&self) -> usize {
        self.shards.iter().map(|s| s.records as usize).sum()
    }

    /// Total images across all shards.
    pub fn num_images(&self) -> usize {
        self.shards.iter().map(|s| s.images as usize).sum()
    }

    /// Total bytes of all shard files.
    pub fn total_file_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.file_len).sum()
    }

    /// Serializes the manifest (ending in a CRC-32 of all prior bytes).
    /// Version-3 manifests append each shard's zone-map stats block.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        put_u16(&mut out, self.version);
        put_u16(&mut out, self.num_groups);
        debug_assert!(self.shards.len() <= u32::MAX as usize);
        // pcr-lint: allow(no-truncating-cast) — writer side; a container
        // cannot reach 2^32 shard files, asserted above.
        put_u32(&mut out, self.shards.len() as u32);
        for s in &self.shards {
            put_bytes(&mut out, s.file_name.as_bytes());
            put_u64(&mut out, s.file_len);
            put_u32(&mut out, s.records);
            put_u32(&mut out, s.images);
            put_u32(&mut out, s.footer_crc);
            if self.version >= COLUMNAR_VERSION {
                match &s.stats {
                    None => out.push(0),
                    Some(st) => {
                        out.push(1);
                        put_u64(&mut out, st.data_bytes);
                        put_u64(&mut out, st.min_record_len);
                        put_u64(&mut out, st.max_record_len);
                        debug_assert!(st.bytes_at_group.len() <= u16::MAX as usize);
                        // pcr-lint: allow(no-truncating-cast) — writer side; num_groups+1 fits u16, asserted above
                        put_u16(&mut out, st.bytes_at_group.len() as u16);
                        for &b in &st.bytes_at_group {
                            put_u64(&mut out, b);
                        }
                        out.push(u8::from(st.hist_complete));
                        debug_assert!(st.label_hist.len() <= LABEL_HIST_CAP);
                        // pcr-lint: allow(no-truncating-cast) — writer side; capped at LABEL_HIST_CAP above
                        put_u16(&mut out, st.label_hist.len() as u16);
                        for &(label, count) in &st.label_hist {
                            put_u32(&mut out, label);
                            put_u64(&mut out, count);
                        }
                    }
                }
            }
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Parses a serialized manifest, verifying its checksum. Accepts
    /// version 1 (no stats) and version 3 (zone-map stats per shard).
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        if data.len() < 4 {
            return Err(Error::Truncated { context: "manifest checksum" });
        }
        let (body, tail) = data.split_at(data.len() - 4);
        let stored = <[u8; 4]>::try_from(tail)
            .map(u32::from_le_bytes)
            .map_err(|_| Error::Truncated { context: "manifest checksum" })?;
        if crc32(body) != stored {
            return Err(Error::corrupt_at(MANIFEST_FILE, body.len() as u64, "CRC mismatch"));
        }
        let mut r = Reader::new(body);
        if r.bytes(4, "manifest magic")? != MANIFEST_MAGIC {
            return Err(Error::BadMagic);
        }
        let version = r.u16("manifest version")?;
        if !matches!(version, CONTAINER_VERSION_ROWS | COLUMNAR_VERSION) {
            return Err(Error::BadVersion(version));
        }
        let num_groups = r.u16("manifest group count")?;
        let n = r.u32("manifest shard count")? as usize;
        // Bound the claimed count by the bytes actually present (each
        // entry is at least a name length + file_len + three u32s).
        if n > r.remaining() / (4 + 8 + 4 + 4 + 4) {
            return Err(Error::Malformed(format!(
                "manifest claims {n} shards in {} bytes",
                r.remaining()
            )));
        }
        let mut shards = Vec::with_capacity(n); // pcr-lint: allow(bounded-alloc) — n bounded by remaining/24 above
        for _ in 0..n {
            let file_name = String::from_utf8(r.prefixed_bytes("shard file name")?.to_vec())
                .map_err(|_| Error::Malformed("shard file name not UTF-8".into()))?;
            let file_len = r.u64("shard file length")?;
            let records = r.u32("shard record count")?;
            let images = r.u32("shard image count")?;
            let footer_crc = r.u32("shard footer crc")?;
            let stats = if version >= COLUMNAR_VERSION {
                parse_shard_stats(&mut r)?
            } else {
                None
            };
            shards.push(ShardSummary { file_name, file_len, records, images, footer_crc, stats });
        }
        if r.remaining() != 0 {
            return Err(Error::Malformed("trailing bytes in manifest".into()));
        }
        Ok(Self { version, num_groups, shards })
    }
}

/// Parses one shard's optional stats block from a version-3 manifest.
fn parse_shard_stats(r: &mut Reader<'_>) -> Result<Option<ShardStats>> {
    let present = r.bytes(1, "shard stats flag")?[0];
    if present == 0 {
        return Ok(None);
    }
    let data_bytes = r.u64("shard data bytes")?;
    let min_record_len = r.u64("shard min record length")?;
    let max_record_len = r.u64("shard max record length")?;
    let glen = r.u16("shard group byte count")? as usize;
    if glen > r.remaining() / 8 {
        return Err(Error::Truncated { context: "shard group bytes" });
    }
    // pcr-lint: allow(bounded-alloc) — glen bounded by remaining/8 just above
    let mut bytes_at_group = Vec::with_capacity(glen);
    for _ in 0..glen {
        bytes_at_group.push(r.u64("shard group bytes")?);
    }
    let hist_complete = r.bytes(1, "shard histogram flag")?[0] != 0;
    let hist_len = r.u16("shard histogram length")? as usize;
    if hist_len > LABEL_HIST_CAP || hist_len > r.remaining() / 12 {
        return Err(Error::Malformed(format!(
            "shard histogram claims {hist_len} entries"
        )));
    }
    // pcr-lint: allow(bounded-alloc) — hist_len capped at LABEL_HIST_CAP just above
    let mut label_hist = Vec::with_capacity(hist_len);
    for _ in 0..hist_len {
        let label = r.u32("shard histogram label")?;
        let count = r.u64("shard histogram count")?;
        label_hist.push((label, count));
    }
    Ok(Some(ShardStats {
        data_bytes,
        min_record_len,
        max_record_len,
        bytes_at_group,
        label_hist,
        hist_complete,
    }))
}

/// Serializes one shard (header + records + footer + trailer) from record
/// byte blobs and their metadata. `metas` must parallel `records`.
/// `version` selects the footer encoding: rows (1) or columnar (3).
fn build_shard(
    num_groups: u16,
    records: &[(&RecordMeta, &[u8])],
    version: u16,
) -> Vec<u8> {
    let data_len: usize = records.iter().map(|(_, b)| b.len()).sum();
    // pcr-lint: allow(bounded-alloc) — writer side: data_len is the sum of
    // in-memory record buffers already held by the caller.
    let mut out = Vec::with_capacity(SHARD_HEADER_LEN as usize + data_len);
    out.extend_from_slice(SHARD_MAGIC);
    put_u16(&mut out, version);
    put_u16(&mut out, num_groups);
    debug_assert!(records.len() <= u32::MAX as usize);
    // pcr-lint: allow(no-truncating-cast) — writer side; asserted above
    put_u32(&mut out, records.len() as u32);
    debug_assert_eq!(out.len() as u64, SHARD_HEADER_LEN);
    let mut offsets = Vec::with_capacity(records.len()); // pcr-lint: allow(bounded-alloc) — len of caller's slice
    for (_, bytes) in records {
        offsets.push(out.len() as u64);
        out.extend_from_slice(bytes);
    }
    let footer = if version == COLUMNAR_VERSION {
        let metas: Vec<&RecordMeta> = records.iter().map(|(m, _)| *m).collect();
        let crcs: Vec<u32> = records.iter().map(|(_, b)| crc32(b)).collect();
        colfooter::build_footer(num_groups, &metas, &offsets, &crcs, out.len() as u64)
    } else {
        let mut footer = Vec::new();
        for ((meta, bytes), offset) in records.iter().zip(offsets) {
            put_bytes(&mut footer, meta.name.as_bytes());
            put_u64(&mut footer, offset);
            put_u32(&mut footer, meta.num_images);
            for &o in &meta.group_offsets {
                put_u64(&mut footer, o);
            }
            for &l in &meta.labels {
                put_u32(&mut footer, l);
            }
            put_u32(&mut footer, crc32(bytes));
        }
        footer
    };
    let footer_crc = crc32(&footer);
    debug_assert!(footer.len() <= u32::MAX as usize);
    // pcr-lint: allow(no-truncating-cast) — writer side; asserted above
    let footer_len = footer.len() as u32;
    out.extend_from_slice(&footer);
    put_u32(&mut out, footer_len);
    put_u32(&mut out, footer_crc);
    out.extend_from_slice(FOOTER_MAGIC);
    out
}

/// Writes `dataset` as a sharded container under `dir` with
/// `records_per_shard` records per shard file, in the default (columnar)
/// format. Creates the directory if needed; refuses to overwrite an
/// existing manifest. Returns the manifest that was written.
pub fn write_container(
    dataset: &PcrDataset,
    dir: &Path,
    records_per_shard: usize,
) -> Result<ContainerManifest> {
    write_container_versioned(dataset, dir, records_per_shard, CONTAINER_VERSION)
}

/// [`write_container`] with an explicit container format version:
/// [`CONTAINER_VERSION_ROWS`] (1, row footers, no manifest stats) or
/// [`crate::colfooter::COLUMNAR_VERSION`] (3, the default).
pub fn write_container_versioned(
    dataset: &PcrDataset,
    dir: &Path,
    records_per_shard: usize,
    version: u16,
) -> Result<ContainerManifest> {
    if !matches!(version, CONTAINER_VERSION_ROWS | COLUMNAR_VERSION) {
        return Err(Error::BadVersion(version));
    }
    if dataset.records.is_empty() {
        return Err(Error::BadInput("container needs at least one record".into()));
    }
    let records_per_shard = records_per_shard.max(1);
    fs::create_dir_all(dir).map_err(io_err("create container directory"))?;
    let manifest_path = dir.join(MANIFEST_FILE);
    if manifest_path.exists() {
        return Err(Error::BadInput(format!(
            "{} already contains a PCR container",
            dir.display()
        )));
    }
    let num_groups = u16::try_from(dataset.db.num_groups())
        .map_err(|_| Error::BadInput("group count exceeds u16".into()))?;
    let mut shards = Vec::new();
    let entries: Vec<(&RecordMeta, &[u8])> = dataset
        .db
        .records
        .iter()
        .zip(dataset.records.iter().map(Vec::as_slice))
        .collect();
    for (i, chunk) in entries.chunks(records_per_shard).enumerate() {
        let file_name = format!("shard-{i:05}.pcrshard");
        let bytes = build_shard(num_groups, chunk, version);
        let index = ShardIndex::parse(&file_name, &bytes).map_err(|e| {
            Error::Malformed(format!("freshly written shard does not parse back: {e}"))
        })?;
        fs::write(dir.join(&file_name), &bytes).map_err(io_err("write shard"))?;
        let records = u32::try_from(chunk.len())
            .map_err(|_| Error::BadInput("too many records per shard".into()))?;
        let images = u32::try_from(index.num_images())
            .map_err(|_| Error::BadInput("too many images per shard".into()))?;
        let stats = (version == COLUMNAR_VERSION).then(|| {
            let metas: Vec<&RecordMeta> = chunk.iter().map(|(m, _)| *m).collect();
            ShardStats::compute(num_groups, &metas)
        });
        shards.push(ShardSummary {
            file_name,
            file_len: bytes.len() as u64,
            records,
            images,
            footer_crc: index.footer_crc,
            stats,
        });
    }
    let manifest = ContainerManifest { version, num_groups, shards };
    fs::write(manifest_path, manifest.to_bytes()).map_err(io_err("write manifest"))?;
    Ok(manifest)
}

/// An opened container: the manifest plus every shard's parsed index.
///
/// Opening reads only the manifest and each shard's header and footer
/// (one tail read per shard); record bytes are read later, when a loader
/// streams them through an object store or [`PcrContainer::verify`]
/// checksums them.
#[derive(Debug, Clone)]
pub struct PcrContainer {
    /// Directory the container lives in.
    pub dir: PathBuf,
    /// The parsed manifest.
    pub manifest: ContainerManifest,
    /// Parsed shard indexes, parallel to `manifest.shards`.
    pub shards: Vec<ShardIndex>,
}

impl PcrContainer {
    /// Opens a container directory: parses the manifest, then each
    /// shard's header and footer index, cross-checking file lengths and
    /// footer CRCs against the manifest.
    pub fn open(dir: &Path) -> Result<Self> {
        let manifest_bytes =
            fs::read(dir.join(MANIFEST_FILE)).map_err(io_err("read manifest"))?;
        let manifest = ContainerManifest::from_bytes(&manifest_bytes)?;
        // pcr-lint: allow(bounded-alloc) — len of an already-parsed, size-validated Vec
        let mut shards = Vec::with_capacity(manifest.shards.len());
        for summary in &manifest.shards {
            let path = dir.join(&summary.file_name);
            let index = read_shard_index(&path, summary)?;
            shards.push(index);
        }
        Ok(Self { dir: dir.to_path_buf(), manifest, shards })
    }

    /// Scan groups per record.
    pub fn num_groups(&self) -> usize {
        self.manifest.num_groups as usize
    }

    /// Total records across all shards.
    pub fn num_records(&self) -> usize {
        self.manifest.num_records()
    }

    /// Total images across all shards.
    pub fn num_images(&self) -> usize {
        self.manifest.num_images()
    }

    /// Total record-data bytes at full quality — O(shards) for both
    /// formats (columnar shards answer from descriptor arithmetic).
    pub fn total_data_bytes(&self) -> u64 {
        self.shards.iter().map(ShardIndex::data_bytes).sum()
    }

    /// Record-data bytes a loader reads per epoch at scan group `g` — the
    /// fidelity byte breakdown `pcr inspect` prints. Answered from the
    /// manifest's zone-map stats where present (O(shards), no footer
    /// reads); otherwise falls back to the shard indexes.
    pub fn bytes_at_group(&self, g: usize) -> Result<u64> {
        let mut total = 0u64;
        for (summary, shard) in self.manifest.shards.iter().zip(&self.shards) {
            total += match &summary.stats {
                Some(st) if !st.bytes_at_group.is_empty() => {
                    let last = st.bytes_at_group.len() - 1;
                    // pcr-lint: allow(no-panic-in-hot-path) — index clamped to last just above
                    st.bytes_at_group[g.min(last)]
                }
                _ => shard.bytes_at_group(g)?,
            };
        }
        Ok(total)
    }

    /// Footer bytes read by lazy index resolution across all shards
    /// since open (0 for row-format containers).
    pub fn index_bytes_read(&self) -> u64 {
        self.shards.iter().map(ShardIndex::index_bytes_read).sum()
    }

    /// Path of shard `i`.
    ///
    /// # Panics
    /// Like slice indexing, panics when `i` is not a valid shard index.
    pub fn shard_path(&self, i: usize) -> PathBuf {
        // pcr-lint: allow(no-panic-in-hot-path) — documented index contract
        self.dir.join(&self.manifest.shards[i].file_name)
    }

    /// Resolves a global record index (dataset order: shard by shard) to
    /// `(shard index, record entry)` — O(shards) arithmetic plus one
    /// O(1) entry resolution, never a catalog walk.
    pub fn entry(&self, global: usize) -> Result<(usize, ShardRecord)> {
        let mut idx = global;
        for (s, shard) in self.shards.iter().enumerate() {
            if idx < shard.len() {
                return Ok((s, shard.entry(idx)?));
            }
            idx -= shard.len();
        }
        Err(Error::BadInput(format!(
            "record {global} out of range ({} records in container)",
            self.num_records()
        )))
    }

    /// Like [`PcrContainer::entry`], with errors (out of range, I/O,
    /// corrupt entry) collapsed to `None`.
    pub fn record(&self, global: usize) -> Option<(usize, ShardRecord)> {
        self.entry(global).ok()
    }

    /// Reads one record's bytes with a single ranged read and verifies
    /// them against the entry's CRC-32 — O(record), not O(shard).
    pub fn read_record(&self, shard: usize, rec: &ShardRecord) -> Result<Vec<u8>> {
        let path = self.shard_path(shard);
        let mut file = fs::File::open(&path).map_err(io_err("open shard"))?;
        file.seek(SeekFrom::Start(rec.offset)).map_err(io_err("seek record"))?;
        // pcr-lint: allow(bounded-alloc) — record length validated against
        // the shard's data region when the entry was parsed.
        let mut bytes = vec![0u8; rec.len() as usize];
        file.read_exact(&mut bytes).map_err(io_err("read record"))?;
        let actual = crc32(&bytes);
        if actual != rec.crc32 {
            return Err(Error::corrupt_at(
                path.display(),
                rec.offset,
                format!(
                    "record {} CRC mismatch (stored {:#010x}, computed {actual:#010x})",
                    rec.name, rec.crc32
                ),
            ));
        }
        Ok(bytes)
    }

    /// Reads shard `i`'s full file from disk.
    ///
    /// # Panics
    /// Like slice indexing, panics when `i` is not a valid shard index.
    pub fn read_shard(&self, i: usize) -> Result<Vec<u8>> {
        let path = self.shard_path(i);
        let bytes = fs::read(&path).map_err(io_err("read shard"))?;
        // pcr-lint: allow(no-panic-in-hot-path) — documented index contract
        let expected = self.manifest.shards[i].file_len;
        if bytes.len() as u64 != expected {
            return Err(Error::Malformed(format!(
                "{}: {} bytes on disk, manifest says {expected}",
                path.display(),
                bytes.len(),
            )));
        }
        Ok(bytes)
    }

    /// Reads shard `i` and verifies it in full: a strict re-parse of the
    /// footer (including the footer CRC the lazy columnar open defers)
    /// followed by every record's CRC-32 against the footer index,
    /// rejecting corrupted data.
    ///
    /// # Panics
    /// Like slice indexing, panics when `i` is not a valid shard index.
    pub fn read_shard_verified(&self, i: usize) -> Result<Vec<u8>> {
        let bytes = self.read_shard(i)?;
        // pcr-lint: allow(no-panic-in-hot-path) — documented index contract
        let file_name = &self.manifest.shards[i].file_name;
        let index = ShardIndex::parse(file_name, &bytes)?;
        // pcr-lint: allow(no-panic-in-hot-path) — documented index contract
        if index.footer_crc != self.shards[i].footer_crc {
            return Err(Error::corrupt_at(
                file_name,
                (bytes.len() as u64).saturating_sub(SHARD_TRAILER_LEN) + 4,
                "footer CRC changed since open",
            ));
        }
        for rec in index.entries() {
            let rec = rec?;
            let start = rec.offset as usize;
            let end = start + rec.len() as usize;
            let stored = rec.crc32;
            // Record ranges were validated against the footer start at
            // parse time, but re-check here so a hand-built index cannot
            // panic the integrity pass.
            let data = bytes
                .get(start..end)
                .ok_or_else(|| {
                    Error::corrupt_at(
                        file_name,
                        rec.offset,
                        format!("record {} out of shard bounds", rec.name),
                    )
                })?;
            let actual = crc32(data);
            if actual != stored {
                return Err(Error::corrupt_at(
                    file_name,
                    rec.offset,
                    format!(
                        "record {} CRC mismatch (stored {stored:#010x}, \
                         computed {actual:#010x})",
                        rec.name
                    ),
                ));
            }
        }
        Ok(bytes)
    }

    /// Full integrity pass: re-reads every shard and verifies every
    /// record checksum, then — when a decision log is present — checks
    /// its CRC chain. `Ok(())` means every byte of record data matches
    /// the footers the manifest vouches for. For columnar containers
    /// this is where the footer CRC deferred by the O(1) open is
    /// actually checked.
    pub fn verify(&self) -> Result<()> {
        for i in 0..self.shards.len() {
            self.read_shard_verified(i)?;
        }
        if let Some(log) = self.decision_log()? {
            log.verify()?;
        }
        Ok(())
    }

    /// Path of the container's append-only fidelity decision log
    /// (FORMAT.md §7). The file exists only after a logged run.
    pub fn decision_log_path(&self) -> PathBuf {
        self.dir.join(crate::declog::DECISION_LOG_FILE)
    }

    /// Reads the container's fidelity decision log, if present.
    /// `Ok(None)` for containers that never ran a logged training
    /// session (every pre-audit-plane container). Parsing is lenient —
    /// call [`DecisionLog::verify`](crate::declog::DecisionLog::verify)
    /// (or [`PcrContainer::verify`]) for the strict chain check.
    pub fn decision_log(&self) -> Result<Option<crate::declog::DecisionLog>> {
        let path = self.decision_log_path();
        match fs::read(&path) {
            Ok(bytes) => Ok(Some(crate::declog::DecisionLog::parse(&bytes)?)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(Error::BadInput(format!("read decision log: {e}"))),
        }
    }
}

/// Reads and parses one shard's index, cross-checking it against the
/// manifest summary. For columnar (version 3) shards this reads only the
/// 12-byte header and the 52-byte descriptor + trailer tail and defers
/// every entry to lazy column reads — O(1) in the shard's record count.
/// Row shards (versions 1/2) still read and parse their whole footer.
fn read_shard_index(path: &Path, summary: &ShardSummary) -> Result<ShardIndex> {
    let mut file = fs::File::open(path).map_err(io_err("open shard"))?;
    let file_len = file.metadata().map_err(io_err("stat shard"))?.len();
    if file_len != summary.file_len {
        return Err(Error::Malformed(format!(
            "{}: {file_len} bytes on disk, manifest says {}",
            path.display(),
            summary.file_len
        )));
    }
    if file_len < SHARD_HEADER_LEN + SHARD_TRAILER_LEN {
        return Err(Error::Truncated { context: "shard trailer" });
    }
    let file_name =
        path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let mut head = [0u8; SHARD_HEADER_LEN as usize];
    file.read_exact(&mut head).map_err(io_err("read shard header"))?;
    let mut h = Reader::new(&head);
    if h.bytes(4, "shard magic")? != SHARD_MAGIC {
        return Err(Error::BadMagic);
    }
    let version = h.u16("shard version")?;
    let num_groups = h.u16("shard group count")?;
    let record_count = h.u32("shard record count")?;
    if version == COLUMNAR_VERSION {
        // O(1) open: descriptor + trailer only; the footer CRC is noted
        // for verify() but not checked here (that would read the footer).
        let (col, footer_crc) =
            ColumnarIndex::open_lazy(file, num_groups, record_count, file_len)?;
        if footer_crc != summary.footer_crc {
            return Err(Error::corrupt_at(
                path.display(),
                file_len.saturating_sub(SHARD_TRAILER_LEN) + 4,
                format!(
                    "footer CRC {footer_crc:#010x} does not match manifest {:#010x}",
                    summary.footer_crc
                ),
            ));
        }
        return Ok(ShardIndex {
            file_name,
            num_groups,
            version,
            backing: Backing::Columnar(col),
            file_len,
            footer_crc,
        });
    }
    // Row formats: tail read, then a sparse image for the strict parser.
    let mut trailer = [0u8; SHARD_TRAILER_LEN as usize];
    file.seek(SeekFrom::End(-(SHARD_TRAILER_LEN as i64))).map_err(io_err("seek shard"))?;
    file.read_exact(&mut trailer).map_err(io_err("read shard trailer"))?;
    let footer_len = u64::from(Reader::new(&trailer).u32("footer length")?);
    let tail_len = (SHARD_TRAILER_LEN + footer_len).min(file_len - SHARD_HEADER_LEN);
    // pcr-lint: allow(bounded-alloc) — tail_len clamped to the on-disk file size just above
    let mut tail = vec![0u8; tail_len as usize];
    file.seek(SeekFrom::End(-(tail_len as i64))).map_err(io_err("seek shard"))?;
    file.read_exact(&mut tail).map_err(io_err("read shard footer"))?;
    // Reassemble a sparse image of the file for the parser: the record
    // region's contents are irrelevant to index parsing (offsets are
    // validated against the footer start, data is not checksummed here).
    // pcr-lint: allow(bounded-alloc) — capacity bounded by the on-disk file size
    let mut image = Vec::with_capacity((SHARD_HEADER_LEN + file_len - tail_len) as usize);
    image.extend_from_slice(&head);
    image.resize((file_len - tail_len) as usize, 0);
    image.extend_from_slice(&tail);
    let index = ShardIndex::parse(&file_name, &image)?;
    if index.footer_crc != summary.footer_crc {
        return Err(Error::corrupt_at(
            path.display(),
            file_len.saturating_sub(SHARD_TRAILER_LEN) + 4,
            format!(
                "footer CRC {:#010x} does not match manifest {:#010x}",
                index.footer_crc, summary.footer_crc
            ),
        ));
    }
    Ok(index)
}

fn io_err(context: &'static str) -> impl Fn(std::io::Error) -> Error {
    move |e| Error::BadInput(format!("{context}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::PcrDatasetBuilder;
    use crate::record::{PcrRecord, SampleMeta};
    use pcr_jpeg::ImageBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pcr-container-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn build(n_images: usize, per_record: usize) -> PcrDataset {
        let mut b = PcrDatasetBuilder::new(per_record, 10).with_name_prefix("train");
        for i in 0..n_images as u32 {
            let mut data = Vec::new();
            for y in 0..24u32 {
                for x in 0..24u32 {
                    data.push(((x * 5 + y * 3 + i * 11) % 256) as u8);
                    data.push(((x + y) % 256) as u8);
                    data.push((x % 256) as u8);
                }
            }
            let img = ImageBuf::from_raw(24, 24, 3, data).unwrap();
            b.add_image(SampleMeta { label: i % 3, id: format!("f{i}") }, &img, 85).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn pack_open_roundtrip_preserves_all_metadata() {
        let dir = tmpdir("roundtrip");
        let ds = build(10, 2); // 5 records
        let manifest = write_container(&ds, &dir, 2).unwrap();
        assert_eq!(manifest.shards.len(), 3); // 2 + 2 + 1 records
        assert_eq!(manifest.version, COLUMNAR_VERSION, "default format is columnar");
        let c = PcrContainer::open(&dir).unwrap();
        assert!(c.shards.iter().all(ShardIndex::is_columnar));
        assert_eq!(c.num_records(), 5);
        assert_eq!(c.num_images(), 10);
        assert_eq!(c.num_groups(), 10);
        assert_eq!(c.total_data_bytes(), ds.db.total_bytes());
        for g in 0..=10 {
            assert_eq!(c.bytes_at_group(g).unwrap(), ds.db.bytes_at_group(g), "group {g}");
        }
        // Record names, labels, and group offsets survive byte-for-byte.
        for (i, meta) in ds.db.records.iter().enumerate() {
            let (_, rec) = c.record(i).unwrap();
            assert_eq!(rec.name, meta.name);
            assert_eq!(rec.labels, meta.labels);
            assert_eq!(rec.group_offsets, meta.group_offsets);
        }
        c.verify().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn row_and_columnar_containers_agree() {
        let dir_v1 = tmpdir("agree-v1");
        let dir_v3 = tmpdir("agree-v3");
        let ds = build(9, 3); // 3 records
        write_container_versioned(&ds, &dir_v1, 2, CONTAINER_VERSION_ROWS).unwrap();
        write_container_versioned(&ds, &dir_v3, 2, COLUMNAR_VERSION).unwrap();
        let c1 = PcrContainer::open(&dir_v1).unwrap();
        let c3 = PcrContainer::open(&dir_v3).unwrap();
        assert!(!c1.shards[0].is_columnar());
        assert!(c3.shards[0].is_columnar());
        assert_eq!(c1.num_records(), c3.num_records());
        assert_eq!(c1.total_data_bytes(), c3.total_data_bytes());
        for g in 0..=10 {
            assert_eq!(c1.bytes_at_group(g).unwrap(), c3.bytes_at_group(g).unwrap());
        }
        for shard in 0..c1.shards.len() {
            assert_eq!(
                c1.shards[shard].record_len_bounds(),
                c3.shards[shard].record_len_bounds()
            );
            assert_eq!(c1.shards[shard].num_images(), c3.shards[shard].num_images());
        }
        for i in 0..c1.num_records() {
            let (s1, r1) = c1.entry(i).unwrap();
            let (s3, r3) = c3.entry(i).unwrap();
            assert_eq!(s1, s3);
            assert_eq!(r1, r3, "record {i} entries must agree across formats");
        }
        c1.verify().unwrap();
        c3.verify().unwrap();
        fs::remove_dir_all(&dir_v1).unwrap();
        fs::remove_dir_all(&dir_v3).unwrap();
    }

    #[test]
    fn lazy_entry_resolution_reads_o1_bytes() {
        let dir_small = tmpdir("lazy-small");
        let dir_big = tmpdir("lazy-big");
        let small = build(4, 1); // 4 records
        let big = build(40, 1); // 40 records
        write_container(&small, &dir_small, 64).unwrap();
        write_container(&big, &dir_big, 64).unwrap();
        let cs = PcrContainer::open(&dir_small).unwrap();
        let cb = PcrContainer::open(&dir_big).unwrap();
        cs.entry(1).unwrap();
        cb.entry(1).unwrap();
        let (rs, rb) = (cs.index_bytes_read(), cb.index_bytes_read());
        assert!(rs > 0, "lazy columnar entry must issue footer reads");
        assert_eq!(rs, rb, "entry cost must not grow with shard size ({rs} vs {rb})");
        fs::remove_dir_all(&dir_small).unwrap();
        fs::remove_dir_all(&dir_big).unwrap();
    }

    #[test]
    fn shard_ranges_decode_as_records() {
        let dir = tmpdir("decode");
        let ds = build(6, 3);
        write_container(&ds, &dir, 1).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let bytes = c.read_shard_verified(0).unwrap();
        let (_, rec_meta) = c.record(0).unwrap();
        let start = rec_meta.offset as usize;
        // Full record parses; a scan-group-2 prefix decodes at group 2.
        let full = PcrRecord::parse(&bytes[start..start + rec_meta.len() as usize]).unwrap();
        assert_eq!(full.num_images(), 3);
        let prefix = &bytes[start..start + rec_meta.prefix_len(2) as usize];
        let view = PcrRecord::parse(prefix).unwrap();
        assert_eq!(view.available_groups(), 2);
        assert_eq!(view.decode_image(0, 2).unwrap().width(), 24);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_record_fails_verification() {
        let dir = tmpdir("corrupt");
        let ds = build(4, 2);
        write_container(&ds, &dir, 2).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        // Flip one byte in the middle of the first record's data.
        let path = c.shard_path(0);
        let mut bytes = fs::read(&path).unwrap();
        let (_, rec) = c.record(0).unwrap();
        let victim = rec.offset as usize + rec.len() as usize / 2;
        bytes[victim] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let err = c.verify().unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_row_footer_is_rejected_at_open() {
        let dir = tmpdir("footer-v1");
        let ds = build(4, 2);
        write_container_versioned(&ds, &dir, 2, CONTAINER_VERSION_ROWS).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let path = c.shard_path(0);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a label inside the footer (between data end and trailer).
        let n = bytes.len();
        bytes[n - SHARD_TRAILER_LEN as usize - 5] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = PcrContainer::open(&dir).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_columnar_footer_is_caught_by_verify() {
        let dir = tmpdir("footer-v3");
        let ds = build(4, 2);
        write_container(&ds, &dir, 2).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let path = c.shard_path(0);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte at the very start of the footer (the name blob).
        let n = bytes.len();
        let footer_len =
            u32::from_le_bytes(bytes[n - 12..n - 8].try_into().unwrap()) as usize;
        let footer_start = n - 12 - footer_len;
        bytes[footer_start] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        // The O(1) open never reads the tampered column, so it succeeds;
        // the deferred footer CRC check in verify() catches it.
        let c = PcrContainer::open(&dir).unwrap();
        let err = c.verify().unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_columnar_descriptor_is_rejected_at_open() {
        let dir = tmpdir("desc-v3");
        let ds = build(4, 2);
        write_container(&ds, &dir, 2).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let path = c.shard_path(0);
        let mut bytes = fs::read(&path).unwrap();
        // Corrupt the descriptor's record count: geometry no longer
        // tiles the footer, which the O(1) open itself detects.
        let n = bytes.len();
        let desc = n - 12 - 40;
        bytes[desc + 4..desc + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let err = PcrContainer::open(&dir).unwrap_err();
        assert!(matches!(err, Error::Malformed(_)), "{err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crafted_columnar_offset_is_malformed_at_entry() {
        let dir = tmpdir("colcraft");
        let ds = build(2, 2);
        write_container(&ds, &dir, 2).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let path = c.shard_path(0);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        let footer_len =
            u32::from_le_bytes(bytes[n - 12..n - 8].try_into().unwrap()) as usize;
        let footer_start = n - 12 - footer_len;
        // Offsets column follows name_blob + name_ends; patch record 0's
        // offset to near-u64::MAX. The lazy open cannot see this (it
        // reads no columns), but entry(0) must reject, not panic.
        let desc = n - 12 - 40;
        let name_blob_len =
            u32::from_le_bytes(bytes[desc + 12..desc + 16].try_into().unwrap()) as usize;
        let record_count =
            u32::from_le_bytes(bytes[desc + 4..desc + 8].try_into().unwrap()) as usize;
        let off_col = footer_start + name_blob_len + 4 * record_count;
        bytes[off_col..off_col + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let err = c.shards[0].entry(0).unwrap_err();
        assert!(matches!(err, Error::Malformed(_)), "{err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_shard_is_rejected_at_open() {
        let dir = tmpdir("trunc");
        let ds = build(4, 4);
        write_container(&ds, &dir, 4).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let path = c.shard_path(0);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(PcrContainer::open(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crafted_offset_overflow_is_malformed_not_panic() {
        let dir = tmpdir("overflow");
        let ds = build(2, 2);
        write_container_versioned(&ds, &dir, 2, CONTAINER_VERSION_ROWS).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let mut bytes = fs::read(c.shard_path(0)).unwrap();
        let n = bytes.len();
        let footer_len =
            u32::from_le_bytes(bytes[n - 12..n - 8].try_into().unwrap()) as usize;
        let footer_start = n - 12 - footer_len;
        // Patch the first record's offset (right after its prefixed name)
        // to near-u64::MAX, then recompute the footer CRC so only the
        // bounds check can reject it.
        let name_len =
            u32::from_le_bytes(bytes[footer_start..footer_start + 4].try_into().unwrap())
                as usize;
        let off_pos = footer_start + 4 + name_len;
        bytes[off_pos..off_pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let crc = crc32(&bytes[footer_start..n - 12]);
        bytes[n - 8..n - 4].copy_from_slice(&crc.to_le_bytes());
        let err = ShardIndex::parse("shard-00000.pcrshard", &bytes).unwrap_err();
        assert!(matches!(err, Error::Malformed(_)), "{err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn decreasing_group_offsets_are_malformed_not_panic() {
        let dir = tmpdir("monotone");
        let ds = build(2, 2);
        write_container_versioned(&ds, &dir, 2, CONTAINER_VERSION_ROWS).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let mut bytes = fs::read(c.shard_path(0)).unwrap();
        let n = bytes.len();
        let footer_len =
            u32::from_le_bytes(bytes[n - 12..n - 8].try_into().unwrap()) as usize;
        let footer_start = n - 12 - footer_len;
        // Patch group_offsets[1] of the first record (after name, offset,
        // and image count) to exceed group_offsets[2], recomputing the
        // footer CRC so only the monotonicity check can reject it.
        let name_len =
            u32::from_le_bytes(bytes[footer_start..footer_start + 4].try_into().unwrap())
                as usize;
        let go1 = footer_start + 4 + name_len + 8 + 4 + 8;
        bytes[go1..go1 + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let crc = crc32(&bytes[footer_start..n - 12]);
        bytes[n - 8..n - 4].copy_from_slice(&crc.to_le_bytes());
        let err = ShardIndex::parse("shard-00000.pcrshard", &bytes).unwrap_err();
        assert!(matches!(err, Error::Malformed(_)), "{err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_record_count_is_malformed_not_abort() {
        let dir = tmpdir("count");
        let ds = build(2, 2);
        write_container_versioned(&ds, &dir, 2, CONTAINER_VERSION_ROWS).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let mut bytes = fs::read(c.shard_path(0)).unwrap();
        // The header's record_count is not covered by any CRC; a flipped
        // bit there must not drive a giant allocation.
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = ShardIndex::parse("shard-00000.pcrshard", &bytes).unwrap_err();
        assert!(matches!(err, Error::Malformed(_)), "{err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_roundtrip_and_corruption() {
        let dir = tmpdir("manifest");
        let ds = build(6, 2);
        let manifest = write_container(&ds, &dir, 2).unwrap();
        let bytes = manifest.to_bytes();
        assert_eq!(ContainerManifest::from_bytes(&bytes).unwrap(), manifest);
        let mut bad = bytes.clone();
        bad[6] ^= 0x10;
        assert!(matches!(ContainerManifest::from_bytes(&bad), Err(Error::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn refuses_double_pack() {
        let dir = tmpdir("double");
        let ds = build(4, 2);
        write_container(&ds, &dir, 2).unwrap();
        assert!(write_container(&ds, &dir, 2).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_version_is_rejected() {
        let dir = tmpdir("version");
        let ds = build(2, 2);
        write_container(&ds, &dir, 2).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let path = c.shard_path(0);
        let mut bytes = fs::read(&path).unwrap();
        bytes[4] = 0xFE; // version low byte
        fs::write(&path, &bytes).unwrap();
        // The shard index parse rejects the version before any CRC check.
        let err = ShardIndex::parse("shard-00000.pcrshard", &bytes).unwrap_err();
        assert!(matches!(err, Error::BadVersion(_)), "{err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
