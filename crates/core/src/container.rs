//! The sharded on-disk PCR container — the canonical persistent layout.
//!
//! The paper's encoder "transforms a set of JPEG files into a directory";
//! at production scale that directory must be a real container tools can
//! pack, inspect, and stream, not one loose file per record. A container
//! is a directory of *shards* plus a manifest:
//!
//! ```text
//! <dir>/
//!   manifest.pcrm          # shard list: file names, counts, footer CRCs
//!   shard-00000.pcrshard   # concatenated .pcr records + footer index
//!   shard-00001.pcrshard
//!   ...
//! ```
//!
//! Each shard is self-describing: a fixed header, the record bytes
//! back-to-back, and a footer index (per-record byte offsets, scan-group
//! offsets, labels, CRC-32 checksums) found through a fixed-size trailer
//! at the end of the file — so a reader seeks to the tail, parses the
//! index, and can then serve any `[record_offset, record_offset +
//! prefix_len(g))` range with one ranged read. That range arithmetic is
//! exactly what `pcr-loader`'s `ShardedSource` feeds the
//! `ObjectStore`/`ByteView` read path.
//!
//! The normative byte-level specification (with a worked hexdump) lives
//! in `docs/FORMAT.md`; this module is its implementation. The older
//! one-file-per-record layout in [`crate::fsdir`] remains for small
//! debugging datasets but is superseded by this container.
//!
//! ```
//! use pcr_core::container::{write_container, PcrContainer};
//! use pcr_core::{PcrDatasetBuilder, SampleMeta};
//! use pcr_jpeg::ImageBuf;
//!
//! let mut b = PcrDatasetBuilder::new(2, 10);
//! for i in 0..6u32 {
//!     let img = ImageBuf::from_raw(16, 16, 3, vec![(i * 37) as u8; 16 * 16 * 3]).unwrap();
//!     b.add_image(SampleMeta { label: i % 2, id: format!("i{i}") }, &img, 85).unwrap();
//! }
//! let ds = b.finish().unwrap();
//!
//! let dir = std::env::temp_dir().join(format!("pcr-doc-container-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let manifest = write_container(&ds, &dir, 2).unwrap();
//! assert_eq!(manifest.shards.len(), 2, "3 records, 2 per shard");
//!
//! let container = PcrContainer::open(&dir).unwrap();
//! assert_eq!(container.num_records(), 3);
//! assert_eq!(container.num_images(), 6);
//! container.verify().unwrap();
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::dataset::PcrDataset;
use crate::error::{Error, Result};
use crate::wire::{crc32, put_bytes, put_u16, put_u32, put_u64, Reader};
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Magic prefix of a shard file.
pub const SHARD_MAGIC: &[u8; 4] = b"PCRS";
/// Magic suffix (last four bytes) of a shard file's trailer.
pub const FOOTER_MAGIC: &[u8; 4] = b"PCRF";
/// Magic prefix of the container manifest.
pub const MANIFEST_MAGIC: &[u8; 4] = b"PCRM";
/// File name of the manifest inside a container directory.
pub const MANIFEST_FILE: &str = "manifest.pcrm";
/// Container format version written by this crate.
pub const CONTAINER_VERSION: u16 = 1;
/// Size in bytes of a shard file's fixed header.
pub const SHARD_HEADER_LEN: u64 = 12;
/// Size in bytes of a shard file's fixed trailer.
pub const SHARD_TRAILER_LEN: u64 = 12;

/// One record's entry in a shard footer: everything a loader needs to plan
/// a ranged prefix read, plus an integrity checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecord {
    /// Record name (carried over from the metadata DB, e.g.
    /// `train-00017.pcr`).
    pub name: String,
    /// Absolute byte offset of the record's first byte in the shard file.
    pub offset: u64,
    /// Number of images in the record.
    pub num_images: u32,
    /// `group_offsets[g]` = bytes of this record needed to decode at scan
    /// group `g`, *relative to `offset`* (length `num_groups + 1`; the
    /// last entry is the full record length).
    pub group_offsets: Vec<u64>,
    /// Labels of the record's images, in order.
    pub labels: Vec<u32>,
    /// CRC-32 of the record's bytes.
    pub crc32: u32,
}

impl ShardRecord {
    /// Full record length in bytes.
    pub fn len(&self) -> u64 {
        // The parser always stores num_groups + 1 >= 1 offsets; a
        // hand-built empty Vec degrades to length 0 rather than panicking.
        self.group_offsets.last().copied().unwrap_or(0)
    }

    /// True when the record holds no bytes (never produced by the writer).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of this record needed to decode every image at scan group
    /// `g`, clamped to the record's group count — the same prefix math as
    /// [`crate::dataset::RecordMeta::prefix_len`].
    pub fn prefix_len(&self, g: usize) -> u64 {
        let last = self.group_offsets.len().saturating_sub(1);
        self.group_offsets.get(g.min(last)).copied().unwrap_or(0)
    }
}

/// The parsed index of one shard: header fields plus the footer entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardIndex {
    /// Shard file name (relative to the container directory).
    pub file_name: String,
    /// Number of scan groups per record.
    pub num_groups: u16,
    /// Per-record entries in on-disk order.
    pub records: Vec<ShardRecord>,
    /// Total shard file length in bytes (header + records + footer +
    /// trailer).
    pub file_len: u64,
    /// CRC-32 of the footer bytes, as stored in the trailer.
    pub footer_crc: u32,
}

impl ShardIndex {
    /// Parses a complete shard file (header, trailer, footer; record
    /// bytes are *not* checksummed here — see
    /// [`PcrContainer::verify`]).
    pub fn parse(file_name: &str, bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        if r.bytes(4, "shard magic")? != SHARD_MAGIC {
            return Err(Error::BadMagic);
        }
        let version = r.u16("shard version")?;
        if version != CONTAINER_VERSION {
            return Err(Error::BadVersion(version));
        }
        let num_groups = r.u16("shard group count")?;
        let record_count = r.u32("shard record count")? as usize;
        let file_len = bytes.len() as u64;
        if file_len < SHARD_HEADER_LEN + SHARD_TRAILER_LEN {
            return Err(Error::Truncated { context: "shard trailer" });
        }
        // Trailer: footer_len (u32), footer_crc (u32), "PCRF".
        // pcr-lint: allow(no-panic-in-hot-path) — file_len >= HEADER + TRAILER checked above
        let trailer = &bytes[bytes.len() - SHARD_TRAILER_LEN as usize..];
        let mut t = Reader::new(trailer);
        let footer_len = t.u32("footer length")? as u64;
        let footer_crc = t.u32("footer crc")?;
        if t.bytes(4, "footer magic")? != FOOTER_MAGIC {
            return Err(Error::BadMagic);
        }
        let footer_start = file_len
            .checked_sub(SHARD_TRAILER_LEN + footer_len)
            .ok_or(Error::Truncated { context: "shard footer" })?;
        if footer_start < SHARD_HEADER_LEN {
            return Err(Error::Malformed("shard footer overlaps header".into()));
        }
        // pcr-lint: allow(no-panic-in-hot-path) — HEADER <= footer_start (checked
        // above) and checked_sub proved footer_start + TRAILER <= file_len.
        let footer = &bytes[footer_start as usize..(file_len - SHARD_TRAILER_LEN) as usize];
        if crc32(footer) != footer_crc {
            return Err(Error::Corrupt(format!("{file_name}: shard footer CRC mismatch")));
        }
        // The header's record_count is not covered by any CRC: bound it by
        // what the footer could possibly hold (each entry is at least a
        // name length, offset, image count, G+1 offsets, and a CRC) before
        // trusting it with an allocation.
        let min_entry = 4 + 8 + 4 + (num_groups as usize + 1) * 8 + 4;
        if record_count > footer.len() / min_entry {
            return Err(Error::Malformed(format!(
                "shard claims {record_count} records but its footer is {} bytes",
                footer.len()
            )));
        }
        let mut f = Reader::new(footer);
        // pcr-lint: allow(bounded-alloc) — record_count <= footer.len()/min_entry, checked above
        let mut records = Vec::with_capacity(record_count);
        for _ in 0..record_count {
            let name = String::from_utf8(f.prefixed_bytes("record name")?.to_vec())
                .map_err(|_| Error::Malformed("record name not UTF-8".into()))?;
            let offset = f.u64("record offset")?;
            let num_images = f.u32("record image count")?;
            // pcr-lint: allow(bounded-alloc) — num_groups is a u16, so at most 65536 entries
            let mut group_offsets = Vec::with_capacity(num_groups as usize + 1);
            for _ in 0..=num_groups {
                group_offsets.push(f.u64("record group offset")?);
            }
            // Prefix lengths must be cumulative: a decreasing sequence
            // would plan ranged reads past the record's end (or wrap the
            // per-group deltas every consumer computes).
            // pcr-lint: allow(no-panic-in-hot-path) — windows(2) yields exactly 2 elements
            if group_offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(Error::Malformed(
                    "record group offsets are not non-decreasing".into(),
                ));
            }
            if num_images as usize > f.remaining() / 4 {
                return Err(Error::Truncated { context: "record labels" });
            }
            // pcr-lint: allow(bounded-alloc) — num_images bounded by remaining/4 just above
            let mut labels = Vec::with_capacity(num_images as usize);
            for _ in 0..num_images {
                labels.push(f.u32("record label")?);
            }
            let crc = f.u32("record crc")?;
            let rec = ShardRecord { name, offset, num_images, group_offsets, labels, crc32: crc };
            // Untrusted footer fields: checked add so a crafted offset
            // cannot wrap past the bounds check and panic at slice time.
            if rec.offset.checked_add(rec.len()).is_none_or(|end| end > footer_start) {
                return Err(Error::Malformed(format!(
                    "record {} extends past the footer ({} + {} > {footer_start})",
                    rec.name,
                    rec.offset,
                    rec.len()
                )));
            }
            records.push(rec);
        }
        if f.remaining() != 0 {
            return Err(Error::Malformed("trailing bytes in shard footer".into()));
        }
        Ok(Self { file_name: file_name.to_string(), num_groups, records, file_len, footer_crc })
    }

    /// Total images across the shard's records.
    pub fn num_images(&self) -> usize {
        self.records.iter().map(|r| r.num_images as usize).sum()
    }

    /// Total record-data bytes (excluding header, footer, and trailer).
    pub fn data_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.len()).sum()
    }

    /// Record-data bytes a loader reads per epoch at scan group `g`.
    pub fn bytes_at_group(&self, g: usize) -> u64 {
        self.records.iter().map(|r| r.prefix_len(g)).sum()
    }
}

/// One shard's summary line in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSummary {
    /// Shard file name, relative to the container directory.
    pub file_name: String,
    /// Expected shard file length in bytes.
    pub file_len: u64,
    /// Records in the shard.
    pub records: u32,
    /// Images in the shard.
    pub images: u32,
    /// Expected CRC-32 of the shard's footer — ties the manifest to the
    /// exact shard files it was written with.
    pub footer_crc: u32,
}

/// The container manifest: shard enumeration plus shared parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerManifest {
    /// Container format version.
    pub version: u16,
    /// Scan groups per record (uniform across the container).
    pub num_groups: u16,
    /// Shards in order.
    pub shards: Vec<ShardSummary>,
}

impl ContainerManifest {
    /// Total records across all shards.
    pub fn num_records(&self) -> usize {
        self.shards.iter().map(|s| s.records as usize).sum()
    }

    /// Total images across all shards.
    pub fn num_images(&self) -> usize {
        self.shards.iter().map(|s| s.images as usize).sum()
    }

    /// Total bytes of all shard files.
    pub fn total_file_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.file_len).sum()
    }

    /// Serializes the manifest (ending in a CRC-32 of all prior bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        put_u16(&mut out, self.version);
        put_u16(&mut out, self.num_groups);
        debug_assert!(self.shards.len() <= u32::MAX as usize);
        // pcr-lint: allow(no-truncating-cast) — writer side; a container
        // cannot reach 2^32 shard files, asserted above.
        put_u32(&mut out, self.shards.len() as u32);
        for s in &self.shards {
            put_bytes(&mut out, s.file_name.as_bytes());
            put_u64(&mut out, s.file_len);
            put_u32(&mut out, s.records);
            put_u32(&mut out, s.images);
            put_u32(&mut out, s.footer_crc);
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Parses a serialized manifest, verifying its checksum.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        if data.len() < 4 {
            return Err(Error::Truncated { context: "manifest checksum" });
        }
        let (body, tail) = data.split_at(data.len() - 4);
        let stored = <[u8; 4]>::try_from(tail)
            .map(u32::from_le_bytes)
            .map_err(|_| Error::Truncated { context: "manifest checksum" })?;
        if crc32(body) != stored {
            return Err(Error::Corrupt("manifest CRC mismatch".into()));
        }
        let mut r = Reader::new(body);
        if r.bytes(4, "manifest magic")? != MANIFEST_MAGIC {
            return Err(Error::BadMagic);
        }
        let version = r.u16("manifest version")?;
        if version != CONTAINER_VERSION {
            return Err(Error::BadVersion(version));
        }
        let num_groups = r.u16("manifest group count")?;
        let n = r.u32("manifest shard count")? as usize;
        // Bound the claimed count by the bytes actually present (each
        // entry is at least a name length + file_len + three u32s).
        if n > r.remaining() / (4 + 8 + 4 + 4 + 4) {
            return Err(Error::Malformed(format!(
                "manifest claims {n} shards in {} bytes",
                r.remaining()
            )));
        }
        let mut shards = Vec::with_capacity(n); // pcr-lint: allow(bounded-alloc) — n bounded by remaining/24 above
        for _ in 0..n {
            let file_name = String::from_utf8(r.prefixed_bytes("shard file name")?.to_vec())
                .map_err(|_| Error::Malformed("shard file name not UTF-8".into()))?;
            let file_len = r.u64("shard file length")?;
            let records = r.u32("shard record count")?;
            let images = r.u32("shard image count")?;
            let footer_crc = r.u32("shard footer crc")?;
            shards.push(ShardSummary { file_name, file_len, records, images, footer_crc });
        }
        if r.remaining() != 0 {
            return Err(Error::Malformed("trailing bytes in manifest".into()));
        }
        Ok(Self { version, num_groups, shards })
    }
}

/// Serializes one shard (header + records + footer + trailer) from record
/// byte blobs and their metadata. `metas` must parallel `records`.
fn build_shard(num_groups: u16, records: &[(&crate::dataset::RecordMeta, &[u8])]) -> Vec<u8> {
    let data_len: usize = records.iter().map(|(_, b)| b.len()).sum();
    // pcr-lint: allow(bounded-alloc) — writer side: data_len is the sum of
    // in-memory record buffers already held by the caller.
    let mut out = Vec::with_capacity(SHARD_HEADER_LEN as usize + data_len);
    out.extend_from_slice(SHARD_MAGIC);
    put_u16(&mut out, CONTAINER_VERSION);
    put_u16(&mut out, num_groups);
    debug_assert!(records.len() <= u32::MAX as usize);
    // pcr-lint: allow(no-truncating-cast) — writer side; asserted above
    put_u32(&mut out, records.len() as u32);
    debug_assert_eq!(out.len() as u64, SHARD_HEADER_LEN);
    let mut offsets = Vec::with_capacity(records.len()); // pcr-lint: allow(bounded-alloc) — len of caller's slice
    for (_, bytes) in records {
        offsets.push(out.len() as u64);
        out.extend_from_slice(bytes);
    }
    let mut footer = Vec::new();
    for ((meta, bytes), offset) in records.iter().zip(offsets) {
        put_bytes(&mut footer, meta.name.as_bytes());
        put_u64(&mut footer, offset);
        put_u32(&mut footer, meta.num_images);
        for &o in &meta.group_offsets {
            put_u64(&mut footer, o);
        }
        for &l in &meta.labels {
            put_u32(&mut footer, l);
        }
        put_u32(&mut footer, crc32(bytes));
    }
    let footer_crc = crc32(&footer);
    debug_assert!(footer.len() <= u32::MAX as usize);
    // pcr-lint: allow(no-truncating-cast) — writer side; asserted above
    let footer_len = footer.len() as u32;
    out.extend_from_slice(&footer);
    put_u32(&mut out, footer_len);
    put_u32(&mut out, footer_crc);
    out.extend_from_slice(FOOTER_MAGIC);
    out
}

/// Writes `dataset` as a sharded container under `dir` with
/// `records_per_shard` records per shard file. Creates the directory if
/// needed; refuses to overwrite an existing manifest. Returns the
/// manifest that was written.
pub fn write_container(
    dataset: &PcrDataset,
    dir: &Path,
    records_per_shard: usize,
) -> Result<ContainerManifest> {
    if dataset.records.is_empty() {
        return Err(Error::BadInput("container needs at least one record".into()));
    }
    let records_per_shard = records_per_shard.max(1);
    fs::create_dir_all(dir).map_err(io_err("create container directory"))?;
    let manifest_path = dir.join(MANIFEST_FILE);
    if manifest_path.exists() {
        return Err(Error::BadInput(format!(
            "{} already contains a PCR container",
            dir.display()
        )));
    }
    let num_groups = u16::try_from(dataset.db.num_groups())
        .map_err(|_| Error::BadInput("group count exceeds u16".into()))?;
    let mut shards = Vec::new();
    let entries: Vec<(&crate::dataset::RecordMeta, &[u8])> = dataset
        .db
        .records
        .iter()
        .zip(dataset.records.iter().map(Vec::as_slice))
        .collect();
    for (i, chunk) in entries.chunks(records_per_shard).enumerate() {
        let file_name = format!("shard-{i:05}.pcrshard");
        let bytes = build_shard(num_groups, chunk);
        let index = ShardIndex::parse(&file_name, &bytes).map_err(|e| {
            Error::Malformed(format!("freshly written shard does not parse back: {e}"))
        })?;
        fs::write(dir.join(&file_name), &bytes).map_err(io_err("write shard"))?;
        let records = u32::try_from(chunk.len())
            .map_err(|_| Error::BadInput("too many records per shard".into()))?;
        let images = u32::try_from(index.num_images())
            .map_err(|_| Error::BadInput("too many images per shard".into()))?;
        shards.push(ShardSummary {
            file_name,
            file_len: bytes.len() as u64,
            records,
            images,
            footer_crc: index.footer_crc,
        });
    }
    let manifest = ContainerManifest { version: CONTAINER_VERSION, num_groups, shards };
    fs::write(manifest_path, manifest.to_bytes()).map_err(io_err("write manifest"))?;
    Ok(manifest)
}

/// An opened container: the manifest plus every shard's parsed index.
///
/// Opening reads only the manifest and each shard's header and footer
/// (one tail read per shard); record bytes are read later, when a loader
/// streams them through an object store or [`PcrContainer::verify`]
/// checksums them.
#[derive(Debug, Clone)]
pub struct PcrContainer {
    /// Directory the container lives in.
    pub dir: PathBuf,
    /// The parsed manifest.
    pub manifest: ContainerManifest,
    /// Parsed shard indexes, parallel to `manifest.shards`.
    pub shards: Vec<ShardIndex>,
}

impl PcrContainer {
    /// Opens a container directory: parses the manifest, then each
    /// shard's header and footer index, cross-checking file lengths and
    /// footer CRCs against the manifest.
    pub fn open(dir: &Path) -> Result<Self> {
        let manifest_bytes =
            fs::read(dir.join(MANIFEST_FILE)).map_err(io_err("read manifest"))?;
        let manifest = ContainerManifest::from_bytes(&manifest_bytes)?;
        // pcr-lint: allow(bounded-alloc) — len of an already-parsed, size-validated Vec
        let mut shards = Vec::with_capacity(manifest.shards.len());
        for summary in &manifest.shards {
            let path = dir.join(&summary.file_name);
            let index = read_shard_index(&path, summary)?;
            shards.push(index);
        }
        Ok(Self { dir: dir.to_path_buf(), manifest, shards })
    }

    /// Scan groups per record.
    pub fn num_groups(&self) -> usize {
        self.manifest.num_groups as usize
    }

    /// Total records across all shards.
    pub fn num_records(&self) -> usize {
        self.manifest.num_records()
    }

    /// Total images across all shards.
    pub fn num_images(&self) -> usize {
        self.manifest.num_images()
    }

    /// Total record-data bytes at full quality.
    pub fn total_data_bytes(&self) -> u64 {
        self.shards.iter().map(ShardIndex::data_bytes).sum()
    }

    /// Record-data bytes a loader reads per epoch at scan group `g` — the
    /// fidelity byte breakdown `pcr inspect` prints.
    pub fn bytes_at_group(&self, g: usize) -> u64 {
        self.shards.iter().map(|s| s.bytes_at_group(g)).sum()
    }

    /// Path of shard `i`.
    ///
    /// # Panics
    /// Like slice indexing, panics when `i` is not a valid shard index.
    pub fn shard_path(&self, i: usize) -> PathBuf {
        // pcr-lint: allow(no-panic-in-hot-path) — documented index contract
        self.dir.join(&self.manifest.shards[i].file_name)
    }

    /// Resolves a global record index (dataset order: shard by shard) to
    /// `(shard index, record)`.
    pub fn record(&self, global: usize) -> Option<(usize, &ShardRecord)> {
        let mut idx = global;
        for (s, shard) in self.shards.iter().enumerate() {
            if idx < shard.records.len() {
                // pcr-lint: allow(no-panic-in-hot-path) — idx < len checked just above
                return Some((s, &shard.records[idx]));
            }
            idx -= shard.records.len();
        }
        None
    }

    /// Reads shard `i`'s full file from disk.
    ///
    /// # Panics
    /// Like slice indexing, panics when `i` is not a valid shard index.
    pub fn read_shard(&self, i: usize) -> Result<Vec<u8>> {
        let path = self.shard_path(i);
        let bytes = fs::read(&path).map_err(io_err("read shard"))?;
        // pcr-lint: allow(no-panic-in-hot-path) — documented index contract
        let expected = self.manifest.shards[i].file_len;
        if bytes.len() as u64 != expected {
            return Err(Error::Malformed(format!(
                "{}: {} bytes on disk, manifest says {expected}",
                path.display(),
                bytes.len(),
            )));
        }
        Ok(bytes)
    }

    /// Reads shard `i` and verifies every record's CRC-32 against the
    /// footer index, rejecting corrupted data.
    ///
    /// # Panics
    /// Like slice indexing, panics when `i` is not a valid shard index.
    pub fn read_shard_verified(&self, i: usize) -> Result<Vec<u8>> {
        let bytes = self.read_shard(i)?;
        // pcr-lint: allow(no-panic-in-hot-path) — documented index contract
        for rec in &self.shards[i].records {
            let start = rec.offset as usize;
            let end = start + rec.len() as usize;
            let stored = rec.crc32;
            // Record ranges were validated against the footer start at
            // parse time, but re-check here so a hand-built index cannot
            // panic the integrity pass.
            let data = bytes
                .get(start..end)
                .ok_or_else(|| Error::Corrupt(format!("record {} out of shard bounds", rec.name)))?;
            let actual = crc32(data);
            if actual != stored {
                // pcr-lint: allow(no-panic-in-hot-path) — same shard index as above
                let file_name = &self.manifest.shards[i].file_name;
                return Err(Error::Corrupt(format!(
                    "{file_name}: record {} CRC mismatch (stored {stored:#010x}, \
                     computed {actual:#010x})",
                    rec.name
                )));
            }
        }
        Ok(bytes)
    }

    /// Full integrity pass: re-reads every shard and verifies every
    /// record checksum. `Ok(())` means every byte of record data matches
    /// the footers the manifest vouches for.
    pub fn verify(&self) -> Result<()> {
        for i in 0..self.shards.len() {
            self.read_shard_verified(i)?;
        }
        Ok(())
    }
}

/// Reads and parses one shard's index, reading only the header and the
/// footer region (not the record data), and cross-checks it against the
/// manifest summary.
fn read_shard_index(path: &Path, summary: &ShardSummary) -> Result<ShardIndex> {
    let mut file = fs::File::open(path).map_err(io_err("open shard"))?;
    let file_len = file.metadata().map_err(io_err("stat shard"))?.len();
    if file_len != summary.file_len {
        return Err(Error::Malformed(format!(
            "{}: {file_len} bytes on disk, manifest says {}",
            path.display(),
            summary.file_len
        )));
    }
    if file_len < SHARD_HEADER_LEN + SHARD_TRAILER_LEN {
        return Err(Error::Truncated { context: "shard trailer" });
    }
    // Tail read: trailer tells us how far back the footer starts.
    let mut trailer = [0u8; SHARD_TRAILER_LEN as usize];
    file.seek(SeekFrom::End(-(SHARD_TRAILER_LEN as i64))).map_err(io_err("seek shard"))?;
    file.read_exact(&mut trailer).map_err(io_err("read shard trailer"))?;
    let footer_len = u64::from(Reader::new(&trailer).u32("footer length")?);
    let tail_len = (SHARD_TRAILER_LEN + footer_len).min(file_len - SHARD_HEADER_LEN);
    // Header + footer + trailer, skipping the record data in between.
    let mut head = [0u8; SHARD_HEADER_LEN as usize];
    file.seek(SeekFrom::Start(0)).map_err(io_err("seek shard"))?;
    file.read_exact(&mut head).map_err(io_err("read shard header"))?;
    // pcr-lint: allow(bounded-alloc) — tail_len clamped to the on-disk file size just above
    let mut tail = vec![0u8; tail_len as usize];
    file.seek(SeekFrom::End(-(tail_len as i64))).map_err(io_err("seek shard"))?;
    file.read_exact(&mut tail).map_err(io_err("read shard footer"))?;
    // Reassemble a sparse image of the file for the parser: the record
    // region's contents are irrelevant to index parsing (offsets are
    // validated against the footer start, data is not checksummed here).
    // pcr-lint: allow(bounded-alloc) — capacity bounded by the on-disk file size
    let mut image = Vec::with_capacity((SHARD_HEADER_LEN + file_len - tail_len) as usize);
    image.extend_from_slice(&head);
    image.resize((file_len - tail_len) as usize, 0);
    image.extend_from_slice(&tail);
    let file_name =
        path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let index = ShardIndex::parse(&file_name, &image)?;
    if index.footer_crc != summary.footer_crc {
        return Err(Error::Corrupt(format!(
            "{}: footer CRC {:#010x} does not match manifest {:#010x}",
            path.display(),
            index.footer_crc,
            summary.footer_crc
        )));
    }
    Ok(index)
}

fn io_err(context: &'static str) -> impl Fn(std::io::Error) -> Error {
    move |e| Error::BadInput(format!("{context}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::PcrDatasetBuilder;
    use crate::record::{PcrRecord, SampleMeta};
    use pcr_jpeg::ImageBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pcr-container-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn build(n_images: usize, per_record: usize) -> PcrDataset {
        let mut b = PcrDatasetBuilder::new(per_record, 10).with_name_prefix("train");
        for i in 0..n_images as u32 {
            let mut data = Vec::new();
            for y in 0..24u32 {
                for x in 0..24u32 {
                    data.push(((x * 5 + y * 3 + i * 11) % 256) as u8);
                    data.push(((x + y) % 256) as u8);
                    data.push((x % 256) as u8);
                }
            }
            let img = ImageBuf::from_raw(24, 24, 3, data).unwrap();
            b.add_image(SampleMeta { label: i % 3, id: format!("f{i}") }, &img, 85).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn pack_open_roundtrip_preserves_all_metadata() {
        let dir = tmpdir("roundtrip");
        let ds = build(10, 2); // 5 records
        let manifest = write_container(&ds, &dir, 2).unwrap();
        assert_eq!(manifest.shards.len(), 3); // 2 + 2 + 1 records
        let c = PcrContainer::open(&dir).unwrap();
        assert_eq!(c.num_records(), 5);
        assert_eq!(c.num_images(), 10);
        assert_eq!(c.num_groups(), 10);
        assert_eq!(c.total_data_bytes(), ds.db.total_bytes());
        for g in 0..=10 {
            assert_eq!(c.bytes_at_group(g), ds.db.bytes_at_group(g), "group {g}");
        }
        // Record names, labels, and group offsets survive byte-for-byte.
        for (i, meta) in ds.db.records.iter().enumerate() {
            let (_, rec) = c.record(i).unwrap();
            assert_eq!(rec.name, meta.name);
            assert_eq!(rec.labels, meta.labels);
            assert_eq!(rec.group_offsets, meta.group_offsets);
        }
        c.verify().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_ranges_decode_as_records() {
        let dir = tmpdir("decode");
        let ds = build(6, 3);
        write_container(&ds, &dir, 1).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let bytes = c.read_shard_verified(0).unwrap();
        let (_, rec_meta) = c.record(0).unwrap();
        let start = rec_meta.offset as usize;
        // Full record parses; a scan-group-2 prefix decodes at group 2.
        let full = PcrRecord::parse(&bytes[start..start + rec_meta.len() as usize]).unwrap();
        assert_eq!(full.num_images(), 3);
        let prefix = &bytes[start..start + rec_meta.prefix_len(2) as usize];
        let view = PcrRecord::parse(prefix).unwrap();
        assert_eq!(view.available_groups(), 2);
        assert_eq!(view.decode_image(0, 2).unwrap().width(), 24);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_record_fails_verification() {
        let dir = tmpdir("corrupt");
        let ds = build(4, 2);
        write_container(&ds, &dir, 2).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        // Flip one byte in the middle of the first record's data.
        let path = c.shard_path(0);
        let mut bytes = fs::read(&path).unwrap();
        let (_, rec) = c.record(0).unwrap();
        let victim = rec.offset as usize + rec.len() as usize / 2;
        bytes[victim] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let err = c.verify().unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_footer_is_rejected_at_open() {
        let dir = tmpdir("footer");
        let ds = build(4, 2);
        write_container(&ds, &dir, 2).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let path = c.shard_path(0);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a label inside the footer (between data end and trailer).
        let n = bytes.len();
        bytes[n - SHARD_TRAILER_LEN as usize - 5] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = PcrContainer::open(&dir).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_shard_is_rejected_at_open() {
        let dir = tmpdir("trunc");
        let ds = build(4, 4);
        write_container(&ds, &dir, 4).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let path = c.shard_path(0);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(PcrContainer::open(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crafted_offset_overflow_is_malformed_not_panic() {
        let dir = tmpdir("overflow");
        let ds = build(2, 2);
        write_container(&ds, &dir, 2).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let mut bytes = fs::read(c.shard_path(0)).unwrap();
        let n = bytes.len();
        let footer_len =
            u32::from_le_bytes(bytes[n - 12..n - 8].try_into().unwrap()) as usize;
        let footer_start = n - 12 - footer_len;
        // Patch the first record's offset (right after its prefixed name)
        // to near-u64::MAX, then recompute the footer CRC so only the
        // bounds check can reject it.
        let name_len =
            u32::from_le_bytes(bytes[footer_start..footer_start + 4].try_into().unwrap())
                as usize;
        let off_pos = footer_start + 4 + name_len;
        bytes[off_pos..off_pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let crc = crc32(&bytes[footer_start..n - 12]);
        bytes[n - 8..n - 4].copy_from_slice(&crc.to_le_bytes());
        let err = ShardIndex::parse("shard-00000.pcrshard", &bytes).unwrap_err();
        assert!(matches!(err, Error::Malformed(_)), "{err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn decreasing_group_offsets_are_malformed_not_panic() {
        let dir = tmpdir("monotone");
        let ds = build(2, 2);
        write_container(&ds, &dir, 2).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let mut bytes = fs::read(c.shard_path(0)).unwrap();
        let n = bytes.len();
        let footer_len =
            u32::from_le_bytes(bytes[n - 12..n - 8].try_into().unwrap()) as usize;
        let footer_start = n - 12 - footer_len;
        // Patch group_offsets[1] of the first record (after name, offset,
        // and image count) to exceed group_offsets[2], recomputing the
        // footer CRC so only the monotonicity check can reject it.
        let name_len =
            u32::from_le_bytes(bytes[footer_start..footer_start + 4].try_into().unwrap())
                as usize;
        let go1 = footer_start + 4 + name_len + 8 + 4 + 8;
        bytes[go1..go1 + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let crc = crc32(&bytes[footer_start..n - 12]);
        bytes[n - 8..n - 4].copy_from_slice(&crc.to_le_bytes());
        let err = ShardIndex::parse("shard-00000.pcrshard", &bytes).unwrap_err();
        assert!(matches!(err, Error::Malformed(_)), "{err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_record_count_is_malformed_not_abort() {
        let dir = tmpdir("count");
        let ds = build(2, 2);
        write_container(&ds, &dir, 2).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let mut bytes = fs::read(c.shard_path(0)).unwrap();
        // The header's record_count is not covered by any CRC; a flipped
        // bit there must not drive a giant allocation.
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = ShardIndex::parse("shard-00000.pcrshard", &bytes).unwrap_err();
        assert!(matches!(err, Error::Malformed(_)), "{err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_roundtrip_and_corruption() {
        let dir = tmpdir("manifest");
        let ds = build(6, 2);
        let manifest = write_container(&ds, &dir, 2).unwrap();
        let bytes = manifest.to_bytes();
        assert_eq!(ContainerManifest::from_bytes(&bytes).unwrap(), manifest);
        let mut bad = bytes.clone();
        bad[6] ^= 0x10;
        assert!(matches!(ContainerManifest::from_bytes(&bad), Err(Error::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn refuses_double_pack() {
        let dir = tmpdir("double");
        let ds = build(4, 2);
        write_container(&ds, &dir, 2).unwrap();
        assert!(write_container(&ds, &dir, 2).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_version_is_rejected() {
        let dir = tmpdir("version");
        let ds = build(2, 2);
        write_container(&ds, &dir, 2).unwrap();
        let c = PcrContainer::open(&dir).unwrap();
        let path = c.shard_path(0);
        let mut bytes = fs::read(&path).unwrap();
        bytes[4] = 0xFE; // version low byte
        fs::write(&path, &bytes).unwrap();
        // The shard index parse rejects the version before any CRC check.
        let err = ShardIndex::parse("shard-00000.pcrshard", &bytes).unwrap_err();
        assert!(matches!(err, Error::BadVersion(_)), "{err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
