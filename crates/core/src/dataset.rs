//! Dataset-level PCR organisation: many `.pcr` records plus the metadata
//! database (the SQLite/RocksDB role in the paper's implementation) that
//! maps records to byte offsets per scan group so loaders can plan partial
//! reads without touching the records themselves.

use crate::error::{Error, Result};
use crate::record::{PcrRecord, PcrRecordBuilder, SampleMeta};
use crate::wire::{put_bytes, put_u16, put_u32, put_u64, Reader};
use pcr_jpeg::ImageBuf;

/// Magic prefix of a serialized metadata database.
pub const DB_MAGIC: &[u8; 4] = b"PCDB";

/// Metadata for one record, sufficient to plan reads at any scan group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordMeta {
    /// Record name (e.g. `train-00017.pcr`).
    pub name: String,
    /// Number of images in the record.
    pub num_images: u32,
    /// `group_offsets[g]` = bytes to read to decode at group `g`
    /// (`g == 0` covers metadata + headers only; length `num_groups + 1`).
    pub group_offsets: Vec<u64>,
    /// Labels of the record's images, in order.
    pub labels: Vec<u32>,
}

impl RecordMeta {
    /// Record length in bytes.
    pub fn total_len(&self) -> u64 {
        *self.group_offsets.last().expect("offsets nonempty")
    }

    /// Bytes to read to decode every image of this record at scan group
    /// `g`, clamped to the record's group count — the canonical
    /// prefix-length computation every loader plans reads with.
    pub fn prefix_len(&self, g: usize) -> u64 {
        self.group_offsets[g.min(self.group_offsets.len() - 1)]
    }
}

/// The PCR metadata database: one entry per record.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetaDb {
    /// Record entries in dataset order.
    pub records: Vec<RecordMeta>,
}

impl MetaDb {
    /// Number of scan groups (from the first record; uniform by construction).
    pub fn num_groups(&self) -> usize {
        self.records.first().map_or(0, |r| r.group_offsets.len() - 1)
    }

    /// Total images across all records.
    pub fn num_images(&self) -> usize {
        self.records.iter().map(|r| r.num_images as usize).sum()
    }

    /// Total dataset bytes at full quality.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.total_len()).sum()
    }

    /// Total bytes read per epoch when loading at scan group `g`.
    pub fn bytes_at_group(&self, g: usize) -> u64 {
        self.records.iter().map(|r| r.group_offsets[g]).sum()
    }

    /// Mean bytes per image at scan group `g` — the quantity whose ratio
    /// predicts the paper's speedups (Lemma A.3).
    pub fn mean_image_bytes_at_group(&self, g: usize) -> f64 {
        let n = self.num_images();
        if n == 0 {
            0.0
        } else {
            self.bytes_at_group(g) as f64 / n as f64
        }
    }

    /// Serializes the database.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(DB_MAGIC);
        put_u32(&mut out, self.records.len() as u32);
        put_u16(&mut out, self.num_groups() as u16);
        for r in &self.records {
            put_bytes(&mut out, r.name.as_bytes());
            put_u32(&mut out, r.num_images);
            for &off in &r.group_offsets {
                put_u64(&mut out, off);
            }
            for &l in &r.labels {
                put_u32(&mut out, l);
            }
        }
        out
    }

    /// Parses a serialized database.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        let mut r = Reader::new(data);
        if r.bytes(4, "db magic")? != DB_MAGIC {
            return Err(Error::BadMagic);
        }
        let n = r.u32("record count")? as usize;
        let num_groups = r.u16("group count")? as usize;
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let name = String::from_utf8(r.prefixed_bytes("record name")?.to_vec())
                .map_err(|_| Error::Malformed("record name not UTF-8".into()))?;
            let num_images = r.u32("image count")?;
            let mut group_offsets = Vec::with_capacity(num_groups + 1);
            for _ in 0..=num_groups {
                group_offsets.push(r.u64("group offset")?);
            }
            let mut labels = Vec::with_capacity(num_images as usize);
            for _ in 0..num_images {
                labels.push(r.u32("label")?);
            }
            records.push(RecordMeta { name, num_images, group_offsets, labels });
        }
        Ok(Self { records })
    }
}

/// An in-memory PCR dataset "directory": record blobs plus the metadata DB.
#[derive(Debug, Default)]
pub struct PcrDataset {
    /// Serialized `.pcr` records.
    pub records: Vec<Vec<u8>>,
    /// The metadata database.
    pub db: MetaDb,
}

impl PcrDataset {
    /// Parses record `i` (full bytes).
    pub fn open_record(&self, i: usize) -> Result<PcrRecord<'_>> {
        PcrRecord::parse(&self.records[i])
    }

    /// Returns the byte prefix of record `i` sufficient for scan group `g` —
    /// what a loader would issue as a single sequential read.
    pub fn record_prefix(&self, i: usize, g: usize) -> &[u8] {
        let end = self.db.records[i].group_offsets[g] as usize;
        &self.records[i][..end.min(self.records[i].len())]
    }

    /// Number of records.
    pub fn num_records(&self) -> usize {
        self.records.len()
    }
}

/// Streams images into fixed-size records, building the dataset and its
/// metadata database in one pass (the paper's encoder component).
pub struct PcrDatasetBuilder {
    images_per_record: usize,
    num_groups: usize,
    restart_interval: u16,
    name_prefix: String,
    current: PcrRecordBuilder,
    dataset: PcrDataset,
}

impl PcrDatasetBuilder {
    /// Creates a builder emitting records of `images_per_record` images with
    /// `num_groups` scan groups.
    pub fn new(images_per_record: usize, num_groups: usize) -> Self {
        Self {
            images_per_record: images_per_record.max(1),
            num_groups,
            restart_interval: 0,
            name_prefix: "record".to_string(),
            current: PcrRecordBuilder::new(num_groups),
            dataset: PcrDataset::default(),
        }
    }

    /// Sets the record name prefix.
    pub fn with_name_prefix(mut self, prefix: &str) -> Self {
        self.name_prefix = prefix.to_string();
        self
    }

    /// Requests restart markers every `interval` MCU units in images the
    /// records encode (see [`PcrRecordBuilder::with_restart_interval`]).
    /// Call before adding images.
    pub fn with_restart_interval(mut self, interval: u16) -> Self {
        self.restart_interval = interval;
        self.current = PcrRecordBuilder::new(self.num_groups).with_restart_interval(interval);
        self
    }

    /// Adds a raw image (progressive-encoded at `quality`).
    pub fn add_image(&mut self, meta: SampleMeta, img: &ImageBuf, quality: u8) -> Result<()> {
        self.current.add_image(meta, img, quality)?;
        self.maybe_flush()
    }

    /// Adds an existing progressive JPEG.
    pub fn add_progressive_jpeg(&mut self, meta: SampleMeta, jpeg: Vec<u8>) -> Result<()> {
        self.current.add_progressive_jpeg(meta, jpeg)?;
        self.maybe_flush()
    }

    /// Adds a baseline JPEG (lossless transcode, the `jpegtran` step).
    pub fn add_baseline_jpeg(&mut self, meta: SampleMeta, jpeg: &[u8]) -> Result<()> {
        self.current.add_baseline_jpeg(meta, jpeg)?;
        self.maybe_flush()
    }

    fn maybe_flush(&mut self) -> Result<()> {
        if self.current.len() >= self.images_per_record {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        if self.current.is_empty() {
            return Ok(());
        }
        let builder = std::mem::replace(
            &mut self.current,
            PcrRecordBuilder::new(self.num_groups).with_restart_interval(self.restart_interval),
        );
        let bytes = builder.build()?;
        let rec = PcrRecord::parse(&bytes)?;
        let name = format!("{}-{:05}.pcr", self.name_prefix, self.dataset.records.len());
        let meta = RecordMeta {
            name,
            num_images: rec.num_images() as u32,
            group_offsets: rec
                .cumulative_group_offsets()
                .into_iter()
                .map(|o| o as u64)
                .collect(),
            labels: rec.labels().to_vec(),
        };
        drop(rec);
        self.dataset.db.records.push(meta);
        self.dataset.records.push(bytes);
        Ok(())
    }

    /// Records flushed to the dataset so far (excludes the partial
    /// record still accumulating). Progress-reporting hook for packers.
    pub fn records_flushed(&self) -> usize {
        self.dataset.records.len()
    }

    /// Encoded bytes flushed to the dataset so far (excludes the partial
    /// record still accumulating). Progress-reporting hook for packers.
    pub fn bytes_flushed(&self) -> u64 {
        self.dataset.records.iter().map(|r| r.len() as u64).sum()
    }

    /// Flushes any partial record and returns the dataset.
    pub fn finish(mut self) -> Result<PcrDataset> {
        self.flush()?;
        if self.dataset.records.is_empty() {
            return Err(Error::BadInput("dataset needs at least one image".into()));
        }
        Ok(self.dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr_jpeg::ImageBuf;

    fn img(seed: u32) -> ImageBuf {
        let mut data = Vec::new();
        for y in 0..32u32 {
            for x in 0..32u32 {
                data.push(((x * 3 + y * 7 + seed * 13) % 256) as u8);
                data.push(((x + y + seed) % 256) as u8);
                data.push(((x * y) % 256) as u8);
            }
        }
        ImageBuf::from_raw(32, 32, 3, data).unwrap()
    }

    fn build(n_images: usize, per_record: usize) -> PcrDataset {
        let mut b = PcrDatasetBuilder::new(per_record, 10).with_name_prefix("train");
        for i in 0..n_images {
            b.add_image(
                SampleMeta { label: (i % 4) as u32, id: format!("i{i}") },
                &img(i as u32),
                85,
            )
            .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn records_are_chunked() {
        let ds = build(10, 4);
        assert_eq!(ds.num_records(), 3); // 4 + 4 + 2
        assert_eq!(ds.db.records[0].num_images, 4);
        assert_eq!(ds.db.records[2].num_images, 2);
        assert_eq!(ds.db.num_images(), 10);
        assert_eq!(ds.db.records[1].name, "train-00001.pcr");
    }

    #[test]
    fn db_offsets_match_records() {
        let ds = build(6, 3);
        for (i, meta) in ds.db.records.iter().enumerate() {
            let rec = ds.open_record(i).unwrap();
            let offs: Vec<u64> =
                rec.cumulative_group_offsets().into_iter().map(|o| o as u64).collect();
            assert_eq!(meta.group_offsets, offs);
            assert_eq!(meta.total_len() as usize, ds.records[i].len());
        }
    }

    #[test]
    fn db_serialization_roundtrip() {
        let ds = build(5, 2);
        let bytes = ds.db.to_bytes();
        let back = MetaDb::from_bytes(&bytes).unwrap();
        assert_eq!(back, ds.db);
    }

    #[test]
    fn prefix_reads_decode_via_db_plan() {
        let ds = build(4, 2);
        for g in [1usize, 2, 5] {
            for r in 0..ds.num_records() {
                let prefix = ds.record_prefix(r, g);
                assert_eq!(prefix.len() as u64, ds.db.records[r].group_offsets[g]);
                let rec = PcrRecord::parse(prefix).unwrap();
                assert_eq!(rec.available_groups(), g);
                let im = rec.decode_image(0, g).unwrap();
                assert_eq!(im.width(), 32);
            }
        }
    }

    #[test]
    fn bytes_at_group_monotone() {
        let ds = build(6, 3);
        let mut last = 0;
        for g in 0..=10 {
            let b = ds.db.bytes_at_group(g);
            assert!(b >= last);
            last = b;
        }
        assert_eq!(last, ds.db.total_bytes());
        assert!(ds.db.mean_image_bytes_at_group(1) < ds.db.mean_image_bytes_at_group(10));
    }

    #[test]
    fn empty_dataset_rejected() {
        let b = PcrDatasetBuilder::new(4, 10);
        assert!(b.finish().is_err());
    }
}
