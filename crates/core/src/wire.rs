//! Little-endian wire helpers for the hand-rolled binary formats.

use crate::error::{Error, Result};

/// Appends a `u16` in little-endian order.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` in little-endian order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed byte string (u32 length).
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    debug_assert!(v.len() <= u32::MAX as usize, "payload exceeds u32 length prefix");
    // pcr-lint: allow(no-truncating-cast) — writer side; record payloads are
    // bounded far below 4 GiB by the container format, asserted above.
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v);
}

/// Byte-at-a-time CRC-32 lookup table for the reflected polynomial
/// `0xEDB88320`, computed at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32; // pcr-lint: allow(no-truncating-cast) — i < 256
        let mut bit = 0;
        while bit < 8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc; // pcr-lint: allow(no-panic-in-hot-path) — i < 256
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `data` — the
/// checksum the sharded container format stores per record and per shard
/// footer. Table-driven: container opens verify every record by default,
/// so this runs over whole datasets, not just at pack time.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        // pcr-lint: allow(no-panic-in-hot-path) — index masked to 0..=255
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

/// Sequential reader with context-tagged truncation errors.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(Error::Truncated { context })?;
        let s = self.data.get(self.pos..end).ok_or(Error::Truncated { context })?;
        self.pos = end;
        Ok(s)
    }

    /// Reads `N` bytes as a fixed array (panic-free: the conversion is
    /// checked, not indexed).
    fn array<const N: usize>(&mut self, context: &'static str) -> Result<[u8; N]> {
        let b = self.bytes(N, context)?;
        <[u8; N]>::try_from(b).map_err(|_| Error::Truncated { context })
    }

    /// Reads a `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16> {
        Ok(u16::from_le_bytes(self.array(context)?))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array(context)?))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array(context)?))
    }

    /// Reads a u32-length-prefixed byte string.
    pub fn prefixed_bytes(&mut self, context: &'static str) -> Result<&'a [u8]> {
        let n = self.u32(context)? as usize;
        self.bytes(n, context)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEADBEEF);
        put_u64(&mut buf, 0x0123_4567_89AB_CDEF);
        put_bytes(&mut buf, b"hello");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u16("a").unwrap(), 0xBEEF);
        assert_eq!(r.u32("b").unwrap(), 0xDEADBEEF);
        assert_eq!(r.u64("c").unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.prefixed_bytes("d").unwrap(), b"hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn truncation_reports_context() {
        let mut r = Reader::new(&[1, 2]);
        match r.u32("frobnicator") {
            Err(Error::Truncated { context }) => assert_eq!(context, "frobnicator"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
