//! One-file-per-record filesystem persistence — the *legacy* toy layout,
//! kept for small debugging datasets and the tests that predate the
//! container. The canonical on-disk format is the **sharded container**
//! ([`crate::container`], spec in `docs/FORMAT.md`): it packs many
//! records per file with a footer index, per-record checksums, and a
//! manifest, which is what `pcr pack` writes and every loader streams.
//!
//! This module implements the paper's original description — the encoder
//! "transforms a set of JPEG files into a directory, which contains: a
//! database for PCR metadata, and at least one .pcr file" — literally.
//!
//! Layout on disk:
//!
//! ```text
//! <dir>/
//!   metadata.pcdb          # serialized MetaDb
//!   <prefix>-00000.pcr     # records, named as in the MetaDb
//!   <prefix>-00001.pcr
//!   ...
//! ```

use crate::dataset::{MetaDb, PcrDataset};
use crate::error::{Error, Result};
use std::fs;
use std::io::Read;
use std::path::Path;

/// File name of the metadata database inside a PCR directory.
pub const DB_FILE: &str = "metadata.pcdb";

impl PcrDataset {
    /// Writes the dataset as a directory of `.pcr` files plus the metadata
    /// database. Creates the directory if needed; refuses to overwrite an
    /// existing metadata file.
    pub fn write_to_dir(&self, dir: &Path) -> Result<()> {
        fs::create_dir_all(dir).map_err(io_err("create directory"))?;
        let db_path = dir.join(DB_FILE);
        if db_path.exists() {
            return Err(Error::BadInput(format!(
                "{} already contains a PCR dataset",
                dir.display()
            )));
        }
        for (meta, bytes) in self.db.records.iter().zip(&self.records) {
            fs::write(dir.join(&meta.name), bytes).map_err(io_err("write record"))?;
        }
        fs::write(db_path, self.db.to_bytes()).map_err(io_err("write metadata db"))?;
        Ok(())
    }

    /// Loads a dataset from a directory written by [`PcrDataset::write_to_dir`].
    pub fn load_from_dir(dir: &Path) -> Result<PcrDataset> {
        let db_bytes = fs::read(dir.join(DB_FILE)).map_err(io_err("read metadata db"))?;
        let db = MetaDb::from_bytes(&db_bytes)?;
        let mut records = Vec::with_capacity(db.records.len());
        for meta in &db.records {
            let path = dir.join(&meta.name);
            let mut f = fs::File::open(&path).map_err(io_err("open record"))?;
            let mut bytes = Vec::with_capacity(meta.total_len() as usize);
            f.read_to_end(&mut bytes).map_err(io_err("read record"))?;
            if bytes.len() as u64 != meta.total_len() {
                return Err(Error::Malformed(format!(
                    "{}: {} bytes on disk, metadata says {}",
                    meta.name,
                    bytes.len(),
                    meta.total_len()
                )));
            }
            records.push(bytes);
        }
        Ok(PcrDataset { records, db })
    }

    /// Reads only the byte prefix of one on-disk record needed for scan
    /// group `g` — the partial-read a production loader would issue with
    /// a ranged read / `pread`.
    pub fn read_record_prefix_from_dir(dir: &Path, db: &MetaDb, record: usize, g: usize) -> Result<Vec<u8>> {
        let meta = &db.records[record];
        let len = meta.group_offsets[g.min(meta.group_offsets.len() - 1)] as usize;
        let mut f = fs::File::open(dir.join(&meta.name)).map_err(io_err("open record"))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf).map_err(io_err("read record prefix"))?;
        Ok(buf)
    }
}

fn io_err(context: &'static str) -> impl Fn(std::io::Error) -> Error {
    move |e| Error::BadInput(format!("{context}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::PcrDatasetBuilder;
    use crate::record::{PcrRecord, SampleMeta};
    use pcr_jpeg::ImageBuf;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pcr-fsdir-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn build() -> PcrDataset {
        let mut b = PcrDatasetBuilder::new(3, 10).with_name_prefix("train");
        for i in 0..7u32 {
            let mut data = Vec::new();
            for y in 0..24u32 {
                for x in 0..24u32 {
                    data.push(((x * 5 + y * 3 + i * 11) % 256) as u8);
                    data.push(((x + y) % 256) as u8);
                    data.push((x % 256) as u8);
                }
            }
            let img = ImageBuf::from_raw(24, 24, 3, data).unwrap();
            b.add_image(SampleMeta { label: i % 2, id: format!("f{i}") }, &img, 85).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn write_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let ds = build();
        ds.write_to_dir(&dir).unwrap();
        let back = PcrDataset::load_from_dir(&dir).unwrap();
        assert_eq!(back.db, ds.db);
        assert_eq!(back.records, ds.records);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn refuses_double_write() {
        let dir = tmpdir("double");
        let ds = build();
        ds.write_to_dir(&dir).unwrap();
        assert!(ds.write_to_dir(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prefix_read_from_disk_decodes() {
        let dir = tmpdir("prefix");
        let ds = build();
        ds.write_to_dir(&dir).unwrap();
        for g in [1usize, 5] {
            let prefix =
                PcrDataset::read_record_prefix_from_dir(&dir, &ds.db, 0, g).unwrap();
            let rec = PcrRecord::parse(&prefix).unwrap();
            assert_eq!(rec.available_groups(), g);
            assert_eq!(rec.decode_image(0, g).unwrap().width(), 24);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn detects_truncated_record_on_disk() {
        let dir = tmpdir("trunc");
        let ds = build();
        ds.write_to_dir(&dir).unwrap();
        // Truncate the first record file.
        let name = &ds.db.records[0].name;
        let path = dir.join(name);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(PcrDataset::load_from_dir(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_db_is_clean_error() {
        let dir = tmpdir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(PcrDataset::load_from_dir(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
