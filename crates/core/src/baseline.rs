//! The baseline storage formats the paper compares PCRs against:
//!
//! * **File-per-Image** (PyTorch `ImageFolder` style): every image is its
//!   own blob, producing small random reads.
//! * **Record layout** (TFRecord / MXNet ImageRecord style): images at a
//!   *fixed* quality batched into large records, giving sequential reads but
//!   requiring one full dataset copy per quality level.

use crate::error::{Error, Result};
use crate::record::SampleMeta;
use crate::wire::{put_bytes, put_u32, put_u64, Reader};
use pcr_jpeg::{EncodeConfig, ImageBuf};

/// Magic prefix of a record file.
pub const RECORD_MAGIC: &[u8; 4] = b"TREC";

/// One entry of a File-per-Image dataset: a named blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageFile {
    /// Sample metadata.
    pub meta: SampleMeta,
    /// Encoded JPEG bytes.
    pub jpeg: Vec<u8>,
}

/// A File-per-Image dataset: a plain collection of independent blobs. Access
/// is inherently random (one small read per image).
#[derive(Debug, Default)]
pub struct FilePerImageDataset {
    files: Vec<ImageFile>,
}

impl FilePerImageDataset {
    /// Empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an encoded image.
    pub fn add_jpeg(&mut self, meta: SampleMeta, jpeg: Vec<u8>) {
        self.files.push(ImageFile { meta, jpeg });
    }

    /// Encodes and adds raw pixels at a fixed quality.
    pub fn add_image(&mut self, meta: SampleMeta, img: &ImageBuf, quality: u8) -> Result<()> {
        let jpeg = pcr_jpeg::encode(img, &EncodeConfig::baseline(quality))?;
        self.add_jpeg(meta, jpeg);
        Ok(())
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Entry accessor.
    pub fn get(&self, i: usize) -> &ImageFile {
        &self.files[i]
    }

    /// Decodes image `i`.
    pub fn decode(&self, i: usize) -> Result<ImageBuf> {
        Ok(pcr_jpeg::decode(&self.files[i].jpeg)?)
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> usize {
        self.files.iter().map(|f| f.jpeg.len()).sum()
    }
}

/// Builds a TFRecord-like record file: `[magic][count u32]` then per image
/// `[label u32][id bytes][jpeg bytes]` with u32 length prefixes, plus a
/// trailing u64 payload checksum (FNV-1a) in the TFRecord spirit.
#[derive(Debug, Default)]
pub struct RecordFileBuilder {
    entries: Vec<ImageFile>,
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl RecordFileBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an encoded image.
    pub fn add_jpeg(&mut self, meta: SampleMeta, jpeg: Vec<u8>) {
        self.entries.push(ImageFile { meta, jpeg });
    }

    /// Encodes raw pixels at a fixed (static) quality and adds them — this
    /// is the "re-encode the dataset per quality level" workflow PCRs avoid.
    pub fn add_image(&mut self, meta: SampleMeta, img: &ImageBuf, quality: u8) -> Result<()> {
        let jpeg = pcr_jpeg::encode(img, &EncodeConfig::baseline(quality))?;
        self.add_jpeg(meta, jpeg);
        Ok(())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the record file.
    pub fn build(self) -> Result<Vec<u8>> {
        if self.entries.is_empty() {
            return Err(Error::BadInput("record needs at least one image".into()));
        }
        let mut payload = Vec::new();
        for e in &self.entries {
            put_u32(&mut payload, e.meta.label);
            put_bytes(&mut payload, e.meta.id.as_bytes());
            put_bytes(&mut payload, &e.jpeg);
        }
        let mut out = Vec::with_capacity(payload.len() + 16);
        out.extend_from_slice(RECORD_MAGIC);
        put_u32(&mut out, self.entries.len() as u32);
        out.extend_from_slice(&payload);
        put_u64(&mut out, fnv1a(&payload));
        Ok(out)
    }
}

/// A parsed record file.
#[derive(Debug)]
pub struct RecordFile<'a> {
    entries: Vec<(SampleMeta, &'a [u8])>,
}

impl<'a> RecordFile<'a> {
    /// Parses and checksums a record file.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        let mut r = Reader::new(data);
        if r.bytes(4, "magic")? != RECORD_MAGIC {
            return Err(Error::BadMagic);
        }
        let count = r.u32("count")? as usize;
        let payload_start = r.pos();
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let label = r.u32("label")?;
            let id = String::from_utf8(r.prefixed_bytes("id")?.to_vec())
                .map_err(|_| Error::Malformed("id not UTF-8".into()))?;
            let jpeg = r.prefixed_bytes("jpeg")?;
            entries.push((SampleMeta { label, id }, jpeg));
        }
        let payload_end = r.pos();
        let checksum = r.u64("checksum")?;
        if fnv1a(&data[payload_start..payload_end]) != checksum {
            return Err(Error::Malformed("record checksum mismatch".into()));
        }
        Ok(Self { entries })
    }

    /// Number of images.
    pub fn num_images(&self) -> usize {
        self.entries.len()
    }

    /// Metadata of entry `i`.
    pub fn meta(&self, i: usize) -> &SampleMeta {
        &self.entries[i].0
    }

    /// Raw JPEG bytes of entry `i`.
    pub fn jpeg(&self, i: usize) -> &'a [u8] {
        self.entries[i].1
    }

    /// Decodes entry `i`.
    pub fn decode(&self, i: usize) -> Result<ImageBuf> {
        Ok(pcr_jpeg::decode(self.entries[i].1)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(seed: u8) -> ImageBuf {
        let mut data = Vec::new();
        for y in 0..24u32 {
            for x in 0..24u32 {
                data.push(((x * 7 + y + u32::from(seed) * 31) % 256) as u8);
                data.push(((x + y * 5) % 256) as u8);
                data.push(((x * y + u32::from(seed)) % 256) as u8);
            }
        }
        ImageBuf::from_raw(24, 24, 3, data).unwrap()
    }

    #[test]
    fn record_file_roundtrip() {
        let mut b = RecordFileBuilder::new();
        for i in 0..5u8 {
            b.add_image(SampleMeta { label: u32::from(i), id: format!("s{i}") }, &img(i), 80)
                .unwrap();
        }
        let bytes = b.build().unwrap();
        let rf = RecordFile::parse(&bytes).unwrap();
        assert_eq!(rf.num_images(), 5);
        assert_eq!(rf.meta(3).label, 3);
        assert_eq!(rf.meta(3).id, "s3");
        let decoded = rf.decode(2).unwrap();
        assert_eq!(decoded.width(), 24);
    }

    #[test]
    fn record_file_detects_corruption() {
        let mut b = RecordFileBuilder::new();
        b.add_image(SampleMeta { label: 0, id: "a".into() }, &img(1), 80).unwrap();
        let mut bytes = b.build().unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(RecordFile::parse(&bytes).is_err());
    }

    #[test]
    fn file_per_image_basics() {
        let mut ds = FilePerImageDataset::new();
        for i in 0..3u8 {
            ds.add_image(SampleMeta { label: u32::from(i), id: format!("f{i}") }, &img(i), 75)
                .unwrap();
        }
        assert_eq!(ds.len(), 3);
        assert!(ds.total_bytes() > 0);
        assert_eq!(ds.decode(1).unwrap().width(), 24);
        assert_eq!(ds.get(0).meta.id, "f0");
    }

    #[test]
    fn empty_record_rejected() {
        assert!(RecordFileBuilder::new().build().is_err());
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
    }
}
