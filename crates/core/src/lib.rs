//! # pcr-core
//!
//! Progressive Compressed Records (PCRs) — the storage format from
//! *"Progressive Compressed Records: Taking a Byte out of Deep Learning
//! Data"* (Kuchnik et al., VLDB 2021).
//!
//! A PCR record stores sample metadata ("scan group 0"), per-image JPEG
//! headers, and then *scan groups*: the scan-`g` deltas of every image in
//! the record stored contiguously. Reading the byte prefix up to the end of
//! group `g` yields every image at quality level `g` with purely sequential
//! I/O and zero space overhead versus a conventional record format.
//!
//! The crate also implements the two baseline layouts the paper compares
//! against (File-per-Image and fixed-quality record files) so experiments
//! can be run head-to-head.
//!
//! ```
//! use pcr_core::{PcrRecordBuilder, PcrRecord, SampleMeta};
//! use pcr_jpeg::ImageBuf;
//!
//! let img = ImageBuf::from_raw(32, 32, 3, vec![200; 32 * 32 * 3]).unwrap();
//! let mut builder = PcrRecordBuilder::with_default_groups();
//! builder.add_image(SampleMeta { label: 1, id: "cat".into() }, &img, 85).unwrap();
//! let bytes = builder.build().unwrap();
//!
//! // A loader reads only the prefix needed for scan group 2:
//! let full = PcrRecord::parse(&bytes).unwrap();
//! let prefix = &bytes[..full.offset_for_group(2)];
//! let view = PcrRecord::parse(prefix).unwrap();
//! assert_eq!(view.available_groups(), 2);
//! let approx = view.decode_image(0, 2).unwrap();
//! assert_eq!(approx.width(), 32);
//! ```

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod baseline;
pub mod colfooter;
pub mod container;
pub mod dataset;
pub mod declog;
pub mod error;
pub mod fsdir;
pub mod record;
pub mod wire;

pub use baseline::{FilePerImageDataset, RecordFile, RecordFileBuilder};
pub use colfooter::{ColumnarIndex, COLUMNAR_VERSION};
pub use container::{
    write_container, write_container_versioned, ContainerManifest, PcrContainer, ShardIndex,
    ShardRecord, ShardStats, ShardSummary, CONTAINER_VERSION, CONTAINER_VERSION_ROWS,
};
pub use dataset::{MetaDb, PcrDataset, PcrDatasetBuilder, RecordMeta};
pub use declog::{
    DecisionLog, DecisionLogWriter, DecisionRecord, DECISION_LOG_FILE, DECLOG_VERSION,
};
pub use error::{Error, Result};
pub use record::{
    PcrRecord, PcrRecordBuilder, RecordScratch, SampleMeta, SampleMetaRef, DEFAULT_NUM_GROUPS,
};
