//! The append-only fidelity decision log — the container's audit plane.
//!
//! Online fidelity control (paper §4.5) changes what bytes a training run
//! reads *while it runs*; without a durable record of those decisions the
//! artifact cannot answer "why did fidelity drop at epoch 40". This
//! module defines `decisions.pcrd`, an append-only, CRC-chained log that
//! rides in the container directory next to the manifest: one
//! [`DecisionRecord`] per controller decision (epoch, trigger kind,
//! per-group MSSIM probe scores, scan group chosen, bytes read vs a
//! fixed-fidelity epoch, cache hit rate, observed loss). The byte layout
//! is normative in FORMAT.md §7, with a worked hexdump.
//!
//! Design points:
//!
//! - **Append-only with a CRC chain.** Each record's trailing CRC-32
//!   covers the previous record's CRC plus this record's body, so a log
//!   can only be extended, never silently rewritten: editing any record
//!   breaks the chain at exactly that record. A new session resumes the
//!   chain from the last record on disk ([`DecisionLogWriter::open`]).
//! - **Parse-lenient, verify-strict.** [`DecisionLog::parse`] delivers
//!   every structurally decodable record even when chain CRCs mismatch
//!   (a forensics read of a damaged log must still show the decisions);
//!   [`DecisionLog::verify`] is the strict integrity pass, and
//!   `PcrContainer::verify` calls it whenever the log file is present.
//! - **Byte-deterministic.** The record deliberately excludes wall-clock
//!   throughput, so a seeded controller run replayed over the same
//!   container reproduces the log byte-for-byte — the golden-trace
//!   regression harness in `tests/golden_trace.rs` relies on this, and
//!   [`DecisionLog::diff`] renders a readable per-decision report when a
//!   replay diverges.

use crate::error::{Error, Result};
use crate::wire::{crc32, put_u16, put_u32, put_u64, Reader};
use pcr_metrics::{FidelityEpoch, TriggerKind};
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// File name of the decision log inside a container directory.
pub const DECISION_LOG_FILE: &str = "decisions.pcrd";

/// Magic bytes opening a decision-log file.
pub const DECLOG_MAGIC: &[u8; 4] = b"PCRD";

/// Decision-log format version this module reads and writes.
pub const DECLOG_VERSION: u16 = 1;

/// Header: magic (4) + version u16 + reserved u16.
const HEADER_LEN: usize = 8;

/// Fixed body bytes before the probe-score list: epoch u64 + trigger u8 +
/// scan_group u16 + bytes_read u64 + bytes_full u64 + images u64 +
/// cache_hit_rate u64 + loss u64 + score count u16.
const MIN_BODY_LEN: usize = 53;

/// Bytes per probe score: group u16 + MSSIM f64 bits.
const SCORE_LEN: usize = 10;

/// The 8 header bytes every decision log starts with.
fn header_bytes() -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN);
    h.extend_from_slice(DECLOG_MAGIC);
    put_u16(&mut h, DECLOG_VERSION);
    put_u16(&mut h, 0); // reserved
    h
}

/// The chain value before any record: CRC-32 of the file header. Every
/// record's stored chain is `crc32(previous chain LE ‖ record body)`.
pub fn genesis_chain() -> u32 {
    crc32(&header_bytes())
}

/// One controller decision, as stored in the log. This mirrors
/// [`FidelityEpoch`] minus `images_per_sec`: wall-clock throughput is
/// nondeterministic and would break byte-for-byte golden replays, so the
/// durable form carries `bytes_full` (what a fixed full-quality epoch
/// would have read) instead, which also makes the bytes-saved rollup
/// answerable from the artifact alone.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Epoch index the decision applied to.
    pub epoch: u64,
    /// Why this epoch ran at `scan_group`.
    pub trigger: TriggerKind,
    /// Scan group the epoch read at.
    pub scan_group: u16,
    /// Compressed bytes the epoch actually read.
    pub bytes_read: u64,
    /// Bytes a fixed full-quality epoch would have read.
    pub bytes_full: u64,
    /// Images delivered this epoch.
    pub images: u64,
    /// Store-wide cache hit rate at the end of the epoch.
    pub cache_hit_rate: f64,
    /// Training loss the controller observed.
    pub loss: f64,
    /// `(group, MSSIM-vs-full)` probe scores the controller selected
    /// from; empty when no probe ran (fixed-group runs).
    pub probe_scores: Vec<(u16, f64)>,
}

impl DecisionRecord {
    /// Bytes this decision saved versus a fixed full-quality epoch.
    pub fn bytes_saved(&self) -> u64 {
        self.bytes_full.saturating_sub(self.bytes_read)
    }

    /// Builds the durable form of a trace entry. `bytes_full` is the
    /// fixed-fidelity epoch cost the caller knows from its source.
    pub fn from_epoch(e: &FidelityEpoch, bytes_full: u64) -> Self {
        Self {
            epoch: e.epoch,
            trigger: e.trigger,
            scan_group: u16::try_from(e.scan_group).unwrap_or(u16::MAX),
            bytes_read: e.bytes_read,
            bytes_full,
            images: e.images,
            cache_hit_rate: e.cache_hit_rate,
            loss: e.loss,
            probe_scores: e.probe_scores.clone(),
        }
    }

    /// Rehydrates a trace entry; `images_per_sec` is not stored in the
    /// log (wall-clock), so the caller supplies it (commonly 0.0).
    pub fn to_epoch(&self, images_per_sec: f64) -> FidelityEpoch {
        FidelityEpoch {
            epoch: self.epoch,
            scan_group: usize::from(self.scan_group),
            trigger: self.trigger,
            probe_scores: self.probe_scores.clone(),
            bytes_read: self.bytes_read,
            images: self.images,
            images_per_sec,
            cache_hit_rate: self.cache_hit_rate,
            loss: self.loss,
            // Fault counters are trace-only observability; the durable
            // record does not carry them (FORMAT.md §7).
            faults: Default::default(),
        }
    }

    /// Serializes the record body (everything the chain CRC covers).
    fn encode_body(&self, out: &mut Vec<u8>) -> Result<()> {
        let n = u16::try_from(self.probe_scores.len()).map_err(|_| {
            Error::BadInput(format!(
                "decision record: {} probe scores exceed the u16 count field",
                self.probe_scores.len()
            ))
        })?;
        put_u64(out, self.epoch);
        out.push(self.trigger.wire());
        put_u16(out, self.scan_group);
        put_u64(out, self.bytes_read);
        put_u64(out, self.bytes_full);
        put_u64(out, self.images);
        put_u64(out, self.cache_hit_rate.to_bits());
        put_u64(out, self.loss.to_bits());
        put_u16(out, n);
        for &(group, score) in &self.probe_scores {
            put_u16(out, group);
            put_u64(out, score.to_bits());
        }
        Ok(())
    }

    /// Parses one record body (the bytes between the length prefix and
    /// the chain CRC).
    fn parse_body(body: &[u8]) -> Result<Self> {
        let mut r = Reader::new(body);
        let epoch = r.u64("declog epoch")?;
        let trigger_byte = r.bytes(1, "declog trigger")?.first().copied().unwrap_or(0);
        let trigger = TriggerKind::from_wire(trigger_byte).ok_or(Error::Malformed(format!(
            "decision log: unknown trigger kind {trigger_byte}"
        )))?;
        let scan_group = r.u16("declog scan group")?;
        let bytes_read = r.u64("declog bytes read")?;
        let bytes_full = r.u64("declog bytes full")?;
        let images = r.u64("declog images")?;
        let cache_hit_rate = f64::from_bits(r.u64("declog cache hit rate")?);
        let loss = f64::from_bits(r.u64("declog loss")?);
        let n = usize::from(r.u16("declog score count")?);
        if r.remaining() < n.saturating_mul(SCORE_LEN) {
            return Err(Error::Truncated { context: "declog probe scores" });
        }
        // pcr-lint: allow(bounded-alloc) — n validated against the remaining
        // body bytes just above, and the body length against the file.
        let mut probe_scores = Vec::with_capacity(n);
        for _ in 0..n {
            let group = r.u16("declog score group")?;
            let score = f64::from_bits(r.u64("declog score value")?);
            probe_scores.push((group, score));
        }
        Ok(Self {
            epoch,
            trigger,
            scan_group,
            bytes_read,
            bytes_full,
            images,
            cache_hit_rate,
            loss,
            probe_scores,
        })
    }

    /// Compact one-line rendering of the probe scores, for diffs.
    fn scores_summary(&self) -> String {
        if self.probe_scores.is_empty() {
            return "(none)".into();
        }
        let mut s = String::new();
        for (i, &(g, v)) in self.probe_scores.iter().enumerate() {
            if i > 0 {
                s.push(' ');
            }
            let _ = write!(s, "{g}:{v:.4}");
        }
        s
    }
}

/// A parsed decision log.
///
/// Parsing is lenient: every structurally decodable record is delivered
/// even when its chain CRC does not match (corruption is reported by
/// [`DecisionLog::verify`], not by losing records), and a torn or
/// undecodable tail truncates delivery rather than failing the parse.
/// Only a bad magic or an unknown format version is a parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionLog {
    records: Vec<DecisionRecord>,
    stored_chains: Vec<u32>,
    computed_chains: Vec<u32>,
    undecoded_tail: usize,
    valid_len: usize,
}

impl DecisionLog {
    /// Parses a decision-log file image.
    pub fn parse(bytes: &[u8]) -> Result<Self> {
        let header =
            bytes.get(..HEADER_LEN).ok_or(Error::Truncated { context: "declog header" })?;
        let mut h = Reader::new(header);
        if h.bytes(4, "declog magic")? != DECLOG_MAGIC {
            return Err(Error::BadMagic);
        }
        let version = h.u16("declog version")?;
        if version != DECLOG_VERSION {
            return Err(Error::BadVersion(version));
        }
        let mut log = Self {
            records: Vec::new(),
            stored_chains: Vec::new(),
            computed_chains: Vec::new(),
            undecoded_tail: 0,
            valid_len: HEADER_LEN,
        };
        let mut chain = crc32(header);
        let mut off = HEADER_LEN;
        while let Some(rest) = bytes.get(off..) {
            if rest.is_empty() {
                break;
            }
            let Some((record, stored, computed, consumed)) = parse_one(rest, chain) else {
                // Torn append or structural damage: deliver what decoded.
                log.undecoded_tail = rest.len();
                break;
            };
            log.records.push(record);
            log.stored_chains.push(stored);
            log.computed_chains.push(computed);
            // Chain forward from the *stored* value: a corrupted body
            // then flags exactly that record (no cascade), while a
            // forged chain field flags itself and its successor.
            chain = stored;
            off = off.saturating_add(consumed);
            log.valid_len = off;
        }
        Ok(log)
    }

    /// Reads and parses `path`.
    pub fn read(path: &Path) -> Result<Self> {
        let bytes =
            fs::read(path).map_err(|e| Error::BadInput(format!("read decision log: {e}")))?;
        Self::parse(&bytes)
    }

    /// Builds a log from records, computing the chain from genesis.
    pub fn from_records(records: Vec<DecisionRecord>) -> Result<Self> {
        let mut log = Self {
            records: Vec::new(),
            stored_chains: Vec::new(),
            computed_chains: Vec::new(),
            undecoded_tail: 0,
            valid_len: HEADER_LEN,
        };
        let mut chain = genesis_chain();
        for rec in records {
            let mut body = Vec::new();
            rec.encode_body(&mut body)?;
            chain = chain_crc(chain, &body);
            log.records.push(rec);
            log.stored_chains.push(chain);
            log.computed_chains.push(chain);
            // Framing: length u32 + body + chain u32, matching to_bytes.
            log.valid_len += 4 + body.len() + 4;
        }
        Ok(log)
    }

    /// Canonical serialization: header plus every record, with the chain
    /// recomputed from genesis.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut out = header_bytes();
        let mut chain = genesis_chain();
        for rec in &self.records {
            let mut body = Vec::new();
            rec.encode_body(&mut body)?;
            chain = append_record(&mut out, &body, chain);
        }
        Ok(out)
    }

    /// The decoded records, in append order.
    pub fn records(&self) -> &[DecisionRecord] {
        &self.records
    }

    /// Number of decoded records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records decoded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Bytes at the tail that did not decode as a complete record
    /// (torn append or structural corruption); 0 for a clean log.
    pub fn undecoded_tail(&self) -> usize {
        self.undecoded_tail
    }

    /// File length through the last fully decoded record (header plus
    /// every complete frame). Truncating a torn file to this length
    /// yields a clean log ending on a record boundary — the recovery
    /// point [`DecisionLogWriter::open`] resumes from after a crash
    /// mid-append.
    pub fn valid_len(&self) -> usize {
        self.valid_len
    }

    /// The chain value an appender must continue from.
    pub fn last_chain(&self) -> u32 {
        self.stored_chains.last().copied().unwrap_or_else(genesis_chain)
    }

    /// Strict integrity pass: every record's stored chain CRC must match
    /// the recomputed chain, and the file must end on a record boundary.
    pub fn verify(&self) -> Result<()> {
        self.verify_chain()?;
        if self.undecoded_tail > 0 {
            return Err(Error::Corrupt(format!(
                "decision log: {} undecodable byte(s) after record {}",
                self.undecoded_tail,
                self.records.len()
            )));
        }
        Ok(())
    }

    /// Chain-CRC check alone, ignoring any undecoded tail. This is the
    /// non-negotiable half of [`DecisionLog::verify`]: a chain mismatch
    /// means a decoded record was altered, while a torn tail is the
    /// expected residue of a crash mid-append and is recoverable by
    /// truncating to [`DecisionLog::valid_len`].
    pub fn verify_chain(&self) -> Result<()> {
        for (i, (stored, computed)) in
            self.stored_chains.iter().zip(&self.computed_chains).enumerate()
        {
            if stored != computed {
                return Err(Error::Corrupt(format!(
                    "decision log record {i}: chain CRC mismatch \
                     (stored {stored:#010x}, computed {computed:#010x})"
                )));
            }
        }
        Ok(())
    }

    /// Total bytes actually read across all logged epochs.
    pub fn total_bytes_read(&self) -> u64 {
        self.records.iter().map(|r| r.bytes_read).sum()
    }

    /// Total bytes the same epochs would have read at fixed full quality.
    pub fn total_bytes_full(&self) -> u64 {
        self.records.iter().map(|r| r.bytes_full).sum()
    }

    /// Bytes saved versus fixed full-quality epochs.
    pub fn bytes_saved(&self) -> u64 {
        self.total_bytes_full().saturating_sub(self.total_bytes_read())
    }

    /// Readable per-decision comparison against `actual`, treating `self`
    /// as the expected (golden) log. `None` when the decision sequences
    /// are identical. This is the divergence report the golden-trace
    /// replay harness prints.
    pub fn diff(&self, actual: &DecisionLog) -> Option<String> {
        let mut out = String::new();
        let n = self.records.len().max(actual.records.len());
        for i in 0..n {
            match (self.records.get(i), actual.records.get(i)) {
                (Some(e), Some(a)) if e == a => {}
                (Some(e), Some(a)) => {
                    let _ = writeln!(out, "decision {i} (epoch {}) diverges:", e.epoch);
                    diff_field(&mut out, "epoch", &e.epoch, &a.epoch);
                    diff_field(&mut out, "trigger", &e.trigger, &a.trigger);
                    diff_field(&mut out, "scan_group", &e.scan_group, &a.scan_group);
                    diff_field(&mut out, "bytes_read", &e.bytes_read, &a.bytes_read);
                    diff_field(&mut out, "bytes_full", &e.bytes_full, &a.bytes_full);
                    diff_field(&mut out, "images", &e.images, &a.images);
                    diff_field(&mut out, "cache_hit_rate", &e.cache_hit_rate, &a.cache_hit_rate);
                    diff_field(&mut out, "loss", &e.loss, &a.loss);
                    if e.probe_scores != a.probe_scores {
                        let _ = writeln!(
                            out,
                            "  probe_scores: expected {} | actual {}",
                            e.scores_summary(),
                            a.scores_summary()
                        );
                    }
                }
                (Some(e), None) => {
                    let _ = writeln!(
                        out,
                        "decision {i} (epoch {}, {}): missing from the actual log",
                        e.epoch, e.trigger
                    );
                }
                (None, Some(a)) => {
                    let _ = writeln!(
                        out,
                        "decision {i} (epoch {}, {}): unexpected extra record",
                        a.epoch, a.trigger
                    );
                }
                (None, None) => {}
            }
        }
        if self.records.len() != actual.records.len() {
            let _ = writeln!(
                out,
                "expected {} decision(s), got {}",
                self.records.len(),
                actual.records.len()
            );
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}

/// `crc32(prev chain LE ‖ body)` — the chain step.
fn chain_crc(prev: u32, body: &[u8]) -> u32 {
    // pcr-lint: allow(bounded-alloc) — body length already validated
    // against the file (parse) or the u16 score count (encode).
    let mut buf = Vec::with_capacity(4 + body.len());
    buf.extend_from_slice(&prev.to_le_bytes());
    buf.extend_from_slice(body);
    crc32(&buf)
}

/// Appends one framed record (length, body, chain) to `out`; returns the
/// new chain value.
fn append_record(out: &mut Vec<u8>, body: &[u8], prev_chain: u32) -> u32 {
    debug_assert!(body.len() <= MIN_BODY_LEN + SCORE_LEN * usize::from(u16::MAX));
    // pcr-lint: allow(no-truncating-cast) — body ≤ 53 + 10·65535 bytes by
    // construction (encode_body bounds the score count), asserted above.
    put_u32(out, body.len() as u32);
    out.extend_from_slice(body);
    let chain = chain_crc(prev_chain, body);
    put_u32(out, chain);
    chain
}

/// Decodes one framed record from `rest`. Returns the record, its stored
/// chain, the recomputed chain, and the bytes consumed — or `None` when
/// the bytes do not decode as a complete record (torn tail).
fn parse_one(rest: &[u8], prev_chain: u32) -> Option<(DecisionRecord, u32, u32, usize)> {
    let mut r = Reader::new(rest);
    let body_len = r.u32("declog record length").ok()? as usize;
    if body_len < MIN_BODY_LEN {
        return None;
    }
    let body = r.bytes(body_len, "declog record body").ok()?;
    let stored = r.u32("declog record chain").ok()?;
    let record = DecisionRecord::parse_body(body).ok()?;
    let computed = chain_crc(prev_chain, body);
    Some((record, stored, computed, r.pos()))
}

fn diff_field<T: PartialEq + std::fmt::Display>(
    out: &mut String,
    name: &str,
    expected: &T,
    actual: &T,
) {
    if expected != actual {
        let _ = writeln!(out, "  {name}: expected {expected} | actual {actual}");
    }
}

/// Appends decision records to a log file, maintaining the CRC chain
/// across sessions: opening an existing log parses and verifies it and
/// resumes from its last chain value; opening a fresh path writes the
/// header first.
///
/// Crash recovery: a torn tail (the residue of a crash mid-append — the
/// file ends inside a half-written frame) is truncated back to the last
/// complete record and the chain resumes from there; the number of bytes
/// discarded is reported by [`DecisionLogWriter::recovered_bytes`]. A
/// chain-CRC mismatch on a *decoded* record is real corruption, not a
/// torn write, and is refused — a damaged log is never extended.
#[derive(Debug)]
pub struct DecisionLogWriter {
    file: fs::File,
    chain: u32,
    written: u64,
    recovered: u64,
}

impl DecisionLogWriter {
    /// Opens `path` for appending, creating it (with a header) if absent.
    pub fn open(path: &Path) -> Result<Self> {
        match fs::read(path) {
            Ok(bytes) => {
                let log = DecisionLog::parse(&bytes)?;
                log.verify_chain()?;
                let torn = log.undecoded_tail() as u64;
                if torn > 0 {
                    // Crash mid-append: drop the incomplete frame so the
                    // next append lands on a record boundary.
                    let file = fs::OpenOptions::new()
                        .write(true)
                        .open(path)
                        .map_err(|e| Error::BadInput(format!("open decision log: {e}")))?;
                    file.set_len(log.valid_len() as u64).map_err(|e| {
                        Error::BadInput(format!("truncate torn decision log: {e}"))
                    })?;
                }
                let file = fs::OpenOptions::new()
                    .append(true)
                    .open(path)
                    .map_err(|e| Error::BadInput(format!("open decision log: {e}")))?;
                Ok(Self { file, chain: log.last_chain(), written: 0, recovered: torn })
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let mut file = fs::OpenOptions::new()
                    .create_new(true)
                    .write(true)
                    .open(path)
                    .map_err(|e| Error::BadInput(format!("create decision log: {e}")))?;
                file.write_all(&header_bytes())
                    .map_err(|e| Error::BadInput(format!("write decision log header: {e}")))?;
                Ok(Self { file, chain: genesis_chain(), written: 0, recovered: 0 })
            }
            Err(e) => Err(Error::BadInput(format!("read decision log: {e}"))),
        }
    }

    /// Appends one record and advances the chain.
    pub fn append(&mut self, rec: &DecisionRecord) -> Result<()> {
        let mut body = Vec::new();
        rec.encode_body(&mut body)?;
        let mut framed = Vec::new();
        self.chain = append_record(&mut framed, &body, self.chain);
        self.file
            .write_all(&framed)
            .map_err(|e| Error::BadInput(format!("append decision log: {e}")))?;
        self.written += 1;
        Ok(())
    }

    /// The current chain value (the last record's CRC).
    pub fn chain(&self) -> u32 {
        self.chain
    }

    /// Records appended through this writer (excludes pre-existing ones).
    pub fn records_written(&self) -> u64 {
        self.written
    }

    /// Torn-tail bytes discarded during [`DecisionLogWriter::open`]
    /// crash recovery; 0 when the log was clean.
    pub fn recovered_bytes(&self) -> u64 {
        self.recovered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(epoch: u64, trigger: TriggerKind, group: u16) -> DecisionRecord {
        DecisionRecord {
            epoch,
            trigger,
            scan_group: group,
            bytes_read: 4_000 / (u64::from(group).max(1)),
            bytes_full: 4_000,
            images: 16,
            cache_hit_rate: 0.5,
            loss: 1.0 / (epoch + 1) as f64,
            probe_scores: vec![(1, 0.62), (5, 0.96), (10, 1.0)],
        }
    }

    fn sample_log() -> DecisionLog {
        DecisionLog::from_records(vec![
            sample(0, TriggerKind::Start, 10),
            sample(1, TriggerKind::Hold, 10),
            sample(2, TriggerKind::Plateau, 5),
        ])
        .unwrap()
    }

    #[test]
    fn round_trips_through_bytes() {
        let log = sample_log();
        let bytes = log.to_bytes().unwrap();
        let back = DecisionLog::parse(&bytes).unwrap();
        assert_eq!(back, log);
        back.verify().unwrap();
        assert_eq!(back.undecoded_tail(), 0);
        assert_eq!(back.records()[2].trigger, TriggerKind::Plateau);
        assert_eq!(back.records()[2].bytes_saved(), 4_000 - 800);
        assert_eq!(back.bytes_saved(), 12_000 - (400 + 400 + 800));
    }

    #[test]
    fn writer_creates_appends_and_resumes_the_chain() {
        let dir = std::env::temp_dir()
            .join(format!("pcr-declog-{}-{:?}", std::process::id(), std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(DECISION_LOG_FILE);

        // Session 1: two records.
        let mut w = DecisionLogWriter::open(&path).unwrap();
        w.append(&sample(0, TriggerKind::Start, 10)).unwrap();
        w.append(&sample(1, TriggerKind::Plateau, 5)).unwrap();
        assert_eq!(w.records_written(), 2);
        let chain_after_first = w.chain();
        drop(w);

        // Session 2: the chain resumes where session 1 left off.
        let mut w = DecisionLogWriter::open(&path).unwrap();
        assert_eq!(w.chain(), chain_after_first);
        w.append(&sample(2, TriggerKind::Hold, 5)).unwrap();
        drop(w);

        let log = DecisionLog::read(&path).unwrap();
        log.verify().unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(
            log.records().iter().map(|r| r.trigger).collect::<Vec<_>>(),
            vec![TriggerKind::Start, TriggerKind::Plateau, TriggerKind::Hold]
        );
        // The file equals the canonical serialization of the same records.
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk, log.to_bytes().unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_chain_is_caught_by_verify_but_records_still_deliver() {
        let log = sample_log();
        let mut bytes = log.to_bytes().unwrap();
        // Flip one bit in the *loss* field of the middle record's body:
        // any f64 bit pattern is structurally valid, so parsing still
        // delivers all three records — only the chain CRC notices.
        let second_body = HEADER_LEN + (4 + 83 + 4) + 4 + 45;
        bytes[second_body] ^= 0x01;
        let damaged = DecisionLog::parse(&bytes).unwrap();
        assert_eq!(damaged.len(), 3, "delivery must survive corruption");
        let err = damaged.verify().unwrap_err();
        assert!(
            matches!(&err, Error::Corrupt(m) if m.contains("record 1")),
            "wrong error: {err:?}"
        );
        // Exactly one record flagged: the chain recomputes forward from
        // recomputed values, so corruption does not cascade.
        let mismatches = damaged
            .stored_chains
            .iter()
            .zip(&damaged.computed_chains)
            .filter(|(s, c)| s != c)
            .count();
        assert_eq!(mismatches, 1);
    }

    #[test]
    fn torn_tail_truncates_delivery_and_fails_verify() {
        let log = sample_log();
        let bytes = log.to_bytes().unwrap();
        let cut = bytes.len() - 7;
        let torn = DecisionLog::parse(&bytes[..cut]).unwrap();
        assert_eq!(torn.len(), 2, "complete records still deliver");
        assert!(torn.undecoded_tail() > 0);
        assert!(torn.verify().is_err());
    }

    #[test]
    fn writer_refuses_to_extend_a_corrupt_log() {
        let dir = std::env::temp_dir().join(format!(
            "pcr-declog-corrupt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(DECISION_LOG_FILE);
        std::fs::write(&path, sample_log().to_bytes().unwrap()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1; // last chain byte
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(DecisionLogWriter::open(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_recovery_at_every_truncation_point() {
        // Crash-mid-append recovery, exhaustively: write three records,
        // then truncate the file at *every* byte position inside the
        // last frame. Open must recover (drop the torn frame, resume the
        // chain) — never panic — and a subsequent append must leave a
        // fully verifiable log.
        let full = sample_log().to_bytes().unwrap();
        let two = DecisionLog::from_records(sample_log().records()[..2].to_vec()).unwrap();
        let boundary = two.valid_len();
        assert!(boundary > HEADER_LEN && boundary < full.len());
        let dir = std::env::temp_dir().join(format!(
            "pcr-declog-torn-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(DECISION_LOG_FILE);
        for cut in boundary..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let mut w = DecisionLogWriter::open(&path).expect("torn tail must recover");
            assert_eq!(w.recovered_bytes(), (cut - boundary) as u64, "cut at {cut}");
            w.append(&sample(9, TriggerKind::Hold, 3)).unwrap();
            drop(w);
            let log = DecisionLog::read(&path).unwrap();
            log.verify().unwrap();
            assert_eq!(log.len(), 3, "cut at {cut}");
            assert_eq!(log.records()[2].epoch, 9);
            std::fs::remove_file(&path).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degraded_records_round_trip_through_the_log() {
        // TriggerKind::Degraded (wire 5) is additive: it reuses the
        // standard wire fields (images = degraded count, loss =
        // quarantined count) and round-trips like any other record.
        let mut rec = sample(4, TriggerKind::Degraded, 5);
        rec.images = 7; // degraded records
        rec.loss = 2.0; // quarantined records
        rec.probe_scores = Vec::new();
        let log = DecisionLog::from_records(vec![rec.clone()]).unwrap();
        let back = DecisionLog::parse(&log.to_bytes().unwrap()).unwrap();
        back.verify().unwrap();
        assert_eq!(back.records(), &[rec]);
    }

    #[test]
    fn bad_magic_and_version_are_parse_errors() {
        assert!(matches!(DecisionLog::parse(b"NOPE\x01\x00\x00\x00"), Err(Error::BadMagic)));
        let mut h = header_bytes();
        h[4] = 9; // version 9
        assert!(matches!(DecisionLog::parse(&h), Err(Error::BadVersion(9))));
        assert!(DecisionLog::parse(b"PCR").is_err());
        // A header alone is a valid, empty log.
        let empty = DecisionLog::parse(&header_bytes()).unwrap();
        assert!(empty.is_empty());
        empty.verify().unwrap();
        assert_eq!(empty.last_chain(), genesis_chain());
    }

    #[test]
    fn epoch_bridge_round_trips_everything_but_throughput() {
        let rec = sample(3, TriggerKind::Retune, 2);
        let epoch = rec.to_epoch(123.4);
        assert_eq!(epoch.images_per_sec, 123.4);
        let back = DecisionRecord::from_epoch(&epoch, rec.bytes_full);
        assert_eq!(back, rec);
    }

    #[test]
    fn diff_reports_per_decision_field_divergence() {
        let golden = sample_log();
        assert_eq!(golden.diff(&golden.clone()), None);

        let mut records = golden.records().to_vec();
        records[2].scan_group = 2;
        records[2].trigger = TriggerKind::Retune;
        let actual = DecisionLog::from_records(records).unwrap();
        let report = golden.diff(&actual).expect("must diverge");
        assert!(report.contains("decision 2 (epoch 2) diverges"), "{report}");
        assert!(report.contains("trigger: expected plateau | actual retune"), "{report}");
        assert!(report.contains("scan_group: expected 5 | actual 2"), "{report}");

        // Length mismatch reads as missing/extra records.
        let shorter =
            DecisionLog::from_records(golden.records()[..2].to_vec()).unwrap();
        let report = golden.diff(&shorter).expect("must diverge");
        assert!(report.contains("missing from the actual log"), "{report}");
        assert!(report.contains("expected 3 decision(s), got 2"), "{report}");
    }
}
