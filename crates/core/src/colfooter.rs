//! The columnar (version 3) shard footer: fixed-stride columns instead of
//! variable-length rows, so a reader can resolve any record's index entry
//! by arithmetic without parsing the entries before it.
//!
//! The row footer of container version 1 interleaves variable-length
//! fields (name, labels), which forces `PcrContainer::open` to walk every
//! entry of every shard before it can serve record *k* — an O(catalog)
//! open that dominates start-up at tens of millions of records. Version 3
//! re-specifies the same information as columns:
//!
//! ```text
//! footer := name_blob                      # concatenated record names
//!           name_ends      N x u32         # cumulative end offsets into name_blob
//!           offsets        N x u64         # record byte offsets in the shard
//!           group_offsets  N x (G+1) x u64 # per-record scan-group prefix table
//!           label_starts   (N+1) x u32     # cumulative label counts
//!           labels         L x u32         # all labels, record-major
//!           crcs           N x u32         # per-record CRC-32
//!           descriptor     40 bytes        # "PCRC", counts, zone-map stats
//! ```
//!
//! Every column's position is a closed-form function of the descriptor
//! fields (`N`, `L`, `name_blob_len`) and the header's group count, so
//! opening a shard reads only the 12-byte header and the 52-byte
//! descriptor + trailer tail; record entries are materialized lazily by
//! [`ColumnarIndex::entry`] with a handful of small ranged reads. The
//! footer CRC in the trailer still covers the whole footer region but is
//! *not* verified at open (that would read the footer); it is checked by
//! the strict full-bytes parse path ([`crate::container::ShardIndex::parse`])
//! and by `PcrContainer::verify`/`read_shard_verified`.
//!
//! The normative byte-level specification lives in `docs/FORMAT.md` §6;
//! this module is its implementation.

use crate::container::{ShardRecord, FOOTER_MAGIC, SHARD_HEADER_LEN, SHARD_TRAILER_LEN};
use crate::dataset::RecordMeta;
use crate::error::{Error, Result};
use crate::wire::{put_u32, put_u64, Reader};
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Container format version whose shards carry a columnar footer.
pub const COLUMNAR_VERSION: u16 = 3;
/// Magic prefix of the fixed-size descriptor at the end of a columnar
/// footer (directly before the trailer).
pub const DESCRIPTOR_MAGIC: &[u8; 4] = b"PCRC";
/// Size in bytes of the columnar footer descriptor.
pub const DESCRIPTOR_LEN: u64 = 40;

/// The descriptor + derived geometry of one columnar footer. All column
/// offsets are relative to the footer start and follow in closed form
/// from the counts, so none of them are stored on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ColumnarLayout {
    /// Records in the shard (cross-checked against the header).
    pub record_count: u32,
    /// Scan groups per record (from the shard header).
    pub num_groups: u16,
    /// Total labels (= total images) across the shard.
    pub total_labels: u32,
    /// Bytes of concatenated record names at the start of the footer.
    pub name_blob_len: u32,
    /// End of the record-data region == absolute footer start. Stored in
    /// the descriptor as a cross-check against the trailer geometry.
    pub data_end: u64,
    /// Smallest full record length in the shard (zone-map stat).
    pub min_record_len: u64,
    /// Largest full record length in the shard (zone-map stat).
    pub max_record_len: u64,
    /// Absolute byte offset of the footer region in the shard file.
    pub footer_start: u64,
}

// Column arithmetic. No checked math needed: record_count, total_labels,
// and name_blob_len are u32 and num_groups is u16, so the largest term is
// bounded by 2^32 * 8 * (2^16 + 1) < 2^52 and sums stay far below u64.
impl ColumnarLayout {
    fn n(&self) -> u64 {
        u64::from(self.record_count)
    }

    /// Bytes of one record's group-offset row.
    fn group_stride(&self) -> u64 {
        8 * (u64::from(self.num_groups) + 1)
    }

    fn col_name_ends(&self) -> u64 {
        u64::from(self.name_blob_len)
    }

    fn col_offsets(&self) -> u64 {
        self.col_name_ends() + 4 * self.n()
    }

    fn col_groups(&self) -> u64 {
        self.col_offsets() + 8 * self.n()
    }

    fn col_label_starts(&self) -> u64 {
        self.col_groups() + self.n() * self.group_stride()
    }

    fn col_labels(&self) -> u64 {
        self.col_label_starts() + 4 * (self.n() + 1)
    }

    fn col_crcs(&self) -> u64 {
        self.col_labels() + 4 * u64::from(self.total_labels)
    }

    fn col_descriptor(&self) -> u64 {
        self.col_crcs() + 4 * self.n()
    }

    /// Total footer length implied by the counts — must equal the
    /// trailer's `footer_len` for the geometry to be trusted.
    pub fn expected_footer_len(&self) -> u64 {
        self.col_descriptor() + DESCRIPTOR_LEN
    }
}

/// The raw fields of a 40-byte descriptor.
struct Descriptor {
    record_count: u32,
    total_labels: u32,
    name_blob_len: u32,
    data_end: u64,
    min_record_len: u64,
    max_record_len: u64,
}

fn parse_descriptor(bytes: &[u8]) -> Result<Descriptor> {
    let mut r = Reader::new(bytes);
    if r.bytes(4, "columnar descriptor magic")? != DESCRIPTOR_MAGIC {
        return Err(Error::BadMagic);
    }
    Ok(Descriptor {
        record_count: r.u32("descriptor record count")?,
        total_labels: r.u32("descriptor label count")?,
        name_blob_len: r.u32("descriptor name blob length")?,
        data_end: r.u64("descriptor data end")?,
        min_record_len: r.u64("descriptor min record length")?,
        max_record_len: r.u64("descriptor max record length")?,
    })
}

/// Where the footer bytes come from.
#[derive(Debug, Clone)]
enum ColSrc {
    /// Lazy: the open shard file; columns are read on demand with small
    /// ranged reads. This is what `PcrContainer::open` produces.
    File(Arc<Mutex<fs::File>>),
    /// Eager: an in-memory copy of the footer region, already covered by
    /// a verified footer CRC (the strict `ShardIndex::parse` path).
    Mem(Arc<[u8]>),
}

/// A lazily-resolved columnar shard index: geometry plus a byte source.
///
/// Cloning shares the underlying file handle / footer buffer and the
/// bytes-read counter.
#[derive(Debug, Clone)]
pub struct ColumnarIndex {
    layout: ColumnarLayout,
    src: ColSrc,
    /// Footer bytes read by lazy entry resolution since open (the open
    /// itself reads only header + descriptor + trailer, not counted
    /// here). Lets tests assert `entry` stays O(1) in shard size.
    bytes_read: Arc<AtomicU64>,
}

/// Equality compares the footer geometry only: two indexes over the same
/// on-disk layout are equal regardless of lazy/eager backing.
impl PartialEq for ColumnarIndex {
    fn eq(&self, other: &Self) -> bool {
        self.layout == other.layout
    }
}

impl Eq for ColumnarIndex {}

impl ColumnarIndex {
    /// Validates descriptor-vs-trailer geometry and builds the layout.
    fn build_layout(
        num_groups: u16,
        header_records: u32,
        desc: Descriptor,
        footer_len: u64,
        file_len: u64,
    ) -> Result<ColumnarLayout> {
        if desc.record_count != header_records {
            return Err(Error::Malformed(format!(
                "columnar descriptor claims {} records, shard header says {header_records}",
                desc.record_count
            )));
        }
        let footer_start = file_len
            .checked_sub(SHARD_TRAILER_LEN + footer_len)
            .ok_or(Error::Truncated { context: "columnar footer" })?;
        if footer_start < SHARD_HEADER_LEN {
            return Err(Error::Malformed("columnar footer overlaps header".into()));
        }
        let layout = ColumnarLayout {
            record_count: desc.record_count,
            num_groups,
            total_labels: desc.total_labels,
            name_blob_len: desc.name_blob_len,
            data_end: desc.data_end,
            min_record_len: desc.min_record_len,
            max_record_len: desc.max_record_len,
            footer_start,
        };
        // The implied column geometry must tile the footer exactly and
        // the descriptor's data end must meet the footer start; together
        // these pin every column boundary without reading the columns.
        if layout.expected_footer_len() != footer_len {
            return Err(Error::Malformed(format!(
                "columnar footer is {footer_len} bytes but its counts imply {}",
                layout.expected_footer_len()
            )));
        }
        if layout.data_end != footer_start {
            return Err(Error::Malformed(format!(
                "columnar data end {} does not meet footer start {footer_start}",
                layout.data_end
            )));
        }
        if layout.min_record_len > layout.max_record_len {
            return Err(Error::Malformed(
                "columnar min record length exceeds max".into(),
            ));
        }
        Ok(layout)
    }

    /// Opens a columnar index lazily over `file`: reads only the 52-byte
    /// descriptor + trailer tail (the caller has already read the header).
    /// Returns the index and the trailer's footer CRC — which is *not*
    /// verified here; integrity is deferred to `verify()`.
    pub(crate) fn open_lazy(
        mut file: fs::File,
        num_groups: u16,
        header_records: u32,
        file_len: u64,
    ) -> Result<(Self, u32)> {
        const TAIL: u64 = DESCRIPTOR_LEN + SHARD_TRAILER_LEN;
        if file_len < SHARD_HEADER_LEN + TAIL {
            return Err(Error::Truncated { context: "columnar descriptor" });
        }
        let mut tail = [0u8; TAIL as usize];
        let seek_err = |e: std::io::Error| Error::BadInput(format!("seek shard tail: {e}"));
        let read_err = |e: std::io::Error| Error::BadInput(format!("read shard tail: {e}"));
        file.seek(SeekFrom::End(-(TAIL as i64))).map_err(seek_err)?;
        file.read_exact(&mut tail).map_err(read_err)?;
        // pcr-lint: allow(no-panic-in-hot-path) — TAIL-sized array split at DESCRIPTOR_LEN < TAIL
        let (desc_bytes, trailer) = tail.split_at(DESCRIPTOR_LEN as usize);
        let mut t = Reader::new(trailer);
        let footer_len = u64::from(t.u32("footer length")?);
        let footer_crc = t.u32("footer crc")?;
        if t.bytes(4, "footer magic")? != FOOTER_MAGIC {
            return Err(Error::BadMagic);
        }
        let desc = parse_descriptor(desc_bytes)?;
        let layout = Self::build_layout(num_groups, header_records, desc, footer_len, file_len)?;
        let index = Self {
            layout,
            src: ColSrc::File(Arc::new(Mutex::new(file))),
            bytes_read: Arc::new(AtomicU64::new(0)),
        };
        Ok((index, footer_crc))
    }

    /// Builds an eager index from a complete footer region whose CRC the
    /// caller has already verified, then walks every entry once so the
    /// strict parse path validates exactly as much as the row parser did.
    pub(crate) fn from_footer(
        num_groups: u16,
        header_records: u32,
        footer: &[u8],
        footer_start: u64,
        file_len: u64,
    ) -> Result<Self> {
        let flen = footer.len() as u64;
        if flen < DESCRIPTOR_LEN {
            return Err(Error::Truncated { context: "columnar descriptor" });
        }
        // pcr-lint: allow(no-panic-in-hot-path) — DESCRIPTOR_LEN <= footer.len() checked above
        let desc = parse_descriptor(&footer[(flen - DESCRIPTOR_LEN) as usize..])?;
        let layout = Self::build_layout(num_groups, header_records, desc, flen, file_len)?;
        if layout.footer_start != footer_start {
            return Err(Error::Malformed(format!(
                "columnar footer start {} does not match caller's {footer_start}",
                layout.footer_start
            )));
        }
        let index = Self {
            layout,
            src: ColSrc::Mem(Arc::from(footer.to_vec().into_boxed_slice())),
            bytes_read: Arc::new(AtomicU64::new(0)),
        };
        for k in 0..index.len() {
            index.entry(k)?;
        }
        index.bytes_read.store(0, Ordering::Relaxed);
        Ok(index)
    }

    /// Records in the shard.
    pub fn len(&self) -> usize {
        self.layout.record_count as usize
    }

    /// True when the shard holds no records.
    pub fn is_empty(&self) -> bool {
        self.layout.record_count == 0
    }

    /// Total labels (= images) across the shard — O(1) from the
    /// descriptor.
    pub fn num_images(&self) -> usize {
        self.layout.total_labels as usize
    }

    /// Total record-data bytes — O(1): records are packed back-to-back
    /// between the header and the footer.
    pub fn data_bytes(&self) -> u64 {
        self.layout.data_end - SHARD_HEADER_LEN
    }

    /// Smallest and largest full record length (descriptor zone map).
    pub fn record_len_bounds(&self) -> (u64, u64) {
        (self.layout.min_record_len, self.layout.max_record_len)
    }

    /// Footer bytes read by lazy entry resolution so far.
    pub fn index_bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Reads `buf.len()` footer bytes starting `rel` bytes into the
    /// footer region.
    fn read_at(&self, rel: u64, buf: &mut [u8]) -> Result<()> {
        let end = rel + buf.len() as u64;
        if end > self.layout.expected_footer_len() {
            return Err(Error::Truncated { context: "columnar footer column" });
        }
        match &self.src {
            ColSrc::Mem(bytes) => {
                let src = bytes
                    .get(rel as usize..end as usize)
                    .ok_or(Error::Truncated { context: "columnar footer column" })?;
                buf.copy_from_slice(src);
            }
            ColSrc::File(file) => {
                let mut f = file
                    .lock()
                    .map_err(|_| Error::Corrupt("columnar index lock poisoned".into()))?;
                f.seek(SeekFrom::Start(self.layout.footer_start + rel))
                    .map_err(|e| Error::BadInput(format!("seek shard footer: {e}")))?;
                f.read_exact(buf)
                    .map_err(|e| Error::BadInput(format!("read shard footer: {e}")))?;
            }
        }
        self.bytes_read.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn read_u32_at(&self, rel: u64) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read_at(rel, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_u64_at(&self, rel: u64) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read_at(rel, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Resolves record `k`'s full index entry with a handful of small
    /// column reads — O(1) in the number of records in the shard.
    pub fn entry(&self, k: usize) -> Result<ShardRecord> {
        let l = &self.layout;
        if k >= self.len() {
            return Err(Error::BadInput(format!(
                "record {k} out of range ({} records in shard)",
                self.len()
            )));
        }
        let k64 = k as u64;
        // Name span: cumulative ends, entry 0 starts at blob offset 0.
        let name_end = self.read_u32_at(l.col_name_ends() + 4 * k64)?;
        let name_start =
            if k == 0 { 0 } else { self.read_u32_at(l.col_name_ends() + 4 * (k64 - 1))? };
        if name_start > name_end || name_end > l.name_blob_len {
            return Err(Error::Malformed(format!(
                "record {k} name span {name_start}..{name_end} outside name blob"
            )));
        }
        // pcr-lint: allow(bounded-alloc) — span bounded by name_blob_len,
        // which the validated footer geometry bounds by the footer length.
        let mut name_bytes = vec![0u8; (name_end - name_start) as usize];
        self.read_at(u64::from(name_start), &mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| Error::Malformed("record name not UTF-8".into()))?;
        let offset = self.read_u64_at(l.col_offsets() + 8 * k64)?;
        // Group-offset row: one contiguous read of (G+1) u64s.
        // pcr-lint: allow(bounded-alloc) — num_groups is a u16, so at most 512 KiB
        let mut row = vec![0u8; l.group_stride() as usize];
        self.read_at(l.col_groups() + k64 * l.group_stride(), &mut row)?;
        // pcr-lint: allow(bounded-alloc) — num_groups is a u16, so at most 65537 entries
        let mut group_offsets = Vec::with_capacity(row.len() / 8);
        for chunk in row.chunks_exact(8) {
            // pcr-lint: allow(no-panic-in-hot-path) — chunks_exact(8) yields 8-byte chunks
            group_offsets.push(u64::from_le_bytes(chunk.try_into().map_err(
                |_| Error::Truncated { context: "columnar group offsets" },
            )?));
        }
        // pcr-lint: allow(no-panic-in-hot-path) — windows(2) yields exactly 2 elements
        if group_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(Error::Malformed(
                "record group offsets are not non-decreasing".into(),
            ));
        }
        // Label span: cumulative starts, one extra entry past the end.
        let ls0 = self.read_u32_at(l.col_label_starts() + 4 * k64)?;
        let ls1 = self.read_u32_at(l.col_label_starts() + 4 * (k64 + 1))?;
        if ls0 > ls1 || ls1 > l.total_labels {
            return Err(Error::Malformed(format!(
                "record {k} label span {ls0}..{ls1} outside label column"
            )));
        }
        let num_images = ls1 - ls0;
        // pcr-lint: allow(bounded-alloc) — span bounded by total_labels,
        // which the validated footer geometry bounds by the footer length.
        let mut label_bytes = vec![0u8; (num_images as usize) * 4];
        self.read_at(l.col_labels() + 4 * u64::from(ls0), &mut label_bytes)?;
        // pcr-lint: allow(bounded-alloc) — same bound as label_bytes above
        let mut labels = Vec::with_capacity(num_images as usize);
        for chunk in label_bytes.chunks_exact(4) {
            labels.push(u32::from_le_bytes(chunk.try_into().map_err(|_| {
                Error::Truncated { context: "columnar labels" }
            })?));
        }
        let crc32 = self.read_u32_at(l.col_crcs() + 4 * k64)?;
        let rec = ShardRecord { name, offset, num_images, group_offsets, labels, crc32 };
        // Untrusted footer fields: checked add so a crafted offset cannot
        // wrap past the bounds check.
        if rec.offset.checked_add(rec.len()).is_none_or(|end| end > l.data_end) {
            return Err(Error::Malformed(format!(
                "record {} extends past the footer ({} + {} > {})",
                rec.name,
                rec.offset,
                rec.len(),
                l.data_end
            )));
        }
        Ok(rec)
    }

    /// Record-data bytes a loader reads per epoch at scan group `g`, via
    /// one bulk read of the group-offset column. Prefer the manifest's
    /// zone-map stats where present — this still reads O(records) footer
    /// bytes (though far fewer syscalls than per-entry resolution).
    pub fn bytes_at_group(&self, g: usize) -> Result<u64> {
        let l = &self.layout;
        if self.is_empty() {
            return Ok(0);
        }
        let stride = l.group_stride() as usize;
        let g = g.min(l.num_groups as usize);
        // pcr-lint: allow(bounded-alloc) — n * stride equals the group
        // column's size, bounded by the validated footer length.
        let mut col = vec![0u8; (l.n() * l.group_stride()) as usize];
        self.read_at(l.col_groups(), &mut col)?;
        let mut total = 0u64;
        for row in col.chunks_exact(stride) {
            let cell = row.get(8 * g..8 * g + 8).ok_or(Error::Truncated {
                context: "columnar group offsets",
            })?;
            total += u64::from_le_bytes(
                cell.try_into()
                    .map_err(|_| Error::Truncated { context: "columnar group offsets" })?,
            );
        }
        Ok(total)
    }
}

/// Serializes a columnar footer (columns + descriptor, no trailer) for
/// records laid out at `offsets` with per-record data CRCs `crcs`.
/// `metas`, `offsets`, and `crcs` are parallel; `data_end` is the
/// absolute offset where the footer will start.
pub(crate) fn build_footer(
    num_groups: u16,
    metas: &[&RecordMeta],
    offsets: &[u64],
    crcs: &[u32],
    data_end: u64,
) -> Vec<u8> {
    debug_assert_eq!(metas.len(), offsets.len());
    debug_assert_eq!(metas.len(), crcs.len());
    let mut out = Vec::new();
    // name_blob + cumulative name_ends.
    let mut name_ends = Vec::with_capacity(metas.len()); // pcr-lint: allow(bounded-alloc) — len of caller's slice
    for meta in metas {
        out.extend_from_slice(meta.name.as_bytes());
        debug_assert!(out.len() <= u32::MAX as usize);
        // pcr-lint: allow(no-truncating-cast) — writer side; asserted above
        name_ends.push(out.len() as u32);
    }
    let name_blob_len = name_ends.last().copied().unwrap_or(0);
    for end in name_ends {
        put_u32(&mut out, end);
    }
    for &offset in offsets {
        put_u64(&mut out, offset);
    }
    for meta in metas {
        debug_assert_eq!(meta.group_offsets.len(), num_groups as usize + 1);
        for &o in &meta.group_offsets {
            put_u64(&mut out, o);
        }
    }
    // label_starts: N+1 cumulative counts, starting at 0.
    let mut running = 0u32;
    put_u32(&mut out, 0);
    for meta in metas {
        running += meta.num_images;
        put_u32(&mut out, running);
    }
    let total_labels = running;
    for meta in metas {
        for &label in &meta.labels {
            put_u32(&mut out, label);
        }
    }
    for &crc in crcs {
        put_u32(&mut out, crc);
    }
    // Descriptor.
    let min_len = metas.iter().map(|m| m.total_len()).min().unwrap_or(0);
    let max_len = metas.iter().map(|m| m.total_len()).max().unwrap_or(0);
    out.extend_from_slice(DESCRIPTOR_MAGIC);
    debug_assert!(metas.len() <= u32::MAX as usize);
    // pcr-lint: allow(no-truncating-cast) — writer side; asserted above
    put_u32(&mut out, metas.len() as u32);
    put_u32(&mut out, total_labels);
    put_u32(&mut out, name_blob_len);
    put_u64(&mut out, data_end);
    put_u64(&mut out, min_len);
    put_u64(&mut out, max_len);
    out
}
