//! Dataset specifications modeled on the paper's four evaluation datasets.
//!
//! Real ImageNet/HAM10000/Stanford-Cars/CelebA-HQ cannot ship with this
//! repository, so each dataset is replaced by a synthetic generator that
//! preserves the properties the experiments measure:
//!
//! * number of classes and task granularity (fine-grained vs binary),
//! * image resolution scale (HAM10000 has the largest images, CelebA-HQ is
//!   downscaled to a fixed training size),
//! * source JPEG quality (Table 1: ImageNet 91.7%, HAM 100%, Cars 83.8%,
//!   CelebA-HQ 75%),
//! * and — critically — *which spatial-frequency band carries the class
//!   signal*, which controls how much JPEG compression the task tolerates
//!   (the paper's Observations 2-3).

/// How much of the class-discriminative signal lives in low vs high spatial
/// frequencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalProfile {
    /// Amplitude of the low-frequency (long-wavelength) class pattern.
    pub low_freq: f64,
    /// Amplitude of the high-frequency class pattern.
    pub high_freq: f64,
    /// Wavelength range (pixels) of the high-frequency band. Shorter
    /// wavelengths die at earlier scans (DC-only scan 1 averages 8x8
    /// blocks; quantization clips the shortest first).
    pub high_wavelength: (f64, f64),
    /// Amplitude of unstructured per-pixel noise.
    pub noise: f64,
}

/// A synthetic dataset specification.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset display name.
    pub name: String,
    /// Number of classes of the *native* labeling.
    pub num_classes: usize,
    /// Training images to generate.
    pub train_images: usize,
    /// Test images to generate.
    pub test_images: usize,
    /// Mean image side length in pixels.
    pub mean_side: u32,
    /// Side-length jitter (uniform in `mean_side +- side_jitter`); 0 for
    /// fixed-size datasets like CelebA-HQ crops.
    pub side_jitter: u32,
    /// Source JPEG quality applied when the dataset is first encoded.
    pub jpeg_quality: u8,
    /// Where the class signal lives.
    pub signal: SignalProfile,
    /// Generator seed.
    pub seed: u64,
}

/// Overall experiment scale: how many images to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny (unit tests): tens of images.
    Tiny,
    /// Small (fast experiments): hundreds of images.
    Small,
    /// Full (headline experiments): low thousands of images.
    Full,
}

impl Scale {
    fn train_count(self, full: usize) -> usize {
        match self {
            Scale::Tiny => (full / 50).clamp(24, 60),
            Scale::Small => (full / 8).clamp(80, 400),
            Scale::Full => full,
        }
    }

    fn test_count(self, full: usize) -> usize {
        (self.train_count(full) / 4).max(16)
    }
}

impl DatasetSpec {
    /// ImageNet-like: many classes, natural-image scale, quality ~92.
    /// Signal split between bands: moderately compression-tolerant, but
    /// scans 1-2 are not always sufficient (paper Fig. 4).
    pub fn imagenet_like(scale: Scale) -> Self {
        let full = 2000;
        Self {
            name: "ImageNet-like".into(),
            num_classes: 10,
            train_images: scale.train_count(full),
            test_images: scale.test_count(full),
            mean_side: 96,
            side_jitter: 32,
            jpeg_quality: 92,
            signal: SignalProfile { low_freq: 44.0, high_freq: 30.0, high_wavelength: (3.0, 8.0), noise: 10.0 },
            seed: 0x1A6E7,
        }
    }

    /// HAM10000-like: dermatoscopy; 7 classes; the *largest* images in the
    /// suite (most storage-bound); quality 100. Texture (mid/high
    /// frequency) matters but substantial low-frequency signal exists —
    /// ResNet tolerates scan 1, ShuffleNet wants scan 5 (paper Fig. 5).
    pub fn ham10000_like(scale: Scale) -> Self {
        let full = 1600;
        Self {
            name: "HAM10000-like".into(),
            num_classes: 7,
            train_images: scale.train_count(full),
            test_images: scale.test_count(full),
            mean_side: 160,
            side_jitter: 16,
            jpeg_quality: 100,
            signal: SignalProfile { low_freq: 34.0, high_freq: 30.0, high_wavelength: (2.0, 4.0), noise: 8.0 },
            seed: 0x4A43,
        }
    }

    /// Stanford-Cars-like: fine-grained classification; the class signal
    /// is dominated by high-frequency detail, so low scan groups hurt
    /// badly (paper Fig. 6 original task). The class count scales with the
    /// generated dataset size so there are enough examples per class to
    /// learn from (196 classes at full scale, as in the paper).
    pub fn cars_like(scale: Scale) -> Self {
        let full = 3200;
        let num_classes = match scale {
            Scale::Tiny => 8,
            Scale::Small => 32,
            Scale::Full => 196,
        };
        Self {
            name: "Cars-like".into(),
            num_classes,
            train_images: scale.train_count(full),
            test_images: scale.test_count(full),
            mean_side: 80,
            side_jitter: 24,
            jpeg_quality: 84,
            signal: SignalProfile { low_freq: 14.0, high_freq: 44.0, high_wavelength: (4.0, 9.0), noise: 8.0 },
            seed: 0xCA25,
        }
    }

    /// CelebAHQ-Smile-like: binary task on fixed-size crops; the smile
    /// attribute is a coarse shape — almost all signal is low-frequency, so
    /// even scan group 1 trains fine (paper Fig. 4c/d).
    pub fn celebahq_smile_like(scale: Scale) -> Self {
        let full = 2400;
        Self {
            name: "CelebAHQ-Smile-like".into(),
            num_classes: 2,
            train_images: scale.train_count(full),
            test_images: scale.test_count(full),
            mean_side: 64,
            side_jitter: 0,
            jpeg_quality: 75,
            signal: SignalProfile { low_freq: 50.0, high_freq: 6.0, high_wavelength: (2.0, 4.0), noise: 10.0 },
            seed: 0xCE1E,
        }
    }

    /// All four paper datasets at the given scale.
    pub fn paper_suite(scale: Scale) -> Vec<DatasetSpec> {
        vec![
            Self::imagenet_like(scale),
            Self::celebahq_smile_like(scale),
            Self::ham10000_like(scale),
            Self::cars_like(scale),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_order_counts() {
        let t = DatasetSpec::imagenet_like(Scale::Tiny);
        let s = DatasetSpec::imagenet_like(Scale::Small);
        let f = DatasetSpec::imagenet_like(Scale::Full);
        assert!(t.train_images < s.train_images);
        assert!(s.train_images < f.train_images);
        assert!(t.test_images >= 16);
    }

    #[test]
    fn ham_has_largest_images() {
        let suite = DatasetSpec::paper_suite(Scale::Small);
        let ham = suite.iter().find(|d| d.name.starts_with("HAM")).unwrap();
        for d in &suite {
            assert!(ham.mean_side >= d.mean_side, "{} bigger than HAM", d.name);
        }
    }

    #[test]
    fn qualities_match_table1_ordering() {
        // HAM (100) > ImageNet (91.7) > Cars (83.8) > CelebA (75).
        let ham = DatasetSpec::ham10000_like(Scale::Tiny).jpeg_quality;
        let imn = DatasetSpec::imagenet_like(Scale::Tiny).jpeg_quality;
        let cars = DatasetSpec::cars_like(Scale::Tiny).jpeg_quality;
        let celeb = DatasetSpec::celebahq_smile_like(Scale::Tiny).jpeg_quality;
        assert!(ham > imn && imn > cars && cars > celeb);
        assert_eq!(ham, 100);
        assert_eq!(celeb, 75);
    }

    #[test]
    fn cars_is_finest_grained_and_most_high_freq() {
        let suite = DatasetSpec::paper_suite(Scale::Tiny);
        let cars = suite.iter().find(|d| d.name.starts_with("Cars")).unwrap();
        assert_eq!(cars.num_classes, 8); // tiny scale
        assert_eq!(DatasetSpec::cars_like(Scale::Full).num_classes, 196);
        for d in &suite {
            assert!(cars.signal.high_freq >= d.signal.high_freq);
        }
        let celeb = suite.iter().find(|d| d.name.starts_with("Celeb")).unwrap();
        assert_eq!(celeb.num_classes, 2);
        assert!(celeb.signal.low_freq / celeb.signal.high_freq > 4.0);
    }
}
