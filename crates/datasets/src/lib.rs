//! # pcr-datasets
//!
//! Synthetic stand-ins for the paper's four evaluation datasets (ImageNet,
//! HAM10000, Stanford Cars, CelebA-HQ-Smile). Each generator injects the
//! class-discriminative signal into a controlled spatial-frequency band so
//! that the coupling between JPEG scan groups and task accuracy — the
//! phenomenon the paper studies — is preserved without shipping the real
//! data. Label remapping reproduces the Cars coarsening experiments, and
//! the encode module materializes any dataset in all three storage formats
//! under comparison.
//!
//! ```
//! use pcr_datasets::{to_pcr_dataset, DatasetSpec, Scale, SyntheticDataset};
//!
//! // The dermatology stand-in (HAM10000-like) at unit-test scale.
//! let spec = DatasetSpec::ham10000_like(Scale::Tiny);
//! let ds = SyntheticDataset::generate(&spec);
//! assert_eq!(ds.train.len(), spec.train_images);
//!
//! // Encode as PCR: scan group 1 needs far fewer bytes than full quality.
//! let (pcr, _encode_secs) = to_pcr_dataset(&ds, 8);
//! let g1 = pcr.db.mean_image_bytes_at_group(1);
//! let full = pcr.db.mean_image_bytes_at_group(pcr.db.num_groups());
//! assert!(g1 * 2.0 < full, "group 1 {g1:.0}B vs full {full:.0}B");
//! ```

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod encode;
pub mod generate;
pub mod labels;
pub mod spec;

pub use encode::{
    pack_to_container, pack_to_container_restart, test_progressive_jpegs, to_file_per_image,
    to_pcr_dataset, to_pcr_dataset_restart, to_record_files,
    IMAGES_PER_RECORD, RECORDS_PER_SHARD,
};
pub use generate::{generate_image, Sample, SyntheticDataset};
pub use labels::LabelMap;
pub use spec::{DatasetSpec, Scale, SignalProfile};
