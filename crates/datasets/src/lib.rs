//! # pcr-datasets
//!
//! Synthetic stand-ins for the paper's four evaluation datasets (ImageNet,
//! HAM10000, Stanford Cars, CelebA-HQ-Smile). Each generator injects the
//! class-discriminative signal into a controlled spatial-frequency band so
//! that the coupling between JPEG scan groups and task accuracy — the
//! phenomenon the paper studies — is preserved without shipping the real
//! data. Label remapping reproduces the Cars coarsening experiments, and
//! the encode module materializes any dataset in all three storage formats
//! under comparison.

#![warn(missing_docs)]

pub mod encode;
pub mod generate;
pub mod labels;
pub mod spec;

pub use encode::{
    test_progressive_jpegs, to_file_per_image, to_pcr_dataset, to_record_files, IMAGES_PER_RECORD,
};
pub use generate::{generate_image, Sample, SyntheticDataset};
pub use labels::LabelMap;
pub use spec::{DatasetSpec, Scale, SignalProfile};
