//! Encoding synthetic datasets into the storage formats under comparison:
//! PCR datasets, fixed-quality record files, and file-per-image layouts —
//! plus the on-disk sharded container packer behind `pcr pack`.

use crate::generate::SyntheticDataset;
use pcr_core::container::{write_container, ContainerManifest};
use pcr_core::{
    FilePerImageDataset, PcrDataset, PcrDatasetBuilder, RecordFileBuilder, SampleMeta,
};
use pcr_jpeg::EncodeConfig;
use std::path::Path;

/// Default records per shard file (the `pcr pack` default). Paired with
/// [`IMAGES_PER_RECORD`] this keeps shards at tens of records, so even
/// test-scale datasets exercise multi-shard streaming.
pub const RECORDS_PER_SHARD: usize = 8;

/// Images per record used throughout the experiments. The paper uses
/// roughly 1024 images/record on ImageNet; we scale down with our dataset
/// sizes so each dataset still spans tens of records.
pub const IMAGES_PER_RECORD: usize = 16;

/// Encodes the training split as a PCR dataset (progressive, 10 groups).
///
/// Returns the dataset and the total encode wall-clock time in seconds
/// (used by the Figure 15 conversion-time experiment).
pub fn to_pcr_dataset(ds: &SyntheticDataset, images_per_record: usize) -> (PcrDataset, f64) {
    to_pcr_dataset_restart(ds, images_per_record, 0)
}

/// Like [`to_pcr_dataset`], but encodes images with restart markers every
/// `restart_interval` MCU units (0 disables them), producing version-2
/// records whose entropy segments decode on multiple cores.
pub fn to_pcr_dataset_restart(
    ds: &SyntheticDataset,
    images_per_record: usize,
    restart_interval: u16,
) -> (PcrDataset, f64) {
    // pcr-lint: allow(clock-discipline) — pack-time tooling measuring real
    // conversion cost (Figure 15); no virtual timeline exists here.
    let start = std::time::Instant::now();
    let mut b = PcrDatasetBuilder::new(images_per_record, pcr_core::DEFAULT_NUM_GROUPS)
        .with_name_prefix(&ds.spec.name)
        .with_restart_interval(restart_interval);
    for s in &ds.train {
        b.add_image(
            SampleMeta { label: s.label, id: s.id.clone() },
            &s.image,
            ds.spec.jpeg_quality,
        )
        .expect("encode");
    }
    let out = b.finish().expect("non-empty dataset");
    (out, start.elapsed().as_secs_f64())
}

/// Packs the training split straight to an on-disk sharded container
/// (progressive PCR encode → `pcr-core::container::write_container`) —
/// the library face of `pcr pack`.
///
/// Returns the written manifest and the total encode+write wall-clock
/// seconds (the Figure 15 conversion-time quantity, now including I/O).
pub fn pack_to_container(
    ds: &SyntheticDataset,
    dir: &Path,
    images_per_record: usize,
    records_per_shard: usize,
) -> pcr_core::Result<(ContainerManifest, f64)> {
    pack_to_container_restart(ds, dir, images_per_record, records_per_shard, 0)
}

/// Like [`pack_to_container`], but encodes images with restart markers
/// every `restart_interval` MCU units (0 disables them) — the library
/// face of `pcr pack --restart-interval`.
pub fn pack_to_container_restart(
    ds: &SyntheticDataset,
    dir: &Path,
    images_per_record: usize,
    records_per_shard: usize,
    restart_interval: u16,
) -> pcr_core::Result<(ContainerManifest, f64)> {
    // pcr-lint: allow(clock-discipline) — pack-time tooling measuring real
    // conversion cost (Figure 15); no virtual timeline exists here.
    let start = std::time::Instant::now();
    let (pcr, _) = to_pcr_dataset_restart(ds, images_per_record, restart_interval);
    let manifest = write_container(&pcr, dir, records_per_shard)?;
    Ok((manifest, start.elapsed().as_secs_f64()))
}

/// Encodes the training split as fixed-quality record files (the static
/// baseline): one `Vec<u8>` per record.
///
/// Returns `(records, encode_seconds)`.
pub fn to_record_files(
    ds: &SyntheticDataset,
    images_per_record: usize,
    quality: u8,
) -> (Vec<Vec<u8>>, f64) {
    // pcr-lint: allow(clock-discipline) — pack-time tooling measuring real
    // conversion cost (Figure 15); no virtual timeline exists here.
    let start = std::time::Instant::now();
    let mut records = Vec::new();
    let mut builder = RecordFileBuilder::new();
    for s in &ds.train {
        builder
            .add_image(SampleMeta { label: s.label, id: s.id.clone() }, &s.image, quality)
            .expect("encode");
        if builder.len() >= images_per_record {
            let b = std::mem::replace(&mut builder, RecordFileBuilder::new());
            records.push(b.build().expect("non-empty"));
        }
    }
    if !builder.is_empty() {
        records.push(builder.build().expect("non-empty"));
    }
    (records, start.elapsed().as_secs_f64())
}

/// Encodes the training split as a file-per-image dataset at its native
/// quality.
pub fn to_file_per_image(ds: &SyntheticDataset) -> FilePerImageDataset {
    let mut out = FilePerImageDataset::new();
    for s in &ds.train {
        out.add_image(
            SampleMeta { label: s.label, id: s.id.clone() },
            &s.image,
            ds.spec.jpeg_quality,
        )
        .expect("encode");
    }
    out
}

/// Encodes every *test* image as a full-quality progressive JPEG, returning
/// the raw streams (used for MSSIM-per-scan measurements).
pub fn test_progressive_jpegs(ds: &SyntheticDataset) -> Vec<Vec<u8>> {
    ds.test
        .iter()
        .map(|s| {
            pcr_jpeg::encode(&s.image, &EncodeConfig::progressive(ds.spec.jpeg_quality))
                .expect("encode")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DatasetSpec, Scale};
    use pcr_core::PcrRecord;

    fn tiny() -> SyntheticDataset {
        SyntheticDataset::generate(&DatasetSpec::celebahq_smile_like(Scale::Tiny))
    }

    #[test]
    fn pcr_dataset_covers_all_train_images() {
        let ds = tiny();
        let (pcr, secs) = to_pcr_dataset(&ds, 8);
        assert_eq!(pcr.db.num_images(), ds.train.len());
        assert!(secs > 0.0);
        // Decode one image from the first record at low quality.
        let rec = pcr.open_record(0).unwrap();
        let img = rec.decode_image(0, 2).unwrap();
        assert_eq!(img.width(), 64);
    }

    #[test]
    fn record_files_chunked() {
        let ds = tiny();
        let (recs, _) = to_record_files(&ds, 10, 75);
        let expected = ds.train.len().div_ceil(10);
        assert_eq!(recs.len(), expected);
        let parsed = pcr_core::RecordFile::parse(&recs[0]).unwrap();
        assert_eq!(parsed.num_images(), 10.min(ds.train.len()));
    }

    #[test]
    fn file_per_image_matches_count() {
        let ds = tiny();
        let fpi = to_file_per_image(&ds);
        assert_eq!(fpi.len(), ds.train.len());
    }

    #[test]
    fn pcr_labels_survive_storage() {
        let ds = tiny();
        let (pcr, _) = to_pcr_dataset(&ds, 4);
        let mut stored: Vec<u32> = Vec::new();
        for i in 0..pcr.num_records() {
            let rec = PcrRecord::parse(&pcr.records[i]).unwrap();
            stored.extend(rec.labels());
        }
        let native: Vec<u32> = ds.train.iter().map(|s| s.label).collect();
        assert_eq!(stored, native);
    }

    #[test]
    fn pack_to_container_roundtrips_on_disk() {
        let ds = tiny();
        let dir = std::env::temp_dir().join(format!(
            "pcr-pack-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (manifest, secs) = pack_to_container(&ds, &dir, 4, 2).unwrap();
        assert!(secs > 0.0);
        assert_eq!(manifest.num_images(), ds.train.len());
        let container = pcr_core::PcrContainer::open(&dir).unwrap();
        container.verify().unwrap();
        assert_eq!(container.num_images(), ds.train.len());
        let (pcr, _) = to_pcr_dataset(&ds, 4);
        assert_eq!(container.num_records(), pcr.num_records());
        assert_eq!(container.bytes_at_group(2).unwrap(), pcr.db.bytes_at_group(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn progressive_test_jpegs_have_scans() {
        let ds = tiny();
        let jpegs = test_progressive_jpegs(&ds);
        assert_eq!(jpegs.len(), ds.test.len());
        assert_eq!(pcr_jpeg::count_scans(&jpegs[0]).unwrap(), 10);
    }
}
