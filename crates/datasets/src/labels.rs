//! Label remapping: the paper's Stanford-Cars coarsening experiment
//! (section 4.3) re-labels the *same* PCR dataset as full make/model/year
//! classes, make-only classes, or binary Corvette detection — demonstrating
//! that one stored encoding serves tasks of different difficulty.

/// A relabeling of a dataset's native classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelMap {
    /// Keep native labels.
    Identity,
    /// Coarsen: `label / group_size` (e.g. 196 car classes -> 22 makes).
    Coarsen {
        /// Consecutive native classes per coarse class.
        group_size: u32,
    },
    /// Binary: 1 if the native label equals `positive`, else 0.
    OneVsRest {
        /// The positive native class.
        positive: u32,
    },
}

impl LabelMap {
    /// The paper's "Make-Only" task: 196 car classes grouped into 22 makes
    /// (about 9 models per make).
    pub fn cars_make_only() -> Self {
        LabelMap::Coarsen { group_size: 9 }
    }

    /// The paper's "Is-Corvette" task. Class 2 exists at every dataset
    /// scale (the full-scale 196-class run matches the paper's single
    /// Corvette class).
    pub fn is_corvette() -> Self {
        LabelMap::OneVsRest { positive: 2 }
    }

    /// Applies the map to one native label.
    pub fn apply(&self, label: u32) -> u32 {
        match *self {
            LabelMap::Identity => label,
            LabelMap::Coarsen { group_size } => label / group_size.max(1),
            LabelMap::OneVsRest { positive } => u32::from(label == positive),
        }
    }

    /// Number of classes after mapping `native_classes` native classes.
    pub fn num_classes(&self, native_classes: usize) -> usize {
        match *self {
            LabelMap::Identity => native_classes,
            LabelMap::Coarsen { group_size } => {
                (native_classes as u32).div_ceil(group_size.max(1)) as usize
            }
            LabelMap::OneVsRest { .. } => 2,
        }
    }

    /// Display name for experiment output.
    pub fn name(&self) -> String {
        match *self {
            LabelMap::Identity => "Original".into(),
            LabelMap::Coarsen { group_size } => format!("Coarse/{group_size}"),
            LabelMap::OneVsRest { positive } => format!("Binary(class={positive})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let m = LabelMap::Identity;
        assert_eq!(m.apply(17), 17);
        assert_eq!(m.num_classes(196), 196);
    }

    #[test]
    fn make_only_groups_nine_models() {
        let m = LabelMap::cars_make_only();
        assert_eq!(m.apply(0), 0);
        assert_eq!(m.apply(8), 0);
        assert_eq!(m.apply(9), 1);
        assert_eq!(m.apply(195), 21);
        assert_eq!(m.num_classes(196), 22);
    }

    #[test]
    fn corvette_binary() {
        let m = LabelMap::is_corvette();
        assert_eq!(m.apply(2), 1);
        assert_eq!(m.apply(3), 0);
        assert_eq!(m.num_classes(196), 2);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(LabelMap::Identity.name(), "Original");
        assert_eq!(LabelMap::cars_make_only().name(), "Coarse/9");
        assert_eq!(LabelMap::is_corvette().name(), "Binary(class=2)");
    }
}
