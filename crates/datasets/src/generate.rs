//! Synthetic image generation: class signal injected into controlled
//! spatial-frequency bands, on top of a shared natural-texture background.

use crate::spec::DatasetSpec;
use pcr_jpeg::ImageBuf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated sample.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Pixel data.
    pub image: ImageBuf,
    /// Native class label.
    pub label: u32,
    /// Stable identifier.
    pub id: String,
}

/// A generated dataset: train and test splits.
#[derive(Debug)]
pub struct SyntheticDataset {
    /// The generating specification.
    pub spec: DatasetSpec,
    /// Training samples.
    pub train: Vec<Sample>,
    /// Test samples.
    pub test: Vec<Sample>,
}

/// Per-class signature: a fixed set of sinusoid parameters per band.
#[derive(Debug, Clone)]
struct ClassSignature {
    /// (fx, fy, phase, weight) with wavelengths >= 16 px.
    low: Vec<(f64, f64, f64, f64)>,
    /// (fx, fy, phase, weight) with wavelengths 2..4 px.
    high: Vec<(f64, f64, f64, f64)>,
}

fn class_signature(spec_seed: u64, class: u32, high_wl: (f64, f64)) -> ClassSignature {
    let mut rng = StdRng::seed_from_u64(spec_seed ^ (u64::from(class).wrapping_mul(0x9E3779B97F4A7C15)));
    let mut low = Vec::new();
    for _ in 0..4 {
        // Long wavelengths: 16..64 px.
        let wl = rng.gen_range(16.0..64.0);
        let angle = rng.gen_range(0.0..std::f64::consts::PI);
        low.push((
            angle.cos() / wl,
            angle.sin() / wl,
            rng.gen_range(0.0..std::f64::consts::TAU),
            rng.gen_range(0.5..1.0),
        ));
    }
    let mut high = Vec::new();
    for _ in 0..4 {
        // Short wavelengths (dataset-specific band) — destroyed by early
        // scans.
        let wl = rng.gen_range(high_wl.0..high_wl.1);
        let angle = rng.gen_range(0.0..std::f64::consts::PI);
        high.push((
            angle.cos() / wl,
            angle.sin() / wl,
            rng.gen_range(0.0..std::f64::consts::TAU),
            rng.gen_range(0.5..1.0),
        ));
    }
    ClassSignature { low, high }
}

/// Generates one image of class `label` with per-sample randomness from
/// `rng`.
pub fn generate_image(spec: &DatasetSpec, label: u32, rng: &mut StdRng) -> ImageBuf {
    let side = if spec.side_jitter == 0 {
        spec.mean_side
    } else {
        rng.gen_range(spec.mean_side - spec.side_jitter..=spec.mean_side + spec.side_jitter)
    };
    let (w, h) = (side, side);
    let sig = class_signature(spec.seed, label, spec.signal.high_wavelength);
    // Shared background: smooth blobs, per-sample random.
    let bg_fx = rng.gen_range(0.005..0.02);
    let bg_fy = rng.gen_range(0.005..0.02);
    let bg_phase = rng.gen_range(0.0..std::f64::consts::TAU);
    // Per-sample variation comes from amplitude jitter on each class
    // component (plus background and noise) rather than spatial shifts, so
    // the class pattern stays phase-consistent under a fixed crop window.
    let jitter: Vec<f64> = (0..sig.low.len() + sig.high.len())
        .map(|_| rng.gen_range(0.6..1.4))
        .collect();
    let mut data = Vec::with_capacity((w * h * 3) as usize);
    let tau = std::f64::consts::TAU;
    for y in 0..h {
        for x in 0..w {
            let xf = f64::from(x);
            let yf = f64::from(y);
            let bg = 40.0 * (tau * (bg_fx * f64::from(x) + bg_fy * f64::from(y)) + bg_phase).sin();
            let mut low = 0.0;
            for (i, &(fx, fy, ph, wgt)) in sig.low.iter().enumerate() {
                low += jitter[i] * wgt * (tau * (fx * xf + fy * yf) + ph).sin();
            }
            let mut high = 0.0;
            for (i, &(fx, fy, ph, wgt)) in sig.high.iter().enumerate() {
                high += jitter[sig.low.len() + i] * wgt * (tau * (fx * xf + fy * yf) + ph).sin();
            }
            let noise = (rng.gen::<f64>() - 0.5) * 2.0 * spec.signal.noise;
            let v = 128.0
                + bg
                + spec.signal.low_freq * low / sig.low.len() as f64 * 2.0
                + spec.signal.high_freq * high / sig.high.len() as f64 * 2.0
                + noise;
            let luma = v.clamp(0.0, 255.0) as u8;
            // Mild, class-independent chroma so the YCbCr path is exercised.
            let cb = (f64::from(luma) * 0.2 + 100.0 + 20.0 * (tau * bg_fx * f64::from(x)).sin())
                .clamp(0.0, 255.0) as u8;
            data.push(luma);
            data.push(cb);
            data.push(255 - luma);
        }
    }
    // The generator produced a pseudo-color triple; treat it as RGB.
    ImageBuf::from_raw(w, h, 3, data).expect("valid dimensions")
}

impl SyntheticDataset {
    /// Generates train and test splits for a spec.
    pub fn generate(spec: &DatasetSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let gen_split = |count: usize, tag: &str, rng: &mut StdRng| -> Vec<Sample> {
            (0..count)
                .map(|i| {
                    let label = (i % spec.num_classes) as u32;
                    Sample {
                        image: generate_image(spec, label, rng),
                        label,
                        id: format!("{}-{tag}-{i:05}", spec.name),
                    }
                })
                .collect()
        };
        let train = gen_split(spec.train_images, "train", &mut rng);
        let test = gen_split(spec.test_images, "test", &mut rng);
        Self { spec: spec.clone(), train, test }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Scale;

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::celebahq_smile_like(Scale::Tiny);
        let a = SyntheticDataset::generate(&spec);
        let b = SyntheticDataset::generate(&spec);
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(a.train[0].image, b.train[0].image);
        assert_eq!(a.test[3].image, b.test[3].image);
    }

    #[test]
    fn labels_cover_all_classes() {
        let spec = DatasetSpec::ham10000_like(Scale::Tiny);
        let ds = SyntheticDataset::generate(&spec);
        let mut seen = vec![false; spec.num_classes];
        for s in &ds.train {
            seen[s.label as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all classes present in train");
    }

    #[test]
    fn same_class_images_differ_but_share_signature() {
        let spec = DatasetSpec::imagenet_like(Scale::Tiny);
        let mut rng = StdRng::seed_from_u64(1);
        let a = generate_image(&spec, 3, &mut rng);
        let b = generate_image(&spec, 3, &mut rng);
        assert_ne!(a, b, "per-sample randomness must differ");
    }

    #[test]
    fn size_jitter_respected() {
        let spec = DatasetSpec::imagenet_like(Scale::Tiny);
        let ds = SyntheticDataset::generate(&spec);
        let mut sizes: Vec<u32> = ds.train.iter().map(|s| s.image.width()).collect();
        sizes.sort_unstable();
        assert!(*sizes.first().unwrap() >= spec.mean_side - spec.side_jitter);
        assert!(*sizes.last().unwrap() <= spec.mean_side + spec.side_jitter);
        assert!(sizes.first() != sizes.last(), "sizes should vary");
        let celeb = SyntheticDataset::generate(&DatasetSpec::celebahq_smile_like(Scale::Tiny));
        assert!(celeb.train.iter().all(|s| s.image.width() == 64));
    }

    #[test]
    fn class_signal_is_linearly_detectable() {
        // A trivial nearest-centroid classifier on downsampled pixels must
        // beat chance on a 2-class task — i.e. the generator actually
        // injects class signal.
        let spec = DatasetSpec::celebahq_smile_like(Scale::Tiny);
        let ds = SyntheticDataset::generate(&spec);
        let feat = |img: &ImageBuf| -> Vec<f64> {
            let small = img.resize(16, 16).to_luma();
            small.data().iter().map(|&v| f64::from(v)).collect()
        };
        let mut centroids = vec![vec![0.0; 256]; 2];
        let mut counts = [0usize; 2];
        for s in &ds.train {
            let f = feat(&s.image);
            for (c, v) in centroids[s.label as usize].iter_mut().zip(&f) {
                *c += v;
            }
            counts[s.label as usize] += 1;
        }
        for (c, n) in centroids.iter_mut().zip(counts) {
            for v in c.iter_mut() {
                *v /= n as f64;
            }
        }
        let mut correct = 0usize;
        for s in &ds.test {
            let f = feat(&s.image);
            let d = |c: &[f64]| -> f64 {
                c.iter().zip(&f).map(|(a, b)| (a - b) * (a - b)).sum()
            };
            let pred = u32::from(d(&centroids[1]) < d(&centroids[0]));
            if pred == s.label {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.test.len() as f64;
        assert!(acc > 0.75, "nearest-centroid accuracy {acc}");
    }
}
