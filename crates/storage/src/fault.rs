//! Deterministic fault injection for the object store.
//!
//! A [`FaultPlan`] is a seed-keyed description of *where* and *how often*
//! reads fail. Every read site — the (object name, offset, len) triple of
//! a ranged read — hashes to an independent decision for each fault kind,
//! so the same plan applied to the same store yields the same faults in
//! the same places on every run, under both `Clock::Virtual` and
//! `Clock::Wall`. There is no RNG state to share or race on: decisions are
//! pure functions of `(seed, kind, site)`, plus a per-site attempt counter
//! kept by the store so transient faults can clear after N failures.
//!
//! Fault kinds map onto the [`ReadError`] variants the read path returns:
//!
//! * **transient** — the first `transient_repeats` attempts at a site fail
//!   with [`ReadError::Transient`], later attempts succeed (error-once /
//!   error-N-times schedules).
//! * **torn** — the first attempts deliver fewer bytes than requested,
//!   surfaced as [`ReadError::ShortRead`].
//! * **corrupt** — the site persistently fails with
//!   [`ReadError::CorruptRange`]; retries never help and callers must
//!   degrade or quarantine.
//! * **timeout** — the site persistently fails with [`ReadError::Timeout`].
//! * **bit_flip** — one bit of the *object* is silently flipped whenever a
//!   read covers its position; the read succeeds and corruption must be
//!   caught downstream (decode failure, CRC mismatch).
//! * **latency** — the modeled service time of the read is multiplied by
//!   `latency_factor`; combined with a read deadline this surfaces as a
//!   loader-side timeout.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a read failed. Replaces the old `Option` read path: every failure
/// names the object and byte range so callers can log, retry, or degrade
/// with full context.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadError {
    /// The named object does not exist in the store. Never retryable.
    NotFound {
        /// Object name that was requested.
        object: String,
    },
    /// A transient fault (dropped connection, EINTR-class error). The
    /// `attempt` field is 1-based; retrying the same range may succeed.
    Transient {
        /// Object name that was requested.
        object: String,
        /// Byte offset of the failed range.
        offset: u64,
        /// 1-based attempt number at this site.
        attempt: u32,
    },
    /// A short (torn) read: fewer bytes than requested were delivered.
    ShortRead {
        /// Object name that was requested.
        object: String,
        /// Byte offset of the failed range.
        offset: u64,
        /// Bytes requested.
        requested: u64,
        /// Bytes actually delivered before the tear.
        delivered: u64,
    },
    /// The device reported an unreadable/corrupt range. Persistent:
    /// retrying the same range keeps failing; callers should degrade to a
    /// shorter prefix or quarantine the record.
    CorruptRange {
        /// Object name that was requested.
        object: String,
        /// Byte offset of the failed range.
        offset: u64,
        /// Length of the failed range.
        len: u64,
    },
    /// The read exceeded its deadline (injected, or detected by the
    /// loader when modeled service time overruns `read_deadline`).
    Timeout {
        /// Object name that was requested.
        object: String,
        /// Byte offset of the failed range.
        offset: u64,
        /// Modeled service seconds observed (or `f64::INFINITY` when the
        /// fault plan injected the timeout outright).
        service_s: f64,
    },
}

impl ReadError {
    /// True when retrying the *same* read could plausibly succeed.
    /// `NotFound` and `CorruptRange` are persistent; everything else is
    /// worth retrying under the loader's `RetryPolicy` budget.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, ReadError::NotFound { .. } | ReadError::CorruptRange { .. })
    }

    /// The object name the failed read addressed.
    pub fn object(&self) -> &str {
        match self {
            ReadError::NotFound { object }
            | ReadError::Transient { object, .. }
            | ReadError::ShortRead { object, .. }
            | ReadError::CorruptRange { object, .. }
            | ReadError::Timeout { object, .. } => object,
        }
    }
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::NotFound { object } => write!(f, "object {object:?} not found"),
            ReadError::Transient { object, offset, attempt } => {
                write!(f, "transient read error on {object:?} @ byte {offset} (attempt {attempt})")
            }
            ReadError::ShortRead { object, offset, requested, delivered } => write!(
                f,
                "short read on {object:?} @ byte {offset}: {delivered} of {requested} bytes"
            ),
            ReadError::CorruptRange { object, offset, len } => {
                write!(f, "corrupt range on {object:?} @ byte {offset} (+{len})")
            }
            ReadError::Timeout { object, offset, service_s } => {
                write!(f, "read timeout on {object:?} @ byte {offset} (service {service_s:.3}s)")
            }
        }
    }
}

impl std::error::Error for ReadError {}

/// A deterministic, seed-keyed fault schedule. All probabilities are per
/// read *site* — the `(object, offset, len)` triple — not per call, so a
/// site either always starts faulty or never does, and different
/// scan-group prefixes of the same record are independent sites.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed keying every decision; two plans with the same probabilities
    /// but different seeds fault different sites.
    pub seed: u64,
    /// Probability a site fails transiently for its first
    /// `transient_repeats` attempts.
    pub transient: f64,
    /// How many attempts a transient/torn site fails before succeeding
    /// (1 = error-once).
    pub transient_repeats: u32,
    /// Probability a site delivers a short (torn) read for its first
    /// `transient_repeats` attempts.
    pub torn: f64,
    /// Probability a site persistently reports a corrupt range.
    pub corrupt: f64,
    /// Probability an *object* carries one silently flipped bit.
    pub bit_flip: f64,
    /// Probability a site's modeled service time is multiplied by
    /// `latency_factor`.
    pub latency: f64,
    /// Service-time multiplier for latency-spiked sites.
    pub latency_factor: f64,
    /// Probability a site persistently times out.
    pub timeout: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            transient: 0.0,
            transient_repeats: 1,
            torn: 0.0,
            corrupt: 0.0,
            bit_flip: 0.0,
            latency: 0.0,
            latency_factor: 10.0,
            timeout: 0.0,
        }
    }
}

// Per-kind salts so one site's decisions are independent across kinds.
const SALT_TRANSIENT: u64 = 0x7261_6e73;
const SALT_TORN: u64 = 0x746f_726e;
const SALT_CORRUPT: u64 = 0x636f_7272;
const SALT_FLIP: u64 = 0x666c_6970;
const SALT_LATENCY: u64 = 0x6c61_7465;
const SALT_TIMEOUT: u64 = 0x7469_6d65;

/// splitmix64 finalizer: the standard 64-bit avalanche mix.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Stable 64-bit hash of an object name — the store keys per-site attempt
/// counters by `(site_key(name), offset, len)`.
pub fn site_key(name: &str) -> u64 {
    hash_name(name)
}

fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Maps a hash to the unit interval [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// A plan with the given seed and all fault probabilities zero.
    pub fn quiet(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// True when every probability is zero — installing such a plan is
    /// equivalent to no plan at all.
    pub fn is_quiet(&self) -> bool {
        self.transient == 0.0
            && self.torn == 0.0
            && self.corrupt == 0.0
            && self.bit_flip == 0.0
            && self.latency == 0.0
            && self.timeout == 0.0
    }

    fn site(&self, salt: u64, name_hash: u64, offset: u64, len: u64) -> u64 {
        mix(self.seed ^ mix(salt) ^ mix(name_hash) ^ mix(offset).rotate_left(17) ^ mix(len))
    }

    fn hit(&self, p: f64, salt: u64, name_hash: u64, offset: u64, len: u64) -> bool {
        p > 0.0 && unit(self.site(salt, name_hash, offset, len)) < p
    }

    /// Decides the fate of one read attempt at `(name, offset, len)`.
    /// `attempt` is 1-based. Returns what the store should do; the store
    /// itself owns the attempt counters and statistics.
    pub fn decide(&self, name: &str, offset: u64, len: u64, attempt: u32) -> FaultDecision {
        let nh = hash_name(name);
        if self.hit(self.timeout, SALT_TIMEOUT, nh, offset, len) {
            return FaultDecision::Timeout;
        }
        if self.hit(self.corrupt, SALT_CORRUPT, nh, offset, len) {
            return FaultDecision::Corrupt;
        }
        if attempt <= self.transient_repeats.max(1) {
            if self.hit(self.transient, SALT_TRANSIENT, nh, offset, len) {
                return FaultDecision::Transient;
            }
            if self.hit(self.torn, SALT_TORN, nh, offset, len) {
                // Deliver a deterministic fraction of the request.
                let frac = unit(mix(self.site(SALT_TORN, nh, offset, len)));
                let delivered = ((len as f64) * frac) as u64;
                return FaultDecision::Torn { delivered: delivered.min(len.saturating_sub(1)) };
            }
        }
        let spike = self.hit(self.latency, SALT_LATENCY, nh, offset, len);
        FaultDecision::Deliver { latency_factor: if spike { self.latency_factor.max(1.0) } else { 1.0 } }
    }

    /// The silently flipped bit of `name` (byte position, bit index), if
    /// the plan corrupts this object at all. Position is derived from the
    /// object name alone so every read covering it sees the same flip and
    /// reads of shorter prefixes that exclude it decode cleanly.
    pub fn flipped_bit(&self, name: &str, object_len: u64) -> Option<(u64, u32)> {
        if object_len == 0 {
            return None;
        }
        let nh = hash_name(name);
        if !self.hit(self.bit_flip, SALT_FLIP, nh, 0, 0) {
            return None;
        }
        let h = mix(self.seed ^ mix(SALT_FLIP ^ 0x5eed) ^ mix(nh));
        // Bias the position toward the back half of the object so short
        // scan-group prefixes usually stay intact — the recovery path the
        // chaos harness wants to exercise — while still covering early
        // bytes sometimes.
        let back_half = object_len / 2;
        let pos = back_half + (h % object_len.saturating_sub(back_half).max(1));
        // pcr-lint: allow(no-truncating-cast) — masked to 3 bits (a bit
        // index 0..=7); truncation is the point.
        Some((pos.min(object_len - 1), (h >> 32) as u32 & 7))
    }

    /// Parses a `key=value,key=value` CLI spec, e.g.
    /// `seed=7,transient=0.05,repeats=2,torn=0.01,corrupt=0.002,bit_flip=0.01,latency=0.05,latency_factor=20,timeout=0.001`.
    /// Unknown keys are rejected so typos fail loudly.
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault-plan entry {part:?} is not key=value"))?;
            let fval = || -> Result<f64, String> {
                let v: f64 = value
                    .parse()
                    .map_err(|_| format!("fault-plan {key}={value:?}: not a number"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("fault-plan {key}={value}: must be in [0, 1]"));
                }
                Ok(v)
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("fault-plan seed={value:?}: not a u64"))?;
                }
                "repeats" | "transient_repeats" => {
                    plan.transient_repeats = value
                        .parse()
                        .map_err(|_| format!("fault-plan {key}={value:?}: not a u32"))?;
                }
                "latency_factor" => {
                    plan.latency_factor = value
                        .parse()
                        .map_err(|_| format!("fault-plan latency_factor={value:?}: not a number"))?;
                }
                "transient" => plan.transient = fval()?,
                "torn" => plan.torn = fval()?,
                "corrupt" => plan.corrupt = fval()?,
                "bit_flip" | "bitflip" => plan.bit_flip = fval()?,
                "latency" => plan.latency = fval()?,
                "timeout" => plan.timeout = fval()?,
                other => {
                    return Err(format!(
                        "fault-plan key {other:?} unknown (seed, transient, repeats, torn, \
                         corrupt, bit_flip, latency, latency_factor, timeout)"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

/// What the fault plan decided for one read attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultDecision {
    /// Serve the read; multiply modeled service time by `latency_factor`
    /// (1.0 = no spike).
    Deliver {
        /// Service-time multiplier (1.0 = no latency spike).
        latency_factor: f64,
    },
    /// Fail with [`ReadError::Transient`].
    Transient,
    /// Fail with [`ReadError::ShortRead`] delivering only `delivered` bytes.
    Torn {
        /// Bytes "delivered" before the tear (strictly less than requested).
        delivered: u64,
    },
    /// Fail with [`ReadError::CorruptRange`] (persistent).
    Corrupt,
    /// Fail with [`ReadError::Timeout`] (persistent).
    Timeout,
}

/// Injection counters, kept by the store. All relaxed atomics: these are
/// observability counters, not synchronization.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Transient errors injected.
    pub transient: AtomicU64,
    /// Short reads injected.
    pub torn: AtomicU64,
    /// Corrupt-range errors injected.
    pub corrupt: AtomicU64,
    /// Reads that covered a silently flipped bit.
    pub bit_flips: AtomicU64,
    /// Latency spikes applied.
    pub latency_spikes: AtomicU64,
    /// Timeouts injected.
    pub timeouts: AtomicU64,
}

impl FaultStats {
    /// Plain-value snapshot of the counters.
    pub fn snapshot(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            transient: self.transient.load(Ordering::Relaxed),
            torn: self.torn.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            bit_flips: self.bit_flips.load(Ordering::Relaxed),
            latency_spikes: self.latency_spikes.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    /// Transient errors injected.
    pub transient: u64,
    /// Short reads injected.
    pub torn: u64,
    /// Corrupt-range errors injected.
    pub corrupt: u64,
    /// Reads that covered a silently flipped bit.
    pub bit_flips: u64,
    /// Latency spikes applied.
    pub latency_spikes: u64,
    /// Timeouts injected.
    pub timeouts: u64,
}

impl FaultStatsSnapshot {
    /// Total injected failures (excludes silent bit flips and latency
    /// spikes, which deliver data).
    pub fn injected_errors(&self) -> u64 {
        self.transient + self.torn + self.corrupt + self.timeouts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan { seed: 9, transient: 0.5, corrupt: 0.1, ..FaultPlan::default() };
        for offset in [0u64, 100, 4096] {
            let a = plan.decide("shard-0", offset, 512, 1);
            let b = plan.decide("shard-0", offset, 512, 1);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn different_seeds_fault_different_sites() {
        let mk = |seed| FaultPlan { seed, transient: 0.5, ..FaultPlan::default() };
        let (a, b) = (mk(1), mk(2));
        let differs = (0..64).any(|i| {
            a.decide("x", i * 64, 64, 1) != b.decide("x", i * 64, 64, 1)
        });
        assert!(differs, "two seeds should not produce identical schedules");
    }

    #[test]
    fn transient_faults_clear_after_repeats() {
        let plan =
            FaultPlan { seed: 3, transient: 1.0, transient_repeats: 2, ..FaultPlan::default() };
        assert_eq!(plan.decide("a", 0, 16, 1), FaultDecision::Transient);
        assert_eq!(plan.decide("a", 0, 16, 2), FaultDecision::Transient);
        assert_eq!(plan.decide("a", 0, 16, 3), FaultDecision::Deliver { latency_factor: 1.0 });
    }

    #[test]
    fn corrupt_sites_never_clear() {
        let plan = FaultPlan { seed: 3, corrupt: 1.0, ..FaultPlan::default() };
        for attempt in 1..10 {
            assert_eq!(plan.decide("a", 0, 16, attempt), FaultDecision::Corrupt);
        }
    }

    #[test]
    fn torn_reads_deliver_fewer_bytes_than_requested() {
        let plan = FaultPlan { seed: 5, torn: 1.0, ..FaultPlan::default() };
        match plan.decide("a", 32, 100, 1) {
            FaultDecision::Torn { delivered } => assert!(delivered < 100),
            other => panic!("expected torn, got {other:?}"),
        }
    }

    #[test]
    fn flipped_bit_lands_in_back_half_and_is_stable() {
        let plan = FaultPlan { seed: 11, bit_flip: 1.0, ..FaultPlan::default() };
        let a = plan.flipped_bit("rec", 1000);
        let b = plan.flipped_bit("rec", 1000);
        assert_eq!(a, b);
        let (pos, bit) = a.expect("bit_flip=1.0 always flips");
        assert!((500..1000).contains(&pos), "pos {pos} should land in the back half");
        assert!(bit < 8);
    }

    #[test]
    fn quiet_plan_never_faults() {
        let plan = FaultPlan::quiet(7);
        assert!(plan.is_quiet());
        for i in 0..256u64 {
            assert_eq!(
                plan.decide("obj", i, 64, 1),
                FaultDecision::Deliver { latency_factor: 1.0 }
            );
        }
        assert_eq!(plan.flipped_bit("obj", 4096), None);
    }

    #[test]
    fn spec_round_trip_and_errors() {
        let plan = FaultPlan::parse_spec(
            "seed=7,transient=0.25,repeats=3,torn=0.1,corrupt=0.01,bit_flip=0.02,latency=0.5,latency_factor=20,timeout=0.001",
        )
        .expect("valid spec");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.transient, 0.25);
        assert_eq!(plan.transient_repeats, 3);
        assert_eq!(plan.latency_factor, 20.0);
        assert!(FaultPlan::parse_spec("bogus=1").is_err());
        assert!(FaultPlan::parse_spec("transient=2.0").is_err());
        assert!(FaultPlan::parse_spec("transient").is_err());
        assert!(FaultPlan::parse_spec("").expect("empty spec ok").is_quiet());
    }

    #[test]
    fn read_error_display_names_object_and_offset() {
        let e = ReadError::CorruptRange { object: "s-0".into(), offset: 128, len: 64 };
        let msg = e.to_string();
        assert!(msg.contains("s-0") && msg.contains("128"), "{msg}");
        assert!(!e.is_retryable());
        assert!(ReadError::Transient { object: "x".into(), offset: 0, attempt: 1 }.is_retryable());
    }
}
