//! Simulated devices: virtual-clock single-owner devices and a thread-safe
//! shared device that serializes concurrent requests the way a saturated
//! drive queue does.

use crate::profile::DeviceProfile;
use parking_lot::Mutex;

/// Cumulative statistics kept by every simulated device.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceStats {
    /// Total read requests.
    pub reads: u64,
    /// Requests detected as sequential continuations.
    pub sequential_reads: u64,
    /// Requests that paid a seek.
    pub random_reads: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Total device busy time in seconds.
    pub busy_time: f64,
}

impl DeviceStats {
    /// Mean achieved bandwidth in MiB/s over busy time.
    pub fn achieved_bw_mib_s(&self) -> f64 {
        if self.busy_time <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / (1024.0 * 1024.0) / self.busy_time
        }
    }
}

/// A single-owner simulated device with a virtual clock.
///
/// `read` advances the clock by the modeled service time and returns the
/// completion timestamp. Sequential detection: a read of object `o` at the
/// exact offset where the previous read of `o` ended is sequential.
#[derive(Debug, Clone)]
pub struct SimDevice {
    profile: DeviceProfile,
    clock: f64,
    last: Option<(u64, u64)>,
    stats: DeviceStats,
}

impl SimDevice {
    /// Creates a device at virtual time zero.
    pub fn new(profile: DeviceProfile) -> Self {
        Self { profile, clock: 0.0, last: None, stats: DeviceStats::default() }
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Statistics so far.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Performs a read of `len` bytes from `object` at `offset`, returning
    /// the service time in seconds.
    pub fn read(&mut self, object: u64, offset: u64, len: u64) -> f64 {
        let sequential = self.last == Some((object, offset));
        let t = self.profile.read_time(len, sequential);
        self.clock += t;
        self.last = Some((object, offset + len));
        self.stats.reads += 1;
        if sequential {
            self.stats.sequential_reads += 1;
        } else {
            self.stats.random_reads += 1;
        }
        self.stats.bytes += len;
        self.stats.busy_time += t;
        t
    }

    /// Resets clock and statistics (profile retained).
    pub fn reset(&mut self) {
        self.clock = 0.0;
        self.last = None;
        self.stats = DeviceStats::default();
    }
}

/// A thread-safe device shared by loader threads. Requests are serviced
/// FIFO: a request arriving at `now` starts at `max(now, busy_until)`; the
/// returned completion time models queueing at a saturated drive.
#[derive(Debug)]
pub struct SharedDevice {
    inner: Mutex<SharedInner>,
    profile: DeviceProfile,
}

#[derive(Debug)]
struct SharedInner {
    busy_until: f64,
    last: Option<(u64, u64)>,
    stats: DeviceStats,
    /// Multiplier on effective bandwidth (1.0 = profile value). Models
    /// fluctuating shared-storage conditions (multi-tenant clusters,
    /// cross-datacenter links) without rebuilding the device.
    bandwidth_scale: f64,
}

impl SharedDevice {
    /// Creates an idle shared device.
    pub fn new(profile: DeviceProfile) -> Self {
        Self {
            inner: Mutex::new(SharedInner {
                busy_until: 0.0,
                last: None,
                stats: DeviceStats::default(),
                bandwidth_scale: 1.0,
            }),
            profile,
        }
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Submits a read at virtual time `now`; returns `(start, finish)`
    /// virtual timestamps.
    pub fn read_at(&self, now: f64, object: u64, offset: u64, len: u64) -> (f64, f64) {
        let mut g = self.inner.lock();
        let sequential = g.last == Some((object, offset));
        let service = self.profile.read_time(len, sequential) / g.bandwidth_scale.max(1e-6);
        let start = now.max(g.busy_until);
        let finish = start + service;
        g.busy_until = finish;
        g.last = Some((object, offset + len));
        g.stats.reads += 1;
        if sequential {
            g.stats.sequential_reads += 1;
        } else {
            g.stats.random_reads += 1;
        }
        g.stats.bytes += len;
        g.stats.busy_time += service;
        (start, finish)
    }

    /// Accounts for a read performed by a *wall-clock* worker: updates the
    /// statistics and sequential-access history exactly like
    /// [`SharedDevice::read_at`] and returns the modeled service time, but
    /// does **not** advance the virtual request queue (`busy_until`). Wall
    /// workers contend in real time — queueing them against the virtual
    /// timeline would corrupt any virtual-time loader sharing the store.
    pub fn service_wall(&self, object: u64, offset: u64, len: u64) -> f64 {
        let mut g = self.inner.lock();
        let sequential = g.last == Some((object, offset));
        let service = self.profile.read_time(len, sequential) / g.bandwidth_scale.max(1e-6);
        g.last = Some((object, offset + len));
        g.stats.reads += 1;
        if sequential {
            g.stats.sequential_reads += 1;
        } else {
            g.stats.random_reads += 1;
        }
        g.stats.bytes += len;
        g.stats.busy_time += service;
        service
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DeviceStats {
        self.inner.lock().stats
    }

    /// Virtual time at which the device becomes idle.
    pub fn busy_until(&self) -> f64 {
        self.inner.lock().busy_until
    }

    /// Sets the effective-bandwidth multiplier (1.0 = nominal). Used to
    /// model fluctuating shared-storage bandwidth at runtime.
    pub fn set_bandwidth_scale(&self, scale: f64) {
        self.inner.lock().bandwidth_scale = scale.max(1e-6);
    }

    /// Current effective-bandwidth multiplier.
    pub fn bandwidth_scale(&self) -> f64 {
        self.inner.lock().bandwidth_scale
    }

    /// Resets the device (clock, stats, and access history; the bandwidth
    /// scale is preserved).
    pub fn reset(&self) {
        let mut g = self.inner.lock();
        g.busy_until = 0.0;
        g.last = None;
        g.stats = DeviceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_detection() {
        let mut d = SimDevice::new(DeviceProfile::hdd_7200rpm());
        d.read(1, 0, 4096); // random (first)
        d.read(1, 4096, 4096); // sequential
        d.read(1, 100_000, 4096); // random (gap)
        d.read(2, 104_096, 4096); // random (different object)
        let s = d.stats();
        assert_eq!(s.reads, 4);
        assert_eq!(s.sequential_reads, 1);
        assert_eq!(s.random_reads, 3);
    }

    #[test]
    fn clock_advances_by_service_time() {
        let mut d = SimDevice::new(DeviceProfile::ssd_sata());
        let t1 = d.read(0, 0, 1 << 20);
        let t2 = d.read(0, 1 << 20, 1 << 20);
        assert!((d.now() - (t1 + t2)).abs() < 1e-12);
        assert!(t2 < t1, "second read is sequential, no seek");
    }

    #[test]
    fn shared_device_serializes_overlapping_requests() {
        let d = SharedDevice::new(DeviceProfile::ssd_sata());
        // Two requests issued at the same instant must queue.
        let (s1, f1) = d.read_at(0.0, 0, 0, 4 << 20);
        let (s2, f2) = d.read_at(0.0, 1, 0, 4 << 20);
        assert_eq!(s1, 0.0);
        assert!((s2 - f1).abs() < 1e-12, "second starts when first finishes");
        assert!(f2 > f1);
    }

    #[test]
    fn shared_device_idles_between_sparse_requests() {
        let d = SharedDevice::new(DeviceProfile::ssd_sata());
        let (_, f1) = d.read_at(0.0, 0, 0, 1024);
        let (s2, _) = d.read_at(f1 + 10.0, 0, 1024, 1024);
        assert!((s2 - (f1 + 10.0)).abs() < 1e-12);
    }

    #[test]
    fn achieved_bandwidth_close_to_profile_for_large_sequential() {
        let mut d = SimDevice::new(DeviceProfile::ssd_sata());
        let mut off = 0u64;
        for _ in 0..100 {
            d.read(0, off, 8 << 20);
            off += 8 << 20;
        }
        let bw = d.stats().achieved_bw_mib_s();
        assert!((bw - 400.0).abs() < 5.0, "achieved {bw} MiB/s");
    }

    #[test]
    fn bandwidth_scale_slows_and_speeds_reads() {
        let d = SharedDevice::new(DeviceProfile::ssd_sata());
        let (_, f_nominal) = d.read_at(0.0, 0, 0, 8 << 20);
        d.reset();
        d.set_bandwidth_scale(0.5);
        let (_, f_half) = d.read_at(0.0, 0, 0, 8 << 20);
        assert!((f_half / f_nominal - 2.0).abs() < 0.05, "ratio {}", f_half / f_nominal);
        d.reset();
        assert_eq!(d.bandwidth_scale(), 0.5, "reset preserves the scale");
        d.set_bandwidth_scale(2.0);
        let (_, f_double) = d.read_at(0.0, 0, 0, 8 << 20);
        assert!(f_double < f_nominal);
    }

    #[test]
    fn reset_clears_state() {
        let mut d = SimDevice::new(DeviceProfile::ram());
        d.read(0, 0, 100);
        d.reset();
        assert_eq!(d.now(), 0.0);
        assert_eq!(d.stats().reads, 0);
    }
}
