//! `ByteView`: a cheaply cloneable, zero-copy view into a shared byte
//! buffer (the role `bytes::Bytes` plays in networked Rust services).
//!
//! The object store hands out `ByteView`s instead of copied `Vec<u8>`s so
//! that a loader reading a multi-megabyte record prefix borrows the stored
//! bytes rather than duplicating them — on the wall-clock read path this
//! removes one full memcpy (and allocation) per record from the hot loop.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted view of a byte range.
///
/// Cloning is O(1) (an `Arc` bump); slicing narrows the window without
/// touching the underlying buffer. Dereferences to `&[u8]` so it can be
/// passed anywhere a byte slice is expected.
///
/// ```
/// use pcr_storage::ByteView;
///
/// let view = ByteView::from_vec(vec![1, 2, 3, 4, 5]);
/// let tail = view.slice(2, 5);
/// assert_eq!(&tail[..], &[3, 4, 5]);
/// assert_eq!(view.len(), 5); // original window unchanged
/// ```
#[derive(Clone)]
pub struct ByteView {
    buf: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl ByteView {
    /// Wraps an owned buffer (single allocation; no copy).
    pub fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Self { buf: Arc::new(v), start: 0, end }
    }

    /// Views `[start, end)` of an already shared buffer (no copy).
    ///
    /// The range is clamped to the buffer length.
    pub fn from_shared(buf: Arc<Vec<u8>>, start: usize, end: usize) -> Self {
        let end = end.min(buf.len());
        let start = start.min(end);
        Self { buf, start, end }
    }

    /// The viewed bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Length of the view in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A narrower view of `[start, end)` *relative to this view* (clamped).
    /// Shares the same underlying buffer; no bytes move.
    pub fn slice(&self, start: usize, end: usize) -> Self {
        let abs_end = (self.start + end).min(self.end);
        let abs_start = (self.start + start).min(abs_end);
        Self { buf: Arc::clone(&self.buf), start: abs_start, end: abs_end }
    }

    /// Copies the viewed bytes into a fresh `Vec` (the one deliberate copy,
    /// for callers that need ownership).
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for ByteView {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for ByteView {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for ByteView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteView({} bytes @ {}..{})", self.len(), self.start, self.end)
    }
}

impl PartialEq for ByteView {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ByteView {}

impl PartialEq<[u8]> for ByteView {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for ByteView {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for ByteView {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl From<Vec<u8>> for ByteView {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_and_slice_share_storage() {
        let backing = Arc::new((0u8..=99).collect::<Vec<u8>>());
        let v = ByteView::from_shared(Arc::clone(&backing), 10, 20);
        assert_eq!(v.len(), 10);
        assert_eq!(v[0], 10);
        let s = v.slice(3, 7);
        assert_eq!(s, vec![13, 14, 15, 16]);
        // No copies: everything points at the same allocation.
        assert_eq!(Arc::strong_count(&backing), 3);
    }

    #[test]
    fn clamping_out_of_range() {
        let v = ByteView::from_vec(vec![1, 2, 3]);
        assert_eq!(v.slice(2, 100), vec![3]);
        assert!(v.slice(5, 9).is_empty());
        let b = Arc::new(vec![9u8; 4]);
        assert_eq!(ByteView::from_shared(b, 6, 8).len(), 0);
    }

    #[test]
    fn deref_and_eq() {
        let v = ByteView::from_vec(vec![5, 6, 7]);
        let as_slice: &[u8] = &v;
        assert_eq!(as_slice, &[5, 6, 7]);
        assert_eq!(v, [5u8, 6, 7]);
        assert_eq!(v.to_vec(), vec![5, 6, 7]);
    }
}
