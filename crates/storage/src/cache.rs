//! A page-cache model with LRU eviction and hit/miss accounting.
//!
//! Used to study the paper's cache-pressure claim: because a PCR loader
//! reads only a prefix of each record, the working set at scan group `g`
//! shrinks by the data-reduction ratio, letting a larger *fraction* of the
//! dataset stay cached. (The paper's main results disable caching —
//! DirectIO — which corresponds to `PageCache::disabled()`.)

use std::collections::HashMap;

/// Default page size (4 KiB).
pub const PAGE_SIZE: u64 = 4096;

/// LRU page cache keyed by (object, page index).
#[derive(Debug)]
pub struct PageCache {
    capacity_pages: usize,
    page_size: u64,
    /// page -> LRU tick of last use.
    pages: HashMap<(u64, u64), u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl PageCache {
    /// Cache with `capacity_bytes` of space.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_pages: (capacity_bytes / PAGE_SIZE) as usize,
            page_size: PAGE_SIZE,
            pages: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// A zero-capacity cache: every access misses (the paper's DirectIO
    /// configuration).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Accesses `[offset, offset+len)` of `object`. Returns the number of
    /// bytes that missed and must be read from the device.
    pub fn access(&mut self, object: u64, offset: u64, len: u64) -> u64 {
        if self.capacity_pages == 0 {
            self.misses += len / self.page_size + u64::from(!len.is_multiple_of(self.page_size));
            return len;
        }
        if len == 0 {
            return 0;
        }
        let first = offset / self.page_size;
        let last = (offset + len - 1) / self.page_size;
        let mut missed_pages = 0u64;
        for p in first..=last {
            self.tick += 1;
            if self.pages.insert((object, p), self.tick).is_some() {
                self.hits += 1;
            } else {
                self.misses += 1;
                missed_pages += 1;
            }
        }
        self.evict_if_needed();
        missed_pages * self.page_size
    }

    fn evict_if_needed(&mut self) {
        while self.pages.len() > self.capacity_pages {
            // O(n) LRU scan — fine at simulation scales; keeps the model
            // dependency-free.
            if let Some((&key, _)) = self.pages.iter().min_by_key(|(_, &t)| t) {
                self.pages.remove(&key);
            } else {
                break;
            }
        }
    }

    /// Cache hit count (page granularity).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache miss count (page granularity).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_always_misses() {
        let mut c = PageCache::disabled();
        assert_eq!(c.access(0, 0, 8192), 8192);
        assert_eq!(c.access(0, 0, 8192), 8192);
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = PageCache::new(1 << 20);
        let missed = c.access(0, 0, 16384);
        assert_eq!(missed, 16384);
        let missed = c.access(0, 0, 16384);
        assert_eq!(missed, 0);
        assert_eq!(c.hits(), 4);
    }

    #[test]
    fn lru_evicts_oldest() {
        // Capacity: 2 pages.
        let mut c = PageCache::new(2 * PAGE_SIZE);
        c.access(0, 0, PAGE_SIZE); // page 0
        c.access(0, PAGE_SIZE, PAGE_SIZE); // page 1
        c.access(0, 2 * PAGE_SIZE, PAGE_SIZE); // page 2 -> evicts page 0
        assert_eq!(c.resident_pages(), 2);
        assert_eq!(c.access(0, 0, PAGE_SIZE), PAGE_SIZE); // page 0 miss again
        assert_eq!(c.access(0, 2 * PAGE_SIZE, PAGE_SIZE), 0); // page 2 still hot? evicted by page 0? LRU: after re-adding 0, resident {2,0}; 1 was evicted
    }

    #[test]
    fn partial_page_counts_whole_page() {
        let mut c = PageCache::new(1 << 20);
        let missed = c.access(0, 100, 10); // one page
        assert_eq!(missed, PAGE_SIZE);
    }

    #[test]
    fn smaller_working_set_fits_better() {
        // Working set 10 objects x 10 pages with cache of 50 pages: reading
        // only 4-page prefixes (the PCR low-scan case) fits entirely;
        // reading all 10 pages thrashes.
        let mut full = PageCache::new(50 * PAGE_SIZE);
        let mut prefix = PageCache::new(50 * PAGE_SIZE);
        for _epoch in 0..3 {
            for obj in 0..10u64 {
                full.access(obj, 0, 10 * PAGE_SIZE);
                prefix.access(obj, 0, 4 * PAGE_SIZE);
            }
        }
        assert!(prefix.hit_rate() > 0.6, "prefix hit rate {}", prefix.hit_rate());
        assert!(full.hit_rate() < prefix.hit_rate());
    }
}
