//! # pcr-storage
//!
//! Simulated storage substrate for the PCR reproduction: parametric device
//! models (7200RPM HDD, SATA SSD, Ceph-like aggregate cluster), a
//! virtual-clock device with sequential-access detection, a thread-safe
//! shared device that queues concurrent requests, a page-cache model, and
//! an object store combining them.
//!
//! The paper's systems results depend only on the ratio between compute
//! throughput and storage bandwidth (its Appendix A.2 queueing analysis);
//! these models let experiments sweep that ratio deterministically instead
//! of requiring the authors' 16-node cluster.
//!
//! Reads return [`ByteView`]s — zero-copy, reference-counted windows into
//! the stored blobs — so wall-clock loaders never duplicate record bytes:
//!
//! ```
//! use pcr_storage::{DeviceProfile, ObjectStore};
//!
//! let store = ObjectStore::new(DeviceProfile::ssd_sata());
//! store.put("rec0", (0u8..100).collect());
//! // A simulated-time read: data plus virtual start/finish timestamps.
//! let read = store.read_at(0.0, "rec0", 0, 10).unwrap();
//! assert_eq!(&read.data[..], &(0u8..10).collect::<Vec<u8>>()[..]);
//! assert!(read.finish > read.start);
//! // A wall-clock read: just the bytes, no virtual clock involved.
//! let view = store.read_bytes("rec0", 90, 100).unwrap();
//! assert_eq!(view.len(), 10);
//! ```

#![warn(missing_docs)]

pub mod bytes;
pub mod cache;
pub mod device;
pub mod profile;
pub mod store;

pub use bytes::ByteView;
pub use cache::{PageCache, PAGE_SIZE};
pub use device::{DeviceStats, SharedDevice, SimDevice};
pub use profile::DeviceProfile;
pub use store::{ObjectStore, ReadResult};
