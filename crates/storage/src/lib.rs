//! # pcr-storage
//!
//! Simulated storage substrate for the PCR reproduction: parametric device
//! models (7200RPM HDD, SATA SSD, Ceph-like aggregate cluster), a
//! virtual-clock device with sequential-access detection, a thread-safe
//! shared device that queues concurrent requests, a page-cache model, and
//! an object store combining them.
//!
//! The paper's systems results depend only on the ratio between compute
//! throughput and storage bandwidth (its Appendix A.2 queueing analysis);
//! these models let experiments sweep that ratio deterministically instead
//! of requiring the authors' 16-node cluster.

#![warn(missing_docs)]

pub mod cache;
pub mod device;
pub mod profile;
pub mod store;

pub use cache::{PageCache, PAGE_SIZE};
pub use device::{DeviceStats, SharedDevice, SimDevice};
pub use profile::DeviceProfile;
pub use store::{ObjectStore, ReadResult};
