//! # pcr-storage
//!
//! Simulated storage substrate for the PCR reproduction: parametric device
//! models (7200RPM HDD, SATA SSD, Ceph-like aggregate cluster), a
//! virtual-clock device with sequential-access detection, a thread-safe
//! shared device that queues concurrent requests, a page-cache model, and
//! an object store combining them.
//!
//! The paper's systems results depend only on the ratio between compute
//! throughput and storage bandwidth (its Appendix A.2 queueing analysis);
//! these models let experiments sweep that ratio deterministically instead
//! of requiring the authors' 16-node cluster.
//!
//! There is one read path, [`ObjectStore::read`], parameterized by a
//! [`Clock`]: virtual-time loaders queue against the simulated device
//! ([`Clock::Virtual`]), wall-clock workers get the modeled service time
//! back as a duration ([`Clock::Wall`]) — and *both* share the page cache,
//! readahead, and device/cache statistics. Reads return
//! `Result<ReadResult, ReadError>`: a missing object is
//! [`ReadError::NotFound`], and an installed [`FaultPlan`]
//! ([`ObjectStore::set_fault_plan`]) injects deterministic, seed-keyed
//! failures — transient errors, torn reads, corrupt ranges, timeouts,
//! silent bit flips, latency spikes — for chaos testing. Successful reads
//! return [`ByteView`]s — zero-copy, reference-counted windows into the
//! stored blobs — so loaders never duplicate record bytes:
//!
//! ```
//! use pcr_storage::{Clock, DeviceProfile, ObjectStore};
//!
//! let store = ObjectStore::new(DeviceProfile::ssd_sata());
//! store.put("rec0", (0u8..100).collect());
//! // A simulated-time read: data plus virtual start/finish timestamps.
//! let read = store.read(Clock::Virtual(0.0), "rec0", 0, 10).unwrap();
//! assert_eq!(&read.data[..], &(0u8..10).collect::<Vec<u8>>()[..]);
//! assert!(read.finish > read.start);
//! // A wall-clock read: same bytes, same statistics; `finish` is the
//! // modeled service duration, for the caller to sleep or ignore.
//! let view = store.read(Clock::Wall, "rec0", 90, 100).unwrap();
//! assert_eq!(view.data.len(), 10);
//! assert_eq!(store.device_stats().reads, 2);
//! ```

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod bytes;
pub mod cache;
pub mod device;
pub mod fault;
pub mod profile;
pub mod store;

pub use bytes::ByteView;
pub use cache::{PageCache, PAGE_SIZE};
pub use device::{DeviceStats, SharedDevice, SimDevice};
pub use fault::{FaultDecision, FaultPlan, FaultStats, FaultStatsSnapshot, ReadError};
pub use profile::DeviceProfile;
pub use store::{Clock, ObjectStore, ReadResult};
