//! An in-memory object store fronted by a simulated device: named blobs
//! whose reads return both data and modeled completion times. This is what
//! the data loader reads records from.
//!
//! There is exactly **one** read path, [`ObjectStore::read`], parameterized
//! by a [`Clock`]: virtual-time loaders pass [`Clock::Virtual`] and get
//! queueing against the simulated device; wall-clock workers pass
//! [`Clock::Wall`] and get the same page cache, readahead, and device/cache
//! statistics, with the modeled service time returned (not queued) so they
//! can realize it as real latency if they choose.

use crate::bytes::ByteView;
use crate::cache::PageCache;
use crate::device::{DeviceStats, SharedDevice};
use crate::profile::DeviceProfile;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which timeline a read is issued on.
///
/// Every read — from the virtual-time `PcrLoader` or from a wall-clock
/// worker thread — flows through [`ObjectStore::read`] with one of these,
/// so the block cache, readahead, and statistics see *all* traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Clock {
    /// A read issued at the given virtual timestamp. The simulated device
    /// queues it (FIFO behind any outstanding virtual requests) and the
    /// returned [`ReadResult::start`]/[`ReadResult::finish`] are virtual
    /// times on that shared timeline.
    Virtual(f64),
    /// A read issued by a real worker thread. The device records the
    /// traffic and models the service time, but does not queue it against
    /// the virtual timeline (real threads already contend in real time).
    /// `start` is 0 and `finish` is the modeled service *duration* in
    /// seconds — sleep it to emulate the device, or ignore it.
    Wall,
}

/// A read result: the data plus virtual timing.
#[derive(Debug, Clone)]
pub struct ReadResult {
    /// The bytes read — a zero-copy view into the stored object.
    pub data: ByteView,
    /// Virtual time the request started service.
    pub start: f64,
    /// Virtual time the request completed.
    pub finish: f64,
    /// Bytes served from cache (0 with DirectIO).
    pub cached_bytes: u64,
}

/// Object id plus shared contents.
type StoredObject = (u64, Arc<Vec<u8>>);

/// A named-blob store with simulated read timing and an optional page cache.
#[derive(Debug)]
pub struct ObjectStore {
    device: SharedDevice,
    objects: Mutex<HashMap<String, StoredObject>>,
    cache: Mutex<PageCache>,
    next_id: Mutex<u64>,
    /// Readahead granularity in bytes (0 = off): device reads are extended
    /// to the next multiple, so adjacent scan-group prefix reads coalesce.
    readahead: AtomicU64,
}

impl ObjectStore {
    /// Creates a store on a device with caching disabled (the paper's
    /// DirectIO setting).
    pub fn new(profile: DeviceProfile) -> Self {
        Self::with_cache(profile, 0)
    }

    /// Creates a store with a page cache of `cache_bytes`.
    pub fn with_cache(profile: DeviceProfile, cache_bytes: u64) -> Self {
        Self {
            device: SharedDevice::new(profile),
            objects: Mutex::new(HashMap::new()),
            cache: Mutex::new(if cache_bytes == 0 {
                PageCache::disabled()
            } else {
                PageCache::new(cache_bytes)
            }),
            next_id: Mutex::new(0),
            readahead: AtomicU64::new(0),
        }
    }

    /// Sets the readahead granularity in bytes (0 disables readahead).
    ///
    /// When set, every device read is extended to the next `bytes`
    /// boundary (clamped to the object size) before consulting the cache,
    /// so a later read of an *adjacent* range — the next scan-group prefix
    /// of the same record — is served from cache instead of the device.
    /// Delivered data is never extended; only the cached/charged range is.
    pub fn set_readahead(&self, bytes: u64) {
        self.readahead.store(bytes, Ordering::Relaxed);
    }

    /// Current readahead granularity in bytes (0 = off).
    pub fn readahead(&self) -> u64 {
        self.readahead.load(Ordering::Relaxed)
    }

    /// Stores a blob under `name` (instant; ingestion is not simulated).
    pub fn put(&self, name: &str, data: Vec<u8>) {
        let mut id = self.next_id.lock();
        let oid = *id;
        *id += 1;
        self.objects.lock().insert(name.to_string(), (oid, Arc::new(data)));
    }

    /// Size of an object, if present.
    pub fn len_of(&self, name: &str) -> Option<u64> {
        self.objects.lock().get(name).map(|(_, d)| d.len() as u64)
    }

    /// Object names (unordered).
    pub fn names(&self) -> Vec<String> {
        self.objects.lock().keys().cloned().collect()
    }

    /// Reads `[offset, offset+len)` of `name` on the given [`Clock`].
    /// Out-of-range reads are clamped to the object size.
    ///
    /// This is the single data-plane read path: both timelines consult the
    /// page cache, extend the device range by the configured readahead, and
    /// record device/cache statistics. They differ only in how modeled
    /// service time is realized — queued on the virtual timeline
    /// ([`Clock::Virtual`]) or returned as a duration for the caller to
    /// spend ([`Clock::Wall`]).
    ///
    /// # `Clock::Wall` semantics
    ///
    /// For a wall-clock read the returned [`ReadResult`] is interpreted as:
    ///
    /// * `start` is always `0.0` — wall reads have no position on the
    ///   virtual timeline and never queue behind virtual requests (real
    ///   threads already contend in real time).
    /// * `finish` is the modeled service **duration** in seconds for the
    ///   *uncached* portion of the (readahead-extended) range; a fully
    ///   cached read costs only the device's request overhead. Sleep it to
    ///   emulate the device (`IoModel::EmulatedLatency` in `pcr-loader`)
    ///   or ignore it for memory-speed reads.
    /// * the device's `busy_until` is untouched, but its byte/request
    ///   statistics and the page cache **do** observe the read — wall
    ///   traffic is fully visible in [`ObjectStore::device_stats`] and
    ///   [`ObjectStore::cache_hit_rate`], and it warms the cache for
    ///   either timeline.
    pub fn read(&self, clock: Clock, name: &str, offset: u64, len: u64) -> Option<ReadResult> {
        let (oid, data) = {
            let g = self.objects.lock();
            let (oid, data) = g.get(name)?;
            (*oid, Arc::clone(data))
        };
        let size = data.len() as u64;
        let offset = offset.min(size);
        let end = offset.saturating_add(len).min(size);
        let len = end - offset;
        // Readahead: extend the cached/charged range (never the delivered
        // data) to the next boundary so adjacent prefix reads coalesce.
        let ra = self.readahead.load(Ordering::Relaxed);
        let span_end = if ra > 0 { end.div_ceil(ra).saturating_mul(ra).min(size) } else { end };
        let span = span_end - offset;
        let missed = self.cache.lock().access(oid, offset, span);
        let cached = len.min(span.saturating_sub(missed));
        let overhead = self.device.profile().request_overhead_us * 1e-6;
        let (start, finish) = match clock {
            Clock::Virtual(now) => {
                if missed == 0 {
                    // Fully cached: only request overhead.
                    (now, now + overhead)
                } else {
                    self.device.read_at(now, oid, offset, missed)
                }
            }
            Clock::Wall => {
                let service = if missed == 0 {
                    overhead
                } else {
                    self.device.service_wall(oid, offset, missed)
                };
                (0.0, service)
            }
        };
        Some(ReadResult {
            data: ByteView::from_shared(data, offset as usize, end as usize),
            start,
            finish,
            cached_bytes: cached,
        })
    }

    /// Reads `[offset, offset+len)` of `name` as a request issued at virtual
    /// time `now`. Convenience for [`ObjectStore::read`] with
    /// [`Clock::Virtual`].
    pub fn read_at(&self, now: f64, name: &str, offset: u64, len: u64) -> Option<ReadResult> {
        self.read(Clock::Virtual(now), name, offset, len)
    }

    /// Convenience: reads a whole object at time `now`.
    pub fn read_all_at(&self, now: f64, name: &str) -> Option<ReadResult> {
        let len = self.len_of(name)?;
        self.read_at(now, name, 0, len)
    }

    /// Device statistics.
    pub fn device_stats(&self) -> DeviceStats {
        self.device.stats()
    }

    /// The underlying device (for busy-time queries).
    pub fn device(&self) -> &SharedDevice {
        &self.device
    }

    /// Cache hit rate so far.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.lock().hit_rate()
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.objects.lock().values().map(|(_, d)| d.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_read_roundtrip() {
        let store = ObjectStore::new(DeviceProfile::ssd_sata());
        store.put("rec0", (0..=255).collect());
        let r = store.read_at(0.0, "rec0", 10, 16).unwrap();
        assert_eq!(r.data, (10..26).collect::<Vec<u8>>());
        assert!(r.finish > r.start);
    }

    #[test]
    fn read_clamps_to_object_end() {
        let store = ObjectStore::new(DeviceProfile::ram());
        store.put("x", vec![1, 2, 3]);
        let r = store.read_at(0.0, "x", 2, 100).unwrap();
        assert_eq!(r.data, vec![3]);
    }

    #[test]
    fn missing_object_is_none() {
        let store = ObjectStore::new(DeviceProfile::ram());
        assert!(store.read_at(0.0, "nope", 0, 1).is_none());
    }

    #[test]
    fn larger_reads_take_longer() {
        let store = ObjectStore::new(DeviceProfile::hdd_7200rpm());
        store.put("a", vec![0; 32 << 20]);
        let r1 = store.read_at(0.0, "a", 0, 1 << 20).unwrap();
        store.device().reset();
        let r2 = store.read_at(0.0, "a", 0, 16 << 20).unwrap();
        assert!(r2.finish - r2.start > r1.finish - r1.start);
    }

    #[test]
    fn cached_rereads_are_fast() {
        let store = ObjectStore::with_cache(DeviceProfile::hdd_7200rpm(), 64 << 20);
        store.put("a", vec![0; 8 << 20]);
        let cold = store.read_all_at(0.0, "a").unwrap();
        let warm = store.read_all_at(cold.finish, "a").unwrap();
        assert_eq!(warm.cached_bytes, 8 << 20);
        assert!((warm.finish - warm.start) < (cold.finish - cold.start) / 100.0);
    }

    #[test]
    fn wall_reads_share_cache_and_statistics() {
        let store = ObjectStore::with_cache(DeviceProfile::hdd_7200rpm(), 64 << 20);
        store.put("a", vec![0; 4 << 20]);
        let cold = store.read(Clock::Wall, "a", 0, 4 << 20).unwrap();
        assert_eq!(cold.cached_bytes, 0);
        assert!(cold.finish > 0.0, "modeled service time returned");
        let s = store.device_stats();
        assert_eq!(s.reads, 1);
        assert!(s.bytes >= 4 << 20);
        // Warm read: fully cached, only request overhead, no device read.
        let warm = store.read(Clock::Wall, "a", 0, 4 << 20).unwrap();
        assert_eq!(warm.cached_bytes, 4 << 20);
        assert!(warm.finish < cold.finish / 100.0);
        assert_eq!(store.device_stats().reads, 1);
        assert!(store.cache_hit_rate() > 0.0);
    }

    #[test]
    fn wall_reads_do_not_queue_on_the_virtual_timeline() {
        let store = ObjectStore::new(DeviceProfile::hdd_7200rpm());
        store.put("a", vec![0; 8 << 20]);
        let wall = store.read(Clock::Wall, "a", 0, 8 << 20).unwrap();
        assert_eq!(wall.start, 0.0);
        // The wall read's `finish` is exactly the modeled service time of
        // its (uncached) range — no queueing delay mixed in.
        let expected = DeviceProfile::hdd_7200rpm().read_time(8 << 20, false);
        assert!(
            (wall.finish - expected).abs() < expected * 1e-9,
            "wall service {} vs modeled {expected}",
            wall.finish
        );
        // A virtual read issued at t=0 afterwards starts at t=0: the wall
        // read recorded stats but left `busy_until` alone.
        let virt = store.read(Clock::Virtual(0.0), "a", 0, 1024).unwrap();
        assert_eq!(virt.start, 0.0);
        assert_eq!(store.device_stats().reads, 2);
    }

    #[test]
    fn readahead_coalesces_adjacent_prefix_reads() {
        let store = ObjectStore::with_cache(DeviceProfile::hdd_7200rpm(), 64 << 20);
        store.set_readahead(1 << 20);
        store.put("rec", vec![0; 1 << 20]);
        // A small prefix read is extended to the 1 MiB boundary...
        let r = store.read(Clock::Wall, "rec", 0, 100_000).unwrap();
        assert_eq!(r.data.len(), 100_000, "delivered data is never extended");
        assert!(store.device_stats().bytes >= 1 << 20);
        // ...so the *next* scan group's prefix is already resident.
        let next = store.read(Clock::Wall, "rec", 0, 400_000).unwrap();
        assert_eq!(next.cached_bytes, 400_000);
        assert_eq!(store.device_stats().reads, 1, "no second device read");
    }

    #[test]
    fn concurrent_readers_share_bandwidth() {
        let store = Arc::new(ObjectStore::new(DeviceProfile::ssd_sata()));
        store.put("a", vec![0; 4 << 20]);
        store.put("b", vec![0; 4 << 20]);
        let r1 = store.read_all_at(0.0, "a").unwrap();
        let r2 = store.read_all_at(0.0, "b").unwrap();
        // Issued simultaneously, the second finishes ~2x later.
        assert!(r2.finish > r1.finish * 1.8);
    }
}
