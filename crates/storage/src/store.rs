//! An in-memory object store fronted by a simulated device: named blobs
//! whose reads return both data and modeled completion times. This is what
//! the data loader reads records from.

use crate::bytes::ByteView;
use crate::cache::PageCache;
use crate::device::{DeviceStats, SharedDevice};
use crate::profile::DeviceProfile;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A read result: the data plus virtual timing.
#[derive(Debug, Clone)]
pub struct ReadResult {
    /// The bytes read — a zero-copy view into the stored object.
    pub data: ByteView,
    /// Virtual time the request started service.
    pub start: f64,
    /// Virtual time the request completed.
    pub finish: f64,
    /// Bytes served from cache (0 with DirectIO).
    pub cached_bytes: u64,
}

/// Object id plus shared contents.
type StoredObject = (u64, Arc<Vec<u8>>);

/// A named-blob store with simulated read timing and an optional page cache.
#[derive(Debug)]
pub struct ObjectStore {
    device: SharedDevice,
    objects: Mutex<HashMap<String, StoredObject>>,
    cache: Mutex<PageCache>,
    next_id: Mutex<u64>,
}

impl ObjectStore {
    /// Creates a store on a device with caching disabled (the paper's
    /// DirectIO setting).
    pub fn new(profile: DeviceProfile) -> Self {
        Self::with_cache(profile, 0)
    }

    /// Creates a store with a page cache of `cache_bytes`.
    pub fn with_cache(profile: DeviceProfile, cache_bytes: u64) -> Self {
        Self {
            device: SharedDevice::new(profile),
            objects: Mutex::new(HashMap::new()),
            cache: Mutex::new(if cache_bytes == 0 {
                PageCache::disabled()
            } else {
                PageCache::new(cache_bytes)
            }),
            next_id: Mutex::new(0),
        }
    }

    /// Stores a blob under `name` (instant; ingestion is not simulated).
    pub fn put(&self, name: &str, data: Vec<u8>) {
        let mut id = self.next_id.lock();
        let oid = *id;
        *id += 1;
        self.objects.lock().insert(name.to_string(), (oid, Arc::new(data)));
    }

    /// Size of an object, if present.
    pub fn len_of(&self, name: &str) -> Option<u64> {
        self.objects.lock().get(name).map(|(_, d)| d.len() as u64)
    }

    /// Object names (unordered).
    pub fn names(&self) -> Vec<String> {
        self.objects.lock().keys().cloned().collect()
    }

    /// Reads `[offset, offset+len)` of `name` as a request issued at virtual
    /// time `now`. Out-of-range reads are clamped to the object size.
    pub fn read_at(&self, now: f64, name: &str, offset: u64, len: u64) -> Option<ReadResult> {
        let (oid, data) = {
            let g = self.objects.lock();
            let (oid, data) = g.get(name)?;
            (*oid, Arc::clone(data))
        };
        let end = (offset + len).min(data.len() as u64);
        let offset = offset.min(data.len() as u64);
        let len = end - offset;
        let missed = self.cache.lock().access(oid, offset, len);
        let cached = len.saturating_sub(missed);
        let (start, finish) = if missed == 0 {
            // Fully cached: only request overhead.
            let t = self.device.profile().request_overhead_us * 1e-6;
            (now, now + t)
        } else {
            self.device.read_at(now, oid, offset, missed)
        };
        Some(ReadResult {
            data: ByteView::from_shared(data, offset as usize, end as usize),
            start,
            finish,
            cached_bytes: cached,
        })
    }

    /// Zero-copy, timing-free read of `[offset, offset+len)` of `name`
    /// (clamped to the object size). Used by wall-clock loaders that model
    /// device time separately; does not touch the simulated device clock,
    /// the page cache, or the statistics.
    pub fn read_bytes(&self, name: &str, offset: u64, len: u64) -> Option<ByteView> {
        let g = self.objects.lock();
        let (_, data) = g.get(name)?;
        let end = (offset + len).min(data.len() as u64);
        let offset = offset.min(end);
        Some(ByteView::from_shared(Arc::clone(data), offset as usize, end as usize))
    }

    /// Convenience: reads a whole object at time `now`.
    pub fn read_all_at(&self, now: f64, name: &str) -> Option<ReadResult> {
        let len = self.len_of(name)?;
        self.read_at(now, name, 0, len)
    }

    /// Device statistics.
    pub fn device_stats(&self) -> DeviceStats {
        self.device.stats()
    }

    /// The underlying device (for busy-time queries).
    pub fn device(&self) -> &SharedDevice {
        &self.device
    }

    /// Cache hit rate so far.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.lock().hit_rate()
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.objects.lock().values().map(|(_, d)| d.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_read_roundtrip() {
        let store = ObjectStore::new(DeviceProfile::ssd_sata());
        store.put("rec0", (0..=255).collect());
        let r = store.read_at(0.0, "rec0", 10, 16).unwrap();
        assert_eq!(r.data, (10..26).collect::<Vec<u8>>());
        assert!(r.finish > r.start);
    }

    #[test]
    fn read_clamps_to_object_end() {
        let store = ObjectStore::new(DeviceProfile::ram());
        store.put("x", vec![1, 2, 3]);
        let r = store.read_at(0.0, "x", 2, 100).unwrap();
        assert_eq!(r.data, vec![3]);
    }

    #[test]
    fn missing_object_is_none() {
        let store = ObjectStore::new(DeviceProfile::ram());
        assert!(store.read_at(0.0, "nope", 0, 1).is_none());
    }

    #[test]
    fn larger_reads_take_longer() {
        let store = ObjectStore::new(DeviceProfile::hdd_7200rpm());
        store.put("a", vec![0; 32 << 20]);
        let r1 = store.read_at(0.0, "a", 0, 1 << 20).unwrap();
        store.device().reset();
        let r2 = store.read_at(0.0, "a", 0, 16 << 20).unwrap();
        assert!(r2.finish - r2.start > r1.finish - r1.start);
    }

    #[test]
    fn cached_rereads_are_fast() {
        let store = ObjectStore::with_cache(DeviceProfile::hdd_7200rpm(), 64 << 20);
        store.put("a", vec![0; 8 << 20]);
        let cold = store.read_all_at(0.0, "a").unwrap();
        let warm = store.read_all_at(cold.finish, "a").unwrap();
        assert_eq!(warm.cached_bytes, 8 << 20);
        assert!((warm.finish - warm.start) < (cold.finish - cold.start) / 100.0);
    }

    #[test]
    fn concurrent_readers_share_bandwidth() {
        let store = Arc::new(ObjectStore::new(DeviceProfile::ssd_sata()));
        store.put("a", vec![0; 4 << 20]);
        store.put("b", vec![0; 4 << 20]);
        let r1 = store.read_all_at(0.0, "a").unwrap();
        let r2 = store.read_all_at(0.0, "b").unwrap();
        // Issued simultaneously, the second finishes ~2x later.
        assert!(r2.finish > r1.finish * 1.8);
    }
}
