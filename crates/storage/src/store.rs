//! An in-memory object store fronted by a simulated device: named blobs
//! whose reads return both data and modeled completion times. This is what
//! the data loader reads records from.
//!
//! There is exactly **one** read path, [`ObjectStore::read`], parameterized
//! by a [`Clock`]: virtual-time loaders pass [`Clock::Virtual`] and get
//! queueing against the simulated device; wall-clock workers pass
//! [`Clock::Wall`] and get the same page cache, readahead, and device/cache
//! statistics, with the modeled service time returned (not queued) so they
//! can realize it as real latency if they choose.

use crate::bytes::ByteView;
use crate::cache::PageCache;
use crate::device::{DeviceStats, SharedDevice};
use crate::fault::{FaultDecision, FaultPlan, FaultStats, FaultStatsSnapshot, ReadError};
use crate::profile::DeviceProfile;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Which timeline a read is issued on.
///
/// Every read — from the virtual-time `PcrLoader` or from a wall-clock
/// worker thread — flows through [`ObjectStore::read`] with one of these,
/// so the block cache, readahead, and statistics see *all* traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Clock {
    /// A read issued at the given virtual timestamp. The simulated device
    /// queues it (FIFO behind any outstanding virtual requests) and the
    /// returned [`ReadResult::start`]/[`ReadResult::finish`] are virtual
    /// times on that shared timeline.
    Virtual(f64),
    /// A read issued by a real worker thread. The device records the
    /// traffic and models the service time, but does not queue it against
    /// the virtual timeline (real threads already contend in real time).
    /// `start` is 0 and `finish` is the modeled service *duration* in
    /// seconds — sleep it to emulate the device, or ignore it.
    Wall,
}

/// A read result: the data plus virtual timing.
#[derive(Debug, Clone)]
pub struct ReadResult {
    /// The bytes read — a zero-copy view into the stored object.
    pub data: ByteView,
    /// Virtual time the request started service.
    pub start: f64,
    /// Virtual time the request completed.
    pub finish: f64,
    /// Bytes served from cache (0 with DirectIO).
    pub cached_bytes: u64,
}

/// Object id plus shared contents.
type StoredObject = (u64, Arc<Vec<u8>>);

/// A named-blob store with simulated read timing and an optional page cache.
#[derive(Debug)]
pub struct ObjectStore {
    device: SharedDevice,
    objects: Mutex<HashMap<String, StoredObject>>,
    cache: Mutex<PageCache>,
    next_id: Mutex<u64>,
    /// Readahead granularity in bytes (0 = off): device reads are extended
    /// to the next multiple, so adjacent scan-group prefix reads coalesce.
    readahead: AtomicU64,
    /// Installed fault schedule (None = never fault). Guarded by
    /// `faults_on` so the zero-fault fast path is one relaxed load.
    fault: Mutex<Option<FaultPlan>>,
    faults_on: AtomicBool,
    /// Per-site 1-based attempt counters, keyed by
    /// `(name hash, offset, len)`, so error-once / error-N-times schedules
    /// can clear. Reset whenever a new plan is installed.
    attempts: Mutex<HashMap<(u64, u64, u64), u32>>,
    fault_stats: FaultStats,
}

impl ObjectStore {
    /// Creates a store on a device with caching disabled (the paper's
    /// DirectIO setting).
    pub fn new(profile: DeviceProfile) -> Self {
        Self::with_cache(profile, 0)
    }

    /// Creates a store with a page cache of `cache_bytes`.
    pub fn with_cache(profile: DeviceProfile, cache_bytes: u64) -> Self {
        Self {
            device: SharedDevice::new(profile),
            objects: Mutex::new(HashMap::new()),
            cache: Mutex::new(if cache_bytes == 0 {
                PageCache::disabled()
            } else {
                PageCache::new(cache_bytes)
            }),
            next_id: Mutex::new(0),
            readahead: AtomicU64::new(0),
            fault: Mutex::new(None),
            faults_on: AtomicBool::new(false),
            attempts: Mutex::new(HashMap::new()),
            fault_stats: FaultStats::default(),
        }
    }

    /// Installs (or with `None` removes) a deterministic fault schedule.
    /// Per-site attempt counters are reset, so re-installing the same plan
    /// replays the same fault sequence. A quiet plan (all probabilities
    /// zero) is treated as no plan: the read fast path stays untouched.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        let plan = plan.filter(|p| !p.is_quiet());
        self.faults_on.store(plan.is_some(), Ordering::Release);
        *self.fault.lock() = plan;
        self.attempts.lock().clear();
    }

    /// The currently installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault.lock().clone()
    }

    /// Snapshot of injected-fault counters.
    pub fn fault_stats(&self) -> FaultStatsSnapshot {
        self.fault_stats.snapshot()
    }

    /// Sets the readahead granularity in bytes (0 disables readahead).
    ///
    /// When set, every device read is extended to the next `bytes`
    /// boundary (clamped to the object size) before consulting the cache,
    /// so a later read of an *adjacent* range — the next scan-group prefix
    /// of the same record — is served from cache instead of the device.
    /// Delivered data is never extended; only the cached/charged range is.
    pub fn set_readahead(&self, bytes: u64) {
        self.readahead.store(bytes, Ordering::Relaxed);
    }

    /// Current readahead granularity in bytes (0 = off).
    pub fn readahead(&self) -> u64 {
        self.readahead.load(Ordering::Relaxed)
    }

    /// Stores a blob under `name` (instant; ingestion is not simulated).
    pub fn put(&self, name: &str, data: Vec<u8>) {
        let mut id = self.next_id.lock();
        let oid = *id;
        *id += 1;
        self.objects.lock().insert(name.to_string(), (oid, Arc::new(data)));
    }

    /// Size of an object, if present.
    pub fn len_of(&self, name: &str) -> Option<u64> {
        self.objects.lock().get(name).map(|(_, d)| d.len() as u64)
    }

    /// Object names (unordered).
    pub fn names(&self) -> Vec<String> {
        self.objects.lock().keys().cloned().collect()
    }

    /// Reads `[offset, offset+len)` of `name` on the given [`Clock`].
    /// Out-of-range reads are clamped to the object size.
    ///
    /// This is the single data-plane read path: both timelines consult the
    /// page cache, extend the device range by the configured readahead, and
    /// record device/cache statistics. They differ only in how modeled
    /// service time is realized — queued on the virtual timeline
    /// ([`Clock::Virtual`]) or returned as a duration for the caller to
    /// spend ([`Clock::Wall`]).
    ///
    /// # `Clock::Wall` semantics
    ///
    /// For a wall-clock read the returned [`ReadResult`] is interpreted as:
    ///
    /// * `start` is always `0.0` — wall reads have no position on the
    ///   virtual timeline and never queue behind virtual requests (real
    ///   threads already contend in real time).
    /// * `finish` is the modeled service **duration** in seconds for the
    ///   *uncached* portion of the (readahead-extended) range; a fully
    ///   cached read costs only the device's request overhead. Sleep it to
    ///   emulate the device (`IoModel::EmulatedLatency` in `pcr-loader`)
    ///   or ignore it for memory-speed reads.
    /// * the device's `busy_until` is untouched, but its byte/request
    ///   statistics and the page cache **do** observe the read — wall
    ///   traffic is fully visible in [`ObjectStore::device_stats`] and
    ///   [`ObjectStore::cache_hit_rate`], and it warms the cache for
    ///   either timeline.
    ///
    /// # Failures
    ///
    /// A missing object returns [`ReadError::NotFound`]. With a
    /// [`FaultPlan`] installed ([`ObjectStore::set_fault_plan`]), reads can
    /// also fail with the plan's injected [`ReadError`]s; failed attempts
    /// cost no modeled device time and leave cache/device statistics
    /// untouched (the retry layer charges backoff instead). With no plan
    /// installed the only possible error is `NotFound`.
    pub fn read(
        &self,
        clock: Clock,
        name: &str,
        offset: u64,
        len: u64,
    ) -> Result<ReadResult, ReadError> {
        let (oid, data) = {
            let g = self.objects.lock();
            let (oid, data) = g
                .get(name)
                .ok_or_else(|| ReadError::NotFound { object: name.to_string() })?;
            (*oid, Arc::clone(data))
        };
        let size = data.len() as u64;
        let offset = offset.min(size);
        let end = offset.saturating_add(len).min(size);
        let len = end - offset;
        // Fault injection: decided on the clamped site before any cache or
        // device accounting, so injected failures are free of side effects
        // and deterministic given (plan seed, site, attempt number).
        let mut latency_factor = 1.0f64;
        let mut flip: Option<(u64, u32)> = None;
        if self.faults_on.load(Ordering::Acquire) {
            if let Some(plan) = self.fault.lock().clone() {
                self.apply_fault_plan(
                    &plan,
                    name,
                    offset,
                    len,
                    size,
                    &mut latency_factor,
                    &mut flip,
                )?;
            }
        }
        // Readahead: extend the cached/charged range (never the delivered
        // data) to the next boundary so adjacent prefix reads coalesce.
        let ra = self.readahead.load(Ordering::Relaxed);
        let span_end = if ra > 0 { end.div_ceil(ra).saturating_mul(ra).min(size) } else { end };
        let span = span_end - offset;
        let missed = self.cache.lock().access(oid, offset, span);
        let cached = len.min(span.saturating_sub(missed));
        let overhead = self.device.profile().request_overhead_us * 1e-6;
        let (start, finish) = match clock {
            Clock::Virtual(now) => {
                if missed == 0 {
                    // Fully cached: only request overhead.
                    (now, now + overhead)
                } else {
                    let (s, f) = self.device.read_at(now, oid, offset, missed);
                    (s, s + (f - s) * latency_factor)
                }
            }
            Clock::Wall => {
                let service = if missed == 0 {
                    overhead
                } else {
                    self.device.service_wall(oid, offset, missed)
                };
                (0.0, service * latency_factor)
            }
        };
        let view = match flip {
            // A silent bit flip must never touch the shared backing store
            // (other readers would see it): copy the delivered window and
            // flip the bit in the owned copy.
            Some((pos, bit)) => {
                self.fault_stats.bit_flips.fetch_add(1, Ordering::Relaxed);
                let mut owned = data
                    .get(offset as usize..end as usize)
                    .map(<[u8]>::to_vec)
                    .unwrap_or_default();
                if let Some(byte) = owned.get_mut((pos - offset) as usize) {
                    *byte ^= 1u8 << bit;
                }
                ByteView::from_vec(owned)
            }
            None => ByteView::from_shared(data, offset as usize, end as usize),
        };
        Ok(ReadResult { data: view, start, finish, cached_bytes: cached })
    }

    /// Consults `plan` for the fate of one attempt at the clamped site
    /// `(name, offset, len)`. Returns `Err` for injected failures; on
    /// delivery fills in the latency multiplier and any silent bit flip
    /// covered by the range.
    #[allow(clippy::too_many_arguments)]
    fn apply_fault_plan(
        &self,
        plan: &FaultPlan,
        name: &str,
        offset: u64,
        len: u64,
        size: u64,
        latency_factor: &mut f64,
        flip: &mut Option<(u64, u32)>,
    ) -> Result<(), ReadError> {
        let attempt = {
            let mut g = self.attempts.lock();
            let n = g.entry((crate::fault::site_key(name), offset, len)).or_insert(0);
            *n += 1;
            *n
        };
        match plan.decide(name, offset, len, attempt) {
            FaultDecision::Deliver { latency_factor: f } => {
                if f > 1.0 {
                    self.fault_stats.latency_spikes.fetch_add(1, Ordering::Relaxed);
                }
                *latency_factor = f;
            }
            FaultDecision::Transient => {
                self.fault_stats.transient.fetch_add(1, Ordering::Relaxed);
                return Err(ReadError::Transient { object: name.to_string(), offset, attempt });
            }
            FaultDecision::Torn { delivered } => {
                self.fault_stats.torn.fetch_add(1, Ordering::Relaxed);
                return Err(ReadError::ShortRead {
                    object: name.to_string(),
                    offset,
                    requested: len,
                    delivered,
                });
            }
            FaultDecision::Corrupt => {
                self.fault_stats.corrupt.fetch_add(1, Ordering::Relaxed);
                return Err(ReadError::CorruptRange { object: name.to_string(), offset, len });
            }
            FaultDecision::Timeout => {
                self.fault_stats.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(ReadError::Timeout {
                    object: name.to_string(),
                    offset,
                    service_s: f64::INFINITY,
                });
            }
        }
        if let Some((pos, bit)) = plan.flipped_bit(name, size) {
            if pos >= offset && pos < offset.saturating_add(len) {
                *flip = Some((pos, bit));
            }
        }
        Ok(())
    }

    /// Reads `[offset, offset+len)` of `name` as a request issued at virtual
    /// time `now`. Convenience for [`ObjectStore::read`] with
    /// [`Clock::Virtual`].
    pub fn read_at(
        &self,
        now: f64,
        name: &str,
        offset: u64,
        len: u64,
    ) -> Result<ReadResult, ReadError> {
        self.read(Clock::Virtual(now), name, offset, len)
    }

    /// Convenience: reads a whole object at time `now`.
    pub fn read_all_at(&self, now: f64, name: &str) -> Result<ReadResult, ReadError> {
        let len = self
            .len_of(name)
            .ok_or_else(|| ReadError::NotFound { object: name.to_string() })?;
        self.read_at(now, name, 0, len)
    }

    /// Device statistics.
    pub fn device_stats(&self) -> DeviceStats {
        self.device.stats()
    }

    /// The underlying device (for busy-time queries).
    pub fn device(&self) -> &SharedDevice {
        &self.device
    }

    /// Cache hit rate so far.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.lock().hit_rate()
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.objects.lock().values().map(|(_, d)| d.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_read_roundtrip() {
        let store = ObjectStore::new(DeviceProfile::ssd_sata());
        store.put("rec0", (0..=255).collect());
        let r = store.read_at(0.0, "rec0", 10, 16).unwrap();
        assert_eq!(r.data, (10..26).collect::<Vec<u8>>());
        assert!(r.finish > r.start);
    }

    #[test]
    fn read_clamps_to_object_end() {
        let store = ObjectStore::new(DeviceProfile::ram());
        store.put("x", vec![1, 2, 3]);
        let r = store.read_at(0.0, "x", 2, 100).unwrap();
        assert_eq!(r.data, vec![3]);
    }

    #[test]
    fn missing_object_is_not_found() {
        let store = ObjectStore::new(DeviceProfile::ram());
        match store.read_at(0.0, "nope", 0, 1) {
            Err(ReadError::NotFound { object }) => assert_eq!(object, "nope"),
            other => panic!("expected NotFound, got {other:?}"),
        }
        assert!(store.read_all_at(0.0, "nope").is_err());
    }

    #[test]
    fn larger_reads_take_longer() {
        let store = ObjectStore::new(DeviceProfile::hdd_7200rpm());
        store.put("a", vec![0; 32 << 20]);
        let r1 = store.read_at(0.0, "a", 0, 1 << 20).unwrap();
        store.device().reset();
        let r2 = store.read_at(0.0, "a", 0, 16 << 20).unwrap();
        assert!(r2.finish - r2.start > r1.finish - r1.start);
    }

    #[test]
    fn cached_rereads_are_fast() {
        let store = ObjectStore::with_cache(DeviceProfile::hdd_7200rpm(), 64 << 20);
        store.put("a", vec![0; 8 << 20]);
        let cold = store.read_all_at(0.0, "a").unwrap();
        let warm = store.read_all_at(cold.finish, "a").unwrap();
        assert_eq!(warm.cached_bytes, 8 << 20);
        assert!((warm.finish - warm.start) < (cold.finish - cold.start) / 100.0);
    }

    #[test]
    fn wall_reads_share_cache_and_statistics() {
        let store = ObjectStore::with_cache(DeviceProfile::hdd_7200rpm(), 64 << 20);
        store.put("a", vec![0; 4 << 20]);
        let cold = store.read(Clock::Wall, "a", 0, 4 << 20).unwrap();
        assert_eq!(cold.cached_bytes, 0);
        assert!(cold.finish > 0.0, "modeled service time returned");
        let s = store.device_stats();
        assert_eq!(s.reads, 1);
        assert!(s.bytes >= 4 << 20);
        // Warm read: fully cached, only request overhead, no device read.
        let warm = store.read(Clock::Wall, "a", 0, 4 << 20).unwrap();
        assert_eq!(warm.cached_bytes, 4 << 20);
        assert!(warm.finish < cold.finish / 100.0);
        assert_eq!(store.device_stats().reads, 1);
        assert!(store.cache_hit_rate() > 0.0);
    }

    #[test]
    fn wall_reads_do_not_queue_on_the_virtual_timeline() {
        let store = ObjectStore::new(DeviceProfile::hdd_7200rpm());
        store.put("a", vec![0; 8 << 20]);
        let wall = store.read(Clock::Wall, "a", 0, 8 << 20).unwrap();
        assert_eq!(wall.start, 0.0);
        // The wall read's `finish` is exactly the modeled service time of
        // its (uncached) range — no queueing delay mixed in.
        let expected = DeviceProfile::hdd_7200rpm().read_time(8 << 20, false);
        assert!(
            (wall.finish - expected).abs() < expected * 1e-9,
            "wall service {} vs modeled {expected}",
            wall.finish
        );
        // A virtual read issued at t=0 afterwards starts at t=0: the wall
        // read recorded stats but left `busy_until` alone.
        let virt = store.read(Clock::Virtual(0.0), "a", 0, 1024).unwrap();
        assert_eq!(virt.start, 0.0);
        assert_eq!(store.device_stats().reads, 2);
    }

    #[test]
    fn readahead_coalesces_adjacent_prefix_reads() {
        let store = ObjectStore::with_cache(DeviceProfile::hdd_7200rpm(), 64 << 20);
        store.set_readahead(1 << 20);
        store.put("rec", vec![0; 1 << 20]);
        // A small prefix read is extended to the 1 MiB boundary...
        let r = store.read(Clock::Wall, "rec", 0, 100_000).unwrap();
        assert_eq!(r.data.len(), 100_000, "delivered data is never extended");
        assert!(store.device_stats().bytes >= 1 << 20);
        // ...so the *next* scan group's prefix is already resident.
        let next = store.read(Clock::Wall, "rec", 0, 400_000).unwrap();
        assert_eq!(next.cached_bytes, 400_000);
        assert_eq!(store.device_stats().reads, 1, "no second device read");
    }

    #[test]
    fn transient_fault_clears_after_repeats_and_costs_no_device_time() {
        let store = ObjectStore::new(DeviceProfile::ram());
        store.put("rec", vec![7; 4096]);
        store.set_fault_plan(Some(FaultPlan {
            seed: 1,
            transient: 1.0,
            transient_repeats: 2,
            ..FaultPlan::default()
        }));
        for attempt in 1..=2u32 {
            match store.read_at(0.0, "rec", 0, 1024) {
                Err(ReadError::Transient { attempt: a, .. }) => assert_eq!(a, attempt),
                other => panic!("expected transient, got {other:?}"),
            }
        }
        assert_eq!(store.device_stats().reads, 0, "failed attempts are free");
        let r = store.read_at(0.0, "rec", 0, 1024).unwrap();
        assert_eq!(r.data.len(), 1024);
        assert_eq!(store.fault_stats().transient, 2);
        // Installing a fresh plan resets the attempt counters.
        store.set_fault_plan(Some(FaultPlan {
            seed: 1,
            transient: 1.0,
            transient_repeats: 2,
            ..FaultPlan::default()
        }));
        assert!(store.read_at(0.0, "rec", 0, 1024).is_err());
    }

    #[test]
    fn bit_flip_corrupts_the_delivered_copy_not_the_store() {
        let store = ObjectStore::new(DeviceProfile::ram());
        let original: Vec<u8> = (0..=255).cycle().take(4096).collect();
        store.put("rec", original.clone());
        store.set_fault_plan(Some(FaultPlan { seed: 3, bit_flip: 1.0, ..FaultPlan::default() }));
        let plan = store.fault_plan().unwrap();
        let (pos, _bit) = plan.flipped_bit("rec", 4096).unwrap();
        // A read covering the flipped bit sees exactly one corrupt byte...
        let full = store.read_at(0.0, "rec", 0, 4096).unwrap();
        let diffs: Vec<usize> =
            (0..4096).filter(|&i| full.data[i] != original[i]).collect();
        assert_eq!(diffs, vec![pos as usize]);
        // ...a prefix read that excludes it is byte-clean...
        let prefix = store.read_at(0.0, "rec", 0, pos).unwrap();
        assert_eq!(&prefix.data[..], &original[..pos as usize]);
        // ...and the backing store itself is untouched.
        store.set_fault_plan(None);
        let clean = store.read_at(0.0, "rec", 0, 4096).unwrap();
        assert_eq!(&clean.data[..], &original[..]);
    }

    #[test]
    fn latency_spike_extends_service_time_on_both_clocks() {
        let mk = || {
            let s = ObjectStore::new(DeviceProfile::hdd_7200rpm());
            s.put("a", vec![0; 4 << 20]);
            s
        };
        let clean = mk();
        let spiked = mk();
        spiked.set_fault_plan(Some(FaultPlan {
            seed: 2,
            latency: 1.0,
            latency_factor: 10.0,
            ..FaultPlan::default()
        }));
        let c = clean.read(Clock::Wall, "a", 0, 4 << 20).unwrap();
        let s = spiked.read(Clock::Wall, "a", 0, 4 << 20).unwrap();
        assert!(s.finish > c.finish * 5.0, "wall spike {} vs clean {}", s.finish, c.finish);
        let cv = clean.read_at(0.0, "a", 0, 4 << 20).unwrap();
        let sv = spiked.read_at(0.0, "a", 0, 4 << 20).unwrap();
        assert!(sv.finish - sv.start > (cv.finish - cv.start) * 5.0);
        assert_eq!(spiked.fault_stats().latency_spikes, 2);
    }

    #[test]
    fn quiet_plan_is_equivalent_to_no_plan() {
        let store = ObjectStore::new(DeviceProfile::ram());
        store.put("rec", vec![1; 64]);
        store.set_fault_plan(Some(FaultPlan::quiet(99)));
        assert!(store.fault_plan().is_none(), "quiet plans are dropped");
        assert!(store.read_at(0.0, "rec", 0, 64).is_ok());
    }

    #[test]
    fn concurrent_readers_share_bandwidth() {
        let store = Arc::new(ObjectStore::new(DeviceProfile::ssd_sata()));
        store.put("a", vec![0; 4 << 20]);
        store.put("b", vec![0; 4 << 20]);
        let r1 = store.read_all_at(0.0, "a").unwrap();
        let r2 = store.read_all_at(0.0, "b").unwrap();
        // Issued simultaneously, the second finishes ~2x later.
        assert!(r2.finish > r1.finish * 1.8);
    }
}
