//! Storage device profiles: parametric seek/bandwidth models for the
//! hardware classes in the paper's evaluation.

/// Parameters of a simulated storage device (or aggregate storage system).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable name.
    pub name: String,
    /// Latency charged to a non-sequential access, in microseconds
    /// (head seek + rotational delay for HDDs; command overhead for SSDs;
    /// RPC + placement for distributed stores).
    pub seek_latency_us: f64,
    /// Fixed per-request overhead charged to *every* access, in
    /// microseconds.
    pub request_overhead_us: f64,
    /// Sustained sequential read bandwidth in MiB/s.
    pub sequential_bw_mib_s: f64,
}

impl DeviceProfile {
    /// The paper's storage node drive: 4TB 7200RPM Seagate ST4000NM0023.
    /// ~4.16ms rotational + ~8.5ms avg seek, ~175 MiB/s outer-track reads.
    pub fn hdd_7200rpm() -> Self {
        Self {
            name: "hdd-7200rpm".into(),
            seek_latency_us: 12_600.0,
            request_overhead_us: 50.0,
            sequential_bw_mib_s: 175.0,
        }
    }

    /// The paper's microbenchmark drive: Micron 1100 2TB SATA SSD, measured
    /// at ~400 MiB/s in their reader benchmark (Appendix A.5).
    pub fn ssd_sata() -> Self {
        Self {
            name: "ssd-sata".into(),
            seek_latency_us: 90.0,
            request_overhead_us: 20.0,
            sequential_bw_mib_s: 400.0,
        }
    }

    /// An aggregate Ceph-like cluster of `n_osds` HDD-backed OSDs reached
    /// over the network. The paper's 5-OSD cluster delivered 400+ MiB/s of
    /// aggregate bandwidth to 10 workers; we model per-request network RPC
    /// latency plus striped aggregate bandwidth with a parallel-efficiency
    /// factor.
    pub fn ceph_cluster(n_osds: usize) -> Self {
        let hdd = Self::hdd_7200rpm();
        let efficiency = 0.5; // replication + striping + network overheads
        Self {
            name: format!("ceph-{n_osds}osd"),
            seek_latency_us: hdd.seek_latency_us + 300.0, // + network RTT
            request_overhead_us: 250.0,
            sequential_bw_mib_s: hdd.sequential_bw_mib_s * n_osds as f64 * efficiency,
        }
    }

    /// The paper's evaluation cluster: 5 OSDs, "400+ MiB/s".
    pub fn paper_cluster() -> Self {
        Self::ceph_cluster(5)
    }

    /// A remote object store reached over a wide-area or congested link
    /// (S3-like blob storage): high first-byte latency, modest per-stream
    /// bandwidth. Requests to *different* objects are served by independent
    /// backends, so a multi-worker loader overlaps their latencies — the
    /// regime the wall-clock `pcr-loader::parallel` benchmark exercises.
    pub fn remote_object_store() -> Self {
        Self {
            name: "remote-object-store".into(),
            seek_latency_us: 80_000.0, // RPC + placement + first byte
            request_overhead_us: 4_000.0,
            sequential_bw_mib_s: 60.0, // per-stream
        }
    }

    /// A local NVMe-class flash drive — the default device profile for
    /// *file-backed* shard containers (`pcr-core::container`) opened on a
    /// workstation: microsecond-scale command latency and multi-GiB/s
    /// sequential bandwidth, so emulated-latency runs against packed
    /// shards behave like a modern local disk rather than the paper's
    /// SATA-era hardware.
    pub fn nvme_local() -> Self {
        Self {
            name: "nvme-local".into(),
            seek_latency_us: 20.0,
            request_overhead_us: 8.0,
            sequential_bw_mib_s: 3_000.0,
        }
    }

    /// In-memory "device": effectively instant (used as the compute-bound
    /// reference, e.g. the paper's from-RAM training rates).
    pub fn ram() -> Self {
        Self {
            name: "ram".into(),
            seek_latency_us: 0.1,
            request_overhead_us: 0.1,
            sequential_bw_mib_s: 20_000.0,
        }
    }

    /// Time in seconds for one read of `len` bytes.
    pub fn read_time(&self, len: u64, sequential: bool) -> f64 {
        let overhead = if sequential {
            self.request_overhead_us
        } else {
            self.request_overhead_us + self.seek_latency_us
        };
        overhead * 1e-6 + len as f64 / (self.sequential_bw_mib_s * 1024.0 * 1024.0)
    }

    /// Steady-state throughput (items/s) for a stream of reads of mean size
    /// `mean_len` — Lemma A.2's `X = W / E[s(x)]` with per-request
    /// overhead included.
    pub fn throughput_items_per_s(&self, mean_len: f64, sequential: bool) -> f64 {
        1.0 / self.read_time(mean_len.max(1.0) as u64, sequential)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_read_time_scales_linearly() {
        let p = DeviceProfile::ssd_sata();
        let t1 = p.read_time(1 << 20, true);
        let t2 = p.read_time(2 << 20, true);
        // Doubling bytes roughly doubles time (overhead is small).
        assert!((t2 / t1 - 2.0).abs() < 0.05);
    }

    #[test]
    fn random_reads_pay_seek() {
        let p = DeviceProfile::hdd_7200rpm();
        let seq = p.read_time(4096, true);
        let rnd = p.read_time(4096, false);
        assert!(rnd > seq * 50.0, "seek must dominate small random reads");
    }

    #[test]
    fn hdd_small_random_iops_realistic() {
        // A 7200RPM drive does on the order of 75-120 random IOPS.
        let p = DeviceProfile::hdd_7200rpm();
        let iops = 1.0 / p.read_time(4096, false);
        assert!((40.0..200.0).contains(&iops), "iops {iops}");
    }

    #[test]
    fn cluster_bandwidth_exceeds_single_disk() {
        let one = DeviceProfile::hdd_7200rpm();
        let cluster = DeviceProfile::paper_cluster();
        assert!(cluster.sequential_bw_mib_s > 2.0 * one.sequential_bw_mib_s);
        // Paper reports "400+ MiB/s of storage bandwidth".
        assert!(cluster.sequential_bw_mib_s >= 400.0);
    }

    #[test]
    fn throughput_follows_littles_law_inverse() {
        let p = DeviceProfile::ssd_sata();
        let mean = 110.0 * 1024.0; // ~ImageNet image
        let x = p.throughput_items_per_s(mean, true);
        let expect = 1.0 / p.read_time(mean as u64, true);
        assert!((x - expect).abs() < 1e-9);
    }

    #[test]
    fn ram_is_fast() {
        let p = DeviceProfile::ram();
        assert!(p.read_time(1 << 20, false) < 1e-3);
    }
}
