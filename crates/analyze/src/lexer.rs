//! A minimal hand-rolled Rust lexer, just deep enough for lexical lint
//! rules: it must never mistake the *contents* of a comment, string,
//! raw string, byte string, or char literal for code (and vice versa),
//! and it must keep comments around so annotation conventions
//! (`// pcr-lint: allow(...)`, `// SAFETY:`) can be matched to the code
//! lines they govern.
//!
//! Handled explicitly because each has bitten real lexers:
//!
//! * nested block comments (`/* /* */ */` — Rust nests, C does not);
//! * raw strings with arbitrary hash depth (`r##"..."##`) and raw byte
//!   strings (`br#"..."#`);
//! * raw identifiers (`r#match`) versus raw strings (`r#"..."`);
//! * lifetimes (`'a`, `'static`) versus char literals (`'a'`, `'\n'`,
//!   `'\u{1F4A9}'`);
//! * numeric literals with type suffixes (`1usize`) without swallowing
//!   the `..` of `0..10`.
//!
//! No attempt is made at parsing: the rule layer works on the token
//! stream plus line numbers.

/// What a token is, at the granularity the lint rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (includes the `ident` of `r#ident`).
    Ident,
    /// Lifetime such as `'a` (the leading `'` is part of the token).
    Lifetime,
    /// Integer or float literal, including any type suffix.
    Number,
    /// String, raw string, byte string, or C string literal.
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Line or block comment (doc comments included).
    Comment,
    /// A single punctuation character (`.`, `[`, `!`, ...).
    Punct,
}

/// One lexed token: kind, byte range into the source, and 1-based
/// line/column of its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Start byte offset in the source.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
    /// 1-based source line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` into tokens, keeping comments. Unknown bytes become
/// single-character `Punct` tokens, so lexing never fails — on genuinely
/// broken input the rules see a conservative token soup rather than an
/// error.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1, out: Vec::new() }.run(src)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self, text: &str) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let kind = self.next_kind();
            if let Some(kind) = kind {
                self.out.push(Token { kind, start, end: self.pos, line, col });
            }
        }
        debug_assert!(self.out.iter().all(|t| text.is_char_boundary(t.start)));
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line/column.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Lexes one token starting at `self.pos`; returns `None` for
    /// whitespace (skipped, not emitted).
    fn next_kind(&mut self) -> Option<TokenKind> {
        let c = self.peek(0)?;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                self.bump();
                None
            }
            b'/' if self.peek(1) == Some(b'/') => {
                while self.peek(0).is_some_and(|c| c != b'\n') {
                    self.bump();
                }
                Some(TokenKind::Comment)
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 && self.peek(0).is_some() {
                    if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                        depth += 1;
                        self.bump_n(2);
                    } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                        depth -= 1;
                        self.bump_n(2);
                    } else {
                        self.bump();
                    }
                }
                Some(TokenKind::Comment)
            }
            b'r' | b'b' | b'c' if self.starts_raw_or_prefixed_string() => {
                self.lex_prefixed_string()
            }
            b'"' => {
                self.lex_quoted(b'"');
                Some(TokenKind::Str)
            }
            b'\'' => self.lex_lifetime_or_char(),
            b'0'..=b'9' => {
                self.lex_number();
                Some(TokenKind::Number)
            }
            c if is_ident_start(c) => {
                self.lex_ident();
                Some(TokenKind::Ident)
            }
            _ => {
                self.bump();
                Some(TokenKind::Punct)
            }
        }
    }

    /// True when the current `r`/`b`/`c` begins a string-ish literal
    /// (`r"`, `r#"`, `b"`, `b'`, `br"`, `br#"`, `c"`, ...) rather than an
    /// identifier or a raw identifier (`r#ident`).
    fn starts_raw_or_prefixed_string(&self) -> bool {
        let c0 = self.peek(0);
        // b'x' byte char literal.
        if c0 == Some(b'b') && self.peek(1) == Some(b'\'') {
            return true;
        }
        // Find the end of a possible prefix: [bc]? r? #* then a quote.
        let mut i = 1;
        if c0 == Some(b'b') || c0 == Some(b'c') {
            if self.peek(1) == Some(b'"') {
                return true;
            }
            if self.peek(1) != Some(b'r') {
                return false;
            }
            i = 2;
        }
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        // `r#ident` is a raw identifier, not a string; hashes before a
        // non-quote are just broken code either way.
        self.peek(i) == Some(b'"')
    }

    /// Lexes `r"..."`, `r#"..."#`, `b"..."`, `br##"..."##`, `c"..."`,
    /// `b'x'`.
    fn lex_prefixed_string(&mut self) -> Option<TokenKind> {
        if self.peek(0) == Some(b'b') && self.peek(1) == Some(b'\'') {
            self.bump(); // b
            self.lex_quoted(b'\'');
            return Some(TokenKind::Char);
        }
        let mut raw = false;
        while let Some(c) = self.peek(0) {
            if c == b'b' || c == b'c' {
                self.bump();
            } else if c == b'r' {
                raw = true;
                self.bump();
            } else {
                break;
            }
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        debug_assert_eq!(self.peek(0), Some(b'"'));
        self.bump(); // opening quote
        if raw {
            // Raw string: ends at `"` followed by `hashes` hashes; no
            // escape processing.
            'scan: while self.peek(0).is_some() {
                if self.peek(0) == Some(b'"') {
                    for h in 0..hashes {
                        if self.peek(1 + h) != Some(b'#') {
                            self.bump();
                            continue 'scan;
                        }
                    }
                    self.bump_n(1 + hashes);
                    break;
                }
                self.bump();
            }
        } else {
            self.lex_quoted_body(b'"');
        }
        Some(TokenKind::Str)
    }

    /// Lexes a non-raw quoted literal whose opening delimiter is at
    /// `self.pos` (consumes it first).
    fn lex_quoted(&mut self, quote: u8) {
        self.bump();
        self.lex_quoted_body(quote);
    }

    /// Consumes up to and including the closing `quote`, honouring `\`
    /// escapes. Unterminated literals consume to end of input.
    fn lex_quoted_body(&mut self, quote: u8) {
        while let Some(c) = self.peek(0) {
            if c == b'\\' {
                self.bump_n(2.min(self.src.len() - self.pos));
            } else if c == quote {
                self.bump();
                break;
            } else {
                self.bump();
            }
        }
    }

    /// `'` starts either a lifetime (`'a`, `'static`, `'_`) or a char
    /// literal (`'a'`, `'\n'`). Disambiguation: after `'ident` a closing
    /// `'` makes it a char literal; otherwise it is a lifetime.
    fn lex_lifetime_or_char(&mut self) -> Option<TokenKind> {
        debug_assert_eq!(self.peek(0), Some(b'\''));
        let next = self.peek(1);
        if next.is_some_and(is_ident_start) {
            // Run of identifier chars after the quote.
            let mut i = 2;
            while self.peek(i).is_some_and(is_ident_continue) {
                i += 1;
            }
            if self.peek(i) == Some(b'\'') {
                // 'a' — single-char literal ('ab' is not valid Rust, and
                // a lifetime is never followed by a closing quote).
                self.lex_quoted(b'\'');
                return Some(TokenKind::Char);
            }
            self.bump_n(i); // lifetime: quote + ident run
            return Some(TokenKind::Lifetime);
        }
        // '\n', '\'', '\u{..}', or broken input: treat as char literal.
        self.lex_quoted(b'\'');
        Some(TokenKind::Char)
    }

    /// Numeric literal: digits (any radix letters), optional fraction,
    /// optional exponent sign, plus alphanumeric type suffix. Stops
    /// before `..` so ranges stay two separate tokens.
    fn lex_number(&mut self) {
        while self.peek(0).is_some_and(is_ident_continue) {
            let prev = self.peek(0);
            self.bump();
            // `1e-5` / `1E+5`: the sign belongs to the literal.
            if (prev == Some(b'e') || prev == Some(b'E'))
                && matches!(self.peek(0), Some(b'+') | Some(b'-'))
                && self.peek(1).is_some_and(|c| c.is_ascii_digit())
            {
                self.bump();
            }
        }
        if self.peek(0) == Some(b'.')
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.bump(); // the dot
            while self.peek(0).is_some_and(is_ident_continue) {
                let prev = self.peek(0);
                self.bump();
                if (prev == Some(b'e') || prev == Some(b'E'))
                    && matches!(self.peek(0), Some(b'+') | Some(b'-'))
                    && self.peek(1).is_some_and(|c| c.is_ascii_digit())
                {
                    self.bump();
                }
            }
        }
    }

    /// Identifier / keyword, including raw identifiers `r#ident`.
    fn lex_ident(&mut self) {
        if self.peek(0) == Some(b'r') && self.peek(1) == Some(b'#') {
            self.bump_n(2);
        }
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}
