//! The `pcr-analyze` binary: scan the workspace, print findings, emit
//! the JSON report, and (with `--check`) gate CI on a clean pass.
//!
//! ```text
//! pcr-analyze [--root DIR] [--check] [--out FILE] [--list-rules] [--quiet]
//! ```
//!
//! Exit codes: 0 = clean, 1 = violations found (only with `--check`),
//! 2 = usage or I/O error.

#![forbid(unsafe_code)]

use pcr_analyze::report::{scan, to_json};
use pcr_analyze::rules::RULES;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    check: bool,
    out: Option<PathBuf>,
    list_rules: bool,
    quiet: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        check: false,
        out: None,
        list_rules: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(
                    args.next().ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--out" => {
                opts.out = Some(PathBuf::from(
                    args.next().ok_or_else(|| "--out needs a file path".to_string())?,
                ));
            }
            "--check" => opts.check = true,
            "--list-rules" => opts.list_rules = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => {
                return Err("usage: pcr-analyze [--root DIR] [--check] [--out FILE] \
                            [--list-rules] [--quiet]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        for r in RULES {
            println!("{:24} {}", r.name, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    let report = match scan(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pcr-analyze: scanning {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };
    if !opts.quiet {
        for f in &report.findings {
            println!("{}:{}:{}: [{}] {}", f.file, f.line, f.col, f.rule, f.message);
        }
        println!(
            "pcr-analyze: {} files, {} violation(s), {} allowed suppression(s)",
            report.files_scanned,
            report.findings.len(),
            report.suppressed
        );
    }
    let json = to_json(&report);
    if let Some(out) = &opts.out {
        if let Some(parent) = out.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("pcr-analyze: writing {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    if opts.check && !report.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
