//! Workspace walking and the machine-readable JSON report.

use crate::rules::{analyze_source, Finding, RULES};
use pcr_metrics::JsonValue;
use std::fs;
use std::path::{Path, PathBuf};

/// Outcome of scanning a whole tree.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Files that were lexed and analyzed.
    pub files_scanned: usize,
    /// All surviving violations, in path order.
    pub findings: Vec<Finding>,
    /// Count of violations silenced by `pcr-lint: allow(...)`.
    pub suppressed: usize,
}

/// Directory names never descended into. `corpus` holds the analyzer's
/// own seeded-violation fixtures — scanning those would fail the build
/// by design.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "corpus"];

/// Recursively collects `.rs` files under `root`, skipping
/// `SKIP_DIRS`, sorted by path for deterministic reports.
pub fn collect_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scans every Rust file under `root` and aggregates the per-file
/// reports. Paths in findings are `root`-relative with `/` separators,
/// so reports are machine-comparable across checkouts.
pub fn scan(root: &Path) -> std::io::Result<ScanReport> {
    let mut report = ScanReport::default();
    for path in collect_rust_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&path)?;
        let file_report = analyze_source(&rel, &src);
        report.files_scanned += 1;
        report.suppressed += file_report.suppressed;
        report.findings.extend(file_report.findings);
    }
    Ok(report)
}

/// Renders the report as the JSON document the CI job archives.
pub fn to_json(report: &ScanReport) -> String {
    let rules = JsonValue::Array(
        RULES
            .iter()
            .map(|r| {
                JsonValue::object([
                    ("name", JsonValue::str(r.name)),
                    ("summary", JsonValue::str(r.summary)),
                ])
            })
            .collect(),
    );
    let violations = JsonValue::Array(
        report
            .findings
            .iter()
            .map(|f| {
                JsonValue::object([
                    ("rule", JsonValue::str(f.rule)),
                    ("file", JsonValue::str(f.file.clone())),
                    ("line", JsonValue::U64(u64::from(f.line))),
                    ("col", JsonValue::U64(u64::from(f.col))),
                    ("message", JsonValue::str(f.message.clone())),
                ])
            })
            .collect(),
    );
    JsonValue::object([
        ("tool", JsonValue::str("pcr-analyze")),
        ("files_scanned", JsonValue::U64(report.files_scanned as u64)),
        ("violations", violations),
        ("violation_count", JsonValue::U64(report.findings.len() as u64)),
        ("allowed_suppressions", JsonValue::U64(report.suppressed as u64)),
        ("rules", rules),
    ])
    .render()
}
