//! The lint rules and the per-file analysis driver.
//!
//! Every rule is *lexical*: it works on the token stream of one file (no
//! type information, no cross-file analysis), which keeps the checker
//! dependency-free and fast, at the price of precision — so every rule
//! has an escape hatch. A violation line is suppressed by
//!
//! ```text
//! let x = risky[i]; // pcr-lint: allow(no-panic-in-hot-path) — i < len checked above
//! ```
//!
//! or by the same comment alone on the line directly above. Suppressions
//! are counted in the report, so "how much is annotated away" stays
//! visible. Unit-test code (`#[cfg(test)]` items, `#[test]` functions) is
//! exempt from every rule: tests are supposed to panic on failure.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::{HashMap, HashSet};

/// Machine-readable description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule identifier (the name `pcr-lint: allow(...)` takes).
    pub name: &'static str,
    /// One-line rationale.
    pub summary: &'static str,
}

/// Every rule the analyzer knows, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "clock-discipline",
        summary: "wall-clock reads (Instant::now / SystemTime) are confined to an allowlist \
                  of wall-clock modules; virtual-time code must never observe real time",
    },
    RuleInfo {
        name: "no-panic-in-hot-path",
        summary: "no unwrap/expect/panic!-family macros or unchecked [] indexing in the \
                  decode and wire-parse hot paths; return Result or use checked access",
    },
    RuleInfo {
        name: "safety-comment-on-unsafe",
        summary: "every `unsafe` must carry a `// SAFETY:` comment on or directly above it",
    },
    RuleInfo {
        name: "bounded-alloc",
        summary: "in wire-parse modules, allocations sized by a runtime value must be \
                  clamped/validated first (annotate the guard with an allow)",
    },
    RuleInfo {
        name: "no-truncating-cast",
        summary: "in wire-parse modules, narrowing `as` casts (to u8/u16/u32/i8/i16/i32) \
                  must be try_from or carry a justification",
    },
    RuleInfo {
        name: "no-debug-output",
        summary: "library crates must not print to stdout/stderr (println!/eprintln!/dbg!); \
                  binaries, benches, and tests are allowlisted",
    },
];

/// Files subject to `no-panic-in-hot-path`: the innermost decode
/// layers (including the entropy scan loops and the SIMD kernels they
/// dispatch to) and the wire-parse modules — the code that runs
/// per coefficient or consumes untrusted bytes.
const HOT_PANIC_FILES: &[&str] = &[
    "crates/jpeg/src/bitio.rs",
    "crates/jpeg/src/huffman.rs",
    "crates/jpeg/src/dct.rs",
    "crates/jpeg/src/dentropy.rs",
    "crates/jpeg/src/simd.rs",
    "crates/core/src/wire.rs",
    "crates/core/src/record.rs",
    "crates/core/src/container.rs",
    "crates/core/src/colfooter.rs",
    "crates/core/src/declog.rs",
    "crates/storage/src/fault.rs",
    "crates/loader/src/retry.rs",
];

/// Files subject to `bounded-alloc` and `no-truncating-cast`: everything
/// that moves integers between the wire and memory.
const PARSE_FILES: &[&str] = &[
    "crates/core/src/wire.rs",
    "crates/core/src/record.rs",
    "crates/core/src/container.rs",
    "crates/core/src/colfooter.rs",
    "crates/core/src/declog.rs",
    "crates/storage/src/fault.rs",
];

/// Path prefixes allowed to read the wall clock. `parallel.rs` *is* the
/// wall-clock loader; `timing.rs` is the virtual-time loader's one
/// sanctioned measurement helper; CLI/bench/datasets-encode are offline
/// tooling; vendored shims mirror upstream crates' behaviour.
const CLOCK_ALLOW: &[&str] = &[
    "crates/loader/src/parallel.rs",
    "crates/loader/src/timing.rs",
    "crates/cli/",
    "crates/bench/",
    "crates/analyze/",
    "vendor/",
];

/// Path prefixes allowed to print: binaries, benches, the analyzer
/// itself, vendored test/bench harnesses.
const DEBUG_OUTPUT_ALLOW: &[&str] =
    &["crates/cli/", "crates/bench/", "crates/analyze/", "vendor/"];

/// Directories that are test/example code wholesale (integration tests,
/// examples, benches): exempt from every rule, same as `#[cfg(test)]`.
const TEST_DIRS: &[&str] = &["tests/", "examples/", "benches/"];

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Result of analyzing one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations that survived suppression filtering.
    pub findings: Vec<Finding>,
    /// Violations silenced by a `pcr-lint: allow(...)` annotation.
    pub suppressed: usize,
}

/// Returns true when `path` (normalized, relative) lives under any of the
/// given prefixes — either at the workspace root (`tests/...`) or nested
/// (`crates/jpeg/benches/...`).
fn under_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| {
        if p.ends_with('/') {
            path.starts_with(p) || path.contains(&format!("/{p}"))
        } else {
            path == *p || path.ends_with(&format!("/{p}"))
        }
    })
}

fn is_hot_panic_file(path: &str) -> bool {
    under_any(path, HOT_PANIC_FILES)
}

fn is_parse_file(path: &str) -> bool {
    under_any(path, PARSE_FILES)
}

/// Keywords that can legally precede `[` without forming an index
/// expression (`let [a, b] = ...`, `return [0; 4]`, `match [x, y] {`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "box", "break",
    "continue", "while", "for", "loop", "where", "as", "dyn", "impl", "fn", "pub", "use",
    "mod", "const", "static", "type", "struct", "enum", "trait", "unsafe", "async", "await",
];

/// Analyzes one file's source. `path` must be workspace-relative with
/// `/` separators (it selects which rules apply).
pub fn analyze_source(path: &str, src: &str) -> FileReport {
    let tokens = lex(src);
    let code: Vec<Token> = tokens.iter().copied().filter(|t| t.kind != TokenKind::Comment).collect();
    let allow = allow_map(&tokens, src);
    let test_lines = test_spans(&code, src);
    let whole_file_test = under_any(path, TEST_DIRS);

    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |rule: &'static str, t: &Token, message: String| {
        raw.push(Finding { rule, file: path.to_string(), line: t.line, col: t.col, message });
    };

    let txt = |t: &Token| t.text(src);

    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            // Indexing is keyed off the `[` itself.
            if t.kind == TokenKind::Punct
                && txt(t) == "["
                && is_hot_panic_file(path)
                && i > 0
            {
                let prev = &code[i - 1];
                let indexes = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&txt(prev)),
                    TokenKind::Punct => matches!(txt(prev), ")" | "]"),
                    // Tuple-field indexing: `self.0[i]`.
                    TokenKind::Number => true,
                    _ => false,
                };
                if indexes {
                    push(
                        "no-panic-in-hot-path",
                        t,
                        "unchecked `[]` indexing in a hot-path module; use `get`/`get_mut` \
                         or annotate why the index is provably in bounds"
                            .into(),
                    );
                }
            }
            continue;
        }
        let name = txt(t);
        let next_is = |j: usize, s: &str| {
            code.get(i + j).is_some_and(|n| txt(n) == s)
        };

        // clock-discipline ------------------------------------------------
        if !under_any(path, CLOCK_ALLOW) {
            if name == "Instant" && next_is(1, ":") && next_is(2, ":") && next_is(3, "now") {
                push(
                    "clock-discipline",
                    t,
                    "Instant::now() outside a wall-clock module; virtual-time code must \
                     take measurements through an allowlisted helper"
                        .into(),
                );
            }
            if name == "SystemTime" {
                push(
                    "clock-discipline",
                    t,
                    "SystemTime outside a wall-clock module".into(),
                );
            }
        }

        // no-panic-in-hot-path --------------------------------------------
        if is_hot_panic_file(path) {
            if (name == "unwrap" || name == "expect")
                && i > 0
                && txt(&code[i - 1]) == "."
                && next_is(1, "(")
            {
                push(
                    "no-panic-in-hot-path",
                    t,
                    format!("`.{name}()` in a hot-path module; return Result or annotate why \
                             this is provably infallible"),
                );
            }
            if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                && next_is(1, "!")
            {
                push(
                    "no-panic-in-hot-path",
                    t,
                    format!("`{name}!` in a hot-path module"),
                );
            }
        }

        // safety-comment-on-unsafe ----------------------------------------
        if name == "unsafe" && !has_safety_comment(&tokens, src, t.line) {
            push(
                "safety-comment-on-unsafe",
                t,
                "`unsafe` without a `// SAFETY:` comment on or directly above it".into(),
            );
        }

        // bounded-alloc ---------------------------------------------------
        if is_parse_file(path) {
            if matches!(name, "with_capacity" | "reserve" | "reserve_exact") && next_is(1, "(")
            {
                if let Some(arg) = group_tokens(&code, i + 1, src) {
                    if arg.iter().any(|a| is_runtime_ident(txt(a), a.kind)) {
                        push(
                            "bounded-alloc",
                            t,
                            format!(
                                "`{name}` sized by a runtime value in a wire-parse module; \
                                 clamp/validate the size first and annotate the guard"
                            ),
                        );
                    }
                }
            }
            if name == "vec" && next_is(1, "!") && next_is(2, "[") {
                if let Some(arg) = group_tokens(&code, i + 2, src) {
                    // Only the `vec![elem; n]` form allocates by count.
                    if let Some(semi) = arg.iter().position(|a| txt(a) == ";") {
                        if arg[semi..].iter().any(|a| is_runtime_ident(txt(a), a.kind)) {
                            push(
                                "bounded-alloc",
                                t,
                                "`vec![_; n]` sized by a runtime value in a wire-parse \
                                 module; clamp/validate `n` first and annotate the guard"
                                    .into(),
                            );
                        }
                    }
                }
            }
        }

        // no-truncating-cast ----------------------------------------------
        if is_parse_file(path)
            && name == "as"
            && code.get(i + 1).is_some_and(|n| {
                matches!(txt(n), "u8" | "u16" | "u32" | "i8" | "i16" | "i32")
            })
            && i > 0
            && (matches!(code[i - 1].kind, TokenKind::Ident | TokenKind::Number)
                || matches!(txt(&code[i - 1]), ")" | "]"))
        {
            push(
                "no-truncating-cast",
                t,
                format!(
                    "narrowing `as {}` cast in a wire-parse module; use `try_from` or \
                     annotate why the value fits",
                    txt(&code[i + 1])
                ),
            );
        }

        // no-debug-output -------------------------------------------------
        if !under_any(path, DEBUG_OUTPUT_ALLOW)
            && matches!(name, "println" | "print" | "eprintln" | "eprint" | "dbg")
            && next_is(1, "!")
        {
            push(
                "no-debug-output",
                t,
                format!("`{name}!` in a library crate; route output through a returned \
                         value or a metrics sink"),
            );
        }
    }

    // Filter: test code and allow annotations.
    let mut report = FileReport::default();
    for f in raw {
        if whole_file_test || test_lines.contains(&f.line) {
            continue;
        }
        if allow.get(&f.line).is_some_and(|rules| rules.contains(f.rule)) {
            report.suppressed += 1;
            continue;
        }
        report.findings.push(f);
    }
    report
}

/// True for identifiers that look like runtime values (lowercase start):
/// `SCREAMING_CASE` constants and numeric literals do not count.
fn is_runtime_ident(text: &str, kind: TokenKind) -> bool {
    kind == TokenKind::Ident
        && text.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        // Method-call plumbing that appears inside size expressions
        // without itself being a size: `x.min(CAP)` keeps `min`.
        && !matches!(text, "min" | "max" | "clamp" | "usize" | "u64" | "u32" | "u16" | "as")
}

/// Tokens strictly inside the bracket group whose opener is
/// `code[opener]` (`(`, `[`, or `{`); `None` when unbalanced. Only the
/// opener's own bracket pair is depth-tracked, which is all the size
/// expressions the alloc rule inspects need.
fn group_tokens<'t>(code: &'t [Token], opener: usize, src: &str) -> Option<&'t [Token]> {
    let txt = |t: &Token| t.text(src);
    let open = txt(code.get(opener)?);
    let close = match open {
        "(" => ")",
        "[" => "]",
        "{" => "}",
        _ => return None,
    };
    let mut depth = 0usize;
    for (j, t) in code.iter().enumerate().skip(opener) {
        let s = txt(t);
        if s == open {
            depth += 1;
        } else if s == close {
            depth -= 1;
            if depth == 0 {
                return Some(&code[opener + 1..j]);
            }
        }
    }
    None
}

/// Lines covered by `#[cfg(test)]` / `#[test]` items (the whole item,
/// attribute through closing brace).
fn test_spans(code: &[Token], src: &str) -> HashSet<u32> {
    let txt = |t: &Token| t.text(src);
    let mut lines = HashSet::new();
    let mut i = 0usize;
    while i < code.len() {
        if txt(&code[i]) == "#" && code.get(i + 1).is_some_and(|t| txt(t) == "[") {
            // Scan the attribute group for a `test` ident.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut has_test = false;
            let mut has_not = false;
            while j < code.len() && depth > 0 {
                match txt(&code[j]) {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "test" => has_test = true,
                    "not" => has_not = true,
                    _ => {}
                }
                j += 1;
            }
            // `#[cfg(not(test))]` guards *production* code.
            let is_test_attr = has_test && !has_not;
            if is_test_attr {
                // Skip any further attributes, then cover the item until
                // its closing brace (or terminating semicolon).
                let start_line = code[i].line;
                let mut k = j;
                while k < code.len() && txt(&code[k]) == "#" {
                    let mut d = 0usize;
                    k += 1; // past '#'
                    if k < code.len() && txt(&code[k]) == "[" {
                        d = 1;
                        k += 1;
                        while k < code.len() && d > 0 {
                            match txt(&code[k]) {
                                "[" => d += 1,
                                "]" => d -= 1,
                                _ => {}
                            }
                            k += 1;
                        }
                    }
                    let _ = d;
                }
                let mut brace_depth = 0usize;
                let mut end_line = start_line;
                while k < code.len() {
                    let s = txt(&code[k]);
                    end_line = code[k].line;
                    if s == "{" {
                        brace_depth += 1;
                    } else if s == "}" {
                        brace_depth -= 1;
                        if brace_depth == 0 {
                            break;
                        }
                    } else if s == ";" && brace_depth == 0 {
                        break;
                    }
                    k += 1;
                }
                for l in start_line..=end_line {
                    lines.insert(l);
                }
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    lines
}

/// Maps line number -> rules allowed on that line, from
/// `pcr-lint: allow(rule-a, rule-b)` comments. A trailing comment
/// applies to its own line; a comment alone on a line applies to the
/// next line; a standalone comment ending in `for-next-item` covers the
/// entire following item (attribute through closing brace or `;`) —
/// meant for functions whose bodies are wall-to-wall fixed-bound array
/// loops, where per-line annotations would drown the code.
fn allow_map(tokens: &[Token], src: &str) -> HashMap<u32, HashSet<&'static str>> {
    let mut map: HashMap<u32, HashSet<&'static str>> = HashMap::new();
    for (idx, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Comment {
            continue;
        }
        let text = t.text(src);
        let Some(pos) = text.find("pcr-lint:") else { continue };
        let rest = &text[pos + "pcr-lint:".len()..];
        let Some(open) = rest.find("allow(") else { continue };
        let Some(close) = rest[open..].find(')') else { continue };
        let list = &rest[open + "allow(".len()..open + close];
        let mut rules: HashSet<&'static str> = HashSet::new();
        for part in list.split(',') {
            let part = part.trim();
            if let Some(info) = RULES.iter().find(|r| r.name == part) {
                rules.insert(info.name);
            }
        }
        if rules.is_empty() {
            continue;
        }
        // Does code precede this comment on the same line?
        let has_code_before = tokens[..idx]
            .iter()
            .rev()
            .take_while(|p| p.line == t.line)
            .any(|p| p.kind != TokenKind::Comment);
        // Block comments may span lines; anchor on the line the comment
        // *ends* for the standalone case.
        let end_line = t.line + text.bytes().filter(|&b| b == b'\n').count() as u32;
        let item_scope = !has_code_before && rest[open + close..].contains("for-next-item");
        if item_scope {
            let (lo, hi) = next_item_lines(&tokens[idx + 1..], src, end_line);
            for l in lo..=hi {
                map.entry(l).or_default().extend(rules.iter().copied());
            }
        } else if has_code_before {
            map.entry(t.line).or_default().extend(rules.iter().copied());
        } else {
            // Standalone comment: attach to the next *code* line, skipping
            // any further comment lines (multi-line justifications).
            let target = tokens[idx + 1..]
                .iter()
                .find(|n| n.kind != TokenKind::Comment)
                .map(|n| n.line)
                .unwrap_or(end_line + 1);
            map.entry(target).or_default().extend(rules.iter().copied());
        }
    }
    map
}

/// Line range of the first item whose tokens start after `after_line`:
/// from its first code token through the `}` that closes its outermost
/// brace, or a `;` at depth zero (for brace-less items). Returns an
/// empty-ish range anchored just past the comment when no code follows.
fn next_item_lines(rest: &[Token], src: &str, after_line: u32) -> (u32, u32) {
    let txt = |t: &Token| t.text(src);
    let code: Vec<&Token> = rest
        .iter()
        .filter(|t| t.kind != TokenKind::Comment && t.line > after_line)
        .collect();
    let Some(first) = code.first() else { return (after_line + 1, after_line + 1) };
    let start_line = first.line;
    let mut depth = 0usize;
    let mut inner = 0usize; // ()/[] nesting, so `;` inside `[f64; 8]` is not a terminator
    let mut end_line = start_line;
    for t in &code {
        end_line = t.line;
        match txt(t) {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            }
            "(" | "[" => inner += 1,
            ")" | "]" => inner = inner.saturating_sub(1),
            ";" if depth == 0 && inner == 0 => break,
            _ => {}
        }
    }
    (start_line, end_line)
}

/// True when a `// SAFETY:` comment sits on `line` or within the three
/// lines above it.
fn has_safety_comment(tokens: &[Token], src: &str, line: u32) -> bool {
    tokens.iter().any(|t| {
        t.kind == TokenKind::Comment
            && t.line <= line
            && t.line + 3 >= line
            && t.text(src).contains("SAFETY:")
    })
}
