//! `pcr-analyze`: repo-invariant static analysis for the PCR workspace.
//!
//! The workspace carries three classes of invariants that ordinary tests
//! cannot enforce mechanically: decode/parse layers consume untrusted
//! bytes and must fail with `Error::Corrupt`-style values instead of
//! panicking; the clocked read path depends on virtual-time code never
//! observing the wall clock; and allocation sizes must not be driven by
//! unvalidated wire integers. This crate checks those invariants as
//! *lexical* lint rules over the workspace's own source — a hand-rolled
//! comment/string/raw-string-aware lexer ([`lexer`]) feeds a small rule
//! engine ([`rules`]) that emits a machine-readable JSON report.
//!
//! The companion runtime layer is the `pcr-debug-sync` feature on the
//! vendored `parking_lot`/`crossbeam` shims: a lock-order graph with
//! cycle detection and channel happens-before tokens, exercised by
//! running the test suite with the feature enabled.
//!
//! See `ARCHITECTURE.md` ("Static analysis & invariants") for each
//! rule's rationale and the `// pcr-lint: allow(<rule>)` convention.
//!
//! ```
//! use pcr_analyze::rules::analyze_source;
//!
//! let report = analyze_source(
//!     "crates/core/src/wire.rs",
//!     "fn f(v: &[u8]) -> u8 { v[0] }",
//! );
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].rule, "no-panic-in-hot-path");
//! ```

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;
