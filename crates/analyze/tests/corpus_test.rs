//! Drives the seeded-violation corpus under `tests/corpus/`: each file
//! is analyzed under a *virtual* workspace path (which selects the
//! rules that apply) and its `//~ rule-a, rule-b` end-of-line markers
//! are the ground truth — every marked (line, rule) pair must be found,
//! no unmarked finding may appear, and the per-file suppression count
//! must match the seeded `pcr-lint: allow(...)` annotations exactly.

use pcr_analyze::report::collect_rust_files;
use pcr_analyze::rules::{analyze_source, RULES};
use std::collections::BTreeSet;

struct Case {
    /// Corpus file name (for messages).
    name: &'static str,
    /// Virtual workspace-relative path the file is analyzed under.
    virtual_path: &'static str,
    /// The corpus source itself.
    src: &'static str,
    /// Expected number of allow-suppressed violations.
    expect_suppressed: usize,
}

const CASES: &[Case] = &[
    Case {
        name: "hot_path.rs",
        virtual_path: "crates/jpeg/src/bitio.rs",
        src: include_str!("corpus/hot_path.rs"),
        expect_suppressed: 1,
    },
    Case {
        name: "wire_parse.rs",
        virtual_path: "crates/core/src/wire.rs",
        src: include_str!("corpus/wire_parse.rs"),
        expect_suppressed: 2,
    },
    Case {
        name: "clock.rs",
        virtual_path: "crates/loader/src/pipeline.rs",
        src: include_str!("corpus/clock.rs"),
        expect_suppressed: 1,
    },
    Case {
        name: "unsafe_code.rs",
        virtual_path: "crates/storage/src/mmap.rs",
        src: include_str!("corpus/unsafe_code.rs"),
        expect_suppressed: 0,
    },
    Case {
        name: "debug_output.rs",
        virtual_path: "crates/core/src/lib.rs",
        src: include_str!("corpus/debug_output.rs"),
        expect_suppressed: 0,
    },
    Case {
        name: "allow_forms.rs",
        virtual_path: "crates/jpeg/src/dct.rs",
        src: include_str!("corpus/allow_forms.rs"),
        // trailing + standalone + multi-line standalone + for-next-item
        // covering a line with two violations.
        expect_suppressed: 5,
    },
    Case {
        name: "test_exempt.rs",
        virtual_path: "crates/core/src/container.rs",
        src: include_str!("corpus/test_exempt.rs"),
        expect_suppressed: 0,
    },
];

/// Parses `//~ rule-a, rule-b` markers into (1-based line, rule) pairs.
fn expected_markers(src: &str) -> BTreeSet<(u32, String)> {
    let mut out = BTreeSet::new();
    for (i, line) in src.lines().enumerate() {
        let Some(pos) = line.find("//~") else { continue };
        for rule in line[pos + 3..].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                out.insert((u32::try_from(i).unwrap() + 1, rule.to_string()));
            }
        }
    }
    out
}

#[test]
fn every_corpus_file_matches_its_markers_exactly() {
    for case in CASES {
        let report = analyze_source(case.virtual_path, case.src);
        let expected = expected_markers(case.src);
        let actual: BTreeSet<(u32, String)> =
            report.findings.iter().map(|f| (f.line, f.rule.to_string())).collect();
        let missing: Vec<_> = expected.difference(&actual).collect();
        let unexpected: Vec<_> = actual.difference(&expected).collect();
        assert!(
            missing.is_empty() && unexpected.is_empty(),
            "{}: marker mismatch\n  missing (marked but not found): {missing:?}\n  \
             unexpected (found but unmarked): {unexpected:?}",
            case.name
        );
        assert_eq!(
            report.suppressed, case.expect_suppressed,
            "{}: suppression count", case.name
        );
    }
}

#[test]
fn corpus_covers_every_rule() {
    let marked: BTreeSet<String> = CASES
        .iter()
        .flat_map(|c| expected_markers(c.src))
        .map(|(_, rule)| rule)
        .collect();
    for rule in RULES {
        assert!(
            marked.contains(rule.name),
            "rule `{}` has no seeded violation in the corpus",
            rule.name
        );
    }
}

#[test]
fn marker_rule_names_are_real_rules() {
    for case in CASES {
        for (line, rule) in expected_markers(case.src) {
            assert!(
                RULES.iter().any(|r| r.name == rule),
                "{}:{line}: marker names unknown rule `{rule}`",
                case.name
            );
        }
    }
}

#[test]
fn workspace_walker_skips_the_corpus() {
    // The corpus fails the lint pass by design; `pcr-analyze --check` on
    // the workspace must never descend into it. CARGO_MANIFEST_DIR is
    // the analyze crate root, which contains tests/corpus/.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = collect_rust_files(root).expect("walk analyze crate");
    assert!(
        files.iter().all(|p| !p.components().any(|c| c.as_os_str() == "corpus")),
        "walker descended into a corpus directory: {files:?}"
    );
    // Sanity: it did find this very test file.
    assert!(files.iter().any(|p| p.ends_with("tests/corpus_test.rs")));
}
