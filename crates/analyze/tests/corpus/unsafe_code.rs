// Seeded violations for `safety-comment-on-unsafe` (applies to every
// path). Never compiled.

pub fn deref_raw(p: *const u8) -> u8 {
    unsafe { *p } //~ safety-comment-on-unsafe
}

pub fn deref_documented(p: *const u8) -> u8 {
    // SAFETY: caller contract — p points into the mapped region
    unsafe { *p }
}

// SAFETY: the whole function body relies on the mapping staying alive,
// which the owning struct guarantees.
pub unsafe fn documented_unsafe_fn(p: *const u8) -> u8 {
    *p
}
