// Seeded violations for `no-panic-in-hot-path`. Analyzed under the
// virtual path of a hot decode module; never compiled. An end-of-line
// tilde marker names the rule a finding must anchor to on that line.

pub fn decode(v: &[u8], i: usize) -> u8 {
    let a = v.first().copied();
    let b = a.unwrap(); //~ no-panic-in-hot-path
    let c = v[i]; //~ no-panic-in-hot-path
    if i > v.len() {
        panic!("out of range"); //~ no-panic-in-hot-path
    }
    let d = a.expect("present"); //~ no-panic-in-hot-path
    b + c + d
}

pub fn checked_access_is_clean(v: &[u8], i: usize) -> u8 {
    v.get(i).copied().unwrap_or(0)
}

pub fn patterns_and_literals_are_clean(pair: (u8, u8)) -> [u8; 4] {
    let [x, y] = [pair.0, pair.1];
    let mut arr: [u8; 4] = [0; 4];
    arr.fill(x + y);
    arr
}

pub fn suppressed(v: &[u8]) -> u8 {
    v[0] // pcr-lint: allow(no-panic-in-hot-path) — caller checks non-empty
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        Some(1).unwrap();
        let v = [1u8];
        assert_eq!(v[0], 1);
    }
}
