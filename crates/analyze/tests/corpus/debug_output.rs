// Seeded violations for `no-debug-output`. Analyzed under a library
// crate virtual path; never compiled.

pub fn log_progress(n: usize) {
    println!("done {n}"); //~ no-debug-output
    eprintln!("warning: {n} incomplete"); //~ no-debug-output
    let doubled = dbg!(n * 2); //~ no-debug-output
    let _ = doubled;
}

pub fn formatted_not_printed(n: usize) -> String {
    format!("done {n}")
}

pub fn println_in_a_string_is_clean() -> &'static str {
    "println!(\"not code\")"
}
