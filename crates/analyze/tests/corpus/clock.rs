// Seeded violations for `clock-discipline`. Analyzed under a
// virtual-time loader path; never compiled.

pub fn measure_badly() -> f64 {
    let t0 = std::time::Instant::now(); //~ clock-discipline
    t0.elapsed().as_secs_f64()
}

pub fn wall_clock_timestamp() -> bool {
    let t = std::time::SystemTime::now(); //~ clock-discipline
    t.elapsed().is_ok()
}

pub fn mentioning_the_type_is_clean(t: std::time::Instant) -> std::time::Instant {
    t
}

// pcr-lint: allow(clock-discipline) for-next-item — one-off diagnostic
// helper; the measurement never feeds the virtual timeline
pub fn sanctioned() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
