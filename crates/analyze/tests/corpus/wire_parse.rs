// Seeded violations for the wire-parse rules (`bounded-alloc`,
// `no-truncating-cast`). Analyzed under a parse-module virtual path;
// never compiled.

pub fn parse(data: &[u8]) -> Vec<u8> {
    let n = read_u32(data) as usize;
    let mut v = Vec::with_capacity(n); //~ bounded-alloc
    let w = vec![0u8; n]; //~ bounded-alloc
    let clamped = n.min(MAX_REASONABLE);
    // pcr-lint: allow(bounded-alloc) — clamped above
    let ok = Vec::with_capacity(clamped);
    v.extend(w);
    v.extend(ok);
    v
}

pub fn const_sized_allocs_are_clean() -> Vec<u8> {
    let mut v = Vec::with_capacity(MAX_GROUPS);
    v.extend(vec![0u8; 1024]);
    v
}

pub fn narrow(x: u64) -> u16 {
    x as u16 //~ no-truncating-cast
}

pub fn widen(x: u16) -> u64 {
    x as u64
}

pub fn annotated_narrow(x: u64) -> u32 {
    debug_assert!(x <= u32::MAX as u64);
    x as u32 // pcr-lint: allow(no-truncating-cast) — asserted above
}
