// Test-code exemption boundaries: `#[cfg(test)]` and `#[test]` items
// are exempt, `#[cfg(not(test))]` is production code. Never compiled.

#[cfg(not(test))]
pub fn production(v: &[u8]) -> u8 {
    v[0] //~ no-panic-in-hot-path
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_module() {
        let v = vec![1u8];
        assert_eq!(v[0], 1);
        Some(1).unwrap();
    }
}

#[test]
fn exempt_top_level_test_item() {
    Some(2).unwrap();
}
