// Every form of the `pcr-lint: allow(...)` escape hatch, all correctly
// placed: this file must analyze to zero findings with every seeded
// violation counted as a suppression. Never compiled.

pub fn trailing(v: &[u8]) -> u8 {
    v[0] // pcr-lint: allow(no-panic-in-hot-path) — non-empty by contract
}

pub fn standalone(v: &[u8]) -> u8 {
    // pcr-lint: allow(no-panic-in-hot-path) — non-empty by contract
    v[1]
}

pub fn multi_line_justification(v: &[u8]) -> u8 {
    // pcr-lint: allow(no-panic-in-hot-path) — a justification long enough
    // to need a second comment line before the code it covers
    v[2]
}

// pcr-lint: allow(no-panic-in-hot-path) for-next-item — every index is a
// literal in 0..8, and the signature's `[f64; 8]` must not cut the span
pub fn whole_item(x: [f64; 8]) -> f64 {
    x[0] + x[7]
}
