//! Edge cases for the hand-rolled lexer: every case here is one that
//! has historically broken ad-hoc Rust lexers (see the module docs of
//! `pcr_analyze::lexer`). The lint rules are only as trustworthy as the
//! lexer's comment/string classification, so these are load-bearing.

use pcr_analyze::lexer::{lex, TokenKind};

fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
    lex(src).into_iter().map(|t| (t.kind, t.text(src))).collect()
}

#[test]
fn nested_block_comments_are_one_token() {
    let src = "/* outer /* inner */ still comment */ fn";
    let toks = kinds(src);
    assert_eq!(toks.len(), 2);
    assert_eq!(toks[0].0, TokenKind::Comment);
    assert_eq!(toks[0].1, "/* outer /* inner */ still comment */");
    assert_eq!(toks[1], (TokenKind::Ident, "fn"));
}

#[test]
fn unterminated_block_comment_consumes_rest() {
    let toks = kinds("/* never closed fn main");
    assert_eq!(toks.len(), 1);
    assert_eq!(toks[0].0, TokenKind::Comment);
}

#[test]
fn raw_strings_hide_their_contents() {
    // The classic failure: `.unwrap()` inside a raw string must not be
    // visible as code tokens.
    let src = r###"let s = r#"x.unwrap() /* not a comment "quote "# ;"###;
    let toks = kinds(src);
    let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert!(strs[0].1.contains("unwrap"));
    assert!(!toks.iter().any(|t| t.0 == TokenKind::Ident && t.1 == "unwrap"));
    assert!(!toks.iter().any(|t| t.0 == TokenKind::Comment));
}

#[test]
fn raw_string_hash_depth_two() {
    let src = r####"r##"contains "# inside"## trailing"####;
    let toks = kinds(src);
    assert_eq!(toks[0].0, TokenKind::Str);
    assert_eq!(toks[0].1, r####"r##"contains "# inside"##"####);
    assert_eq!(toks[1], (TokenKind::Ident, "trailing"));
}

#[test]
fn byte_and_c_string_prefixes() {
    let src = r###"b"bytes" br#"raw bytes"# c"cstr" b'\n'"###;
    let toks = kinds(src);
    assert_eq!(toks[0], (TokenKind::Str, r#"b"bytes""#));
    assert_eq!(toks[1], (TokenKind::Str, r##"br#"raw bytes"#"##));
    assert_eq!(toks[2], (TokenKind::Str, r#"c"cstr""#));
    assert_eq!(toks[3], (TokenKind::Char, r"b'\n'"));
}

#[test]
fn raw_identifier_is_ident_not_string() {
    let toks = kinds("let r#match = r#type;");
    assert_eq!(toks[1], (TokenKind::Ident, "r#match"));
    assert_eq!(toks[3], (TokenKind::Ident, "r#type"));
    assert!(!toks.iter().any(|t| t.0 == TokenKind::Str));
}

#[test]
fn lifetimes_versus_char_literals() {
    let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
    let lifetimes: Vec<_> =
        toks.iter().filter(|t| t.0 == TokenKind::Lifetime).map(|t| t.1).collect();
    let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Char).map(|t| t.1).collect();
    assert_eq!(lifetimes, ["'a", "'a"]);
    assert_eq!(chars, ["'a'", "'\\n'"]);
}

#[test]
fn static_lifetime_and_unicode_escape_char() {
    let toks = kinds("&'static str; '\\u{1F4A9}'");
    assert!(toks.contains(&(TokenKind::Lifetime, "'static")));
    assert!(toks.contains(&(TokenKind::Char, "'\\u{1F4A9}'")));
}

#[test]
fn numbers_do_not_swallow_range_dots() {
    let toks = kinds("for i in 0..10 {}");
    assert!(toks.contains(&(TokenKind::Number, "0")));
    assert!(toks.contains(&(TokenKind::Number, "10")));
    assert_eq!(toks.iter().filter(|t| t.1 == "." && t.0 == TokenKind::Punct).count(), 2);
}

#[test]
fn numeric_suffixes_and_exponents() {
    let toks = kinds("1usize 0xFFu8 1e-5 2.5f64 1_000");
    let nums: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Number).map(|t| t.1).collect();
    assert_eq!(nums, ["1usize", "0xFFu8", "1e-5", "2.5f64", "1_000"]);
}

#[test]
fn float_field_access_is_not_a_fraction() {
    // `x.0` tuple access: the `0` follows a dot but `self.0` must lex the
    // dot as punctuation (the rules rely on Number-after-dot for `x.0[i]`).
    let toks = kinds("self.0[i]");
    assert_eq!(
        toks,
        vec![
            (TokenKind::Ident, "self"),
            (TokenKind::Punct, "."),
            (TokenKind::Number, "0"),
            (TokenKind::Punct, "["),
            (TokenKind::Ident, "i"),
            (TokenKind::Punct, "]"),
        ]
    );
}

#[test]
fn escaped_quotes_stay_inside_strings() {
    let toks = kinds(r#"let s = "a\"b\\"; next"#);
    let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert_eq!(strs[0].1, r#""a\"b\\""#);
    assert!(toks.contains(&(TokenKind::Ident, "next")));
}

#[test]
fn unterminated_string_consumes_to_end_without_panicking() {
    let toks = kinds("let s = \"never closed");
    assert_eq!(toks.last().unwrap().0, TokenKind::Str);
}

#[test]
fn line_and_column_tracking() {
    let src = "fn a() {}\n  let b = 1;\n\tc";
    let toks = lex(src);
    let find = |text: &str| toks.iter().find(|t| t.text(src) == text).unwrap();
    assert_eq!((find("fn").line, find("fn").col), (1, 1));
    assert_eq!((find("let").line, find("let").col), (2, 3));
    // Tabs count as one column byte.
    assert_eq!((find("c").line, find("c").col), (3, 2));
}

#[test]
fn line_comment_stops_at_newline() {
    let src = "// comment with \"quote and 'tick\nfn";
    let toks = kinds(src);
    assert_eq!(toks[0].0, TokenKind::Comment);
    assert_eq!(toks[1], (TokenKind::Ident, "fn"));
    assert_eq!(lex(src)[1].line, 2);
}

#[test]
fn comment_markers_inside_strings_are_not_comments() {
    let toks = kinds(r#"let url = "https://example.com/*path*/"; done"#);
    assert!(!toks.iter().any(|t| t.0 == TokenKind::Comment));
    assert!(toks.contains(&(TokenKind::Ident, "done")));
}

#[test]
fn multiline_raw_string_advances_line_numbers() {
    let src = "r\"line one\nline two\" after";
    let toks = lex(src);
    assert_eq!(toks[0].kind, TokenKind::Str);
    let after = toks.iter().find(|t| t.text(src) == "after").unwrap();
    assert_eq!(after.line, 2);
}

#[test]
fn lexing_arbitrary_bytes_never_panics() {
    // Deterministic pseudo-random soup: every byte value, shuffled-ish.
    let mut s = String::new();
    let mut x = 0x9E3779B9u32;
    for _ in 0..4096 {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        let b = (x & 0x7F) as u8;
        s.push(if b.is_ascii_graphic() || b == b' ' || b == b'\n' { b as char } else { '\u{FF}' });
    }
    let _ = lex(&s);
}
