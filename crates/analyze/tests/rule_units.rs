//! Per-rule unit tests: each rule fires on a minimal trigger, stays
//! quiet on non-triggers and allowlisted paths, and respects every form
//! of the `pcr-lint: allow(...)` escape hatch.

use pcr_analyze::rules::analyze_source;

const HOT: &str = "crates/jpeg/src/huffman.rs";
const PARSE: &str = "crates/core/src/wire.rs";
const LIB: &str = "crates/storage/src/store.rs";

fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
    let mut v: Vec<_> = analyze_source(path, src).findings.iter().map(|f| f.rule).collect();
    v.sort_unstable();
    v.dedup();
    v
}

// clock-discipline --------------------------------------------------------

#[test]
fn clock_fires_outside_allowlist() {
    let src = "fn f() -> f64 { std::time::Instant::now().elapsed().as_secs_f64() }";
    assert_eq!(rules_fired(LIB, src), ["clock-discipline"]);
    assert_eq!(rules_fired("crates/loader/src/loader.rs", "let t = SystemTime::now();"),
               ["clock-discipline"]);
}

#[test]
fn clock_quiet_on_allowlisted_paths() {
    let src = "fn f() { let t = std::time::Instant::now(); }";
    assert!(rules_fired("crates/loader/src/parallel.rs", src).is_empty());
    assert!(rules_fired("crates/loader/src/timing.rs", src).is_empty());
    assert!(rules_fired("crates/cli/src/main.rs", src).is_empty());
    assert!(rules_fired("vendor/parking_lot/src/lib.rs", src).is_empty());
}

#[test]
fn instant_ident_alone_is_not_a_clock_read() {
    // Mentioning the type (fn signatures, struct fields) is fine; only
    // `Instant::now` reads the clock.
    assert!(rules_fired(LIB, "fn f(t: Instant) -> Instant { t }").is_empty());
}

// no-panic-in-hot-path ----------------------------------------------------

#[test]
fn panic_family_fires_in_hot_files() {
    assert_eq!(rules_fired(HOT, "fn f(x: Option<u8>) { x.unwrap(); }"),
               ["no-panic-in-hot-path"]);
    assert_eq!(rules_fired(HOT, "fn f(x: Option<u8>) { x.expect(\"boom\"); }"),
               ["no-panic-in-hot-path"]);
    assert_eq!(rules_fired(HOT, "fn f() { panic!(\"no\"); }"), ["no-panic-in-hot-path"]);
    assert_eq!(rules_fired(HOT, "fn f() { unreachable!(); }"), ["no-panic-in-hot-path"]);
    assert_eq!(rules_fired(HOT, "fn f(v: &[u8], i: usize) -> u8 { v[i] }"),
               ["no-panic-in-hot-path"]);
}

#[test]
fn panic_rules_quiet_outside_hot_files() {
    assert!(rules_fired(LIB, "fn f(x: Option<u8>) { x.unwrap(); }").is_empty());
    assert!(rules_fired(LIB, "fn f(v: &[u8]) -> u8 { v[0] }").is_empty());
}

#[test]
fn indexing_heuristics() {
    // Call result and tuple-field indexing are still indexing.
    assert_eq!(rules_fired(HOT, "fn f() -> u8 { make()[0] }"), ["no-panic-in-hot-path"]);
    assert_eq!(rules_fired(HOT, "fn f(&self) -> u8 { self.0[1] }"), ["no-panic-in-hot-path"]);
    // Patterns, array types, and array literals are not indexing.
    assert!(rules_fired(HOT, "fn f() { let [a, b] = pair; }").is_empty());
    assert!(rules_fired(HOT, "fn f(x: [f64; 8]) -> [u8; 4] { [0; 4] }").is_empty());
    assert!(rules_fired(HOT, "fn f(v: &[u8]) { for x in [1, 2] {} }").is_empty());
}

#[test]
fn unwrap_or_and_named_unwrap_do_not_fire() {
    assert!(rules_fired(HOT, "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }").is_empty());
    assert!(rules_fired(HOT, "fn f(x: Option<u8>) -> u8 { x.unwrap_or_default() }").is_empty());
    // A local named `unwrap` without `.` before it is not a method call.
    assert!(rules_fired(HOT, "fn f() { let unwrap = 3; g(unwrap); }").is_empty());
}

// safety-comment-on-unsafe ------------------------------------------------

#[test]
fn unsafe_requires_safety_comment() {
    assert_eq!(rules_fired(LIB, "fn f(p: *const u8) -> u8 { unsafe { *p } }"),
               ["safety-comment-on-unsafe"]);
    let ok = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}";
    assert!(rules_fired(LIB, ok).is_empty());
}

#[test]
fn safety_comment_must_be_close() {
    // Four lines of separation is too far.
    let src = "// SAFETY: stale\n//\n//\n//\nfn f(p: *const u8) -> u8 { unsafe { *p } }";
    assert_eq!(rules_fired(LIB, src), ["safety-comment-on-unsafe"]);
}

// bounded-alloc -----------------------------------------------------------

#[test]
fn alloc_sized_by_runtime_value_fires() {
    assert_eq!(rules_fired(PARSE, "fn f(n: usize) { let v = Vec::with_capacity(n); }"),
               ["bounded-alloc"]);
    assert_eq!(rules_fired(PARSE, "fn f(n: usize) { let v = vec![0u8; n]; }"),
               ["bounded-alloc"]);
    assert_eq!(rules_fired(PARSE, "fn f(n: usize, v: &mut Vec<u8>) { v.reserve(n); }"),
               ["bounded-alloc"]);
}

#[test]
fn alloc_sized_by_constant_is_fine() {
    assert!(rules_fired(PARSE, "fn f() { let v = Vec::with_capacity(MAX_GROUPS); }").is_empty());
    assert!(rules_fired(PARSE, "fn f() { let v = Vec::with_capacity(64); }").is_empty());
    assert!(rules_fired(PARSE, "fn f() { let v = vec![0u8; 1024]; }").is_empty());
    // `vec![expr_with_runtime; CONST]` allocates by the const count.
    assert!(rules_fired(PARSE, "fn f(x: u8) { let v = vec![x; 16]; }").is_empty());
}

#[test]
fn alloc_rule_scoped_to_parse_files() {
    assert!(rules_fired(LIB, "fn f(n: usize) { let v = Vec::with_capacity(n); }").is_empty());
}

// no-truncating-cast ------------------------------------------------------

#[test]
fn narrowing_casts_fire_in_parse_files() {
    assert_eq!(rules_fired(PARSE, "fn f(x: u64) -> u32 { x as u32 }"), ["no-truncating-cast"]);
    assert_eq!(rules_fired(PARSE, "fn f(v: &[u8]) -> u16 { v.len() as u16 }"),
               ["no-truncating-cast"]);
}

#[test]
fn widening_casts_and_other_files_are_fine() {
    assert!(rules_fired(PARSE, "fn f(x: u8) -> u64 { x as u64 }").is_empty());
    assert!(rules_fired(PARSE, "fn f(x: u32) -> usize { x as usize }").is_empty());
    assert!(rules_fired(LIB, "fn f(x: u64) -> u32 { x as u32 }").is_empty());
}

// no-debug-output ---------------------------------------------------------

#[test]
fn debug_output_fires_in_library_crates() {
    assert_eq!(rules_fired(LIB, "fn f() { println!(\"x\"); }"), ["no-debug-output"]);
    assert_eq!(rules_fired(LIB, "fn f(x: u8) { dbg!(x); }"), ["no-debug-output"]);
    assert_eq!(rules_fired(LIB, "fn f() { eprintln!(\"warn\"); }"), ["no-debug-output"]);
}

#[test]
fn debug_output_allowed_in_binaries_and_tools() {
    let src = "fn main() { println!(\"hello\"); }";
    assert!(rules_fired("crates/cli/src/main.rs", src).is_empty());
    assert!(rules_fired("crates/bench/src/main.rs", src).is_empty());
}

// test-code exemption -----------------------------------------------------

#[test]
fn cfg_test_items_are_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t(x: Option<u8>) { x.unwrap(); }\n}";
    assert!(rules_fired(HOT, src).is_empty());
}

#[test]
fn cfg_not_test_is_production_code() {
    let src = "#[cfg(not(test))]\nfn f(x: Option<u8>) { x.unwrap(); }";
    assert_eq!(rules_fired(HOT, src), ["no-panic-in-hot-path"]);
}

#[test]
fn tests_dirs_are_wholesale_exempt() {
    let src = "fn f(x: Option<u8>) { x.unwrap(); std::time::Instant::now(); println!(\"t\"); }";
    assert!(rules_fired("crates/jpeg/tests/decode.rs", src).is_empty());
    assert!(rules_fired("crates/core/benches/wire.rs", src).is_empty());
}

// allow escape hatch ------------------------------------------------------

#[test]
fn trailing_allow_suppresses_and_is_counted() {
    let src = "fn f(v: &[u8]) -> u8 { v[0] } // pcr-lint: allow(no-panic-in-hot-path) — len > 0";
    let r = analyze_source(HOT, src);
    assert!(r.findings.is_empty());
    assert_eq!(r.suppressed, 1);
}

#[test]
fn standalone_allow_covers_next_code_line() {
    let src = "// pcr-lint: allow(no-panic-in-hot-path) — bound checked\nfn f(v: &[u8]) -> u8 { v[0] }";
    let r = analyze_source(HOT, src);
    assert!(r.findings.is_empty());
    assert_eq!(r.suppressed, 1);
}

#[test]
fn standalone_allow_skips_continuation_comment_lines() {
    let src = "// pcr-lint: allow(no-panic-in-hot-path) — a justification that\n\
               // continues on a second comment line before the code\n\
               fn f(v: &[u8]) -> u8 { v[0] }";
    let r = analyze_source(HOT, src);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 1);
}

#[test]
fn allow_does_not_leak_to_other_lines_or_rules() {
    let src = "fn f(v: &[u8]) -> u8 { v[0] } // pcr-lint: allow(no-panic-in-hot-path)\n\
               fn g(v: &[u8]) -> u8 { v[1] }";
    let r = analyze_source(HOT, src);
    assert_eq!(r.findings.len(), 1);
    assert_eq!(r.findings[0].line, 2);
    // Allowing one rule does not silence a different rule on the line.
    let src2 = "fn f(x: Option<u8>) { std::time::Instant::now(); x.unwrap(); } \
                // pcr-lint: allow(clock-discipline)";
    assert_eq!(rules_fired(HOT, src2), ["no-panic-in-hot-path"]);
}

#[test]
fn allow_list_form_covers_multiple_rules() {
    let src = "fn f(x: u64, v: &[u8]) -> u8 { v[x as u32 as usize] } \
               // pcr-lint: allow(no-panic-in-hot-path, no-truncating-cast)";
    let r = analyze_source(PARSE, src);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 2);
}

#[test]
fn unknown_rule_name_does_not_suppress() {
    let src = "fn f(v: &[u8]) -> u8 { v[0] } // pcr-lint: allow(no-such-rule)";
    assert_eq!(rules_fired(HOT, src), ["no-panic-in-hot-path"]);
}

#[test]
fn for_next_item_covers_whole_function() {
    let src = "\
// pcr-lint: allow(no-panic-in-hot-path) for-next-item — fixed 0..8 bounds
fn butterfly(x: [f64; 8]) -> [f64; 8] {
    let mut y = [0.0; 8];
    for i in 0..8 {
        y[i] = x[7 - i];
    }
    y
}
fn after(v: &[u8]) -> u8 { v[0] }";
    let r = analyze_source(HOT, src);
    // Both indexings inside `butterfly` suppressed; `after` still fires.
    assert_eq!(r.findings.len(), 1);
    assert_eq!(r.findings[0].line, 9);
    assert_eq!(r.suppressed, 2);
}

#[test]
fn for_next_item_survives_semicolons_in_signature_types() {
    // Regression: `[f64; 8]` in the signature must not terminate the
    // item span at the `;` inside the array type.
    let src = "\
// pcr-lint: allow(no-panic-in-hot-path) for-next-item — fixed bounds
fn f(input: &[f64; 64], output: &mut [f64; 64]) {
    for i in 0..64 {
        output[i] = input[63 - i];
    }
}";
    let r = analyze_source("crates/jpeg/src/dct.rs", src);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 2);
}

#[test]
fn for_next_item_does_not_cover_the_next_function() {
    let src = "\
// pcr-lint: allow(no-panic-in-hot-path) for-next-item
fn covered(v: &[u8]) -> u8 { v[0] }
fn not_covered(v: &[u8]) -> u8 { v[0] }";
    let r = analyze_source(HOT, src);
    assert_eq!(r.findings.len(), 1);
    assert_eq!(r.findings[0].line, 3);
}

#[test]
fn allow_inside_string_literal_is_inert() {
    let src = "fn f(v: &[u8]) -> u8 { let s = \"// pcr-lint: allow(no-panic-in-hot-path)\"; v[0] }";
    assert_eq!(rules_fired(HOT, src), ["no-panic-in-hot-path"]);
}

// report plumbing ---------------------------------------------------------

#[test]
fn findings_carry_position_and_message() {
    let src = "fn f(x: Option<u8>) {\n    x.unwrap();\n}";
    let r = analyze_source(HOT, src);
    assert_eq!(r.findings.len(), 1);
    let f = &r.findings[0];
    assert_eq!((f.line, f.file.as_str()), (2, HOT));
    assert!(f.col > 1);
    assert!(f.message.contains("unwrap"));
}
