//! # pcr-nn
//!
//! A deliberately small neural-network library used by the PCR experiments:
//! an MLP classifier with manual backprop, SGD with momentum, the paper's
//! warmup + step-decay learning-rate schedule, and gradient flattening for
//! the cosine-distance autotuning probes of Appendix A.6.
//!
//! The [`model::ModelSpec`] constructors carry the paper's per-model
//! compute-throughput calibration (ResNet-18: 405/445 img/s; ShuffleNetv2:
//! 760/750 img/s per TitanX worker) which the pipeline simulator uses for
//! its compute unit; the *statistical* response to compressed inputs comes
//! from genuinely training these models on decoded pixels.

#![warn(missing_docs)]

pub mod model;
pub mod optim;
pub mod tensor;

pub use model::{BatchResult, Gradients, Mlp, ModelSpec};
pub use optim::{LrSchedule, SgdMomentum};
pub use tensor::Matrix;
