//! # pcr-nn
//!
//! A deliberately small neural-network library used by the PCR experiments:
//! an MLP classifier with manual backprop, SGD with momentum, the paper's
//! warmup + step-decay learning-rate schedule, and gradient flattening for
//! the cosine-distance autotuning probes of Appendix A.6.
//!
//! The [`model::ModelSpec`] constructors carry the paper's per-model
//! compute-throughput calibration (ResNet-18: 405/445 img/s; ShuffleNetv2:
//! 760/750 img/s per TitanX worker) which the pipeline simulator uses for
//! its compute unit; the *statistical* response to compressed inputs comes
//! from genuinely training these models on decoded pixels.
//!
//! ```
//! use pcr_nn::{LrSchedule, Matrix, Mlp, ModelSpec, SgdMomentum};
//!
//! // A 2-class MLP over the ShuffleNet-calibrated feature spec.
//! let spec = ModelSpec::shufflenet_like();
//! let dim = spec.input_dim();
//! let mut model = Mlp::new(spec, 2, 42);
//! let mut features = vec![0.3; dim];
//! features.extend(vec![-0.3; dim]); // two separable samples
//! let x = Matrix::from_vec(2, dim, features);
//! let labels = [0u32, 1];
//!
//! // A few SGD steps at the fine-tune schedule's rate lower the loss.
//! let mut opt = SgdMomentum::new(0.9);
//! let lr = LrSchedule::finetune().lr_at(0.0);
//! let before = model.backward(&x, &labels);
//! for _ in 0..5 {
//!     let step = model.backward(&x, &labels);
//!     opt.step(&mut model, &step.grads, lr);
//! }
//! let after = model.backward(&x, &labels);
//! assert!(after.loss < before.loss);
//! ```

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod model;
pub mod optim;
pub mod tensor;

pub use model::{BatchResult, Gradients, Mlp, ModelSpec};
pub use optim::{LrSchedule, SgdMomentum};
pub use tensor::Matrix;
