//! SGD with momentum and the paper's learning-rate schedule (gradual warmup
//! then step decays, after Goyal et al. 2017).

use crate::model::{Gradients, Mlp};

/// Learning-rate schedule: linear warmup to `base_lr`, then multiply by
/// `decay_factor` at each epoch in `decay_epochs`.
#[derive(Debug, Clone, PartialEq)]
pub struct LrSchedule {
    /// Peak learning rate.
    pub base_lr: f32,
    /// Warmup epochs (LR ramps linearly from `base_lr / warmup_epochs`).
    pub warmup_epochs: f32,
    /// Epochs at which LR is multiplied by `decay_factor`.
    pub decay_epochs: Vec<f32>,
    /// Multiplicative decay (0.1 in the paper).
    pub decay_factor: f32,
}

impl LrSchedule {
    /// The paper's ImageNet schedule: start 0.1 with gradual warmup, drop
    /// 10x at epochs 30 and 60.
    pub fn imagenet() -> Self {
        Self {
            base_lr: 0.1,
            warmup_epochs: 5.0,
            decay_epochs: vec![30.0, 60.0],
            decay_factor: 0.1,
        }
    }

    /// The paper's pretrained/fine-tune schedule: start 0.01.
    pub fn finetune() -> Self {
        Self {
            base_lr: 0.01,
            warmup_epochs: 0.0,
            decay_epochs: vec![30.0, 60.0],
            decay_factor: 0.1,
        }
    }

    /// Learning rate at a fractional epoch.
    pub fn lr_at(&self, epoch: f32) -> f32 {
        let mut lr = self.base_lr;
        if self.warmup_epochs > 0.0 && epoch < self.warmup_epochs {
            lr *= (epoch + 1e-6) / self.warmup_epochs;
        }
        for &e in &self.decay_epochs {
            if epoch >= e {
                lr *= self.decay_factor;
            }
        }
        lr
    }
}

/// SGD with classical momentum.
#[derive(Debug)]
pub struct SgdMomentum {
    /// Momentum coefficient (0.9 standard).
    pub momentum: f32,
    velocity: Option<Gradients>,
}

impl SgdMomentum {
    /// Creates an optimizer with the given momentum.
    pub fn new(momentum: f32) -> Self {
        Self { momentum, velocity: None }
    }

    /// Applies one update: `v = momentum * v + g; p -= lr * v`.
    pub fn step(&mut self, model: &mut Mlp, grads: &Gradients, lr: f32) {
        let v = self.velocity.get_or_insert_with(|| model.zero_grads());
        let mu = self.momentum;
        let blend = |vd: &mut [f32], gd: &[f32]| {
            for (v, g) in vd.iter_mut().zip(gd) {
                *v = mu * *v + g;
            }
        };
        blend(&mut v.w1.data, &grads.w1.data);
        blend(&mut v.b1, &grads.b1);
        blend(&mut v.w2.data, &grads.w2.data);
        blend(&mut v.b2, &grads.b2);
        let v = self.velocity.as_ref().expect("initialized above");
        model.apply(v, -lr);
    }

    /// Clears momentum state (used by checkpoint rollback in autotuning).
    pub fn reset(&mut self) {
        self.velocity = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;

    #[test]
    fn schedule_warms_up_and_decays() {
        let s = LrSchedule::imagenet();
        assert!(s.lr_at(0.5) < s.lr_at(4.0));
        assert!((s.lr_at(10.0) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(35.0) - 0.01).abs() < 1e-7);
        assert!((s.lr_at(70.0) - 0.001).abs() < 1e-8);
    }

    #[test]
    fn finetune_starts_low_no_warmup() {
        let s = LrSchedule::finetune();
        assert!((s.lr_at(0.0) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn momentum_accelerates_convergence_on_quadratic() {
        // Compare plain SGD vs momentum on the same toy problem.
        let spec = ModelSpec { input_size: 4, hidden: 8, ..ModelSpec::resnet_like() };
        let make_data = || {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(5);
            let d = 16;
            let n = 64;
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for _ in 0..n {
                let y = rng.gen_range(0..2u32);
                for j in 0..d {
                    let base = if (j % 2) as u32 == y { 0.7 } else { -0.3 };
                    data.push(base + (rng.gen::<f32>() - 0.5) * 0.4);
                }
                labels.push(y);
            }
            (crate::tensor::Matrix::from_vec(n, d, data), labels)
        };
        let (x, y) = make_data();
        let run = |momentum: f32| {
            let mut model = crate::model::Mlp::new(spec.clone(), 2, 42);
            let mut opt = SgdMomentum::new(momentum);
            for _ in 0..30 {
                let r = model.backward(&x, &y);
                opt.step(&mut model, &r.grads, 0.05);
            }
            model.backward(&x, &y).loss
        };
        let plain = run(0.0);
        let with_momentum = run(0.9);
        assert!(
            with_momentum < plain,
            "momentum {with_momentum} should beat plain {plain}"
        );
    }

    #[test]
    fn reset_clears_velocity() {
        let spec = ModelSpec { input_size: 2, hidden: 2, ..ModelSpec::resnet_like() };
        let mut model = crate::model::Mlp::new(spec, 2, 1);
        let mut opt = SgdMomentum::new(0.9);
        let g = model.zero_grads();
        opt.step(&mut model, &g, 0.1);
        assert!(opt.velocity.is_some());
        opt.reset();
        assert!(opt.velocity.is_none());
    }
}
