//! A small MLP classifier with manual backprop, plus the named model
//! specifications that stand in for the paper's ResNet-18 and ShuffleNetv2.
//!
//! The stand-ins reproduce the two properties the paper's experiments
//! depend on: (i) a per-model *compute throughput* (images/second, used by
//! the pipeline simulator's compute unit) calibrated to the paper's
//! benchmark numbers, and (ii) a per-model *sensitivity to high-frequency
//! content* (input resolution fed to the classifier; finer inputs make the
//! model benefit more from — and depend more on — later JPEG scans, as the
//! paper observed for ShuffleNet on HAM10000).

use crate::tensor::Matrix;
use pcr_jpeg::ImageBuf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Named model specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Display name.
    pub name: String,
    /// Input image side length (images are resized to `input_size^2` luma).
    pub input_size: usize,
    /// Box-pooling factor applied after cropping: the model crops
    /// `input_size * pool` pixels and averages `pool x pool` windows. A
    /// pool of 2 low-passes the input, making the model insensitive to
    /// high-frequency detail (and therefore tolerant of low scan groups,
    /// like the paper's ResNet-18); a pool of 1 sees native resolution
    /// (like the paper's ShuffleNetv2, which needs scan 5+ on HAM10000).
    pub pool: usize,
    /// Hidden layer width.
    pub hidden: usize,
    /// Compute-unit throughput in images/second, FP32 (paper Appendix A.5).
    pub images_per_sec_fp32: f64,
    /// Compute-unit throughput in images/second, mixed precision.
    pub images_per_sec_fp16: f64,
}

impl ModelSpec {
    /// The ResNet-18 stand-in: 405/445 images/s per worker on a TitanX
    /// (paper A.5); coarser inputs -> tolerant of low scan groups.
    pub fn resnet_like() -> Self {
        Self {
            name: "ResNet18-like".into(),
            input_size: 16,
            pool: 2,
            hidden: 96,
            images_per_sec_fp32: 405.0,
            images_per_sec_fp16: 445.0,
        }
    }

    /// The ShuffleNetv2 stand-in: 760/750 images/s per worker; finer inputs
    /// -> needs higher scan groups for peak accuracy (paper Fig. 5).
    pub fn shufflenet_like() -> Self {
        Self {
            name: "ShuffleNetV2-like".into(),
            input_size: 24,
            pool: 1,
            hidden: 48,
            images_per_sec_fp32: 760.0,
            images_per_sec_fp16: 750.0,
        }
    }

    /// Feature dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_size * self.input_size
    }

    /// Extracts normalized luma features from a decoded image: a center
    /// crop of `input_size^2` at native resolution (upscaling first if the
    /// image is smaller). Cropping rather than resizing preserves the
    /// image's spatial-frequency content, which is exactly what differs
    /// between scan groups.
    pub fn featurize(&self, img: &ImageBuf) -> Vec<f32> {
        let pool = self.pool.max(1) as u32;
        let side = self.input_size as u32 * pool;
        let img = if img.width() < side || img.height() < side {
            img.resize(side.max(img.width()), side.max(img.height()))
        } else {
            img.clone()
        };
        let cropped = img.center_crop(side, side).to_luma();
        let n = self.input_size;
        let mut out = Vec::with_capacity(n * n);
        for by in 0..n as u32 {
            for bx in 0..n as u32 {
                let mut sum = 0u32;
                for dy in 0..pool {
                    for dx in 0..pool {
                        sum += u32::from(cropped.get(bx * pool + dx, by * pool + dy, 0));
                    }
                }
                let mean = sum as f32 / (pool * pool) as f32;
                out.push(mean / 127.5 - 1.0);
            }
        }
        out
    }
}

/// A two-layer MLP classifier: `input -> hidden (ReLU) -> classes`.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Model dimensions and calibration.
    pub spec: ModelSpec,
    /// Number of classes.
    pub num_classes: usize,
    w1: Matrix,
    b1: Vec<f32>,
    w2: Matrix,
    b2: Vec<f32>,
}

/// Gradients matching [`Mlp`] parameters.
#[derive(Debug, Clone)]
pub struct Gradients {
    /// d loss / d w1.
    pub w1: Matrix,
    /// d loss / d b1.
    pub b1: Vec<f32>,
    /// d loss / d w2.
    pub w2: Matrix,
    /// d loss / d b2.
    pub b2: Vec<f32>,
}

impl Gradients {
    /// Flattens all gradients into one vector (for cosine-distance probes).
    pub fn flatten(&self) -> Vec<f32> {
        let mut v =
            Vec::with_capacity(self.w1.data.len() + self.b1.len() + self.w2.data.len() + self.b2.len());
        v.extend_from_slice(&self.w1.data);
        v.extend_from_slice(&self.b1);
        v.extend_from_slice(&self.w2.data);
        v.extend_from_slice(&self.b2);
        v
    }

    /// Scales all gradients in place.
    pub fn scale(&mut self, s: f32) {
        for v in self
            .w1
            .data
            .iter_mut()
            .chain(self.b1.iter_mut())
            .chain(self.w2.data.iter_mut())
            .chain(self.b2.iter_mut())
        {
            *v *= s;
        }
    }
}

/// Forward-pass intermediates plus loss for one batch.
#[derive(Debug)]
pub struct BatchResult {
    /// Mean cross-entropy loss.
    pub loss: f64,
    /// Number of correct argmax predictions.
    pub correct: usize,
    /// Batch size.
    pub n: usize,
    /// Parameter gradients (mean over the batch).
    pub grads: Gradients,
}

impl Mlp {
    /// Initializes with He-scaled random weights from a seed.
    pub fn new(spec: ModelSpec, num_classes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = spec.input_dim();
        let h = spec.hidden;
        let mut init = |fan_in: usize, n: usize| -> Vec<f32> {
            let scale = (2.0 / fan_in as f64).sqrt() as f32;
            (0..n).map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale).collect()
        };
        let w1 = Matrix::from_vec(d, h, init(d, d * h));
        let w2 = Matrix::from_vec(h, num_classes, init(h, h * num_classes));
        Self { spec, num_classes, w1, b1: vec![0.0; h], w2, b2: vec![0.0; num_classes] }
    }

    /// Number of parameters.
    pub fn num_params(&self) -> usize {
        self.w1.data.len() + self.b1.len() + self.w2.data.len() + self.b2.len()
    }

    /// Class probabilities for a batch (`n x input_dim` features).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let (h, _) = self.hidden_forward(x);
        self.output_forward(&h)
    }

    fn hidden_forward(&self, x: &Matrix) -> (Matrix, Matrix) {
        let mut z = x.matmul(&self.w1);
        for r in 0..z.rows {
            for c in 0..z.cols {
                *z.get_mut(r, c) += self.b1[c];
            }
        }
        let mut h = z.clone();
        for v in &mut h.data {
            *v = v.max(0.0);
        }
        (h, z)
    }

    fn output_forward(&self, h: &Matrix) -> Matrix {
        let mut logits = h.matmul(&self.w2);
        for r in 0..logits.rows {
            for c in 0..logits.cols {
                *logits.get_mut(r, c) += self.b2[c];
            }
        }
        // Softmax rows.
        for r in 0..logits.rows {
            let row = &mut logits.data[r * self.num_classes..(r + 1) * self.num_classes];
            let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let mut sum = 0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        logits
    }

    /// Computes loss, accuracy, and gradients for a batch.
    pub fn backward(&self, x: &Matrix, labels: &[u32]) -> BatchResult {
        assert_eq!(x.rows, labels.len(), "batch size mismatch");
        let n = x.rows;
        let (h, _z) = self.hidden_forward(x);
        let probs = self.output_forward(&h);

        let mut loss = 0f64;
        let mut correct = 0usize;
        // dL/dlogits = probs - onehot, averaged.
        let mut dlogits = probs.clone();
        for (r, &label) in labels.iter().enumerate() {
            let row = probs.row(r);
            let p = row[label as usize].max(1e-12);
            loss -= f64::from(p.ln());
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
                .map(|(i, _)| i)
                .expect("nonempty row");
            if argmax == label as usize {
                correct += 1;
            }
            *dlogits.get_mut(r, label as usize) -= 1.0;
        }
        let inv_n = 1.0 / n as f32;
        for v in &mut dlogits.data {
            *v *= inv_n;
        }

        // Output layer grads.
        let gw2 = h.t_matmul(&dlogits);
        let mut gb2 = vec![0f32; self.num_classes];
        for r in 0..n {
            for (c, g) in gb2.iter_mut().enumerate() {
                *g += dlogits.get(r, c);
            }
        }
        // Backprop into hidden.
        let mut dh = dlogits.matmul_t(&self.w2);
        for (dv, hv) in dh.data.iter_mut().zip(&h.data) {
            if *hv <= 0.0 {
                *dv = 0.0;
            }
        }
        let gw1 = x.t_matmul(&dh);
        let mut gb1 = vec![0f32; self.spec.hidden];
        for r in 0..n {
            for (c, g) in gb1.iter_mut().enumerate() {
                *g += dh.get(r, c);
            }
        }

        BatchResult {
            loss: loss / n as f64,
            correct,
            n,
            grads: Gradients { w1: gw1, b1: gb1, w2: gw2, b2: gb2 },
        }
    }

    /// Applies a parameter delta: `param += scale * grad`.
    pub fn apply(&mut self, grads: &Gradients, scale: f32) {
        for (p, g) in self.w1.data.iter_mut().zip(&grads.w1.data) {
            *p += scale * g;
        }
        for (p, g) in self.b1.iter_mut().zip(&grads.b1) {
            *p += scale * g;
        }
        for (p, g) in self.w2.data.iter_mut().zip(&grads.w2.data) {
            *p += scale * g;
        }
        for (p, g) in self.b2.iter_mut().zip(&grads.b2) {
            *p += scale * g;
        }
    }

    /// Zero-valued gradients with this model's shapes.
    pub fn zero_grads(&self) -> Gradients {
        Gradients {
            w1: Matrix::zeros(self.w1.rows, self.w1.cols),
            b1: vec![0.0; self.b1.len()],
            w2: Matrix::zeros(self.w2.rows, self.w2.cols),
            b2: vec![0.0; self.b2.len()],
        }
    }

    /// Classification accuracy over a feature matrix.
    pub fn accuracy(&self, x: &Matrix, labels: &[u32]) -> f64 {
        let probs = self.forward(x);
        let mut correct = 0usize;
        for (r, &label) in labels.iter().enumerate() {
            let row = probs.row(r);
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
                .map(|(i, _)| i)
                .expect("nonempty");
            if argmax == label as usize {
                correct += 1;
            }
        }
        correct as f64 / labels.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_batch(spec: &ModelSpec, n: usize, classes: usize, seed: u64) -> (Matrix, Vec<u32>) {
        // Linearly separable toy data: class determined by sign pattern of
        // the first feature dims.
        let mut rng = StdRng::seed_from_u64(seed);
        let d = spec.input_dim();
        let mut data = Vec::with_capacity(n * d);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let label = rng.gen_range(0..classes as u32);
            for j in 0..d {
                let base = if j % classes == label as usize { 0.8 } else { -0.2 };
                data.push(base + (rng.gen::<f32>() - 0.5) * 0.3);
            }
            labels.push(label);
        }
        (Matrix::from_vec(n, d, data), labels)
    }

    #[test]
    fn initial_loss_is_log_classes() {
        let spec = ModelSpec::resnet_like();
        let model = Mlp::new(spec.clone(), 4, 1);
        let (x, y) = toy_batch(&spec, 32, 4, 2);
        let r = model.backward(&x, &y);
        assert!((r.loss - (4f64).ln()).abs() < 0.3, "loss {}", r.loss);
    }

    #[test]
    fn sgd_reduces_loss_and_learns() {
        let spec = ModelSpec::shufflenet_like();
        let mut model = Mlp::new(spec.clone(), 3, 7);
        let (x, y) = toy_batch(&spec, 64, 3, 3);
        let first = model.backward(&x, &y).loss;
        for _ in 0..60 {
            let r = model.backward(&x, &y);
            model.apply(&r.grads, -0.5);
        }
        let last = model.backward(&x, &y);
        assert!(last.loss < first * 0.3, "loss {first} -> {}", last.loss);
        assert!(model.accuracy(&x, &y) > 0.9);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let spec = ModelSpec { input_size: 3, hidden: 4, ..ModelSpec::resnet_like() };
        let mut model = Mlp::new(spec.clone(), 2, 11);
        let (x, y) = toy_batch(&spec, 8, 2, 5);
        let r = model.backward(&x, &y);
        // Check a few w1 entries by central differences.
        for &idx in &[0usize, 5, 17, 30] {
            let eps = 1e-3f32;
            let orig = model.w1.data[idx];
            model.w1.data[idx] = orig + eps;
            let lp = model.backward(&x, &y).loss;
            model.w1.data[idx] = orig - eps;
            let lm = model.backward(&x, &y).loss;
            model.w1.data[idx] = orig;
            let fd = (lp - lm) / (2.0 * f64::from(eps));
            let an = f64::from(r.grads.w1.data[idx]);
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + an.abs()),
                "idx {idx}: fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn featurize_shapes() {
        let spec = ModelSpec::resnet_like();
        let img = ImageBuf::from_raw(64, 48, 3, vec![100; 64 * 48 * 3]).unwrap();
        let f = spec.featurize(&img);
        assert_eq!(f.len(), spec.input_dim());
        assert!(f.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn model_specs_match_paper_rates() {
        let r = ModelSpec::resnet_like();
        let s = ModelSpec::shufflenet_like();
        assert_eq!(r.images_per_sec_fp32, 405.0);
        assert_eq!(r.images_per_sec_fp16, 445.0);
        assert_eq!(s.images_per_sec_fp32, 760.0);
        assert!(s.images_per_sec_fp16 > r.images_per_sec_fp16);
        // ShuffleNet stand-in sees finer inputs (higher frequency
        // sensitivity).
        assert!(s.input_size > r.input_size);
    }

    #[test]
    fn flatten_grad_length_matches_params() {
        let spec = ModelSpec::resnet_like();
        let model = Mlp::new(spec.clone(), 5, 3);
        let (x, y) = toy_batch(&spec, 4, 5, 9);
        let r = model.backward(&x, &y);
        assert_eq!(r.grads.flatten().len(), model.num_params());
    }
}
