//! Minimal dense linear algebra for the training experiments: row-major
//! f32 matrices with the handful of operations an MLP needs.

/// A row-major `rows x cols` f32 matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from existing data.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self (m x k) * other (k x n) -> (m x n)`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out.data[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T (k x m) * other (k x n) -> (m x n)` without materializing the
    /// transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "outer dimension mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let a_row = &self.data[p * m..(p + 1) * m];
            let b_row = &other.data[p * n..(p + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self (m x k) * other^T (n x k) -> (m x n)`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut s = 0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    s += a * b;
                }
                out.data[i * n + j] = s;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        // a^T = [[1,3,5],[2,4,6]]; a^T * b = [[6,8],[8,10]]? compute:
        // row0: [1,3,5]·col0[1,0,1]=6, ·col1[0,1,1]=8
        // row1: [2,4,6]·col0=8, ·col1=10
        let c = a.t_matmul(&b);
        assert_eq!(c.data, vec![6.0, 8.0, 8.0, 10.0]);
    }

    #[test]
    fn matmul_t_matches() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(2, 3, vec![1.0, 1.0, 1.0, 0.0, 1.0, 0.0]);
        // b^T is 3x2; a * b^T = [[6,2],[15,5]]
        let c = a.matmul_t(&b);
        assert_eq!(c.data, vec![6.0, 2.0, 15.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
