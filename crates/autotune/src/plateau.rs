//! Loss-plateau detection: the trigger for the paper's dynamic tuning
//! phase (section 4.5 — "training starts at full image quality and
//! proceeds until learning is detected to plateau, which initiates the
//! tuning phase").

/// Detects when a loss series has stopped improving.
#[derive(Debug, Clone)]
pub struct PlateauDetector {
    /// Epochs to look back.
    pub window: usize,
    /// Minimum relative improvement over the window to count as progress.
    pub min_rel_improvement: f64,
    history: Vec<f64>,
}

impl PlateauDetector {
    /// Creates a detector; `window` >= 2.
    pub fn new(window: usize, min_rel_improvement: f64) -> Self {
        Self { window: window.max(2), min_rel_improvement, history: Vec::new() }
    }

    /// Records a new loss value; returns true if learning has plateaued.
    pub fn push(&mut self, loss: f64) -> bool {
        self.history.push(loss);
        self.is_plateaued()
    }

    /// True when the best loss in the recent window improved on the
    /// preceding best by less than the threshold.
    pub fn is_plateaued(&self) -> bool {
        if self.history.len() < 2 * self.window {
            return false;
        }
        let n = self.history.len();
        let recent = &self.history[n - self.window..];
        let prior = &self.history[..n - self.window];
        let best_recent = recent.iter().cloned().fold(f64::INFINITY, f64::min);
        let best_prior = prior.iter().cloned().fold(f64::INFINITY, f64::min);
        if best_prior <= 0.0 {
            return true;
        }
        (best_prior - best_recent) / best_prior < self.min_rel_improvement
    }

    /// Clears history (e.g. after a tuning phase changes the data).
    pub fn reset(&mut self) {
        self.history.clear();
    }

    /// Observed losses so far.
    pub fn history(&self) -> &[f64] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improving_loss_is_not_plateaued() {
        let mut d = PlateauDetector::new(3, 0.02);
        for i in 0..12 {
            let plateaued = d.push(10.0 * 0.8f64.powi(i));
            assert!(!plateaued, "still improving at step {i}");
        }
    }

    #[test]
    fn flat_loss_plateaus() {
        let mut d = PlateauDetector::new(3, 0.02);
        let mut hit = false;
        for i in 0..12 {
            let loss = if i < 4 { 5.0 - i as f64 } else { 1.0 + 0.001 * (i % 2) as f64 };
            hit = d.push(loss);
        }
        assert!(hit, "flat tail must plateau");
    }

    #[test]
    fn needs_enough_history() {
        let mut d = PlateauDetector::new(4, 0.02);
        for _ in 0..7 {
            assert!(!d.push(1.0), "insufficient history");
        }
        assert!(d.push(1.0), "8th identical point plateaus");
    }

    #[test]
    fn reset_clears() {
        let mut d = PlateauDetector::new(2, 0.01);
        for _ in 0..4 {
            d.push(1.0);
        }
        assert!(d.is_plateaued());
        d.reset();
        assert!(!d.is_plateaued());
        assert!(d.history().is_empty());
    }
}
