//! # pcr-autotune
//!
//! Scan-group tuning policies from the paper's section 4.5 and Appendix
//! A.6: loss-plateau detection (the dynamic tuning trigger), selection
//! rules (gradient-cosine threshold, MSSIM-predicted accuracy, score
//! clustering), and mixture training distributions over scan groups.
//!
//! These are pure policies over numbers; the training loops that consult
//! them live in `pcr-sim` so the policies stay independently testable.

#![warn(missing_docs)]

pub mod mixture;
pub mod plateau;
pub mod select;

pub use mixture::MixturePolicy;
pub use plateau::PlateauDetector;
pub use select::{
    cluster_representatives, select_by_predicted_accuracy, select_lowest_qualifying,
    DEFAULT_COSINE_THRESHOLD, DEFAULT_MSSIM_THRESHOLD,
};
