//! # pcr-autotune
//!
//! Scan-group tuning policies from the paper's section 4.5 and Appendix
//! A.6: loss-plateau detection (the dynamic tuning trigger), selection
//! rules (gradient-cosine threshold, MSSIM-predicted accuracy, score
//! clustering), and mixture training distributions over scan groups.
//!
//! These are pure policies over numbers, independently testable. Their
//! live consumers are `pcr-loader`'s `FidelityController` — which wires
//! plateau detection and lowest-qualifying-group selection into the
//! wall-clock parallel loader to adjust the scan-group prefix online —
//! and the simulated training loops in `pcr-sim`.
//!
//! ```
//! use pcr_autotune::{
//!     select_lowest_qualifying, MixturePolicy, PlateauDetector, DEFAULT_COSINE_THRESHOLD,
//! };
//!
//! // Flat losses trip the plateau detector, triggering the tuning phase.
//! let mut detector = PlateauDetector::new(2, 0.01);
//! let mut plateaued = false;
//! for loss in [1.0, 0.6, 0.41, 0.40, 0.401, 0.399] {
//!     plateaued = detector.push(loss);
//! }
//! assert!(plateaued);
//!
//! // Gradient-cosine selection: the cheapest group clearing 90%.
//! let scores = [(1, 0.62), (2, 0.85), (5, 0.93), (10, 1.0)];
//! let chosen = select_lowest_qualifying(&scores, DEFAULT_COSINE_THRESHOLD);
//! assert_eq!(chosen, 5);
//!
//! // Hedge with a mixture biased toward the selected group (A.6.3).
//! let mix = MixturePolicy::selected(&[1, 2, 5, 10], chosen, 7.0);
//! assert_eq!(mix.probability(5), 0.7);
//! assert_eq!(mix.probability(1), 0.1);
//! ```

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod mixture;
pub mod plateau;
pub mod select;

pub use mixture::MixturePolicy;
pub use plateau::PlateauDetector;
pub use select::{
    cluster_representatives, select_by_predicted_accuracy, select_lowest_qualifying,
    DEFAULT_COSINE_THRESHOLD, DEFAULT_MSSIM_THRESHOLD,
};
