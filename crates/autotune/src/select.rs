//! Scan-group selection rules: the gradient-cosine criterion of Appendix
//! A.6 and the MSSIM-based static rule of section 4.4.

/// Default gradient-similarity acceptance threshold used by the paper
/// ("the gradient similarity is set to be at least 90%").
pub const DEFAULT_COSINE_THRESHOLD: f64 = 0.90;

/// MSSIM above which scan groups "consistently perform well" (section 4.4:
/// "scan groups of 5 or higher have an MSSIM of 95%+").
pub const DEFAULT_MSSIM_THRESHOLD: f64 = 0.95;

/// Picks the *lowest* scan group whose score meets `threshold`; falls back
/// to the highest group when none qualify. `scores` is `(group, score)`
/// with higher scores better (cosine similarity or MSSIM).
pub fn select_lowest_qualifying(scores: &[(usize, f64)], threshold: f64) -> usize {
    let mut sorted: Vec<(usize, f64)> = scores.to_vec();
    sorted.sort_by_key(|&(g, _)| g);
    for &(g, s) in &sorted {
        if s >= threshold {
            return g;
        }
    }
    sorted.last().map(|&(g, _)| g).unwrap_or(0)
}

/// Static MSSIM-based tuning (section 4.4 / A.6.1): predicts final accuracy
/// for each group from a linear MSSIM->accuracy fit and picks the cheapest
/// group whose predicted accuracy is within `tolerance` of the best.
pub fn select_by_predicted_accuracy(
    group_mssim: &[(usize, f64)],
    fit: &pcr_metrics::LinearFit,
    tolerance: f64,
) -> usize {
    let best = group_mssim
        .iter()
        .map(|&(_, m)| fit.predict(m))
        .fold(f64::NEG_INFINITY, f64::max);
    let mut sorted: Vec<(usize, f64)> = group_mssim.to_vec();
    sorted.sort_by_key(|&(g, _)| g);
    for &(g, m) in &sorted {
        if fit.predict(m) >= best - tolerance {
            return g;
        }
    }
    sorted.last().map(|&(g, _)| g).unwrap_or(0)
}

/// Groups scan groups into clusters of near-equal score (the paper notes
/// scans 2-4 cluster together, 5+ cluster together); returns representative
/// groups, cheapest-first. Useful to shrink the probe set for dynamic
/// tuning ("this number can be clustered to 3 or 4 scans").
pub fn cluster_representatives(scores: &[(usize, f64)], epsilon: f64) -> Vec<usize> {
    let mut sorted: Vec<(usize, f64)> = scores.to_vec();
    sorted.sort_by_key(|&(g, _)| g);
    let mut reps = Vec::new();
    let mut last_score = f64::NEG_INFINITY;
    for &(g, s) in &sorted {
        if (s - last_score).abs() > epsilon {
            reps.push(g);
            last_score = s;
        }
    }
    reps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_qualifying_picked() {
        let scores = [(1, 0.6), (2, 0.85), (5, 0.93), (10, 1.0)];
        assert_eq!(select_lowest_qualifying(&scores, 0.9), 5);
        assert_eq!(select_lowest_qualifying(&scores, 0.5), 1);
    }

    #[test]
    fn fallback_to_highest_when_none_qualify() {
        let scores = [(1, 0.2), (2, 0.3), (10, 0.8)];
        assert_eq!(select_lowest_qualifying(&scores, 0.99), 10);
    }

    #[test]
    fn order_of_input_does_not_matter() {
        let scores = [(10, 1.0), (1, 0.6), (5, 0.95), (2, 0.9)];
        assert_eq!(select_lowest_qualifying(&scores, 0.9), 2);
    }

    #[test]
    fn predicted_accuracy_rule() {
        // acc = 100 * mssim - 20.
        let fit = pcr_metrics::LinearFit {
            slope: 100.0,
            intercept: -20.0,
            r2: 1.0,
            p_value: 0.0,
            n: 10,
        };
        let groups = [(1, 0.80), (2, 0.90), (5, 0.97), (10, 1.0)];
        // Best predicted = 80; tolerance 4 admits group 5 (77); tolerance
        // 12 admits group 2 (70).
        assert_eq!(select_by_predicted_accuracy(&groups, &fit, 4.0), 5);
        assert_eq!(select_by_predicted_accuracy(&groups, &fit, 12.0), 2);
        assert_eq!(select_by_predicted_accuracy(&groups, &fit, 0.5), 10);
    }

    #[test]
    fn clustering_collapses_similar_groups() {
        let scores = [
            (1, 0.70),
            (2, 0.88),
            (3, 0.885),
            (4, 0.89),
            (5, 0.96),
            (6, 0.965),
            (10, 0.99),
        ];
        let reps = cluster_representatives(&scores, 0.02);
        assert_eq!(reps, vec![1, 2, 5, 10]);
    }
}
