//! Mixture training (Appendix A.6.3): instead of a hard scan-group choice,
//! draw each record's quality from a probability simplex over groups —
//! "hedging" across qualities with fine-grained bandwidth control.

use rand::Rng;

/// A probability distribution over scan groups.
#[derive(Debug, Clone, PartialEq)]
pub struct MixturePolicy {
    groups: Vec<usize>,
    weights: Vec<f64>,
}

impl MixturePolicy {
    /// Uniform mixture over `groups`.
    pub fn uniform(groups: &[usize]) -> Self {
        Self::from_weights(groups, &vec![1.0; groups.len()])
    }

    /// Degenerate (non-mixed) policy: always `group`.
    pub fn fixed(group: usize) -> Self {
        Self { groups: vec![group], weights: vec![1.0] }
    }

    /// The paper's mixtures: the selected group gets weight `w`, every
    /// other group weight 1 (w=10 -> ~50% selected over 10 groups; w=100
    /// -> ~85%... with normalization over 10 groups w=10 gives 10/19).
    pub fn selected(groups: &[usize], selected: usize, weight: f64) -> Self {
        let weights: Vec<f64> =
            groups.iter().map(|&g| if g == selected { weight } else { 1.0 }).collect();
        Self::from_weights(groups, &weights)
    }

    /// Arbitrary weights (normalized internally).
    pub fn from_weights(groups: &[usize], weights: &[f64]) -> Self {
        assert_eq!(groups.len(), weights.len(), "length mismatch");
        assert!(!groups.is_empty(), "empty mixture");
        assert!(weights.iter().all(|&w| w >= 0.0), "negative weight");
        let sum: f64 = weights.iter().sum();
        assert!(sum > 0.0, "zero total weight");
        Self {
            groups: groups.to_vec(),
            weights: weights.iter().map(|w| w / sum).collect(),
        }
    }

    /// Probability assigned to `group`.
    pub fn probability(&self, group: usize) -> f64 {
        self.groups
            .iter()
            .zip(&self.weights)
            .find(|(&g, _)| g == group)
            .map(|(_, &w)| w)
            .unwrap_or(0.0)
    }

    /// Draws a scan group.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen();
        let mut acc = 0.0;
        for (&g, &w) in self.groups.iter().zip(&self.weights) {
            acc += w;
            if x < acc {
                return g;
            }
        }
        *self.groups.last().expect("nonempty")
    }

    /// Expected bytes per image under this mixture, given per-group mean
    /// sizes — the "bandwidth is now a continuous variable" property.
    pub fn expected_bytes(&self, mean_bytes: &[(usize, f64)]) -> f64 {
        self.groups
            .iter()
            .zip(&self.weights)
            .map(|(&g, &w)| {
                let b = mean_bytes
                    .iter()
                    .find(|&&(gg, _)| gg == g)
                    .map(|&(_, b)| b)
                    .unwrap_or(0.0);
                w * b
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const GROUPS: [usize; 10] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];

    #[test]
    fn selected_weight_10_gives_paper_probability() {
        let m = MixturePolicy::selected(&GROUPS, 5, 10.0);
        // 10 / (10 + 9) = 10/19 ~ 52.6%.
        assert!((m.probability(5) - 10.0 / 19.0).abs() < 1e-12);
        assert!((m.probability(1) - 1.0 / 19.0).abs() < 1e-12);
    }

    #[test]
    fn selected_weight_100_gives_85_percent() {
        let m = MixturePolicy::selected(&GROUPS, 2, 100.0);
        assert!((m.probability(2) - 100.0 / 109.0).abs() < 1e-12);
        assert!(m.probability(2) > 0.85);
    }

    #[test]
    fn sampling_matches_distribution() {
        let m = MixturePolicy::selected(&GROUPS, 5, 10.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let hits = (0..n).filter(|_| m.sample(&mut rng) == 5).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 10.0 / 19.0).abs() < 0.02, "sampled {frac}");
    }

    #[test]
    fn fixed_always_samples_same() {
        let m = MixturePolicy::fixed(7);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng), 7);
        }
    }

    #[test]
    fn expected_bytes_interpolates() {
        let sizes: Vec<(usize, f64)> = GROUPS.iter().map(|&g| (g, g as f64 * 10.0)).collect();
        let uni = MixturePolicy::uniform(&GROUPS);
        assert!((uni.expected_bytes(&sizes) - 55.0).abs() < 1e-9);
        let hard = MixturePolicy::fixed(1);
        assert!((hard.expected_bytes(&sizes) - 10.0).abs() < 1e-9);
        // Mixture bandwidth sits strictly between the extremes.
        let mix = MixturePolicy::selected(&GROUPS, 1, 10.0);
        let e = mix.expected_bytes(&sizes);
        assert!(e > 10.0 && e < 55.0);
    }

    #[test]
    #[should_panic(expected = "zero total weight")]
    fn zero_weights_rejected() {
        let _ = MixturePolicy::from_weights(&[1, 2], &[0.0, 0.0]);
    }
}
