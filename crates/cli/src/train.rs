//! `pcr train`: wall-clock training epochs streamed from a container,
//! optionally under online (dynamic) fidelity control, exporting the
//! per-epoch trajectory as a `FidelityTrace` JSON file.

use crate::args::{parse, ArgSpec};
use crate::{human_bytes, smoke};
use pcr_loader::{
    open_container_store, probe_source_scores, DecodeMode, FidelityConfig, FidelityController,
    IoModel, LoaderConfig, ParallelConfig, ParallelLoader, RecordSource, ShardStoreConfig,
};
use pcr_core::{DecisionLogWriter, DecisionRecord, DECISION_LOG_FILE};
use pcr_metrics::{EpochFaultCounters, FidelityEpoch, FidelityTrace, TriggerKind};
use pcr_storage::FaultPlan;
use pcr_nn::{Matrix, Mlp, ModelSpec, SgdMomentum};
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

pub const HELP: &str = "pcr train — wall-clock training epochs from a container

USAGE:
    pcr train <dir> [options]

OPTIONS:
    --epochs <n>      Epochs to run (default 8)
    --dynamic         Online fidelity control: start at full quality,
                      probe per-group MSSIM, drop the scan-group prefix
                      when the training loss plateaus
    --group <g>       Fixed scan group when not --dynamic (default: full)
    --model <name>    resnet | shufflenet (default resnet)
    --threads <n>     Loader worker threads (default 4)
    --batch <n>       Minibatch size (default 32)
    --lr <x>          SGD learning rate (default 0.05)
    --io <mode>       instant | emulated (default instant)
    --seed <s>        Model init / shuffle seed (default 42)
    --json <path>     Write the per-epoch FidelityTrace as JSON
    --no-declog       Do not append this run's decisions to the
                      container's decisions.pcrd audit log
    --fault-plan <s>  Arm deterministic storage-fault injection, e.g.
                      \"seed=7,transient=0.05,torn=0.02,latency=0.1\"
                      (see pcr-storage FaultPlan::parse_spec for keys)
    --max-retries <n> Read retry attempts before degrading (default 3)
    --read-deadline-ms <ms>
                      Per-read service deadline; slower reads count as
                      timeouts and are retried (default: off)

Each epoch streams decoded minibatches from the packed shards through
the wall-clock parallel loader and trains a small MLP on them; the loss
the fidelity controller observes is the real training loss of that
epoch. Unless --no-declog is given, every epoch's fidelity decision is
appended to the container's own decisions.pcrd audit log (inspect it
with `pcr inspect <dir> --trace`); epochs where storage faults degraded
or quarantined records additionally log a `degraded` audit record. With PCR_BENCH_SMOKE=1 the run is
clamped to at most 4 epochs.";

const SPEC: ArgSpec = ArgSpec {
    value_flags: &[
        "epochs",
        "group",
        "model",
        "threads",
        "batch",
        "lr",
        "io",
        "seed",
        "json",
        "fault-plan",
        "max-retries",
        "read-deadline-ms",
    ],
    bool_flags: &["dynamic", "no-declog"],
};

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = parse(argv, &SPEC)?;
    let dir = args.positional.first().ok_or("usage: pcr train <dir> [options]")?;
    let mut epochs: u64 = args.number("epochs", 8u64)?.max(1);
    let dynamic = args.flag("dynamic");
    let threads = args.number("threads", 4usize)?.max(1);
    let batch = args.number("batch", 32usize)?.max(1);
    let lr: f32 = args.number("lr", 0.05f32)?;
    let seed: u64 = args.number("seed", 42u64)?;
    let io = match args.value_or("io", "instant") {
        "instant" => IoModel::Instant,
        "emulated" => IoModel::EmulatedLatency,
        other => return Err(format!("unknown --io {other:?} (instant | emulated)")),
    };
    let model_spec = match args.value_or("model", "resnet") {
        "resnet" => ModelSpec::resnet_like(),
        "shufflenet" => ModelSpec::shufflenet_like(),
        other => return Err(format!("unknown --model {other:?} (resnet | shufflenet)")),
    };
    if smoke() && epochs > 4 {
        epochs = 4;
        println!("PCR_BENCH_SMOKE=1: clamping to {epochs} epochs");
    }

    let opened = open_container_store(Path::new(dir), &ShardStoreConfig::default())
        .map_err(|e| e.to_string())?;
    if let Some(spec) = args.value("fault-plan") {
        let plan = FaultPlan::parse_spec(spec).map_err(|e| format!("--fault-plan: {e}"))?;
        opened.store.set_fault_plan(Some(plan));
        println!("fault plan armed: {spec}");
    }
    let max_retries: u32 = args.number("max-retries", 3u32)?;
    let read_deadline_ms: f64 = args.number("read-deadline-ms", 0.0f64)?;
    let source = Arc::clone(&opened.source);
    let full_group = source.num_groups().max(1);
    let fixed_group = args.number("group", full_group)?.clamp(1, full_group);

    let num_classes = (0..source.num_records())
        .flat_map(|i| source.labels(i).iter().copied())
        .max()
        .map_or(2, |m| m as usize + 1)
        .max(2);
    println!(
        "container {}: {} image(s) over {} shard(s), {} classes | model {}",
        dir,
        source.num_images(),
        opened.container.shards.len(),
        num_classes,
        model_spec.name
    );

    // Dynamic mode: probe per-group quality, then let the controller
    // pick each epoch's scan group from the observed training loss.
    let mut controller = if dynamic {
        let probe_images = if smoke() { 8 } else { 32 };
        let candidates: Vec<usize> =
            [1, 2, 5, full_group].iter().copied().filter(|&g| g <= full_group).collect();
        let scores = probe_source_scores(&opened.store, &*source, &candidates, probe_images);
        println!("probed MSSIM per scan group:");
        for &(g, s) in &scores {
            println!("  group {g:>2}: {s:.4}");
        }
        Some(FidelityController::new(FidelityConfig::default(), scores))
    } else {
        None
    };

    let loader = ParallelLoader::new(
        Arc::clone(&opened.store),
        Arc::clone(&source),
        ParallelConfig {
            loader: LoaderConfig {
                threads,
                decode: DecodeMode::Real,
                seed,
                retry: pcr_loader::RetryPolicy {
                    max_retries,
                    read_deadline_s: read_deadline_ms / 1000.0,
                    ..pcr_loader::RetryPolicy::default()
                },
                ..LoaderConfig::at_group(full_group)
            },
            batch_size: batch,
            io,
            ..ParallelConfig::default()
        },
    );

    // Audit plane: append this run's decisions to the container's own
    // decision log so `pcr inspect --trace` can replay them later. A
    // log that cannot be opened (read-only dir, corrupt chain) downgrades
    // to a warning — training must not be blocked by its audit trail.
    let mut declog = if args.flag("no-declog") {
        None
    } else {
        let path = Path::new(dir).join(DECISION_LOG_FILE);
        match DecisionLogWriter::open(&path) {
            Ok(w) => Some((path, w)),
            Err(e) => {
                eprintln!("warning: decision log disabled: {e}");
                None
            }
        }
    };
    let bytes_full = source.bytes_at_group(full_group);

    let mut model = Mlp::new(model_spec.clone(), num_classes, seed);
    let mut opt = SgdMomentum::new(0.9);
    let dim = model_spec.input_dim();
    let mut trace = FidelityTrace::new();
    let mut log_failed = false;
    let mut trigger = if dynamic { TriggerKind::Start } else { TriggerKind::Fixed };
    println!(
        "\n{:>6} {:>6} {:>12} {:>8} {:>9} {:>9} {:>8}",
        "epoch", "group", "bytes", "img/s", "loss", "train acc", "hit rate"
    );
    for epoch in 0..epochs {
        let group = controller.as_ref().map_or(fixed_group, FidelityController::group);
        let t0 = Instant::now();
        let stream = loader.spawn_epoch_at(epoch, group);
        let mut loss_sum = 0.0f64;
        let mut correct = 0usize;
        let mut seen = 0usize;
        for b in stream.batches.iter() {
            if b.images.is_empty() {
                continue;
            }
            let mut features = Vec::with_capacity(b.images.len() * dim);
            for img in &b.images {
                features.extend(model_spec.featurize(img));
            }
            let x = Matrix::from_vec(b.images.len(), dim, features);
            let step = model.backward(&x, &b.labels);
            opt.step(&mut model, &step.grads, lr);
            loss_sum += step.loss * step.n as f64;
            correct += step.correct;
            seen += step.n;
        }
        let stats = Arc::clone(&stream.stats);
        stream.join();
        let wall = t0.elapsed().as_secs_f64();
        let bytes = stats.bytes_read.load(Ordering::Relaxed);
        let faults = stats.fault_report();
        let loss = if seen > 0 { loss_sum / seen as f64 } else { f64::NAN };
        let acc = if seen > 0 { correct as f64 / seen as f64 } else { 0.0 };
        let images_per_sec = if wall > 0.0 { seen as f64 / wall } else { 0.0 };
        let entry = FidelityEpoch {
            epoch,
            scan_group: group,
            trigger,
            probe_scores: controller
                .as_ref()
                .map(FidelityController::probe_scores_wire)
                .unwrap_or_default(),
            bytes_read: bytes,
            images: seen as u64,
            images_per_sec,
            cache_hit_rate: opened.store.cache_hit_rate(),
            loss,
            faults: EpochFaultCounters {
                retries: faults.retries,
                degraded_records: faults.degraded_records,
                quarantined_records: faults.quarantined_records,
                quarantined_images: faults.quarantined_images(),
            },
        };
        if let Some((path, mut w)) = declog.take() {
            // An append failure may leave a torn frame, so the writer is
            // retired (open() recovers the tail next session); the run
            // continues and every unpersisted decision is counted.
            match w.append(&DecisionRecord::from_epoch(&entry, bytes_full)) {
                Ok(()) => declog = Some((path, w)),
                Err(e) => {
                    trace.log_write_failures += 1;
                    log_failed = true;
                    eprintln!("warning: decision log write failed ({}): {e}", path.display());
                }
            }
        } else if log_failed {
            trace.log_write_failures += 1;
        }
        // Additive audit record (FORMAT.md §7): epochs the storage plane
        // degraded get a `degraded` entry — `images` carries the
        // degraded-record count, `loss` the quarantined-record count.
        if entry.faults.degraded_records > 0 || entry.faults.quarantined_records > 0 {
            if let Some((path, mut w)) = declog.take() {
                let rec = DecisionRecord {
                    epoch,
                    trigger: TriggerKind::Degraded,
                    scan_group: u16::try_from(group).unwrap_or(u16::MAX),
                    bytes_read: bytes,
                    bytes_full,
                    images: entry.faults.degraded_records,
                    cache_hit_rate: opened.store.cache_hit_rate(),
                    loss: entry.faults.quarantined_records as f64,
                    probe_scores: Vec::new(),
                };
                match w.append(&rec) {
                    Ok(()) => declog = Some((path, w)),
                    Err(e) => {
                        trace.log_write_failures += 1;
                        log_failed = true;
                        eprintln!(
                            "warning: decision log write failed ({}): {e}",
                            path.display()
                        );
                    }
                }
            }
            println!(
                "  !! faults: {} retried read(s), {} degraded, {} quarantined ({} image(s))",
                entry.faults.retries,
                entry.faults.degraded_records,
                entry.faults.quarantined_records,
                entry.faults.quarantined_images,
            );
        }
        trace.push(entry);
        println!(
            "{:>6} {:>6} {:>12} {:>8.1} {:>9.4} {:>9.3} {:>8.2}",
            epoch,
            group,
            bytes,
            images_per_sec,
            loss,
            acc,
            opened.store.cache_hit_rate()
        );
        if let Some(ctrl) = controller.as_mut() {
            let switched = ctrl.observe_loss(loss);
            if let Some(next) = switched {
                println!("  -> fidelity controller drops to scan group {next} for the next epoch");
            }
            trigger = ctrl.trigger_after(switched);
        }
    }

    let full_cost = epochs * source.bytes_at_group(full_group);
    println!(
        "\ntotal bytes read: {} ({}); full-quality epochs would read {} ({})",
        trace.total_bytes(),
        human_bytes(trace.total_bytes()),
        full_cost,
        human_bytes(full_cost)
    );
    if let Some(ctrl) = &controller {
        println!("controller decisions: {:?}", ctrl.decisions());
        println!("scan groups used: {:?}", trace.groups_used());
    }
    let retries: u64 = trace.epochs.iter().map(|e| e.faults.retries).sum();
    let degraded: u64 = trace.epochs.iter().map(|e| e.faults.degraded_records).sum();
    let quarantined: u64 = trace.epochs.iter().map(|e| e.faults.quarantined_records).sum();
    if retries + degraded + quarantined > 0 || opened.store.fault_plan().is_some() {
        let injected = opened.store.fault_stats();
        println!(
            "fault summary: {} injected error(s) ({} transient, {} torn, {} corrupt, \
             {} timeout(s)), {} bit flip(s), {} latency spike(s)",
            injected.injected_errors(),
            injected.transient,
            injected.torn,
            injected.corrupt,
            injected.timeouts,
            injected.bit_flips,
            injected.latency_spikes,
        );
        println!(
            "recovery: {retries} retried read(s), {degraded} degraded record(s), \
             {quarantined} quarantined record(s)"
        );
    }
    if trace.log_write_failures > 0 {
        println!(
            "decision log: {} record(s) FAILED to persist (see warnings above)",
            trace.log_write_failures
        );
    }
    if let Some((path, w)) = &declog {
        println!(
            "decision log: {} (+{} record(s), chain {:#010x}) — query with `pcr inspect {} --trace`",
            path.display(),
            w.records_written(),
            w.chain(),
            dir
        );
    }
    if let Some(path) = args.value("json") {
        trace.write_json(path).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}
