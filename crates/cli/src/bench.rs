//! `pcr bench`: stream a container with the wall-clock parallel loader,
//! sweeping worker counts × scan groups, with optional JSON output.

use crate::args::{parse, ArgSpec};
use crate::{human_bytes, smoke};
use pcr_core::container::PcrContainer;
use pcr_loader::{
    DecodeMode, IoModel, LoaderConfig, ParallelConfig, ParallelLoader, RecordSource,
    ShardStoreConfig, ShardedSource,
};
use pcr_metrics::JsonValue;
use pcr_storage::ObjectStore;
use std::path::Path;
use std::sync::Arc;

pub const HELP: &str = "pcr bench — worker x scan-group streaming sweep over a container

USAGE:
    pcr bench <dir> [options]

OPTIONS:
    --workers <list>   Comma-separated worker counts (default 1,2,4)
    --groups <list>    Comma-separated scan groups (default 1,5,10)
    --batch <n>        Minibatch size (default 32)
    --decode <mode>    real | skip (default real: decode pixels)
    --io <mode>        instant | emulated (default emulated: sleep each
                       read's modeled device service time)
    --readahead <b>    Store readahead in bytes (default 262144)
    --json <path>      Also write the sweep as a JSON report

Every sweep row runs against a freshly loaded store — cold cache, zeroed
device statistics — so rows are independent, comparable measurements.

With PCR_BENCH_SMOKE=1 the sweep is clamped to 1,2 workers and the
lowest/highest requested groups, so CI finishes in seconds.";

const SPEC: ArgSpec = ArgSpec {
    value_flags: &["workers", "groups", "batch", "decode", "io", "readahead", "json"],
    bool_flags: &[],
};

struct Row {
    workers: usize,
    group: usize,
    images: usize,
    bytes: u64,
    wall_seconds: f64,
    images_per_sec: f64,
    mean_image_bytes: f64,
    cache_hit_rate: f64,
}

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = parse(argv, &SPEC)?;
    let dir = args.positional.first().ok_or("usage: pcr bench <dir> [options]")?;
    let mut workers = args.usize_list("workers", &[1, 2, 4])?;
    let mut groups = args.usize_list("groups", &[1, 5, 10])?;
    let batch = args.number("batch", 32usize)?.max(1);
    let decode = match args.value_or("decode", "real") {
        "real" => DecodeMode::Real,
        "skip" => DecodeMode::Skip,
        other => return Err(format!("unknown --decode {other:?} (real | skip)")),
    };
    let io = match args.value_or("io", "emulated") {
        "instant" => IoModel::Instant,
        "emulated" => IoModel::EmulatedLatency,
        other => return Err(format!("unknown --io {other:?} (instant | emulated)")),
    };
    if smoke() {
        workers.retain(|&w| w <= 2);
        if workers.is_empty() {
            workers.push(1);
        }
        groups = vec![
            *groups.iter().min().unwrap_or(&1),
            *groups.iter().max().unwrap_or(&10),
        ];
        groups.dedup();
        println!("PCR_BENCH_SMOKE=1: clamping sweep to workers {workers:?}, groups {groups:?}");
    }

    // Open + verify once; the shard bytes are re-loaded into a *fresh*
    // store (cold cache, zeroed device stats) for every sweep row, so
    // rows are independent measurements — without this, later rows would
    // be served from the cache earlier rows warmed and the worker/group
    // comparison would be meaningless.
    let store_cfg = ShardStoreConfig {
        readahead: args.number("readahead", 256u64 << 10)?,
        ..ShardStoreConfig::default()
    };
    let container = PcrContainer::open(Path::new(dir)).map_err(|e| e.to_string())?;
    let mut shard_blobs = Vec::with_capacity(container.shards.len());
    for i in 0..container.shards.len() {
        let bytes = container.read_shard_verified(i).map_err(|e| e.to_string())?;
        shard_blobs.push((container.manifest.shards[i].file_name.clone(), bytes));
    }
    let source = Arc::new(ShardedSource::from_container(&container).map_err(|e| e.to_string())?);
    let fresh_store = || {
        let store =
            Arc::new(ObjectStore::with_cache(store_cfg.profile.clone(), store_cfg.cache_bytes));
        store.set_readahead(store_cfg.readahead);
        for (name, bytes) in &shard_blobs {
            store.put(name, bytes.clone());
        }
        store
    };
    println!(
        "container {}: {} record(s), {} image(s), {} | device {} | {:?} decode",
        dir,
        source.num_records(),
        source.num_images(),
        human_bytes(container.total_data_bytes()),
        store_cfg.profile.name,
        decode,
    );

    let mut rows = Vec::new();
    println!(
        "\n{:>7} {:>5} {:>7} {:>12} {:>8} {:>9} {:>10} {:>9}",
        "workers", "group", "images", "bytes", "wall s", "img/s", "bytes/img", "hit rate"
    );
    for &g in &groups {
        for &w in &workers {
            let cfg = ParallelConfig {
                loader: LoaderConfig { threads: w, scan_group: g, decode, ..LoaderConfig::default() },
                batch_size: batch,
                io,
                ..ParallelConfig::default()
            };
            let store = fresh_store();
            let loader = ParallelLoader::new(Arc::clone(&store), Arc::clone(&source), cfg);
            let epoch = loader.run_epoch(0);
            let row = Row {
                workers: w,
                group: g,
                images: epoch.images,
                bytes: epoch.bytes,
                wall_seconds: epoch.wall_seconds,
                images_per_sec: epoch.images_per_sec(),
                mean_image_bytes: epoch.mean_image_bytes(),
                cache_hit_rate: store.cache_hit_rate(),
            };
            println!(
                "{:>7} {:>5} {:>7} {:>12} {:>8.3} {:>9.1} {:>10.0} {:>9.2}",
                row.workers,
                row.group,
                row.images,
                row.bytes,
                row.wall_seconds,
                row.images_per_sec,
                row.mean_image_bytes,
                row.cache_hit_rate
            );
            rows.push(row);
        }
    }

    if let Some(path) = args.value("json") {
        let json = report_json(dir, &rows);
        std::fs::write(path, json.render()).map_err(|e| format!("{path}: {e}"))?;
        println!("\nwrote {path}");
    }
    Ok(())
}

fn report_json(dir: &str, rows: &[Row]) -> JsonValue {
    let entries = rows
        .iter()
        .map(|r| {
            JsonValue::object([
                ("workers", JsonValue::U64(r.workers as u64)),
                ("scan_group", JsonValue::U64(r.group as u64)),
                ("images", JsonValue::U64(r.images as u64)),
                ("bytes", JsonValue::U64(r.bytes)),
                ("wall_seconds", JsonValue::F64(r.wall_seconds)),
                ("images_per_sec", JsonValue::F64(r.images_per_sec)),
                ("mean_image_bytes", JsonValue::F64(r.mean_image_bytes)),
                ("cache_hit_rate", JsonValue::F64(r.cache_hit_rate)),
            ])
        })
        .collect();
    JsonValue::object([
        ("container", JsonValue::str(dir)),
        ("sweep", JsonValue::Array(entries)),
    ])
}
