//! `pcr inspect`: manifest, shard, and record views of a container,
//! including the per-scan-group fidelity byte breakdown.

use crate::args::{parse, ArgSpec};
use crate::human_bytes;
use pcr_core::container::PcrContainer;
use pcr_metrics::JsonValue;
use std::path::Path;

pub const HELP: &str = "pcr inspect — look inside a sharded PCR container

USAGE:
    pcr inspect <dir> [options]

OPTIONS:
    --shard <i>     Show shard i's record table instead of the manifest view
    --record <j>    Show global record j's per-scan-group byte layout
    --trace         Show the container's fidelity decision log: one row
                    per controller decision (trigger, scan group, probe
                    scores, bytes saved vs fixed fidelity)
    --epochs <r>    With --trace: only epochs in <r> — a single epoch
                    (\"40\") or a half-open range (\"32..48\", \"..8\", \"40..\")
    --trigger <t>   With --trace: only records with this trigger kind
                    (start | hold | plateau | retune | fixed | degraded)
    --verify        Re-read every shard and verify all record checksums
                    (and the decision-log CRC chain, when present)
    --json          Emit the selected view as JSON on stdout

The default (manifest) view ends with the fidelity byte breakdown: for
every scan group, the bytes one epoch reads and the fraction of the
full-quality traffic they represent. The --trace view answers \"why did
fidelity change at epoch N\" from the container alone: what the
controller saw (probe scores, loss), why it acted (trigger kind), and
what the decision cost or saved.";

const SPEC: ArgSpec = ArgSpec {
    value_flags: &["shard", "record", "epochs", "trigger"],
    bool_flags: &["verify", "json", "trace"],
};

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = parse(argv, &SPEC)?;
    let dir = args.positional.first().ok_or("usage: pcr inspect <dir> [options]")?;
    let container = PcrContainer::open(Path::new(dir)).map_err(|e| e.to_string())?;

    if args.flag("verify") {
        container.verify().map_err(|e| e.to_string())?;
        if !args.flag("json") {
            println!(
                "integrity OK: {} shard(s), {} record(s) verified",
                container.shards.len(),
                container.num_records()
            );
        }
    }

    if !args.flag("trace") && (args.value("epochs").is_some() || args.value("trigger").is_some())
    {
        return Err("--epochs/--trigger filter the decision log; add --trace".into());
    }

    let doc = if args.flag("trace") {
        trace_view(&container, &args)?
    } else if let Some(shard) = args.value("shard") {
        let i: usize = shard.parse().map_err(|_| format!("--shard: not an index: {shard}"))?;
        shard_view(&container, i, args.flag("json"))?
    } else if let Some(record) = args.value("record") {
        let j: usize =
            record.parse().map_err(|_| format!("--record: not an index: {record}"))?;
        record_view(&container, j, args.flag("json"))?
    } else {
        manifest_view(&container, args.flag("json"))?
    };
    if let Some(json) = doc {
        println!("{}", json.render());
    }
    Ok(())
}

/// Parses an `--epochs` filter: a single epoch (`"40"`) or a half-open
/// range (`"32..48"`, `"..8"`, `"40.."`). Returns `(start, end)` with
/// `start` inclusive and `end` exclusive.
fn parse_epoch_range(s: &str) -> Result<(u64, u64), String> {
    let bad = |part: &str| format!("--epochs: not an epoch index: {part:?}");
    if let Some((a, b)) = s.split_once("..") {
        let lo = if a.is_empty() { 0 } else { a.parse().map_err(|_| bad(a))? };
        let hi = if b.is_empty() { u64::MAX } else { b.parse().map_err(|_| bad(b))? };
        Ok((lo, hi))
    } else {
        let n: u64 = s.parse().map_err(|_| bad(s))?;
        Ok((n, n.saturating_add(1)))
    }
}

/// The `--trace` view: the container's durable fidelity decision log
/// (FORMAT.md §7), optionally filtered by epoch range and trigger kind,
/// with a bytes-saved-vs-fixed-fidelity rollup over the selection.
fn trace_view(
    container: &PcrContainer,
    args: &crate::args::Parsed,
) -> Result<Option<JsonValue>, String> {
    use pcr_core::declog::DecisionLog;
    use pcr_metrics::TriggerKind;

    let json = args.flag("json");
    let (lo, hi) = match args.value("epochs") {
        Some(r) => parse_epoch_range(r)?,
        None => (0, u64::MAX),
    };
    let trigger = match args.value("trigger") {
        Some(t) => Some(TriggerKind::from_name(t).ok_or_else(|| {
            format!(
                "--trigger: unknown kind {t:?} \
                 (start | hold | plateau | retune | fixed | degraded)"
            )
        })?),
        None => None,
    };

    let log: Option<DecisionLog> = container.decision_log().map_err(|e| e.to_string())?;
    let Some(log) = log else {
        if json {
            return Ok(Some(JsonValue::object([("present", JsonValue::Bool(false))])));
        }
        println!(
            "no decision log in {} — run `pcr train {} --dynamic` to record one",
            container.dir.display(),
            container.dir.display()
        );
        return Ok(None);
    };
    let chain = log.verify();
    let selected: Vec<_> = log
        .records()
        .iter()
        .filter(|r| (lo..hi).contains(&r.epoch) && trigger.is_none_or(|t| r.trigger == t))
        .collect();
    let (read, full): (u64, u64) =
        selected.iter().fold((0, 0), |(r, f), rec| (r + rec.bytes_read, f + rec.bytes_full));
    let saved = full.saturating_sub(read);
    let saved_frac = if full > 0 { saved as f64 / full as f64 } else { 0.0 };

    if json {
        let records = selected
            .iter()
            .map(|r| {
                let probes = r
                    .probe_scores
                    .iter()
                    .map(|&(g, s)| {
                        JsonValue::object([
                            ("group", JsonValue::U64(u64::from(g))),
                            ("score", JsonValue::F64(s)),
                        ])
                    })
                    .collect();
                JsonValue::object([
                    ("epoch", JsonValue::U64(r.epoch)),
                    ("trigger", JsonValue::str(r.trigger.name())),
                    ("scan_group", JsonValue::U64(u64::from(r.scan_group))),
                    ("probe_scores", JsonValue::Array(probes)),
                    ("bytes_read", JsonValue::U64(r.bytes_read)),
                    ("bytes_full", JsonValue::U64(r.bytes_full)),
                    ("bytes_saved", JsonValue::U64(r.bytes_saved())),
                    ("images", JsonValue::U64(r.images)),
                    ("cache_hit_rate", JsonValue::F64(r.cache_hit_rate)),
                    ("loss", JsonValue::F64(r.loss)),
                ])
            })
            .collect();
        return Ok(Some(JsonValue::object([
            ("present", JsonValue::Bool(true)),
            ("total_records", JsonValue::U64(log.len() as u64)),
            ("chain_intact", JsonValue::Bool(chain.is_ok())),
            ("records", JsonValue::Array(records)),
            (
                "rollup",
                JsonValue::object([
                    ("bytes_read", JsonValue::U64(read)),
                    ("bytes_full", JsonValue::U64(full)),
                    ("bytes_saved", JsonValue::U64(saved)),
                    ("saved_fraction", JsonValue::F64(saved_frac)),
                ]),
            ),
        ])));
    }

    match &chain {
        Ok(()) => println!(
            "decision log {}: {} record(s), chain intact",
            container.decision_log_path().display(),
            log.len()
        ),
        Err(e) => println!(
            "decision log {}: {} record(s), CHAIN BROKEN: {e}",
            container.decision_log_path().display(),
            log.len()
        ),
    }
    if selected.len() != log.len() {
        println!("  showing {} of {} record(s) after filters", selected.len(), log.len());
    }
    println!(
        "  {:>6} {:<8} {:>5} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "epoch", "trigger", "group", "bytes read", "bytes full", "saved", "hit rate", "loss"
    );
    let mut last_probes: Option<&[(u16, f64)]> = None;
    for r in &selected {
        // Probe scores repeat across epochs of one run; print them only
        // when they change (a new run or a re-probe).
        if !r.probe_scores.is_empty() && last_probes != Some(r.probe_scores.as_slice()) {
            let rendered: Vec<String> =
                r.probe_scores.iter().map(|(g, s)| format!("{g}:{s:.4}")).collect();
            println!("  probes @ epoch {}: {}", r.epoch, rendered.join(" "));
            last_probes = Some(r.probe_scores.as_slice());
        }
        println!(
            "  {:>6} {:<8} {:>5} {:>12} {:>12} {:>12} {:>9.2} {:>9.4}",
            r.epoch,
            r.trigger.name(),
            r.scan_group,
            r.bytes_read,
            r.bytes_full,
            r.bytes_saved(),
            r.cache_hit_rate,
            r.loss
        );
    }
    println!(
        "\n  rollup: read {} ({}), fixed-fidelity {} ({}) — saved {} ({:.1}%)",
        read,
        human_bytes(read),
        full,
        human_bytes(full),
        human_bytes(saved),
        saved_frac * 100.0
    );
    Ok(None)
}

/// Per-scan-group `(bytes, fraction of full)` rows — answered from the
/// manifest's zone-map stats for columnar containers, so no footer reads.
fn fidelity_rows(container: &PcrContainer) -> Result<Vec<(usize, u64, f64)>, String> {
    let full = container.total_data_bytes().max(1);
    (0..=container.num_groups())
        .map(|g| {
            let bytes = container.bytes_at_group(g).map_err(|e| e.to_string())?;
            Ok((g, bytes, bytes as f64 / full as f64))
        })
        .collect()
}

fn manifest_view(
    container: &PcrContainer,
    json: bool,
) -> Result<Option<JsonValue>, String> {
    let m = &container.manifest;
    if json {
        let shards = m
            .shards
            .iter()
            .map(|s| {
                JsonValue::object([
                    ("file", JsonValue::str(&*s.file_name)),
                    ("file_bytes", JsonValue::U64(s.file_len)),
                    ("records", JsonValue::U64(u64::from(s.records))),
                    ("images", JsonValue::U64(u64::from(s.images))),
                    ("footer_crc32", JsonValue::str(format!("{:#010x}", s.footer_crc))),
                ])
            })
            .collect();
        let fidelity = fidelity_rows(container)?
            .into_iter()
            .map(|(g, bytes, frac)| {
                JsonValue::object([
                    ("scan_group", JsonValue::U64(g as u64)),
                    ("epoch_bytes", JsonValue::U64(bytes)),
                    ("fraction_of_full", JsonValue::F64(frac)),
                ])
            })
            .collect();
        return Ok(Some(JsonValue::object([
            ("dir", JsonValue::str(container.dir.display().to_string())),
            ("version", JsonValue::U64(u64::from(m.version))),
            ("num_groups", JsonValue::U64(u64::from(m.num_groups))),
            ("records", JsonValue::U64(container.num_records() as u64)),
            ("images", JsonValue::U64(container.num_images() as u64)),
            ("data_bytes", JsonValue::U64(container.total_data_bytes())),
            ("file_bytes", JsonValue::U64(m.total_file_bytes())),
            ("shards", JsonValue::Array(shards)),
            ("fidelity", JsonValue::Array(fidelity)),
        ])));
    }
    println!("container {}", container.dir.display());
    println!(
        "  format v{}, {} scan groups | {} shard(s), {} record(s), {} image(s)",
        m.version,
        m.num_groups,
        m.shards.len(),
        container.num_records(),
        container.num_images()
    );
    println!(
        "  {} record data in {} of shard files",
        human_bytes(container.total_data_bytes()),
        human_bytes(m.total_file_bytes())
    );
    println!("\n  {:<24} {:>12} {:>8} {:>8}", "shard", "bytes", "records", "images");
    for s in &m.shards {
        println!(
            "  {:<24} {:>12} {:>8} {:>8}",
            s.file_name, s.file_len, s.records, s.images
        );
    }
    println!("\n  fidelity byte breakdown (one epoch of reads per scan group):");
    println!("  {:>5} {:>14} {:>10} {:>9}", "group", "bytes", "", "of full");
    for (g, bytes, frac) in fidelity_rows(container)? {
        println!(
            "  {:>5} {:>14} {:>10} {:>8.1}%",
            g,
            bytes,
            human_bytes(bytes),
            frac * 100.0
        );
    }
    Ok(None)
}

fn shard_view(
    container: &PcrContainer,
    i: usize,
    json: bool,
) -> Result<Option<JsonValue>, String> {
    let shard = container.shards.get(i).ok_or(format!(
        "shard {i} out of range (container has {})",
        container.shards.len()
    ))?;
    let entries = shard
        .entries()
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| e.to_string())?;
    if json {
        let records = entries
            .iter()
            .map(|r| {
                JsonValue::object([
                    ("name", JsonValue::str(&*r.name)),
                    ("offset", JsonValue::U64(r.offset)),
                    ("bytes", JsonValue::U64(r.len())),
                    ("images", JsonValue::U64(u64::from(r.num_images))),
                    (
                        "labels",
                        JsonValue::Array(
                            r.labels.iter().map(|&l| JsonValue::U64(u64::from(l))).collect(),
                        ),
                    ),
                    ("crc32", JsonValue::str(format!("{:#010x}", r.crc32))),
                ])
            })
            .collect();
        return Ok(Some(JsonValue::object([
            ("file", JsonValue::str(&*shard.file_name)),
            ("file_bytes", JsonValue::U64(shard.file_len)),
            ("records", JsonValue::Array(records)),
        ])));
    }
    println!("shard {} ({}, {})", i, shard.file_name, human_bytes(shard.file_len));
    println!(
        "  {:<20} {:>10} {:>10} {:>7} {:>11}  labels",
        "record", "offset", "bytes", "images", "crc32"
    );
    for r in &entries {
        println!(
            "  {:<20} {:>10} {:>10} {:>7} {:>#11x}  {:?}",
            r.name,
            r.offset,
            r.len(),
            r.num_images,
            r.crc32,
            r.labels
        );
    }
    Ok(None)
}

fn record_view(
    container: &PcrContainer,
    j: usize,
    json: bool,
) -> Result<Option<JsonValue>, String> {
    // Lazy entry resolution + a single ranged record read: bytes touched
    // stay O(record), independent of how big the shard or catalog is.
    let (shard_idx, rec) = container.entry(j).map_err(|e| e.to_string())?;
    let shard_file = &container.manifest.shards[shard_idx].file_name;
    let groups: Vec<(usize, u64, u64)> = (0..rec.group_offsets.len())
        .map(|g| {
            let cumulative = rec.group_offsets[g];
            let delta = if g == 0 { cumulative } else { cumulative - rec.group_offsets[g - 1] };
            (g, cumulative, delta)
        })
        .collect();
    // Restart-entropy layout: parse the record bytes and count segments
    // per scan group (summed over the record's images).
    let rec_bytes = container.read_record(shard_idx, &rec).map_err(|e| e.to_string())?;
    let parsed = pcr_core::PcrRecord::parse(&rec_bytes).map_err(|e| e.to_string())?;
    let restart_interval = parsed.restart_interval();
    let segment_counts: Vec<usize> = (1..=parsed.num_groups())
        .map(|g| {
            (0..parsed.num_images()).map(|i| parsed.segment_count(i, g).unwrap_or(0)).sum()
        })
        .collect();
    if json {
        let group_rows = groups
            .iter()
            .map(|&(g, cumulative, delta)| {
                JsonValue::object([
                    ("scan_group", JsonValue::U64(g as u64)),
                    ("prefix_bytes", JsonValue::U64(cumulative)),
                    ("group_bytes", JsonValue::U64(delta)),
                ])
            })
            .collect();
        return Ok(Some(JsonValue::object([
            ("name", JsonValue::str(&*rec.name)),
            ("shard", JsonValue::str(&**shard_file)),
            ("offset", JsonValue::U64(rec.offset)),
            ("bytes", JsonValue::U64(rec.len())),
            ("images", JsonValue::U64(u64::from(rec.num_images))),
            (
                "labels",
                JsonValue::Array(
                    rec.labels.iter().map(|&l| JsonValue::U64(u64::from(l))).collect(),
                ),
            ),
            ("crc32", JsonValue::str(format!("{:#010x}", rec.crc32))),
            ("restart_interval", JsonValue::U64(u64::from(restart_interval))),
            (
                "entropy_segments",
                JsonValue::Array(
                    segment_counts.iter().map(|&n| JsonValue::U64(n as u64)).collect(),
                ),
            ),
            ("groups", JsonValue::Array(group_rows)),
        ])));
    }
    println!("record {} ({})", j, rec.name);
    println!(
        "  in {} at offset {} | {} | {} image(s), labels {:?}, crc32 {:#010x}",
        shard_file,
        rec.offset,
        human_bytes(rec.len()),
        rec.num_images,
        rec.labels,
        rec.crc32
    );
    println!("  restart interval {restart_interval} (0 = no restart markers)");
    println!("  {:>5} {:>14} {:>14} {:>9}", "group", "prefix bytes", "group bytes", "segments");
    for (g, cumulative, delta) in groups {
        let segs = if g == 0 { 0 } else { segment_counts.get(g - 1).copied().unwrap_or(0) };
        println!("  {g:>5} {cumulative:>14} {delta:>14} {segs:>9}");
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr_datasets::{pack_to_container_restart, DatasetSpec, Scale, SyntheticDataset};

    #[test]
    fn json_record_view_reports_restart_segments() {
        let ds = SyntheticDataset::generate(&DatasetSpec::celebahq_smile_like(Scale::Tiny));
        for interval in [0u16, 1] {
            let dir = std::env::temp_dir().join(format!(
                "pcr-inspect-{interval}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            pack_to_container_restart(&ds, &dir, 4, 2, interval).unwrap();
            let container = PcrContainer::open(&dir).unwrap();
            let doc = record_view(&container, 0, true).unwrap().expect("json doc");
            let rendered = doc.render();
            assert!(
                rendered.contains(&format!("\"restart_interval\":{interval}")),
                "{rendered}"
            );
            assert!(rendered.contains("\"entropy_segments\""), "{rendered}");
            // Marker-less records report one segment per image per group;
            // restart records report more for at least one group.
            let parsed = {
                let shard = container.read_shard(0).unwrap();
                let (_, rec) = container.record(0).unwrap();
                shard[rec.offset as usize..(rec.offset + rec.len()) as usize].to_vec()
            };
            let rec = pcr_core::PcrRecord::parse(&parsed).unwrap();
            let max_per_chunk = (1..=rec.num_groups())
                .flat_map(|g| (0..rec.num_images()).map(move |i| (i, g)))
                .map(|(i, g)| rec.segment_count(i, g).unwrap())
                .max()
                .unwrap();
            if interval == 0 {
                assert_eq!(max_per_chunk, 1);
            } else {
                assert!(max_per_chunk > 1);
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn record_view_index_bytes_stay_o1_in_shard_size() {
        let ds = SyntheticDataset::generate(&DatasetSpec::celebahq_smile_like(Scale::Tiny));
        let mk = |tag: &str, records_per_shard: usize| {
            let dir = std::env::temp_dir().join(format!(
                "pcr-inspect-o1-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            pack_to_container_restart(&ds, &dir, 2, records_per_shard, 0).unwrap();
            let container = PcrContainer::open(&dir).unwrap();
            (dir, container)
        };
        // Same records, one per shard vs all in one shard: resolving the
        // last record must not read more index bytes in the big shard
        // (modulo the extra 4-byte name_ends neighbor read for k > 0).
        let (dir_many, many) = mk("many", 1);
        let (dir_one, one) = mk("one", 1 << 20);
        assert_eq!(one.shards.len(), 1);
        let last = many.num_records() - 1;
        record_view(&many, last, true).unwrap();
        record_view(&one, last, true).unwrap();
        let (r_many, r_one) = (many.index_bytes_read(), one.index_bytes_read());
        assert!(r_many > 0, "columnar record view must resolve lazily");
        assert!(
            r_one <= r_many + 4,
            "index bytes must not grow with shard size ({r_one} vs {r_many})"
        );
        std::fs::remove_dir_all(&dir_many).unwrap();
        std::fs::remove_dir_all(&dir_one).unwrap();
    }
}
