//! `pcr` — the Progressive Compressed Records container tool.
//!
//! The user-facing data plane over the workspace's library crates: pack
//! datasets into the sharded on-disk container (`docs/FORMAT.md`),
//! inspect what a container holds and what each fidelity level costs,
//! benchmark streaming it with real worker threads, and run wall-clock
//! training epochs under online fidelity control. `docs/GUIDE.md` walks
//! all four commands end to end.

#![forbid(unsafe_code)]

mod args;
mod bench;
mod inspect;
mod pack;
mod train;

use std::process::ExitCode;

const USAGE: &str = "pcr — Progressive Compressed Records container tool

USAGE:
    pcr <command> [options]

COMMANDS:
    pack      Pack a synthetic dataset or a directory of JPEGs into a
              sharded PCR container
    inspect   Show a container's manifest, shards, records, and the
              per-scan-group fidelity byte breakdown
    bench     Stream a container with the wall-clock parallel loader,
              sweeping workers x scan groups
    train     Run wall-clock training epochs from a container, optionally
              under online (dynamic) fidelity control

Run `pcr <command> --help` for per-command options.";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &argv[1..];
    let wants_help = rest.iter().any(|a| a == "--help" || a == "-h");
    let result = match command.as_str() {
        "pack" if wants_help => {
            println!("{}", pack::HELP);
            Ok(())
        }
        "inspect" if wants_help => {
            println!("{}", inspect::HELP);
            Ok(())
        }
        "bench" if wants_help => {
            println!("{}", bench::HELP);
            Ok(())
        }
        "train" if wants_help => {
            println!("{}", train::HELP);
            Ok(())
        }
        "pack" => pack::run(rest),
        "inspect" => inspect::run(rest),
        "bench" => bench::run(rest),
        "train" => train::run(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("pcr {command}: {message}");
            ExitCode::FAILURE
        }
    }
}

/// True when `PCR_BENCH_SMOKE=1`: commands clamp their work so the docs
/// guide and CI can exercise every code path in seconds.
pub(crate) fn smoke() -> bool {
    std::env::var_os("PCR_BENCH_SMOKE").is_some()
}

/// Formats a byte count with a binary-unit suffix.
pub(crate) fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}
