//! A tiny dependency-free command-line parser: each subcommand declares
//! which `--flags` take a value and which are booleans; everything else
//! is positional. `--flag=value` and `--flag value` are both accepted.

use std::collections::{HashMap, HashSet};

/// What a subcommand accepts.
pub struct ArgSpec {
    /// Flags that consume a value (`--out DIR`).
    pub value_flags: &'static [&'static str],
    /// Flags that are plain switches (`--verify`).
    pub bool_flags: &'static [&'static str],
}

/// Parsed arguments of one subcommand.
pub struct Parsed {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    values: HashMap<String, String>,
    bools: HashSet<String>,
}

impl Parsed {
    /// The value of `--name`, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// The value of `--name`, or `default`.
    pub fn value_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.value(name).unwrap_or(default)
    }

    /// Whether the switch `--name` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.bools.contains(name)
    }

    /// Parses `--name` as a number, with a default when absent.
    pub fn number<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(s) => {
                s.parse().map_err(|_| format!("--{name}: expected a number, got {s:?}"))
            }
        }
    }

    /// Parses `--name` as a comma-separated list of `usize`, with a
    /// default when absent.
    pub fn usize_list(&self, name: &str, default: &[usize]) -> Result<Vec<usize>, String> {
        match self.value(name) {
            None => Ok(default.to_vec()),
            Some(s) => s
                .split(',')
                .map(|part| {
                    part.trim()
                        .parse()
                        .map_err(|_| format!("--{name}: expected comma-separated numbers, got {s:?}"))
                })
                .collect(),
        }
    }
}

/// Parses `args` against `spec`. Unknown `--flags` are errors so typos
/// fail loudly instead of silently running with defaults.
pub fn parse(args: &[String], spec: &ArgSpec) -> Result<Parsed, String> {
    let mut parsed =
        Parsed { positional: Vec::new(), values: HashMap::new(), bools: HashSet::new() };
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(body) = arg.strip_prefix("--") {
            let (name, inline) = match body.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (body, None),
            };
            if spec.bool_flags.contains(&name) {
                if inline.is_some() {
                    return Err(format!("--{name} does not take a value"));
                }
                parsed.bools.insert(name.to_string());
            } else if spec.value_flags.contains(&name) {
                let value = match inline {
                    Some(v) => v,
                    None => {
                        i += 1;
                        args.get(i).cloned().ok_or(format!("--{name} needs a value"))?
                    }
                };
                parsed.values.insert(name.to_string(), value);
            } else {
                return Err(format!("unknown flag --{name}"));
            }
        } else {
            parsed.positional.push(arg.clone());
        }
        i += 1;
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ArgSpec {
        ArgSpec { value_flags: &["out", "workers"], bool_flags: &["verify"] }
    }

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn mixes_positionals_flags_and_switches() {
        let p = parse(&strings(&["dir", "--out", "x", "--verify", "tail"]), &spec()).unwrap();
        assert_eq!(p.positional, vec!["dir", "tail"]);
        assert_eq!(p.value("out"), Some("x"));
        assert!(p.flag("verify"));
        assert!(!p.flag("missing"));
    }

    #[test]
    fn equals_form_and_lists() {
        let p = parse(&strings(&["--workers=1,2,8"]), &spec()).unwrap();
        assert_eq!(p.usize_list("workers", &[4]).unwrap(), vec![1, 2, 8]);
        let d = parse(&[], &spec()).unwrap();
        assert_eq!(d.usize_list("workers", &[4]).unwrap(), vec![4]);
    }

    #[test]
    fn unknown_and_malformed_flags_error() {
        assert!(parse(&strings(&["--nope"]), &spec()).is_err());
        assert!(parse(&strings(&["--out"]), &spec()).is_err());
        assert!(parse(&strings(&["--verify=yes"]), &spec()).is_err());
        let p = parse(&strings(&["--workers", "abc"]), &spec()).unwrap();
        assert!(p.usize_list("workers", &[1]).is_err());
    }
}
