//! `pcr pack`: encode images into a sharded PCR container on disk.

use crate::args::{parse, ArgSpec};
use crate::human_bytes;
use pcr_core::container::{write_container_versioned, ContainerManifest};
use pcr_core::{
    PcrDatasetBuilder, SampleMeta, CONTAINER_VERSION, CONTAINER_VERSION_ROWS, DEFAULT_NUM_GROUPS,
};
use pcr_datasets::{DatasetSpec, Scale, SyntheticDataset, IMAGES_PER_RECORD, RECORDS_PER_SHARD};
use pcr_metrics::JsonValue;
use std::io::Write;
use std::path::Path;
use std::time::Instant;

pub const HELP: &str = "pcr pack — pack a dataset into a sharded PCR container

USAGE:
    pcr pack --dataset <name> --out <dir> [options]
    pcr pack --images <srcdir> --out <dir> [options]

SOURCES (exactly one):
    --dataset <name>        Generate a synthetic dataset and pack it.
                            Names: dermatology (HAM10000-like), imagenet,
                            cars, celeba
    --images <srcdir>       Pack existing JPEG files. Either a flat
                            directory (every file gets label 0) or one
                            level of class subdirectories (each class
                            gets its sorted index as the label, the
                            ImageFolder convention); mixing both layouts
                            is an error. Subdirectories without JPEGs
                            are ignored.

OPTIONS:
    --out <dir>             Output container directory (required)
    --scale <s>             Synthetic dataset scale: tiny | small | full
                            (default tiny)
    --images-per-record <n> Images packed per .pcr record (default 16)
    --records-per-shard <n> Records packed per shard file (default 8)
    --quality <q>           JPEG quality for --images transcoding that
                            needs re-encoding (default 85)
    --restart-interval <n>  Emit JPEG restart markers every n MCU units
                            (rounded up per scan to MCU-row multiples),
                            so each image's entropy segments can decode
                            on multiple cores. 0 = none (default). Only
                            affects images the packer encodes itself.
    --format <v>            Container format: v3 (columnar footers +
                            manifest stats, O(1) open; default) or v1
                            (row footers, readable by older tooling)
    --json                  Print a machine-readable summary to stdout
                            and suppress progress output

Long packs report progress on stderr (images, records, MB/s, ETA),
throttled to a few updates per second; --json silences it.";

const SPEC: ArgSpec = ArgSpec {
    value_flags: &[
        "dataset",
        "images",
        "out",
        "scale",
        "images-per-record",
        "records-per-shard",
        "quality",
        "restart-interval",
        "format",
    ],
    bool_flags: &["json"],
};

/// Throttled progress meter on stderr: images packed, records flushed,
/// encode throughput, ETA. Inert when disabled (`--json`) so scripted
/// output stays parseable.
struct Progress {
    total_images: usize,
    start: Instant,
    last: Instant,
    enabled: bool,
}

impl Progress {
    fn new(total_images: usize, enabled: bool) -> Self {
        let now = Instant::now();
        Self { total_images, start: now, last: now, enabled }
    }

    /// Reports after image `done` (1-based) was added; throttled to ~5
    /// updates/sec except for the final image.
    fn tick(&mut self, done: usize, builder: &PcrDatasetBuilder) {
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        if done < self.total_images && now.duration_since(self.last).as_millis() < 200 {
            return;
        }
        self.last = now;
        let secs = now.duration_since(self.start).as_secs_f64().max(1e-9);
        let mb_per_sec = builder.bytes_flushed() as f64 / (1024.0 * 1024.0) / secs;
        let eta = secs * (self.total_images.saturating_sub(done)) as f64 / done.max(1) as f64;
        eprint!(
            "\rpacking: {done}/{} image(s), {} record(s), {mb_per_sec:.1} MB/s, ETA {eta:.0}s   ",
            self.total_images,
            builder.records_flushed(),
        );
        let _ = std::io::stderr().flush();
    }

    /// Ends the progress line (the meter draws with `\r`, not newlines).
    fn done(&self) {
        if self.enabled {
            eprintln!();
        }
    }
}

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = parse(argv, &SPEC)?;
    let out = args.value("out").ok_or("--out <dir> is required")?;
    let out = Path::new(out);
    let images_per_record = args.number("images-per-record", IMAGES_PER_RECORD)?.max(1);
    let records_per_shard = args.number("records-per-shard", RECORDS_PER_SHARD)?.max(1);
    let restart_interval: u16 = args.number("restart-interval", 0u16)?;
    let json = args.flag("json");
    let version = match args.value_or("format", "v3") {
        "v1" | "rows" => CONTAINER_VERSION_ROWS,
        "v3" | "columnar" => CONTAINER_VERSION,
        other => return Err(format!("unknown --format {other:?} (v1 | v3)")),
    };

    let start = Instant::now();
    let manifest = match (args.value("dataset"), args.value("images")) {
        (Some(_), Some(_)) => return Err("--dataset and --images are mutually exclusive".into()),
        (None, None) => return Err("one of --dataset or --images is required".into()),
        (Some(name), None) => {
            let scale = parse_scale(args.value_or("scale", "tiny"))?;
            let spec = dataset_spec(name, scale)?;
            if !json {
                println!(
                    "generating {} at {:?} scale ({} train images)...",
                    spec.name, scale, spec.train_images
                );
            }
            let ds = SyntheticDataset::generate(&spec);
            let mut builder = PcrDatasetBuilder::new(images_per_record, DEFAULT_NUM_GROUPS)
                .with_name_prefix(&spec.name)
                .with_restart_interval(restart_interval);
            let mut progress = Progress::new(ds.train.len(), !json);
            for (i, s) in ds.train.iter().enumerate() {
                builder
                    .add_image(
                        SampleMeta { label: s.label, id: s.id.clone() },
                        &s.image,
                        spec.jpeg_quality,
                    )
                    .map_err(|e| e.to_string())?;
                progress.tick(i + 1, &builder);
            }
            progress.done();
            let dataset = builder.finish().map_err(|e| e.to_string())?;
            let manifest = write_container_versioned(&dataset, out, records_per_shard, version)
                .map_err(|e| e.to_string())?;
            if !json {
                println!("packed in {:.1}s", start.elapsed().as_secs_f64());
            }
            manifest
        }
        (None, Some(srcdir)) => {
            let quality: u8 = args.number("quality", 85u8)?;
            pack_image_dir(
                Path::new(srcdir),
                out,
                images_per_record,
                records_per_shard,
                quality,
                restart_interval,
                version,
                json,
            )?
        }
    };

    if json {
        let doc = JsonValue::object([
            ("out", JsonValue::str(out.display().to_string())),
            ("format_version", JsonValue::U64(u64::from(version))),
            ("shards", JsonValue::U64(manifest.shards.len() as u64)),
            ("records", JsonValue::U64(manifest.num_records() as u64)),
            ("images", JsonValue::U64(manifest.num_images() as u64)),
            ("file_bytes", JsonValue::U64(manifest.total_file_bytes())),
            ("seconds", JsonValue::F64(start.elapsed().as_secs_f64())),
        ]);
        println!("{}", doc.render());
    } else {
        println!(
            "wrote {} -> {} shard(s), {} record(s), {} image(s), {}",
            out.display(),
            manifest.shards.len(),
            manifest.num_records(),
            manifest.num_images(),
            human_bytes(manifest.total_file_bytes()),
        );
        println!("next: pcr inspect {}", out.display());
    }
    Ok(())
}

fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "full" => Ok(Scale::Full),
        other => Err(format!("unknown scale {other:?} (tiny | small | full)")),
    }
}

fn dataset_spec(name: &str, scale: Scale) -> Result<DatasetSpec, String> {
    match name {
        "dermatology" | "ham10000" | "ham" => Ok(DatasetSpec::ham10000_like(scale)),
        "imagenet" => Ok(DatasetSpec::imagenet_like(scale)),
        "cars" => Ok(DatasetSpec::cars_like(scale)),
        "celeba" | "celebahq" => Ok(DatasetSpec::celebahq_smile_like(scale)),
        other => Err(format!(
            "unknown dataset {other:?} (dermatology | imagenet | cars | celeba)"
        )),
    }
}

/// Packs a directory of JPEG files: `<srcdir>/*.jpg` at label 0 and
/// `<srcdir>/<class>/*.jpg` labeled by sorted class-directory index.
#[allow(clippy::too_many_arguments)]
fn pack_image_dir(
    srcdir: &Path,
    out: &Path,
    images_per_record: usize,
    records_per_shard: usize,
    quality: u8,
    restart_interval: u16,
    version: u16,
    json: bool,
) -> Result<ContainerManifest, String> {
    let mut builder = PcrDatasetBuilder::new(images_per_record, DEFAULT_NUM_GROUPS)
        .with_name_prefix("pack")
        .with_restart_interval(restart_interval);
    let mut packed = 0usize;
    let mut skipped = 0usize;

    let mut classes: Vec<(std::path::PathBuf, Vec<std::path::PathBuf>)> = Vec::new();
    let mut loose: Vec<std::path::PathBuf> = Vec::new();
    for entry in std::fs::read_dir(srcdir).map_err(|e| format!("{}: {e}", srcdir.display()))? {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.is_dir() {
            let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(&path)
                .map_err(|e| format!("{}: {e}", path.display()))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_file() && is_jpeg_name(p))
                .collect();
            // A subdirectory with no JPEGs is not a class: it must not
            // occupy a label index and shift every later class's label.
            if !files.is_empty() {
                files.sort();
                classes.push((path, files));
            }
        } else if is_jpeg_name(&path) {
            loose.push(path);
        }
    }
    classes.sort();
    loose.sort();
    // Loose files get label 0, class directories get their sorted index —
    // the two schemes collide, so a mixed layout is ambiguous: refuse it
    // rather than silently merging unrelated images into one class.
    if !loose.is_empty() && !classes.is_empty() {
        return Err(format!(
            "{}: mixed layout — found both loose JPEG files ({}) and class \
             subdirectories ({}); move the loose files into a class directory",
            srcdir.display(),
            loose.len(),
            classes.len()
        ));
    }

    let total = loose.len() + classes.iter().map(|(_, f)| f.len()).sum::<usize>();
    let mut progress = Progress::new(total, !json);
    let mut add_file = |path: &Path, label: u32, builder: &mut PcrDatasetBuilder| {
        let Ok(bytes) = std::fs::read(path) else {
            skipped += 1;
            return;
        };
        let id = path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
        let meta = SampleMeta { label, id };
        // Baseline JPEGs are losslessly transcoded to progressive; already-
        // progressive streams are regrouped as-is. Anything else (or an
        // exotic coding mode the codec lacks) is re-encoded from pixels.
        let added = builder
            .add_baseline_jpeg(meta.clone(), &bytes)
            .or_else(|_| builder.add_progressive_jpeg(meta.clone(), bytes.clone()))
            .or_else(|_| match pcr_jpeg::decode(&bytes) {
                Ok(img) => builder.add_image(meta, &img, quality),
                Err(e) => Err(pcr_core::Error::Jpeg(e)),
            });
        match added {
            Ok(()) => packed += 1,
            Err(e) => {
                eprintln!("skipping {}: {e}", path.display());
                skipped += 1;
            }
        }
    };

    let mut seen = 0usize;
    for path in &loose {
        add_file(path, 0, &mut builder);
        seen += 1;
        progress.tick(seen, &builder);
    }
    for (label, (_, files)) in classes.iter().enumerate() {
        for path in files {
            add_file(path, label as u32, &mut builder);
            seen += 1;
            progress.tick(seen, &builder);
        }
    }
    progress.done();
    if packed == 0 {
        return Err(format!("no packable JPEG files under {}", srcdir.display()));
    }
    if !json {
        println!("packed {packed} image(s), skipped {skipped}");
    }
    let dataset = builder.finish().map_err(|e| e.to_string())?;
    write_container_versioned(&dataset, out, records_per_shard, version).map_err(|e| e.to_string())
}

fn is_jpeg_name(path: &Path) -> bool {
    matches!(
        path.extension().and_then(|e| e.to_str()).map(str::to_ascii_lowercase).as_deref(),
        Some("jpg") | Some("jpeg")
    )
}
