//! End-to-end time-to-accuracy simulation: real SGD training on features
//! decoded from PCR scan-group prefixes, with epoch wall-clock time coming
//! from the loader/compute pipeline simulation.
//!
//! This reproduces the structure of the paper's main experiments (Figures
//! 4-6, 8, 9, 20-30): the *statistical* effect of each scan group comes
//! from genuinely training on its decoded pixels; the *systems* effect
//! comes from the storage model (bytes read vs. device bandwidth vs.
//! compute rate).

use crate::features::FeaturizedDataset;
use crate::pipeline::{run_pipeline, ComputeUnit, PipelineTrace};
use pcr_autotune::MixturePolicy;
use pcr_core::PcrDataset;
use pcr_datasets::LabelMap;
use pcr_loader::{populate_store, LoaderConfig, PcrLoader};
use pcr_nn::{LrSchedule, Matrix, Mlp, ModelSpec, SgdMomentum};
use pcr_storage::{DeviceProfile, ObjectStore};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training-run configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Task relabeling (e.g. Cars Make-Only).
    pub label_map: LabelMap,
    /// Storage device/cluster profile.
    pub storage: DeviceProfile,
    /// Compute workers (the paper uses 10, one GPU each).
    pub workers: usize,
    /// Loader prefetch threads.
    pub loader_threads: usize,
    /// Minibatch size per worker (paper: 128).
    pub batch_size: usize,
    /// Epochs to run.
    pub epochs: usize,
    /// Learning-rate schedule.
    pub lr: LrSchedule,
    /// SGD momentum.
    pub momentum: f32,
    /// Seed for init and shuffling.
    pub seed: u64,
    /// Use the mixed-precision throughput calibration (paper default).
    pub mixed_precision: bool,
    /// Evaluate test accuracy every `eval_every` epochs.
    pub eval_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            label_map: LabelMap::Identity,
            storage: DeviceProfile::paper_cluster(),
            workers: 10,
            loader_threads: 8,
            batch_size: 128,
            epochs: 24,
            lr: LrSchedule::finetune(),
            momentum: 0.9,
            seed: 1,
            mixed_precision: true,
            eval_every: 2,
        }
    }
}

/// One point of a training trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Epoch index (1-based at epoch end).
    pub epoch: usize,
    /// Cumulative virtual time in seconds.
    pub time: f64,
    /// Mean training loss over the epoch.
    pub train_loss: f64,
    /// Test accuracy (NaN when not evaluated this epoch).
    pub test_acc: f64,
    /// Achieved images/second this epoch.
    pub images_per_sec: f64,
    /// Fraction of the epoch spent in data stalls.
    pub stall_fraction: f64,
    /// Scan group used this epoch.
    pub scan_group: usize,
}

/// A complete training run.
#[derive(Debug, Clone)]
pub struct TrainingTrace {
    /// Model name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Scan group (or 0 for dynamic runs).
    pub scan_group: usize,
    /// Per-epoch points.
    pub points: Vec<TracePoint>,
    /// Final test accuracy.
    pub final_acc: f64,
    /// Total virtual time.
    pub total_time: f64,
}

/// The simulation trainer: owns the model, optimizer, featurized data, and
/// the storage-timing machinery.
pub struct Trainer<'a> {
    feats: &'a FeaturizedDataset,
    cfg: TrainConfig,
    spec: ModelSpec,
    model: Mlp,
    opt: SgdMomentum,
    store: ObjectStore,
    db: pcr_core::MetaDb,
    labels: Vec<u32>,
    test_labels: Vec<u32>,
    num_classes: usize,
    clock: f64,
    epoch: usize,
}

impl<'a> Trainer<'a> {
    /// Creates a trainer over featurized data plus the PCR dataset whose
    /// byte layout drives epoch timing.
    pub fn new(
        feats: &'a FeaturizedDataset,
        pcr: &PcrDataset,
        spec: ModelSpec,
        cfg: TrainConfig,
    ) -> Self {
        let labels: Vec<u32> =
            feats.train_labels.iter().map(|&l| cfg.label_map.apply(l)).collect();
        let test_labels: Vec<u32> =
            feats.test_labels.iter().map(|&l| cfg.label_map.apply(l)).collect();
        let native_classes = feats
            .train_labels
            .iter()
            .chain(feats.test_labels.iter())
            .map(|&l| l as usize + 1)
            .max()
            .unwrap_or(1);
        let num_classes = cfg.label_map.num_classes(native_classes);
        let model = Mlp::new(spec.clone(), num_classes, cfg.seed);
        let store = ObjectStore::new(cfg.storage.clone());
        populate_store(&store, pcr);
        Self {
            feats,
            spec,
            model,
            opt: SgdMomentum::new(cfg.momentum),
            store,
            db: pcr.db.clone(),
            labels,
            test_labels,
            num_classes,
            clock: 0.0,
            cfg,
            epoch: 0,
        }
    }

    /// Number of task classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Epochs completed.
    pub fn epochs_done(&self) -> usize {
        self.epoch
    }

    /// Aggregate compute rate for this configuration.
    pub fn compute_rate(&self) -> f64 {
        let per = if self.cfg.mixed_precision {
            self.spec.images_per_sec_fp16
        } else {
            self.spec.images_per_sec_fp32
        };
        per * self.cfg.workers as f64
    }

    /// Simulates the loader + compute pipeline for one epoch at a scan
    /// group, returning its trace without training.
    pub fn simulate_epoch_timing(&self, group: usize) -> PipelineTrace {
        self.store.device().reset();
        let loader_cfg = LoaderConfig {
            threads: self.cfg.loader_threads,
            scan_group: group,
            shuffle: true,
            seed: self.cfg.seed ^ self.epoch as u64,
            decode: pcr_loader::DecodeMode::modeled_progressive(),
            retry: pcr_loader::RetryPolicy::default(),
        };
        let loader = PcrLoader::new(&self.store, &self.db, loader_cfg);
        let epoch = loader.run_epoch(self.epoch as u64, 0.0);
        let compute = ComputeUnit {
            images_per_sec: self.compute_rate(),
            batch_size: self.cfg.batch_size * self.cfg.workers,
        };
        run_pipeline(&epoch, &compute, 0.0)
    }

    /// Trains one epoch at a fixed scan group; advances the virtual clock
    /// by the simulated epoch duration and returns the trace point.
    pub fn train_epoch(&mut self, group: usize) -> TracePoint {
        self.train_epoch_with(|_rng| group)
    }

    /// Trains one epoch drawing each minibatch's scan group from a mixture
    /// policy (Appendix A.6.3).
    pub fn train_epoch_mixture(&mut self, policy: &MixturePolicy) -> TracePoint {
        let mut rng = StdRng::seed_from_u64(0xA11CE ^ self.epoch as u64);
        let mut chosen: Vec<usize> = Vec::new();
        
        self.train_epoch_with(|_| {
            let g = policy.sample(&mut rng);
            chosen.push(g);
            g
        })
    }

    fn nearest_group(&self, group: usize) -> usize {
        *self
            .feats
            .groups
            .iter()
            .min_by_key(|&&g| g.abs_diff(group))
            .expect("nonempty groups")
    }

    fn train_epoch_with(&mut self, mut group_for_batch: impl FnMut(&mut ()) -> usize) -> TracePoint {
        let n = self.labels.len();
        let bs = self.cfg.batch_size.min(n).max(1);
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ (self.epoch as u64) << 16);
        order.shuffle(&mut rng);

        let d = self.spec.input_dim();
        let mut loss_sum = 0.0;
        let mut batches = 0usize;
        let mut groups_used: Vec<usize> = Vec::new();
        let lr = self.cfg.lr.lr_at(self.epoch as f32);
        for chunk in order.chunks(bs) {
            if chunk.len() < bs {
                break; // drop ragged tail like standard loaders
            }
            let g = self.nearest_group(group_for_batch(&mut ()));
            groups_used.push(g);
            let feats = &self.feats.train[&g];
            let mut data = Vec::with_capacity(chunk.len() * d);
            let mut labels = Vec::with_capacity(chunk.len());
            for &i in chunk {
                data.extend_from_slice(feats.row(i));
                labels.push(self.labels[i]);
            }
            let x = Matrix::from_vec(chunk.len(), d, data);
            let result = self.model.backward(&x, &labels);
            self.opt.step(&mut self.model, &result.grads, lr);
            loss_sum += result.loss;
            batches += 1;
        }

        // Epoch timing at the modal group used this epoch.
        let modal = mode(&groups_used).unwrap_or_else(|| self.nearest_group(10));
        let timing = self.simulate_epoch_timing(modal);
        self.clock += timing.duration;
        self.epoch += 1;
        TracePoint {
            epoch: self.epoch,
            time: self.clock,
            train_loss: if batches > 0 { loss_sum / batches as f64 } else { f64::NAN },
            test_acc: f64::NAN,
            images_per_sec: timing.images_per_sec(),
            stall_fraction: timing.stall_fraction(),
            scan_group: modal,
        }
    }

    /// Trains up to `n_batches` minibatches at a scan group (a tuning-phase
    /// probe), advancing the clock by the proportional share of an epoch's
    /// simulated duration at that group. Returns the mean training loss of
    /// the probe batches.
    pub fn train_batches(&mut self, group: usize, n_batches: usize) -> f64 {
        let g = self.nearest_group(group);
        let n = self.labels.len();
        let bs = self.cfg.batch_size.min(n).max(1);
        let total_batches = (n / bs).max(1);
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xBEEF ^ (self.epoch as u64));
        order.shuffle(&mut rng);
        let d = self.spec.input_dim();
        let lr = self.cfg.lr.lr_at(self.epoch as f32);
        let feats = &self.feats.train[&g];
        let mut loss_sum = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(bs).take(n_batches) {
            if chunk.len() < bs {
                break;
            }
            let mut data = Vec::with_capacity(chunk.len() * d);
            let mut labels = Vec::with_capacity(chunk.len());
            for &i in chunk {
                data.extend_from_slice(feats.row(i));
                labels.push(self.labels[i]);
            }
            let x = Matrix::from_vec(chunk.len(), d, data);
            let result = self.model.backward(&x, &labels);
            self.opt.step(&mut self.model, &result.grads, lr);
            loss_sum += result.loss;
            batches += 1;
        }
        let timing = self.simulate_epoch_timing(g);
        self.clock += timing.duration * batches as f64 / total_batches as f64;
        loss_sum / batches.max(1) as f64
    }

    /// Sets the storage effective-bandwidth multiplier for subsequent
    /// epochs — models multi-tenant / cross-datacenter bandwidth
    /// fluctuation, the paper's motivation for *dynamic* compression.
    pub fn set_bandwidth_scale(&self, scale: f64) {
        self.store.device().set_bandwidth_scale(scale);
    }

    /// Charges the virtual clock for tuning-probe compute (e.g. the
    /// gradient-similarity sweep) without parameter updates.
    pub fn charge_probe_time(&mut self, n_batches: usize) {
        self.clock += n_batches as f64 * self.cfg.batch_size as f64 / self.compute_rate();
    }

    /// Test accuracy on full-quality test features.
    pub fn eval(&self) -> f64 {
        self.model.accuracy(&self.feats.test, &self.test_labels)
    }

    /// Mean training loss at a group without updating parameters (used by
    /// loss-probe autotuning).
    pub fn probe_loss(&self, group: usize, max_batches: usize) -> f64 {
        let g = self.nearest_group(group);
        let n = self.labels.len();
        let bs = self.cfg.batch_size.min(n).max(1);
        let feats = &self.feats.train[&g];
        let d = self.spec.input_dim();
        let mut loss = 0.0;
        let mut batches = 0usize;
        for chunk in (0..n).collect::<Vec<_>>().chunks(bs).take(max_batches) {
            let mut data = Vec::with_capacity(chunk.len() * d);
            let mut labels = Vec::with_capacity(chunk.len());
            for &i in chunk {
                data.extend_from_slice(feats.row(i));
                labels.push(self.labels[i]);
            }
            let x = Matrix::from_vec(chunk.len(), d, data);
            loss += self.model.backward(&x, &labels).loss;
            batches += 1;
        }
        loss / batches.max(1) as f64
    }

    /// Gradient cosine similarity of each scan group against the
    /// full-quality gradient on the current weights (Appendix A.6 figure
    /// 19), measured over up to `max_batches` batches.
    pub fn gradient_similarities(&self, max_batches: usize) -> Vec<(usize, f64)> {
        let full = self.batch_gradient(*self.feats.groups.last().expect("groups"), max_batches);
        self.feats
            .groups
            .iter()
            .map(|&g| {
                let gg = self.batch_gradient(g, max_batches);
                (g, pcr_metrics::cosine_similarity_f32(&gg, &full))
            })
            .collect()
    }

    fn batch_gradient(&self, group: usize, max_batches: usize) -> Vec<f32> {
        let n = self.labels.len();
        let bs = self.cfg.batch_size.min(n).max(1);
        let feats = &self.feats.train[&group];
        let d = self.spec.input_dim();
        let mut acc: Option<Vec<f32>> = None;
        let mut batches = 0usize;
        for chunk in (0..n).collect::<Vec<_>>().chunks(bs).take(max_batches) {
            let mut data = Vec::with_capacity(chunk.len() * d);
            let mut labels = Vec::with_capacity(chunk.len());
            for &i in chunk {
                data.extend_from_slice(feats.row(i));
                labels.push(self.labels[i]);
            }
            let x = Matrix::from_vec(chunk.len(), d, data);
            let g = self.model.backward(&x, &labels).grads.flatten();
            match &mut acc {
                None => acc = Some(g),
                Some(a) => {
                    for (av, gv) in a.iter_mut().zip(&g) {
                        *av += gv;
                    }
                }
            }
            batches += 1;
        }
        let mut a = acc.unwrap_or_default();
        let inv = 1.0 / batches.max(1) as f32;
        for v in &mut a {
            *v *= inv;
        }
        a
    }

    /// Snapshot of the model for rollback.
    pub fn checkpoint(&self) -> Mlp {
        self.model.clone()
    }

    /// Restores a snapshot (clears momentum, as the paper's rollback does).
    pub fn restore(&mut self, checkpoint: Mlp) {
        self.model = checkpoint;
        self.opt.reset();
    }
}

fn mode(xs: &[usize]) -> Option<usize> {
    let mut counts = std::collections::HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0usize) += 1;
    }
    counts.into_iter().max_by_key(|&(_, c)| c).map(|(x, _)| x)
}

/// Runs a full fixed-group training job and returns its trace.
pub fn train_fixed_group(
    feats: &FeaturizedDataset,
    pcr: &PcrDataset,
    spec: &ModelSpec,
    cfg: &TrainConfig,
    group: usize,
    dataset_name: &str,
) -> TrainingTrace {
    let mut trainer = Trainer::new(feats, pcr, spec.clone(), cfg.clone());
    let mut points = Vec::with_capacity(cfg.epochs);
    for e in 0..cfg.epochs {
        let mut pt = trainer.train_epoch(group);
        if (e + 1) % cfg.eval_every == 0 || e + 1 == cfg.epochs {
            pt.test_acc = trainer.eval();
        }
        points.push(pt);
    }
    let final_acc = trainer.eval();
    TrainingTrace {
        model: spec.name.clone(),
        dataset: dataset_name.to_string(),
        scan_group: group,
        total_time: trainer.now(),
        points,
        final_acc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::featurize;
    use pcr_datasets::{to_pcr_dataset, DatasetSpec, Scale, SyntheticDataset};

    fn setup() -> (FeaturizedDataset, PcrDataset, SyntheticDataset) {
        let ds = SyntheticDataset::generate(&DatasetSpec::celebahq_smile_like(Scale::Tiny));
        let feats = featurize(&ds, &ModelSpec::resnet_like(), &[1, 2, 5, 10]);
        let (pcr, _) = to_pcr_dataset(&ds, 8);
        (feats, pcr, ds)
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 6,
            batch_size: 8,
            workers: 2,
            lr: LrSchedule { base_lr: 0.05, warmup_epochs: 0.0, decay_epochs: vec![], decay_factor: 1.0 },
            eval_every: 2,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn training_learns_binary_task() {
        let (feats, pcr, _) = setup();
        let trace = train_fixed_group(
            &feats,
            &pcr,
            &ModelSpec::resnet_like(),
            &quick_cfg(),
            10,
            "celeb-tiny",
        );
        assert_eq!(trace.points.len(), 6);
        assert!(trace.final_acc > 0.8, "final acc {}", trace.final_acc);
        // Loss decreases from first to last epoch.
        assert!(trace.points.last().unwrap().train_loss < trace.points[0].train_loss);
        // Times are strictly increasing.
        for w in trace.points.windows(2) {
            assert!(w[1].time > w[0].time);
        }
    }

    #[test]
    fn lower_groups_run_faster_epochs() {
        let (feats, pcr, _) = setup();
        let cfg = quick_cfg();
        let t1 = train_fixed_group(&feats, &pcr, &ModelSpec::resnet_like(), &cfg, 1, "x");
        let t10 = train_fixed_group(&feats, &pcr, &ModelSpec::resnet_like(), &cfg, 10, "x");
        assert!(
            t1.total_time < t10.total_time,
            "group 1 ({:.3}s) should beat group 10 ({:.3}s)",
            t1.total_time,
            t10.total_time
        );
        // On this low-frequency binary task, scan 1 should still learn.
        assert!(t1.final_acc > 0.75, "scan-1 acc {}", t1.final_acc);
    }

    #[test]
    fn gradient_similarity_ranks_groups() {
        let (feats, pcr, _) = setup();
        let trainer = Trainer::new(&feats, &pcr, ModelSpec::resnet_like(), quick_cfg());
        let sims = trainer.gradient_similarities(4);
        let get = |g: usize| sims.iter().find(|&&(gg, _)| gg == g).unwrap().1;
        assert!((get(10) - 1.0).abs() < 1e-6, "self-similarity is 1");
        assert!(get(1) <= get(5) + 0.05, "g1 {} vs g5 {}", get(1), get(5));
        assert!(get(1) > 0.3, "even scan 1 gradients point roughly the right way");
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let (feats, pcr, _) = setup();
        let mut trainer = Trainer::new(&feats, &pcr, ModelSpec::resnet_like(), quick_cfg());
        let before = trainer.eval();
        let ckpt = trainer.checkpoint();
        trainer.train_epoch(1);
        trainer.restore(ckpt);
        assert!((trainer.eval() - before).abs() < 1e-9);
    }

    #[test]
    fn mixture_epoch_runs() {
        let (feats, pcr, _) = setup();
        let mut trainer = Trainer::new(&feats, &pcr, ModelSpec::resnet_like(), quick_cfg());
        let policy = MixturePolicy::selected(&[1, 2, 5, 10], 1, 10.0);
        let pt = trainer.train_epoch_mixture(&policy);
        assert!(pt.train_loss.is_finite());
        assert!(pt.time > 0.0);
    }

    #[test]
    fn probe_loss_finite_for_all_groups() {
        let (feats, pcr, _) = setup();
        let trainer = Trainer::new(&feats, &pcr, ModelSpec::resnet_like(), quick_cfg());
        for &g in &[1usize, 2, 5, 10] {
            assert!(trainer.probe_loss(g, 3).is_finite());
        }
    }
}
