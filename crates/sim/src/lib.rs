//! # pcr-sim
//!
//! The experiment engine for the PCR reproduction: the paper's Appendix
//! A.2 queueing lemmas as executable code, the loader->compute pipeline
//! coupling with per-iteration data-stall accounting (Appendix A.1 /
//! Figure 11), scan-group featurization of synthetic datasets, and the
//! end-to-end time-to-accuracy trainer with static and dynamic
//! (loss-probe, gradient-cosine, mixture) scan-group control.
//!
//! The queueing lemmas alone predict the paper's headline result — halving
//! bytes per image doubles a storage-bound loader, but the end-to-end win
//! is clipped by the compute roof:
//!
//! ```
//! use pcr_sim::{loader_throughput, pipeline_speedup, system_throughput};
//! use pcr_storage::DeviceProfile;
//!
//! let hdd = DeviceProfile::hdd_7200rpm();
//! let (full, half) = (110.0 * 1024.0, 55.0 * 1024.0); // bytes/image
//! let x_full = loader_throughput(&hdd, full, 1024); // Lemma A.2
//! let x_half = loader_throughput(&hdd, half, 1024);
//! assert!(x_half > 1.9 * x_full, "storage-bound: ~2x from half the bytes");
//! assert_eq!(pipeline_speedup(full, half), 2.0); // Lemma A.3
//!
//! // Lemma A.4: a 800 img/s compute unit caps the delivered rate.
//! let delivered = system_throughput(800.0, x_half);
//! assert_eq!(delivered, x_half.min(800.0));
//! ```

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod dynamic;
pub mod features;
pub mod pipeline;
pub mod queueing;
pub mod trainer;

pub use dynamic::{train_dynamic_cosine, train_dynamic_loss, DynamicConfig};
pub use features::{featurize, FeaturizedDataset};
pub use pipeline::{run_pipeline, ComputeUnit, IterationTiming, PipelineTrace};
pub use queueing::{
    expected_item_read_time, loader_throughput, max_system_speedup, pipeline_speedup,
    roofline_sweep, system_throughput, RooflinePoint,
};
pub use trainer::{train_fixed_group, TracePoint, TrainConfig, Trainer, TrainingTrace};
