//! # pcr-sim
//!
//! The experiment engine for the PCR reproduction: the paper's Appendix
//! A.2 queueing lemmas as executable code, the loader->compute pipeline
//! coupling with per-iteration data-stall accounting (Appendix A.1 /
//! Figure 11), scan-group featurization of synthetic datasets, and the
//! end-to-end time-to-accuracy trainer with static and dynamic
//! (loss-probe, gradient-cosine, mixture) scan-group control.

#![warn(missing_docs)]

pub mod dynamic;
pub mod features;
pub mod pipeline;
pub mod queueing;
pub mod trainer;

pub use dynamic::{train_dynamic_cosine, train_dynamic_loss, DynamicConfig};
pub use features::{featurize, FeaturizedDataset};
pub use pipeline::{run_pipeline, ComputeUnit, IterationTiming, PipelineTrace};
pub use queueing::{
    expected_item_read_time, loader_throughput, max_system_speedup, pipeline_speedup,
    roofline_sweep, system_throughput, RooflinePoint,
};
pub use trainer::{train_fixed_group, TracePoint, TrainConfig, Trainer, TrainingTrace};
