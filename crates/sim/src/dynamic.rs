//! Dynamic scan-group tuning loops (paper section 4.5 and Appendix A.6.2):
//! the loss-probe heuristic with checkpoint rollback, and the
//! gradient-cosine controller (optionally with mixture training).

use crate::features::FeaturizedDataset;
use crate::trainer::{TrainConfig, Trainer, TrainingTrace};
use pcr_autotune::{select_lowest_qualifying, MixturePolicy, PlateauDetector};
use pcr_core::PcrDataset;
use pcr_nn::ModelSpec;

/// Configuration of the dynamic controllers.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Scan groups to consider (typically the clustered set {1, 2, 5, 10}).
    pub candidate_groups: Vec<usize>,
    /// Epochs between tuning sweeps for the cosine controller.
    pub tune_every: usize,
    /// First epoch at which tuning may happen (warmup at full quality).
    pub initial_tune_epoch: usize,
    /// Gradient-similarity acceptance threshold (paper: 0.90).
    pub cosine_threshold: f64,
    /// Batches used per probe measurement.
    pub probe_batches: usize,
    /// Loss tolerance for the loss-probe heuristic (relative).
    pub loss_tolerance: f64,
    /// Absolute loss slack added to the probe acceptance threshold so that
    /// near-converged runs (where every group's loss is tiny) still switch
    /// down.
    pub loss_abs_tolerance: f64,
    /// Mixture weight for the selected group (None = hard selection;
    /// Some(10.0) ~ 50% mixtures, Some(100.0) ~ 85%).
    pub mixture_weight: Option<f64>,
    /// Epoch at which the loss-probe controller tunes even without a
    /// detected plateau (the paper's Figure 21 uses "an initial tuning at
    /// epoch 5").
    pub force_tune_epoch: Option<usize>,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        Self {
            candidate_groups: vec![1, 2, 5, 10],
            tune_every: 5,
            initial_tune_epoch: 2,
            cosine_threshold: pcr_autotune::DEFAULT_COSINE_THRESHOLD,
            probe_batches: 4,
            loss_tolerance: 0.05,
            loss_abs_tolerance: 0.02,
            mixture_weight: None,
            force_tune_epoch: Some(4),
        }
    }
}

/// The section-4.5 heuristic: train at full quality until the loss
/// plateaus; then checkpoint, trial-train briefly at each candidate group,
/// roll back, and continue at the cheapest group whose probe loss is within
/// tolerance of the best probe.
pub fn train_dynamic_loss(
    feats: &FeaturizedDataset,
    pcr: &PcrDataset,
    spec: &ModelSpec,
    cfg: &TrainConfig,
    dyn_cfg: &DynamicConfig,
    dataset_name: &str,
) -> TrainingTrace {
    let mut trainer = Trainer::new(feats, pcr, spec.clone(), cfg.clone());
    let full = *dyn_cfg.candidate_groups.iter().max().expect("candidates");
    let mut current = full;
    let mut detector = PlateauDetector::new(2, 0.01);
    let mut points = Vec::with_capacity(cfg.epochs);
    for e in 0..cfg.epochs {
        let mut pt = trainer.train_epoch(current);
        let plateaued = detector.push(pt.train_loss)
            || dyn_cfg.force_tune_epoch.is_some_and(|fe| e + 1 == fe);
        if plateaued && current == full {
            // Tuning phase: probe candidates from a checkpoint.
            let ckpt = trainer.checkpoint();
            let mut probes: Vec<(usize, f64)> = Vec::new();
            for &g in &dyn_cfg.candidate_groups {
                let loss = trainer.train_batches(g, dyn_cfg.probe_batches);
                probes.push((g, loss));
                trainer.restore(ckpt.clone());
            }
            let best = probes.iter().map(|&(_, l)| l).fold(f64::INFINITY, f64::min);
            let mut sorted = probes.clone();
            sorted.sort_by_key(|&(g, _)| g);
            current = sorted
                .iter()
                .find(|&&(_, l)| l <= best * (1.0 + dyn_cfg.loss_tolerance) + dyn_cfg.loss_abs_tolerance)
                .map(|&(g, _)| g)
                .unwrap_or(full);
            detector.reset();
        }
        if (e + 1) % cfg.eval_every == 0 || e + 1 == cfg.epochs {
            pt.test_acc = trainer.eval();
        }
        points.push(pt);
    }
    let final_acc = trainer.eval();
    TrainingTrace {
        model: spec.name.clone(),
        dataset: dataset_name.to_string(),
        scan_group: 0,
        total_time: trainer.now(),
        points,
        final_acc,
    }
}

/// The Appendix-A.6.2 controller: warm up at full quality, then every
/// `tune_every` epochs measure each group's gradient cosine similarity to
/// the full-quality gradient and switch to the lowest group above
/// threshold; optionally train with a mixture centered on that group.
pub fn train_dynamic_cosine(
    feats: &FeaturizedDataset,
    pcr: &PcrDataset,
    spec: &ModelSpec,
    cfg: &TrainConfig,
    dyn_cfg: &DynamicConfig,
    dataset_name: &str,
) -> TrainingTrace {
    let mut trainer = Trainer::new(feats, pcr, spec.clone(), cfg.clone());
    let full = *dyn_cfg.candidate_groups.iter().max().expect("candidates");
    let mut current = full;
    let mut points = Vec::with_capacity(cfg.epochs);
    for e in 0..cfg.epochs {
        let tune_now = e >= dyn_cfg.initial_tune_epoch
            && (e - dyn_cfg.initial_tune_epoch).is_multiple_of(dyn_cfg.tune_every);
        if tune_now {
            let sims: Vec<(usize, f64)> = trainer
                .gradient_similarities(dyn_cfg.probe_batches)
                .into_iter()
                .filter(|(g, _)| dyn_cfg.candidate_groups.contains(g))
                .collect();
            current = select_lowest_qualifying(&sims, dyn_cfg.cosine_threshold);
            trainer.charge_probe_time(sims.len() * dyn_cfg.probe_batches);
        }
        let mut pt = match dyn_cfg.mixture_weight {
            None => trainer.train_epoch(current),
            Some(w) => {
                let policy = MixturePolicy::selected(&dyn_cfg.candidate_groups, current, w);
                trainer.train_epoch_mixture(&policy)
            }
        };
        pt.scan_group = current;
        if (e + 1) % cfg.eval_every == 0 || e + 1 == cfg.epochs {
            pt.test_acc = trainer.eval();
        }
        points.push(pt);
    }
    let final_acc = trainer.eval();
    TrainingTrace {
        model: spec.name.clone(),
        dataset: dataset_name.to_string(),
        scan_group: 0,
        total_time: trainer.now(),
        points,
        final_acc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::featurize;
    use crate::trainer::train_fixed_group;
    use pcr_datasets::{to_pcr_dataset, DatasetSpec, Scale, SyntheticDataset};
    use pcr_nn::LrSchedule;

    fn setup() -> (FeaturizedDataset, PcrDataset) {
        let ds = SyntheticDataset::generate(&DatasetSpec::celebahq_smile_like(Scale::Tiny));
        let feats = featurize(&ds, &ModelSpec::resnet_like(), &[1, 2, 5, 10]);
        let (pcr, _) = to_pcr_dataset(&ds, 8);
        (feats, pcr)
    }

    fn quick_cfg(epochs: usize) -> TrainConfig {
        // A deliberately storage-bound setup: the tiny test dataset would
        // otherwise be compute-bound and scan groups would not change epoch
        // time at all.
        let slow_disk = pcr_storage::DeviceProfile {
            name: "slow-test-disk".into(),
            seek_latency_us: 500.0,
            request_overhead_us: 50.0,
            sequential_bw_mib_s: 0.5,
        };
        TrainConfig {
            epochs,
            batch_size: 8,
            workers: 2,
            storage: slow_disk,
            lr: LrSchedule {
                base_lr: 0.05,
                warmup_epochs: 0.0,
                decay_epochs: vec![],
                decay_factor: 1.0,
            },
            eval_every: 2,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn loss_probe_switches_down_and_matches_accuracy() {
        let (feats, pcr) = setup();
        let cfg = quick_cfg(24);
        let dyn_cfg = DynamicConfig { probe_batches: 2, ..Default::default() };
        let dynamic = train_dynamic_loss(&feats, &pcr, &ModelSpec::resnet_like(), &cfg, &dyn_cfg, "celeb");
        let baseline = train_fixed_group(&feats, &pcr, &ModelSpec::resnet_like(), &cfg, 10, "celeb");
        // After the plateau the controller should run at a lower group.
        let last_group = dynamic.points.last().unwrap().scan_group;
        assert!(last_group < 10, "controller stuck at full quality");
        // Accuracy comparable to baseline.
        assert!(
            dynamic.final_acc >= baseline.final_acc - 0.1,
            "dynamic {} vs baseline {}",
            dynamic.final_acc,
            baseline.final_acc
        );
        // And faster overall.
        assert!(dynamic.total_time < baseline.total_time);
    }

    #[test]
    fn cosine_controller_tunes_and_is_fast() {
        let (feats, pcr) = setup();
        let cfg = quick_cfg(8);
        let dyn_cfg = DynamicConfig { tune_every: 3, initial_tune_epoch: 1, ..Default::default() };
        let trace =
            train_dynamic_cosine(&feats, &pcr, &ModelSpec::resnet_like(), &cfg, &dyn_cfg, "celeb");
        assert_eq!(trace.points.len(), 8);
        // On this low-frequency task, the controller should pick a low group
        // at some point.
        assert!(
            trace.points.iter().any(|p| p.scan_group < 10),
            "never switched below full quality"
        );
        assert!(trace.final_acc > 0.75, "acc {}", trace.final_acc);
    }

    #[test]
    fn mixture_variant_runs() {
        let (feats, pcr) = setup();
        let cfg = quick_cfg(5);
        let dyn_cfg = DynamicConfig { mixture_weight: Some(10.0), ..Default::default() };
        let trace =
            train_dynamic_cosine(&feats, &pcr, &ModelSpec::resnet_like(), &cfg, &dyn_cfg, "celeb");
        assert!(trace.final_acc > 0.6);
        assert!(trace.total_time > 0.0);
    }
}
