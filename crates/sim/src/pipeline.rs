//! Coupling of the loader stream to the compute unit: per-iteration data
//! stalls (paper Figure 11 / Appendix A.1) and achieved training rates
//! (Figure 9).

use pcr_loader::EpochResult;

/// The compute unit: an open system consuming minibatches at a fixed
/// maximum rate (model images/second, possibly aggregated over cluster
/// workers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeUnit {
    /// Maximum images per second the accelerator(s) can process.
    pub images_per_sec: f64,
    /// Minibatch size (images per parameter update).
    pub batch_size: usize,
}

impl ComputeUnit {
    /// Time to compute one minibatch.
    pub fn batch_time(&self) -> f64 {
        self.batch_size as f64 / self.images_per_sec
    }
}

/// One training iteration's timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationTiming {
    /// Iteration index.
    pub iter: usize,
    /// Virtual time the minibatch's data became available.
    pub data_ready: f64,
    /// Time spent blocked waiting for data (the Figure 11 y-axis).
    pub data_stall: f64,
    /// Virtual time the parameter update finished.
    pub compute_end: f64,
}

/// A full epoch's pipeline timing.
#[derive(Debug, Clone)]
pub struct PipelineTrace {
    /// Per-iteration timings.
    pub iterations: Vec<IterationTiming>,
    /// Epoch duration in virtual seconds (last compute end - start).
    pub duration: f64,
    /// Total stall time.
    pub total_stall: f64,
    /// Images consumed.
    pub images: usize,
}

impl PipelineTrace {
    /// Achieved images/second over the epoch.
    pub fn images_per_sec(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.images as f64 / self.duration
        }
    }

    /// Fraction of epoch time spent stalled on data.
    pub fn stall_fraction(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.total_stall / self.duration
        }
    }
}

/// Runs the compute unit over a loader epoch: images become available in
/// record-ready order; each iteration consumes `batch_size` images and
/// takes `batch_time`; an iteration whose data is not yet ready stalls
/// (paper: "parameter updates start in lockstep with the data fetches").
pub fn run_pipeline(epoch: &EpochResult, compute: &ComputeUnit, start: f64) -> PipelineTrace {
    // Expand record ready times into per-image availability (images within
    // a record become available when the record is ready).
    let mut avail: Vec<f64> = Vec::with_capacity(epoch.images);
    for rec in &epoch.records {
        for _ in 0..rec.labels.len() {
            avail.push(rec.ready);
        }
    }
    let bt = compute.batch_time();
    let mut iterations = Vec::new();
    let mut compute_free = start;
    let mut total_stall = 0.0;
    let mut i = 0usize;
    let mut iter = 0usize;
    while i < avail.len() {
        // The final batch may be partial; it costs proportional compute.
        let this_batch = compute.batch_size.min(avail.len() - i);
        let data_ready = avail[i + this_batch - 1];
        let begin = compute_free.max(data_ready);
        let stall = (data_ready - compute_free).max(0.0);
        total_stall += stall;
        let end = begin + bt * this_batch as f64 / compute.batch_size as f64;
        iterations.push(IterationTiming { iter, data_ready, data_stall: stall, compute_end: end });
        compute_free = end;
        i += this_batch;
        iter += 1;
    }
    let duration = compute_free - start;
    PipelineTrace { iterations, duration, total_stall, images: i }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr_loader::LoadedRecord;

    fn synthetic_epoch(record_ready: &[f64], images_per_record: usize) -> EpochResult {
        let records: Vec<LoadedRecord> = record_ready
            .iter()
            .enumerate()
            .map(|(i, &t)| LoadedRecord {
                seq: i,
                record: i,
                worker: 0,
                issued: 0.0,
                read_finish: t,
                ready: t,
                bytes: 1000,
                labels: vec![0; images_per_record],
                images: Vec::new(),
                delivered_group: 10,
                degraded: false,
            })
            .collect();
        let images = records.iter().map(|r| r.labels.len()).sum();
        let duration = record_ready.last().copied().unwrap_or(0.0);
        EpochResult {
            records,
            images,
            bytes: 1000 * record_ready.len() as u64,
            duration,
            faults: pcr_loader::FaultReport::default(),
        }
    }

    #[test]
    fn fast_loader_means_no_stalls() {
        // All data ready at t=0.01; compute takes 1s/batch.
        let epoch = synthetic_epoch(&[0.01, 0.01, 0.01, 0.01], 8);
        let compute = ComputeUnit { images_per_sec: 8.0, batch_size: 8 };
        let t = run_pipeline(&epoch, &compute, 0.0);
        assert_eq!(t.iterations.len(), 4);
        // First iteration waits 0.01; the rest are back-to-back.
        assert!(t.total_stall < 0.02);
        assert!((t.duration - (0.01 + 4.0)).abs() < 1e-9);
    }

    #[test]
    fn slow_loader_causes_lockstep_stalls() {
        // A record (8 images) becomes ready every 2s; compute needs 1s each.
        let epoch = synthetic_epoch(&[2.0, 4.0, 6.0, 8.0], 8);
        let compute = ComputeUnit { images_per_sec: 8.0, batch_size: 8 };
        let t = run_pipeline(&epoch, &compute, 0.0);
        // Every iteration stalls ~1s (after the first's 2s).
        assert!(t.stall_fraction() > 0.4, "stall fraction {}", t.stall_fraction());
        assert!((t.duration - 9.0).abs() < 1e-9);
        // Achieved rate is loader-bound: 32 images / 9s.
        assert!((t.images_per_sec() - 32.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn achieved_rate_respects_min_rule() {
        // Loader can deliver 16 img/s (one 8-image record every 0.5s);
        // compute can do 100 img/s: achieved ~16. And vice versa.
        let ready: Vec<f64> = (1..=20).map(|i| i as f64 * 0.5).collect();
        let epoch = synthetic_epoch(&ready, 8);
        let fast_compute = ComputeUnit { images_per_sec: 100.0, batch_size: 8 };
        let t = run_pipeline(&epoch, &fast_compute, 0.0);
        assert!((t.images_per_sec() - 16.0).abs() < 1.0, "{}", t.images_per_sec());
        let slow_compute = ComputeUnit { images_per_sec: 8.0, batch_size: 8 };
        let t = run_pipeline(&epoch, &slow_compute, 0.0);
        assert!((t.images_per_sec() - 8.0).abs() < 0.5, "{}", t.images_per_sec());
    }

    #[test]
    fn batches_span_records() {
        // 3 records x 4 images, batch 8: iteration 0 needs records 0-1.
        let epoch = synthetic_epoch(&[1.0, 2.0, 3.0], 4);
        let compute = ComputeUnit { images_per_sec: 80.0, batch_size: 8 };
        let t = run_pipeline(&epoch, &compute, 0.0);
        // 12 images -> one full batch of 8 plus a partial batch of 4.
        assert_eq!(t.iterations.len(), 2);
        assert!((t.iterations[0].data_ready - 2.0).abs() < 1e-12);
        assert!((t.iterations[1].data_ready - 3.0).abs() < 1e-12);
        // Partial batch costs proportional compute: 4/8 * 0.1s.
        let full_bt = 8.0 / 80.0;
        assert!(
            (t.iterations[1].compute_end - (3.0 + full_bt / 2.0)).abs() < 1e-9,
            "partial batch time"
        );
    }
}
