//! The paper's Appendix A.2 queueing analysis (Lemmas A.1-A.5), as
//! executable code, plus the Figure 14 roofline-style throughput model.

use pcr_storage::DeviceProfile;

/// Lemma A.1: expected time to read one item of mean size `mean_bytes` at
/// device bandwidth (amortized; the Θ(1) setup cost — one seek plus the
/// request overhead, since each record is an independent object — is
/// spread across a record of `n` items).
pub fn expected_item_read_time(profile: &DeviceProfile, mean_bytes: f64, items_per_record: usize) -> f64 {
    let n = items_per_record.max(1) as f64;
    profile.read_time((mean_bytes * n) as u64, false) / n
}

/// Lemma A.2: loader throughput `X_g = W / E[s(x, g)]` in items/second.
pub fn loader_throughput(profile: &DeviceProfile, mean_bytes: f64, items_per_record: usize) -> f64 {
    1.0 / expected_item_read_time(profile, mean_bytes, items_per_record)
}

/// Lemma A.3: the data-pipeline speedup of scan group `g` is the ratio of
/// mean item sizes.
pub fn pipeline_speedup(mean_bytes_full: f64, mean_bytes_group: f64) -> f64 {
    mean_bytes_full / mean_bytes_group.max(1e-9)
}

/// Lemma A.4: the end-to-end training throughput is bounded by
/// `min(X_c, X_g)`.
pub fn system_throughput(compute_items_per_s: f64, loader_items_per_s: f64) -> f64 {
    compute_items_per_s.min(loader_items_per_s)
}

/// Theorem A.5: maximum achievable speedup from switching to group `g` on a
/// data-bound pipeline, clipped by the compute roof.
pub fn max_system_speedup(
    profile: &DeviceProfile,
    compute_items_per_s: f64,
    mean_bytes_full: f64,
    mean_bytes_group: f64,
    items_per_record: usize,
) -> f64 {
    let x_full = system_throughput(
        compute_items_per_s,
        loader_throughput(profile, mean_bytes_full, items_per_record),
    );
    let x_g = system_throughput(
        compute_items_per_s,
        loader_throughput(profile, mean_bytes_group, items_per_record),
    );
    x_g / x_full
}

/// One point of the Figure 14 roofline: system throughput as a function of
/// per-item byte intensity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflinePoint {
    /// Mean bytes per item.
    pub bytes_per_item: f64,
    /// Loader-bound throughput at this intensity.
    pub loader_throughput: f64,
    /// Achieved system throughput `min(Xc, Xg)`.
    pub system_throughput: f64,
    /// True when the compute roof is the binding constraint.
    pub compute_bound: bool,
}

/// Sweeps byte intensity to produce the Figure 14 curve.
pub fn roofline_sweep(
    profile: &DeviceProfile,
    compute_items_per_s: f64,
    bytes_range: (f64, f64),
    points: usize,
    items_per_record: usize,
) -> Vec<RooflinePoint> {
    let (lo, hi) = bytes_range;
    let n = points.max(2);
    (0..n)
        .map(|i| {
            // Log-spaced sweep.
            let t = i as f64 / (n - 1) as f64;
            let bytes = lo * (hi / lo).powf(t);
            let xl = loader_throughput(profile, bytes, items_per_record);
            let xs = system_throughput(compute_items_per_s, xl);
            RooflinePoint {
                bytes_per_item: bytes,
                loader_throughput: xl,
                system_throughput: xs,
                compute_bound: compute_items_per_s <= xl,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssd() -> DeviceProfile {
        DeviceProfile::ssd_sata()
    }

    #[test]
    fn read_time_proportional_to_mean_size() {
        let p = ssd();
        let t1 = expected_item_read_time(&p, 50_000.0, 64);
        let t2 = expected_item_read_time(&p, 100_000.0, 64);
        // Linear up to the per-record seek overhead.
        assert!((t2 / t1 - 2.0).abs() < 0.04, "ratio {}", t2 / t1);
    }

    #[test]
    fn throughput_inverse_of_read_time() {
        let p = ssd();
        let x = loader_throughput(&p, 110_000.0, 128);
        let t = expected_item_read_time(&p, 110_000.0, 128);
        assert!((x * t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_is_size_ratio() {
        assert!((pipeline_speedup(100_000.0, 50_000.0) - 2.0).abs() < 1e-12);
        assert!((pipeline_speedup(100_000.0, 10_000.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn min_rule_binds() {
        assert_eq!(system_throughput(400.0, 1000.0), 400.0);
        assert_eq!(system_throughput(400.0, 100.0), 100.0);
    }

    #[test]
    fn data_bound_speedup_matches_theorem_a5() {
        // Very fast compute: system is storage-bound, so speedup should be
        // exactly the size ratio.
        let p = ssd();
        let s = max_system_speedup(&p, 1e9, 100_000.0, 25_000.0, 64);
        assert!((s - 4.0).abs() < 0.15, "speedup {s}");
    }

    #[test]
    fn compute_bound_speedup_saturates() {
        // Slow compute: already compute-bound at full quality, no speedup.
        let p = ssd();
        let x_full = loader_throughput(&p, 100_000.0, 64);
        let s = max_system_speedup(&p, x_full / 10.0, 100_000.0, 25_000.0, 64);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn roofline_has_knee() {
        let p = ssd();
        let pts = roofline_sweep(&p, 4000.0, (1_000.0, 1_000_000.0), 40, 64);
        assert_eq!(pts.len(), 40);
        // Small items: compute bound; large items: loader bound.
        assert!(pts.first().unwrap().compute_bound);
        assert!(!pts.last().unwrap().compute_bound);
        // Throughput is non-increasing along the sweep.
        for w in pts.windows(2) {
            assert!(w[1].system_throughput <= w[0].system_throughput + 1e-9);
        }
        // In the compute-bound region the roof is flat at Xc.
        assert!((pts[0].system_throughput - 4000.0).abs() < 1e-6);
    }

    #[test]
    fn paper_scale_sanity_imagenet() {
        // Paper: ImageNet images ~110 KiB; 10-worker cluster consumes
        // 465 MB/s for ResNet (4050 img/s aggregate); the 5-OSD cluster
        // delivers ~437 MiB/s. Full quality should thus be borderline
        // storage-bound, and scan group 1 (~6x smaller) clearly
        // compute-bound — the regime the paper exploits.
        let cluster = DeviceProfile::paper_cluster();
        let resnet_cluster_rate = 405.0 * 10.0;
        let x_full = loader_throughput(&cluster, 110.0 * 1024.0, 1024);
        let x_g1 = loader_throughput(&cluster, 18.0 * 1024.0, 1024);
        assert!(x_full < resnet_cluster_rate * 1.3, "full quality near/below compute roof");
        assert!(x_g1 > resnet_cluster_rate, "scan 1 is compute bound");
    }
}
