//! Featurization of a synthetic dataset at every scan group: each training
//! image is progressive-encoded once, then decoded from scan-group byte
//! prefixes — exactly what a training worker reading a PCR prefix sees.

use pcr_datasets::SyntheticDataset;
use pcr_jpeg::scansplit::{assemble_prefix, split_scans};
use pcr_jpeg::EncodeConfig;
use pcr_metrics::Plane;
use pcr_nn::{Matrix, ModelSpec};
use std::collections::HashMap;

/// Train/test features at multiple scan groups for one model's input size.
#[derive(Debug)]
pub struct FeaturizedDataset {
    /// Scan groups materialized.
    pub groups: Vec<usize>,
    /// Per-group training feature matrices (`n x input_dim`).
    pub train: HashMap<usize, Matrix>,
    /// Training labels (native).
    pub train_labels: Vec<u32>,
    /// Test features at full quality.
    pub test: Matrix,
    /// Test labels (native).
    pub test_labels: Vec<u32>,
    /// Mean compressed bytes per image at each group (for timing).
    pub mean_bytes: HashMap<usize, f64>,
    /// Mean MSSIM (vs full quality) at each group, measured on a sample of
    /// training images.
    pub mean_mssim: HashMap<usize, f64>,
}

/// Builds features for `groups` (always including the full-quality group
/// 10 internally for reference sizes).
pub fn featurize(
    ds: &SyntheticDataset,
    model: &ModelSpec,
    groups: &[usize],
) -> FeaturizedDataset {
    let mut groups: Vec<usize> = groups.to_vec();
    groups.sort_unstable();
    groups.dedup();
    let d = model.input_dim();
    let n = ds.train.len();
    let mut per_group: HashMap<usize, Vec<f32>> =
        groups.iter().map(|&g| (g, Vec::with_capacity(n * d))).collect();
    let mut bytes: HashMap<usize, f64> = groups.iter().map(|&g| (g, 0.0)).collect();
    let mut mssim_sum: HashMap<usize, f64> = groups.iter().map(|&g| (g, 0.0)).collect();
    let mut mssim_count = 0usize;
    // MSSIM is O(pixels); sample up to 24 images for it.
    let mssim_stride = (n / 24).max(1);

    for (idx, s) in ds.train.iter().enumerate() {
        let jpeg = pcr_jpeg::encode(&s.image, &EncodeConfig::progressive(ds.spec.jpeg_quality))
            .expect("encode");
        let layout = split_scans(&jpeg).expect("progressive layout");
        let measure_mssim = idx % mssim_stride == 0;
        let reference = if measure_mssim {
            let full = pcr_jpeg::decode(&jpeg).expect("decode full");
            Some(full.to_luma())
        } else {
            None
        };
        if measure_mssim {
            mssim_count += 1;
        }
        for &g in &groups {
            let g_eff = g.min(layout.num_scans());
            let prefix = assemble_prefix(&jpeg, &layout, g_eff).expect("prefix");
            *bytes.get_mut(&g).expect("group present") += prefix.len() as f64;
            let img = pcr_jpeg::decode(&prefix).expect("decode prefix");
            per_group.get_mut(&g).expect("group present").extend(model.featurize(&img));
            if let Some(ref full) = reference {
                let luma = img.to_luma();
                let m = pcr_metrics::msssim(
                    &Plane::from_u8(full.width() as usize, full.height() as usize, full.data()),
                    &Plane::from_u8(luma.width() as usize, luma.height() as usize, luma.data()),
                );
                *mssim_sum.get_mut(&g).expect("group present") += m;
            }
        }
    }

    let train = per_group
        .into_iter()
        .map(|(g, data)| (g, Matrix::from_vec(n, d, data)))
        .collect();
    let mean_bytes = bytes.into_iter().map(|(g, b)| (g, b / n as f64)).collect();
    let mean_mssim = mssim_sum
        .into_iter()
        .map(|(g, s)| (g, s / mssim_count.max(1) as f64))
        .collect();

    let mut test_data = Vec::with_capacity(ds.test.len() * d);
    for s in &ds.test {
        test_data.extend(model.featurize(&s.image));
    }
    FeaturizedDataset {
        groups,
        train,
        train_labels: ds.train.iter().map(|s| s.label).collect(),
        test: Matrix::from_vec(ds.test.len(), d, test_data),
        test_labels: ds.test.iter().map(|s| s.label).collect(),
        mean_bytes,
        mean_mssim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr_datasets::{DatasetSpec, Scale};

    fn featurized() -> FeaturizedDataset {
        let ds = SyntheticDataset::generate(&DatasetSpec::celebahq_smile_like(Scale::Tiny));
        featurize(&ds, &ModelSpec::resnet_like(), &[1, 2, 5, 10])
    }

    #[test]
    fn shapes_match() {
        let f = featurized();
        let d = ModelSpec::resnet_like().input_dim();
        assert_eq!(f.groups, vec![1, 2, 5, 10]);
        for g in [1usize, 2, 5, 10] {
            let m = &f.train[&g];
            assert_eq!(m.cols, d);
            assert_eq!(m.rows, f.train_labels.len());
        }
        assert_eq!(f.test.rows, f.test_labels.len());
    }

    #[test]
    fn bytes_increase_with_group() {
        let f = featurized();
        assert!(f.mean_bytes[&1] < f.mean_bytes[&2]);
        assert!(f.mean_bytes[&2] < f.mean_bytes[&5]);
        assert!(f.mean_bytes[&5] < f.mean_bytes[&10]);
    }

    #[test]
    fn mssim_increases_with_group_and_tops_out() {
        let f = featurized();
        assert!(f.mean_mssim[&1] <= f.mean_mssim[&2] + 0.02);
        assert!(f.mean_mssim[&2] <= f.mean_mssim[&5] + 0.02);
        assert!(f.mean_mssim[&10] > 0.999, "full quality MSSIM {}", f.mean_mssim[&10]);
    }

    #[test]
    fn low_group_features_differ_from_full() {
        let f = featurized();
        let a = &f.train[&1];
        let b = &f.train[&10];
        let diff: f32 = a.data.iter().zip(&b.data).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 0.0, "scan 1 features must differ from full quality");
    }
}
