//! Catalog scale benchmark: proves `PcrContainer::open` stays O(shards),
//! not O(records), as the catalog grows from 10k to 1M records — the
//! number the columnar (v3) shard footer exists to hold flat.
//!
//! The dataset is fabricated, not encoded: each "record" is a small stub
//! blob with a real `RecordMeta` row, because this bench measures the
//! *catalog* path (manifest + footer + lazy entry resolution), which
//! never decodes a JPEG. Shard count is pinned at 8 across all scales so
//! records-per-shard is the only thing growing; an eager row-footer open
//! would scale linearly with it, the lazy columnar open must not.
//!
//! Per scale it measures:
//!
//! * **open latency** — best-of-N `PcrContainer::open` wall time;
//! * **first-record latency** — `entry(k)` + `read_record` on the opened
//!   container (the time-to-first-sample a loader sees);
//! * **index bytes** — `index_bytes_read()` after open and after the
//!   first entry: the lazy path's actual footer I/O;
//! * **epoch-order footprint** — `size_of::<EpochOrder>()` against the
//!   `n × 8` bytes a materialized Fisher–Yates permutation would hold;
//! * **RSS delta** across open (Linux `/proc/self/statm`, best-effort).
//!
//! Outputs and gating:
//!
//! * writes a fresh `target/BENCH_catalog.json`;
//! * **fails** when best-of open latency at the largest scale exceeds
//!   `FLATNESS_GATE` (2.0) × the smallest scale's, with a small absolute
//!   slack so microsecond-level noise can't flake CI. A committed
//!   `BENCH_catalog.json` at the repo root records the trajectory.
//!
//! `PCR_BENCH_SMOKE=1` (CI) shrinks the scales to 1k/5k/20k so the run
//! finishes in seconds; the flatness gate still applies.

use pcr_core::container::{write_container, PcrContainer};
use pcr_core::{MetaDb, PcrDataset, RecordMeta};
use pcr_loader::EpochOrder;
use pcr_metrics::JsonValue;
use std::time::Instant;

/// Shard count held constant across scales: growth lands entirely in
/// records-per-shard, the dimension an O(records) open would scale with.
const SHARDS: usize = 8;

/// Open-latency flatness gate: largest-scale open must stay under this
/// multiple of the smallest-scale open (plus [`SLACK_SECS`]).
const FLATNESS_GATE: f64 = 2.0;

/// Absolute slack on the flatness gate. Opens are O(8 shards) ≈ tens of
/// microseconds; without a floor, scheduler jitter alone could trip a
/// 2× ratio between two sub-millisecond numbers.
const SLACK_SECS: f64 = 0.5e-3;

/// Timed repetitions per measurement; best-of filters preemption noise.
const REPS: usize = 11;

/// Scan groups in the fabricated records (small on purpose — the catalog
/// path is group-count-agnostic, and fewer groups keep the 1M-record
/// fabrication fast).
const NUM_GROUPS: usize = 2;

/// Stub record payload length. Real records are megabytes; the catalog
/// never reads past the first record here, so bytes are ballast.
const RECORD_LEN: usize = 24;

fn smoke() -> bool {
    std::env::var_os("PCR_BENCH_SMOKE").is_some()
}

/// Fabricates an `n`-record dataset of stub blobs with real metadata rows.
/// Deterministic; no encoder in the loop.
fn fabricate(n: usize) -> PcrDataset {
    let mut records = Vec::with_capacity(n);
    let mut metas = Vec::with_capacity(n);
    for i in 0..n {
        let mut blob = vec![0u8; RECORD_LEN];
        for (j, b) in blob.iter_mut().enumerate() {
            *b = (i.wrapping_mul(31).wrapping_add(j * 7) & 0xFF) as u8;
        }
        records.push(blob);
        metas.push(RecordMeta {
            name: format!("r{i:07}"),
            num_images: 1,
            // [headers, half, full]: monotone, last == blob length.
            group_offsets: vec![4, (RECORD_LEN / 2) as u64, RECORD_LEN as u64],
            labels: vec![(i % 10) as u32],
        });
    }
    debug_assert_eq!(metas.first().map(|m| m.group_offsets.len()), Some(NUM_GROUPS + 1));
    PcrDataset { records, db: MetaDb { records: metas } }
}

/// Resident-set size in bytes from `/proc/self/statm` (Linux; `None`
/// elsewhere). Field 2 is resident pages.
fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096)
}

struct ScaleRow {
    records: usize,
    open_secs: f64,
    first_record_secs: f64,
    open_index_bytes: u64,
    first_record_index_bytes: u64,
    rss_delta_bytes: Option<u64>,
    epoch_order_bytes: usize,
    materialized_order_bytes: u64,
}

fn measure_scale(n: usize) -> ScaleRow {
    let dir = std::env::temp_dir().join(format!("pcr-catalog-scale-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ds = fabricate(n);
    let records_per_shard = n.div_ceil(SHARDS);
    write_container(&ds, &dir, records_per_shard).expect("pack stub container");
    drop(ds); // the catalog path must not depend on in-memory records

    let rss_before = rss_bytes();
    let mut open_best = f64::INFINITY;
    let mut container = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let c = PcrContainer::open(&dir).expect("open container");
        open_best = open_best.min(t0.elapsed().as_secs_f64());
        container = Some(c);
    }
    let container = container.expect("at least one open rep");
    let rss_after = rss_bytes();
    let open_index_bytes = container.index_bytes_read();

    // First-record latency: resolve + read one record per rep, spread
    // across the catalog so no rep re-reads another's footer columns.
    let mut first_best = f64::INFINITY;
    for r in 0..REPS {
        let k = (n / REPS).max(1).wrapping_mul(r) % n;
        let t0 = Instant::now();
        let (shard, rec) = container.entry(k).expect("entry resolves");
        let bytes = container.read_record(shard, &rec).expect("record bytes");
        first_best = first_best.min(t0.elapsed().as_secs_f64());
        assert_eq!(bytes.len(), RECORD_LEN);
    }
    let first_record_index_bytes = container.index_bytes_read() - open_index_bytes;

    // Streaming shuffle footprint: the Feistel order is a fixed-size
    // struct at any n; a materialized permutation is 8 bytes per record.
    let order = EpochOrder::shuffled(n, 0x5eed, 3);
    assert_eq!(order.num_records(), n);
    let epoch_order_bytes = std::mem::size_of::<EpochOrder>();

    std::fs::remove_dir_all(&dir).expect("cleanup");
    ScaleRow {
        records: n,
        open_secs: open_best,
        first_record_secs: first_best,
        open_index_bytes,
        first_record_index_bytes,
        rss_delta_bytes: match (rss_before, rss_after) {
            (Some(b), Some(a)) => Some(a.saturating_sub(b)),
            _ => None,
        },
        epoch_order_bytes,
        materialized_order_bytes: n as u64 * 8,
    }
}

/// Extracts `"<key>":<number>` following `"<section>":{` in a committed
/// BENCH_catalog.json (machine-written by this bench; positional scan).
fn committed_field(text: &str, section: &str, key: &str) -> Option<f64> {
    let sec = text.find(&format!("\"{section}\""))?;
    let tail = &text[sec..];
    let pat = format!("\"{key}\":");
    let at = tail.find(&pat)?;
    let num = &tail[at + pat.len()..];
    let end = num.find([',', '}'])?;
    num[..end].trim().parse().ok()
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return; // `cargo test --benches` compiles + smoke-invokes only
    }
    let scales: &[usize] =
        if smoke() { &[1_000, 5_000, 20_000] } else { &[10_000, 100_000, 1_000_000] };

    let mut rows = Vec::new();
    println!(
        "{:>9} {:>10} {:>12} {:>11} {:>13} {:>11} {:>12}",
        "records", "open µs", "1st-rec µs", "open idx B", "1st-rec idx B", "order B", "vs mater. B"
    );
    for &n in scales {
        let row = measure_scale(n);
        println!(
            "{:>9} {:>10.1} {:>12.1} {:>11} {:>13} {:>11} {:>12}",
            row.records,
            row.open_secs * 1e6,
            row.first_record_secs * 1e6,
            row.open_index_bytes,
            row.first_record_index_bytes,
            row.epoch_order_bytes,
            row.materialized_order_bytes,
        );
        rows.push(row);
    }

    let first = rows.first().expect("at least one scale");
    let last = rows.last().expect("at least one scale");
    let ratio = if first.open_secs > 0.0 { last.open_secs / first.open_secs } else { 0.0 };
    println!(
        "open latency {}x records -> {ratio:.2}x time (gate {FLATNESS_GATE:.1}x + {:.1}ms slack)",
        last.records / first.records.max(1),
        SLACK_SECS * 1e3,
    );

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let committed = std::fs::read_to_string(format!("{root}/BENCH_catalog.json")).ok();
    let committed_ratio =
        committed.as_deref().and_then(|t| committed_field(t, "flatness", "open_ratio"));

    let scale_entries = rows
        .iter()
        .map(|r| {
            JsonValue::object([
                ("records", JsonValue::U64(r.records as u64)),
                ("open_us", JsonValue::F64(r.open_secs * 1e6)),
                ("first_record_us", JsonValue::F64(r.first_record_secs * 1e6)),
                ("open_index_bytes", JsonValue::U64(r.open_index_bytes)),
                ("first_record_index_bytes", JsonValue::U64(r.first_record_index_bytes)),
                (
                    "rss_delta_bytes",
                    r.rss_delta_bytes.map_or(JsonValue::Null, JsonValue::U64),
                ),
                ("epoch_order_bytes", JsonValue::U64(r.epoch_order_bytes as u64)),
                ("materialized_order_bytes", JsonValue::U64(r.materialized_order_bytes)),
            ])
        })
        .collect();
    let doc = JsonValue::object([
        ("bench", JsonValue::str("catalog_scale")),
        ("shards", JsonValue::U64(SHARDS as u64)),
        ("smoke", JsonValue::Bool(smoke())),
        ("scales", JsonValue::Array(scale_entries)),
        (
            "flatness",
            JsonValue::object([
                ("open_ratio", JsonValue::F64(ratio)),
                ("gate", JsonValue::F64(FLATNESS_GATE)),
                (
                    "committed_open_ratio",
                    committed_ratio.map_or(JsonValue::Null, JsonValue::F64),
                ),
            ]),
        ),
    ]);
    let out = format!("{root}/target/BENCH_catalog.json");
    match std::fs::write(&out, doc.render() + "\n") {
        Ok(()) => println!("measurement written to {out}"),
        Err(e) => println!("could not write {out}: {e}"),
    }

    // The flatness gate: open must not scale with the record count. The
    // absolute slack keeps microsecond-level numbers from flaking; any
    // real O(records) regression at 100x scale blows through both.
    assert!(
        last.open_secs <= first.open_secs * FLATNESS_GATE + SLACK_SECS,
        "container open latency scales with record count: {} records opened in \
         {:.1}us but {} records took {:.1}us ({ratio:.2}x, gate {FLATNESS_GATE:.1}x); \
         the columnar lazy-open path has regressed to O(records)",
        first.records,
        first.open_secs * 1e6,
        last.records,
        last.open_secs * 1e6,
    );

    // The lazy index must not read footer columns at open time, and a
    // single entry resolution must read a bounded number of bytes —
    // independent of the catalog size.
    assert_eq!(
        last.open_index_bytes, 0,
        "open read {} footer-column bytes; the v3 open path must defer all \
         column reads to entry()",
        last.open_index_bytes
    );
    assert!(
        last.first_record_index_bytes <= 4096,
        "resolving one record read {} index bytes at {} records; entry() has \
         regressed from O(1) column probes",
        last.first_record_index_bytes,
        last.records
    );
    assert!(
        last.epoch_order_bytes as u64 <= 64.min(last.materialized_order_bytes),
        "EpochOrder is {} bytes; the streaming shuffle must stay a fixed-size \
         struct, not a materialized permutation",
        last.epoch_order_bytes
    );
}
