//! Wall-clock parallel-loader benchmark: real worker threads decoding the
//! generated dermatology (HAM10000-like) dataset behind an emulated
//! remote-object-store latency profile, sweeping worker counts × scan
//! groups and reporting delivered images/second.
//!
//! Two numbers to look for in the output:
//!
//! * `images/s` must grow ≥2x going from 1 to 4 workers (storage latency
//!   overlapped with decode — the wall-clock realization of the paper's
//!   Appendix A.1 prefetching argument), and
//! * bytes/image at scan group 1-2 lands ≥2x below full quality (the
//!   paper's headline traffic saving) while throughput *rises*.
//!
//! Allocation note: the per-record hot path is copy-free — workers read
//! zero-copy `ByteView`s from the store (no `to_vec` of record bytes),
//! `PcrRecord::parse` borrows ids/offsets from the buffer, and decodes
//! reuse per-worker `RecordScratch` coefficient/sample planes; the only
//! allocation that escapes per image is its delivered pixel buffer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcr_core::MetaDb;
use pcr_datasets::{to_pcr_dataset, DatasetSpec, Scale, SyntheticDataset};
use pcr_loader::{populate_store, IoModel, ParallelConfig, ParallelLoader};
use pcr_storage::{DeviceProfile, ObjectStore};
use std::sync::Arc;

const WORKERS: [usize; 4] = [1, 2, 4, 8];
const GROUPS: [usize; 3] = [1, 5, 10];

fn setup() -> (Arc<ObjectStore>, Arc<MetaDb>) {
    let ds = SyntheticDataset::generate(&DatasetSpec::ham10000_like(Scale::Tiny));
    let (pcr, _) = to_pcr_dataset(&ds, 8);
    let store = Arc::new(ObjectStore::new(DeviceProfile::remote_object_store()));
    populate_store(&store, &pcr);
    let db = Arc::new(pcr.db.clone());
    (store, db)
}

fn loader_for(store: &Arc<ObjectStore>, db: &Arc<MetaDb>, workers: usize, group: usize) -> ParallelLoader {
    let cfg = ParallelConfig { io: IoModel::EmulatedLatency, ..ParallelConfig::real(workers, group) };
    ParallelLoader::new(Arc::clone(store), Arc::clone(db), cfg)
}

fn bench_worker_scaling(c: &mut Criterion) {
    let (store, db) = setup();
    let images = db.num_images() as u64;
    let mut g = c.benchmark_group("parallel_loader_epoch");
    g.sample_size(10);
    g.throughput(Throughput::Elements(images));
    for group in GROUPS {
        for workers in WORKERS {
            let loader = loader_for(&store, &db, workers, group);
            g.bench_with_input(
                BenchmarkId::new(format!("group{group}"), format!("{workers}w")),
                &loader,
                |b, loader| b.iter(|| loader.run_epoch(0)),
            );
        }
    }
    g.finish();

    // Explicit acceptance summary: delivered images/sec per configuration
    // and the 1 -> 4 worker speedup at each scan group.
    println!("\nimages/sec (DecodeMode::Real, emulated remote-object-store I/O):");
    println!("{:>6} {:>8} {:>12} {:>12}", "group", "workers", "images/s", "KiB/image");
    for group in GROUPS {
        let mut rate_at = [0.0f64; WORKERS.len()];
        for (wi, workers) in WORKERS.into_iter().enumerate() {
            let epoch = loader_for(&store, &db, workers, group).run_epoch(0);
            rate_at[wi] = epoch.images_per_sec();
            println!(
                "{:>6} {:>8} {:>12.1} {:>12.1}",
                group,
                workers,
                rate_at[wi],
                epoch.mean_image_bytes() / 1024.0
            );
        }
        println!(
            "group {group}: 1 -> 4 workers speedup {:.2}x\n",
            rate_at[2] / rate_at[0].max(1e-9)
        );
    }
}

criterion_group!(benches, bench_worker_scaling);
criterion_main!(benches);
