//! Wall-clock parallel-loader benchmark: real worker threads decoding the
//! generated dermatology (HAM10000-like) dataset behind an emulated
//! remote-object-store latency profile, sweeping worker counts × scan
//! groups and reporting delivered images/second — plus a dynamic-fidelity
//! vs fixed-prefix sweep exercising the online [`FidelityController`].
//!
//! Numbers to look for in the output:
//!
//! * `images/s` must grow ≥2x going from 1 to 4 workers (storage latency
//!   overlapped with decode — the wall-clock realization of the paper's
//!   Appendix A.1 prefetching argument),
//! * bytes/image at scan group 1-2 lands ≥2x below full quality (the
//!   paper's headline traffic saving) while throughput *rises*, and
//! * the dynamic-fidelity run reads strictly fewer total bytes than the
//!   fixed full-prefix baseline at the identical epoch record order —
//!   asserted, not just printed. Its per-epoch trajectory is written to
//!   `target/BENCH_parallel_loader_fidelity.json`.
//!
//! Smoke mode (`PCR_BENCH_SMOKE=1`, used by CI) skips the Criterion
//! sampling loops and runs each sweep once with reduced configurations,
//! so the bench is exercised end to end — assertions included — in
//! seconds.
//!
//! Allocation note: the per-record hot path is copy-free — workers get
//! zero-copy `ByteView`s from the store's clocked read path (no `to_vec`
//! of record bytes), `PcrRecord::parse` borrows ids/offsets from the
//! buffer, and decodes reuse per-worker `RecordScratch`
//! coefficient/sample planes; the only allocation that escapes per image
//! is its delivered pixel buffer.

use criterion::{BenchmarkId, Criterion, Throughput};
use pcr_core::MetaDb;
use pcr_datasets::{to_pcr_dataset, DatasetSpec, Scale, SyntheticDataset};
use pcr_loader::{
    populate_store, probe_group_scores, FidelityConfig, FidelityController, IoModel,
    ParallelConfig, ParallelLoader,
};
use pcr_storage::{DeviceProfile, ObjectStore};
use std::sync::Arc;

const WORKERS: [usize; 4] = [1, 2, 4, 8];
const GROUPS: [usize; 3] = [1, 5, 10];

fn smoke() -> bool {
    std::env::var_os("PCR_BENCH_SMOKE").is_some()
}

fn setup() -> (Arc<ObjectStore>, Arc<MetaDb>) {
    let ds = SyntheticDataset::generate(&DatasetSpec::ham10000_like(Scale::Tiny));
    let (pcr, _) = to_pcr_dataset(&ds, 8);
    let store = Arc::new(ObjectStore::new(DeviceProfile::remote_object_store()));
    populate_store(&store, &pcr);
    let db = Arc::new(pcr.db.clone());
    (store, db)
}

fn loader_for(
    store: &Arc<ObjectStore>,
    db: &Arc<MetaDb>,
    workers: usize,
    group: usize,
) -> ParallelLoader {
    let cfg =
        ParallelConfig { io: IoModel::EmulatedLatency, ..ParallelConfig::real(workers, group) };
    ParallelLoader::new(Arc::clone(store), Arc::clone(db), cfg)
}

fn bench_worker_scaling(c: &mut Criterion) {
    let (store, db) = setup();
    let images = db.num_images() as u64;
    let mut g = c.benchmark_group("parallel_loader_epoch");
    g.sample_size(10);
    g.throughput(Throughput::Elements(images));
    for group in GROUPS {
        for workers in WORKERS {
            let loader = loader_for(&store, &db, workers, group);
            g.bench_with_input(
                BenchmarkId::new(format!("group{group}"), format!("{workers}w")),
                &loader,
                |b, loader| b.iter(|| loader.run_epoch(0)),
            );
        }
    }
    g.finish();
}

/// Explicit acceptance summary: delivered images/sec per configuration and
/// the 1 -> 4 worker speedup at each scan group.
fn worker_scaling_summary(workers: &[usize], groups: &[usize]) {
    let (store, db) = setup();
    println!("\nimages/sec (DecodeMode::Real, emulated remote-object-store I/O):");
    println!("{:>6} {:>8} {:>12} {:>12}", "group", "workers", "images/s", "KiB/image");
    for &group in groups {
        let mut rates = Vec::with_capacity(workers.len());
        for &w in workers {
            let epoch = loader_for(&store, &db, w, group).run_epoch(0);
            rates.push(epoch.images_per_sec());
            println!(
                "{:>6} {:>8} {:>12.1} {:>12.1}",
                group,
                w,
                epoch.images_per_sec(),
                epoch.mean_image_bytes() / 1024.0
            );
        }
        if let (Some(first), Some(last)) = (rates.first(), rates.last()) {
            println!(
                "group {group}: {} -> {} workers speedup {:.2}x\n",
                workers[0],
                workers[workers.len() - 1],
                last / first.max(1e-9)
            );
        }
    }
}

/// Dynamic-fidelity vs fixed-prefix sweep: the same epochs (same seed,
/// same record order) run once pinned at full quality and once under the
/// online [`FidelityController`]; reports images/sec and total bytes, and
/// asserts the paper's headline claim — dynamic reads fewer bytes.
fn dynamic_fidelity_summary(epochs: u64) {
    let ds = SyntheticDataset::generate(&DatasetSpec::ham10000_like(Scale::Tiny));
    let (pcr, _) = to_pcr_dataset(&ds, 8);
    // A cache-backed store with readahead: the unified clocked read path
    // gives the wall-clock workers both, so repeat epochs are absorbed.
    let store = Arc::new(ObjectStore::with_cache(DeviceProfile::remote_object_store(), 1 << 30));
    store.set_readahead(64 << 10);
    populate_store(&store, &pcr);
    let db = Arc::new(pcr.db.clone());
    let full_group = db.num_groups();

    let scores = probe_group_scores(&store, &db, &[1, 2, 5, full_group], 12);
    let make_loader = || {
        ParallelLoader::new(Arc::clone(&store), Arc::clone(&db), ParallelConfig::real(4, full_group))
    };

    // Synthetic loss trajectory: improves for two epochs, then flatlines —
    // the plateau trips and the controller drops to the cheapest
    // qualifying group for the remaining epochs.
    let loss_at = |e: u64| if e == 0 { 1.0 } else { 0.5 };

    // Fixed full-prefix baseline.
    let fixed_loader = make_loader();
    let mut fixed_bytes = 0u64;
    let mut fixed_images = 0u64;
    let mut fixed_rate = 0.0;
    for e in 0..epochs {
        let r = fixed_loader.run_epoch(e);
        fixed_bytes += r.bytes;
        fixed_images += r.images as u64;
        fixed_rate = r.images_per_sec();
    }

    // Dynamic run: identical seed and epoch indices, so the record order
    // of every epoch matches the fixed run exactly.
    let dynamic_loader = make_loader();
    let mut ctrl = FidelityController::new(
        FidelityConfig { plateau_window: 1, ..FidelityConfig::default() },
        scores.clone(),
    );
    let trace = dynamic_loader.run_dynamic(epochs, &mut ctrl, |e, _| loss_at(e));

    println!("\ndynamic fidelity vs fixed full prefix ({epochs} epochs, 4 workers):");
    println!("{:>8} {:>8} {:>14} {:>12} {:>10}", "epoch", "group", "bytes", "images/s", "hit rate");
    for e in &trace.epochs {
        println!(
            "{:>8} {:>8} {:>14} {:>12.1} {:>10.2}",
            e.epoch, e.scan_group, e.bytes_read, e.images_per_sec, e.cache_hit_rate
        );
    }
    println!(
        "fixed   : {fixed_bytes:>14} bytes, {fixed_images} images, last epoch {fixed_rate:.1} img/s"
    );
    println!(
        "dynamic : {:>14} bytes, {} images, groups {:?}",
        trace.total_bytes(),
        trace.total_images(),
        trace.groups_used()
    );

    // Acceptance: equal record order and delivered data, fewer bytes.
    assert_eq!(trace.total_images(), fixed_images, "same epochs deliver the same images");
    assert!(
        trace.groups_used().len() > 1,
        "controller must have switched groups: {:?}",
        trace.groups_used()
    );
    assert!(
        trace.total_bytes() < fixed_bytes,
        "dynamic fidelity must read fewer bytes ({} vs fixed {fixed_bytes})",
        trace.total_bytes()
    );

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_parallel_loader_fidelity.json");
    match trace.write_json(out) {
        Ok(()) => println!("trajectory written to {out}"),
        Err(e) => println!("could not write {out}: {e}"),
    }
}

criterion::criterion_group!(benches, bench_worker_scaling);

fn main() {
    // `cargo test --benches` passes test-harness flags; measurements run
    // only under `cargo bench` (or bare invocation).
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    if smoke() {
        println!("PCR_BENCH_SMOKE=1: skipping sampling loops, running each sweep once");
        worker_scaling_summary(&[1, 4], &[1, 10]);
        // The plateau detector needs 2*window = 4 loss observations before
        // it can trip, so 6 epochs leaves 2 running at the tuned group.
        dynamic_fidelity_summary(6);
    } else {
        benches();
        worker_scaling_summary(&WORKERS, &GROUPS);
        dynamic_fidelity_summary(8);
    }
}
