//! Decode hot-path microbenchmark: single-thread JPEG decode throughput
//! (images per CPU-second) on the synthetic dermatology (HAM10000-like)
//! dataset at full scan groups — the number the repo's perf trajectory
//! (`BENCH_decode.json` at the repo root) tracks PR over PR.
//!
//! The measurement drives the loader's decode unit exactly as a
//! wall-clock worker does — planned prefix reads through the clocked
//! store path (RAM profile, so storage adds nothing), then
//! [`RecordSource::decode_real`] through a pooled `RecordScratch` →
//! `pcr_jpeg::decode_with` — but on one thread with timers around only
//! the decode calls, so the CPU number has no channel or scheduler noise
//! in it (CI runners are often single-core).
//!
//! Outputs and gating:
//!
//! * writes a fresh `target/BENCH_decode.json` with the measured number
//!   (plus the committed trajectory, echoed for context);
//! * if a committed `BENCH_decode.json` exists at the repo root, the run
//!   **fails** when the measured throughput drops more than
//!   `PCR_BENCH_TOLERANCE` (default 0.20, i.e. 20%) below the committed
//!   `current.images_per_cpu_sec` — the CI regression gate. Absolute
//!   throughput varies across machines; re-baseline the committed file
//!   from the machine that owns the trajectory when hardware changes.
//!
//! `PCR_BENCH_SMOKE=1` (CI) shrinks the epoch count so the gate runs in
//! seconds.

use pcr_core::{MetaDb, RecordScratch};
use pcr_datasets::{to_pcr_dataset, DatasetSpec, Scale, SyntheticDataset};
use pcr_loader::{populate_store, LoaderConfig, RecordSource, ReadPlanner};
use pcr_metrics::JsonValue;
use pcr_storage::{Clock, DeviceProfile, ObjectStore};
use std::sync::Arc;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("PCR_BENCH_SMOKE").is_some()
}

fn setup() -> (Arc<ObjectStore>, Arc<MetaDb>) {
    let ds = SyntheticDataset::generate(&DatasetSpec::ham10000_like(Scale::Tiny));
    let (pcr, _) = to_pcr_dataset(&ds, 8);
    let store = Arc::new(ObjectStore::new(DeviceProfile::ram()));
    populate_store(&store, &pcr);
    (store, Arc::new(pcr.db.clone()))
}

/// Runs `epochs` epochs of the loader's decode unit on one thread —
/// planned prefix reads through the clocked store path, then
/// `RecordSource::decode_real` through a pooled `RecordScratch` — timing
/// only the decode calls. Single-threaded on purpose: no channel or
/// scheduler noise in the CPU number (this box may well be one core).
/// Returns (images decoded, summed decode seconds, images/CPU-sec).
fn measure(store: &Arc<ObjectStore>, db: &Arc<MetaDb>, epochs: u64) -> (u64, f64, f64) {
    let full_group = db.num_groups();
    let cfg = LoaderConfig { threads: 1, scan_group: full_group, ..LoaderConfig::default() };
    let planner = ReadPlanner::from_config(&cfg);
    let mut scratch = RecordScratch::new();
    let source: &MetaDb = db;
    let n = source.num_records();
    // Per-record best decode time across epochs. Scheduler preemption and
    // noisy-neighbor CPU steal only ever *add* time, and they hit random
    // slices of the run, so with several epochs each record gets at least
    // one clean decode; summing the per-record minima reconstructs an
    // uncontended epoch. (Plain per-epoch totals on a shared box swing
    // 2x between quiet and stolen phases.)
    let mut best = vec![u64::MAX; n];
    let mut record_images = vec![0u64; n];
    let mut nanos_total = 0u64;
    for e in 0..epochs {
        for idx in planner.epoch_order(n, e) {
            let plan = planner.plan(source, idx);
            let read = store
                .read(Clock::Wall, plan.name, plan.offset, plan.len)
                .expect("record bytes present");
            let t0 = Instant::now();
            let decoded = source
                .decode_real(idx, &read.data, planner.scan_group, &mut scratch)
                .expect("decodable record");
            let dt = t0.elapsed().as_nanos() as u64;
            nanos_total += dt;
            best[idx] = best[idx].min(dt);
            record_images[idx] = decoded.len() as u64;
        }
    }
    let images_per_epoch: u64 = record_images.iter().sum();
    let best_nanos: u64 = best.iter().sum();
    let images = images_per_epoch * epochs;
    let secs = nanos_total as f64 / 1e9;
    let rate =
        if best_nanos > 0 { images_per_epoch as f64 * 1e9 / best_nanos as f64 } else { 0.0 };
    (images, secs, rate)
}

/// Extracts `"images_per_cpu_sec":<number>` following `"<section>":{` in a
/// committed BENCH_decode.json (the workspace has no JSON parser; the file
/// is machine-written by this bench, so a positional scan is reliable).
fn committed_number(text: &str, section: &str) -> Option<f64> {
    let sec = text.find(&format!("\"{section}\""))?;
    let tail = &text[sec..];
    let key = tail.find("\"images_per_cpu_sec\":")?;
    let num = &tail[key + "\"images_per_cpu_sec\":".len()..];
    let end = num.find([',', '}'])?;
    num[..end].trim().parse().ok()
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return; // `cargo test --benches` compiles + smoke-invokes only
    }
    let (store, db) = setup();
    let full_group = db.num_groups();

    // Warm-up epoch: page in the store, fault in code, size scratch pools.
    let _ = measure(&store, &db, 1);

    let epochs = if smoke() { 2 } else { 24 };
    let (images, cpu_secs, rate) = measure(&store, &db, epochs);
    println!(
        "decode_hot: {images} images in {cpu_secs:.3} CPU-sec over {epochs} epochs \
         (1 worker, scan group {full_group}) -> {rate:.1} images/CPU-sec"
    );

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let committed_path = format!("{root}/BENCH_decode.json");
    let committed = std::fs::read_to_string(&committed_path).ok();
    let committed_current = committed.as_deref().and_then(|t| committed_number(t, "current"));
    let committed_baseline =
        committed.as_deref().and_then(|t| committed_number(t, "baseline_pre_pr"));

    let doc = JsonValue::object([
        ("bench", JsonValue::str("decode_hot")),
        ("dataset", JsonValue::str("ham10000_like/tiny, 8 images per record")),
        ("scan_group", JsonValue::U64(full_group as u64)),
        ("workers", JsonValue::U64(1)),
        ("epochs", JsonValue::U64(epochs)),
        ("images", JsonValue::U64(images)),
        ("decode_cpu_seconds", JsonValue::F64(cpu_secs)),
        (
            "baseline_pre_pr",
            JsonValue::object([(
                "images_per_cpu_sec",
                committed_baseline.map_or(JsonValue::Null, JsonValue::F64),
            )]),
        ),
        (
            "current",
            JsonValue::object([
                ("images_per_cpu_sec", JsonValue::F64(rate)),
                (
                    "speedup_vs_baseline",
                    committed_baseline
                        .filter(|b| *b > 0.0)
                        .map_or(JsonValue::Null, |b| JsonValue::F64(rate / b)),
                ),
            ]),
        ),
    ]);
    let out = format!("{root}/target/BENCH_decode.json");
    match std::fs::write(&out, doc.render() + "\n") {
        Ok(()) => println!("measurement written to {out}"),
        Err(e) => println!("could not write {out}: {e}"),
    }

    // Regression gate against the committed trajectory point.
    if let Some(committed) = committed_current.filter(|c| *c > 0.0) {
        let tolerance: f64 = std::env::var("PCR_BENCH_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.20);
        let floor = committed * (1.0 - tolerance);
        println!(
            "committed current: {committed:.1} images/CPU-sec, floor at {:.0}% = {floor:.1}",
            (1.0 - tolerance) * 100.0
        );
        assert!(
            rate >= floor,
            "decode throughput regression: measured {rate:.1} images/CPU-sec is more than \
             {:.0}% below the committed {committed:.1} (floor {floor:.1}); investigate or \
             re-baseline BENCH_decode.json",
            tolerance * 100.0
        );
    } else {
        println!("no committed BENCH_decode.json current number: gate skipped");
    }
}
