//! Decode hot-path microbenchmark: single-thread JPEG decode throughput
//! (images per CPU-second) on the synthetic dermatology (HAM10000-like)
//! dataset at full scan groups — the number the repo's perf trajectory
//! (`BENCH_decode.json` at the repo root) tracks PR over PR.
//!
//! The measurement drives the loader's decode unit exactly as a
//! wall-clock worker does — planned prefix reads through the clocked
//! store path (RAM profile, so storage adds nothing), then
//! [`RecordSource::decode_real`] through a pooled `RecordScratch` →
//! `pcr_jpeg::decode_with` — but on one thread with timers around only
//! the decode calls, so the CPU number has no channel or scheduler noise
//! in it (CI runners are often single-core).
//!
//! Outputs and gating:
//!
//! * writes a fresh `target/BENCH_decode.json` with the measured number
//!   (plus the committed trajectory, echoed for context);
//! * if a committed `BENCH_decode.json` exists at the repo root, the run
//!   **fails** when the measured throughput drops more than
//!   `PCR_BENCH_TOLERANCE` (default 0.20, i.e. 20%) below the committed
//!   `current.images_per_cpu_sec` — the CI regression gate. Absolute
//!   throughput varies across machines; re-baseline the committed file
//!   from the machine that owns the trajectory when hardware changes.
//!
//! `PCR_BENCH_SMOKE=1` (CI) shrinks the epoch count so the gate runs in
//! seconds.

use pcr_core::{MetaDb, PcrDataset, PcrRecord, RecordScratch};
use pcr_datasets::{to_pcr_dataset, to_pcr_dataset_restart, DatasetSpec, Scale, SyntheticDataset};
use pcr_jpeg::{decode_coeffs_observed, DecodeObserver};
use pcr_loader::{populate_store, LoaderConfig, RecordSource, ReadPlanner};
use pcr_metrics::JsonValue;
use pcr_storage::{Clock, DeviceProfile, ObjectStore};
use std::sync::Arc;
use std::time::Instant;

/// MCU-unit restart interval for the segment-parallel measurement (the
/// encoder rounds it up to one MCU row per segment — ~20 segments per AC
/// scan at this image size, enough work units for 4 workers).
const RESTART_INTERVAL: u16 = 1;

/// Worker count the restart-parallel makespan is modeled for.
const SEGMENT_WORKERS: usize = 4;

fn smoke() -> bool {
    std::env::var_os("PCR_BENCH_SMOKE").is_some()
}

fn setup() -> (Arc<ObjectStore>, Arc<MetaDb>) {
    let ds = SyntheticDataset::generate(&DatasetSpec::ham10000_like(Scale::Tiny));
    let (pcr, _) = to_pcr_dataset(&ds, 8);
    let store = Arc::new(ObjectStore::new(DeviceProfile::ram()));
    populate_store(&store, &pcr);
    (store, Arc::new(pcr.db.clone()))
}

/// Runs `epochs` epochs of the loader's decode unit on one thread —
/// planned prefix reads through the clocked store path, then
/// `RecordSource::decode_real` through a pooled `RecordScratch` — timing
/// only the decode calls. Single-threaded on purpose: no channel or
/// scheduler noise in the CPU number (this box may well be one core).
/// Returns (images decoded, summed decode seconds, images/CPU-sec).
fn measure(store: &Arc<ObjectStore>, db: &Arc<MetaDb>, epochs: u64) -> (u64, f64, f64) {
    let full_group = db.num_groups();
    let cfg = LoaderConfig { threads: 1, scan_group: full_group, ..LoaderConfig::default() };
    let planner = ReadPlanner::from_config(&cfg);
    let mut scratch = RecordScratch::new();
    let source: &MetaDb = db;
    let n = source.num_records();
    // Per-record best decode time across epochs. Scheduler preemption and
    // noisy-neighbor CPU steal only ever *add* time, and they hit random
    // slices of the run, so with several epochs each record gets at least
    // one clean decode; summing the per-record minima reconstructs an
    // uncontended epoch. (Plain per-epoch totals on a shared box swing
    // 2x between quiet and stolen phases.)
    let mut best = vec![u64::MAX; n];
    let mut record_images = vec![0u64; n];
    let mut nanos_total = 0u64;
    for e in 0..epochs {
        for idx in planner.epoch_order(n, e) {
            let plan = planner.plan(source, idx);
            let read = store
                .read(Clock::Wall, plan.name, plan.offset, plan.len)
                .expect("record bytes present");
            let t0 = Instant::now();
            let decoded = source
                .decode_real(idx, &read.data, planner.scan_group, &mut scratch)
                .expect("decodable record");
            let dt = t0.elapsed().as_nanos() as u64;
            nanos_total += dt;
            best[idx] = best[idx].min(dt);
            record_images[idx] = decoded.len() as u64;
        }
    }
    let images_per_epoch: u64 = record_images.iter().sum();
    let best_nanos: u64 = best.iter().sum();
    let images = images_per_epoch * epochs;
    let secs = nanos_total as f64 / 1e9;
    let rate =
        if best_nanos > 0 { images_per_epoch as f64 * 1e9 / best_nanos as f64 } else { 0.0 };
    (images, secs, rate)
}

/// [`DecodeObserver`] stamping wall-clock time on every restart segment
/// the sequential decoder reports — the per-scan duration lists the
/// restart-parallel model schedules onto virtual workers.
#[derive(Default)]
struct SegTimer {
    /// `scans[s]` = decode nanos of scan `s`'s restart segments, in order.
    scans: Vec<Vec<u64>>,
    t0: Option<Instant>,
}

impl DecodeObserver for SegTimer {
    fn scan_begin(&mut self, scan_idx: usize, nsegs: usize) {
        if self.scans.len() <= scan_idx {
            self.scans.resize_with(scan_idx + 1, Vec::new);
        }
        self.scans[scan_idx].reserve(nsegs);
    }
    fn segment_begin(&mut self, _scan_idx: usize, _seg: usize, _units: u32) {
        self.t0 = Some(Instant::now());
    }
    fn segment_end(&mut self, scan_idx: usize, _seg: usize) {
        if let Some(t0) = self.t0.take() {
            self.scans[scan_idx].push(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Longest-processing-time-first greedy makespan of `durs` on `workers`
/// identical workers — the schedule `decode_coeffs_workers` approximates
/// when it spreads one scan's restart segments over its thread pool.
fn lpt_makespan(durs: &[u64], workers: usize) -> u64 {
    let mut sorted = durs.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![0u64; workers.max(1)];
    for d in sorted {
        if let Some(least) = loads.iter_mut().min() {
            *least += d;
        }
    }
    loads.into_iter().max().unwrap_or(0)
}

/// Measures the restart-marker corpus: every image decodes sequentially
/// under a [`SegTimer`], and the observed per-segment times are scheduled
/// onto `workers` modeled cores per scan (scans are sequential barriers —
/// later scans refine the coefficients earlier ones produced). Returns
/// `(images, single_thread_rate, modeled_parallel_rate)` in
/// images/CPU-sec, both built from per-image best-of-epochs times.
///
/// Modeled, not measured, on purpose: CI runners (and this box) are often
/// single-core, where spawning real segment workers measures scheduler
/// contention, not the algorithm. The model keeps every non-entropy nano
/// sequential (marker parse, dequant+IDCT, color) and replaces each
/// scan's summed segment time with its LPT makespan, so Amdahl's law is
/// respected; `loader::parallel` tests prove the real worker path is
/// pixel-identical, and this bench prices it.
fn measure_restart(pcr: &PcrDataset, epochs: u64, workers: usize) -> (u64, f64, f64) {
    let full_group = pcr.db.num_groups();
    let num_images: usize =
        pcr.db.records.iter().map(|r| r.num_images as usize).sum();
    let mut best_total = vec![u64::MAX; num_images];
    let mut best_modeled = vec![u64::MAX; num_images];
    let mut pool: Vec<Vec<i16>> = Vec::new();
    for _ in 0..epochs {
        let mut img_idx = 0;
        for rec_bytes in &pcr.records {
            let rec = PcrRecord::parse(rec_bytes).expect("valid record");
            for i in 0..rec.num_images() {
                let jpeg = rec.jpeg_at_group(i, full_group).expect("assembled prefix");
                let mut timer = SegTimer::default();
                let t0 = Instant::now();
                let decoded =
                    decode_coeffs_observed(&jpeg, &mut pool, &mut timer).expect("decode");
                let img = decoded.to_image().expect("pixels");
                let total = t0.elapsed().as_nanos() as u64;
                assert!(img.width() > 0);
                decoded.coeffs.recycle_into(&mut pool);
                let entropy: u64 = timer.scans.iter().flatten().sum();
                let makespan: u64 =
                    timer.scans.iter().map(|s| lpt_makespan(s, workers)).sum();
                let modeled = total - entropy + makespan;
                if total < best_total[img_idx] {
                    best_total[img_idx] = total;
                    best_modeled[img_idx] = modeled;
                }
                img_idx += 1;
            }
        }
    }
    let total: u64 = best_total.iter().sum();
    let modeled: u64 = best_modeled.iter().sum();
    let rate = |nanos: u64| {
        if nanos > 0 { num_images as f64 * 1e9 / nanos as f64 } else { 0.0 }
    };
    (num_images as u64, rate(total), rate(modeled))
}

/// Extracts `"<key>":<number>` following `"<section>":{` in a committed
/// BENCH_decode.json (the workspace has no JSON parser; the file is
/// machine-written by this bench, so a positional scan is reliable).
fn committed_field(text: &str, section: &str, key: &str) -> Option<f64> {
    let sec = text.find(&format!("\"{section}\""))?;
    let tail = &text[sec..];
    let pat = format!("\"{key}\":");
    let at = tail.find(&pat)?;
    let num = &tail[at + pat.len()..];
    let end = num.find([',', '}'])?;
    num[..end].trim().parse().ok()
}

/// The section's `images_per_cpu_sec` trajectory number.
fn committed_number(text: &str, section: &str) -> Option<f64> {
    committed_field(text, section, "images_per_cpu_sec")
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return; // `cargo test --benches` compiles + smoke-invokes only
    }
    let (store, db) = setup();
    let full_group = db.num_groups();

    // Warm-up epoch: page in the store, fault in code, size scratch pools.
    let _ = measure(&store, &db, 1);

    // Smoke mode still runs enough epochs for the per-record best-of to
    // find a preemption-free decode of every record — 2 epochs leave the
    // best-of ~20% under the converged number and trip the gate.
    let epochs = if smoke() { 8 } else { 24 };
    let (images, cpu_secs, rate) = measure(&store, &db, epochs);
    println!(
        "decode_hot: {images} images in {cpu_secs:.3} CPU-sec over {epochs} epochs \
         (1 worker, scan group {full_group}) -> {rate:.1} images/CPU-sec"
    );

    // Same corpus re-encoded with restart markers: sequential decode under
    // a segment timer, then the per-scan LPT-makespan model prices the
    // 4-worker segment-parallel path (see `measure_restart`).
    let ds = SyntheticDataset::generate(&DatasetSpec::ham10000_like(Scale::Tiny));
    let (pcr_restart, _) = to_pcr_dataset_restart(&ds, 8, RESTART_INTERVAL);
    let restart_epochs = if smoke() { 6 } else { 12 };
    let (_, restart_seq_rate, restart_par_rate) =
        measure_restart(&pcr_restart, restart_epochs, SEGMENT_WORKERS);
    let restart_speedup =
        if restart_seq_rate > 0.0 { restart_par_rate / restart_seq_rate } else { 0.0 };
    println!(
        "decode_hot: restart-marker corpus (interval {RESTART_INTERVAL}): \
         {restart_seq_rate:.1} images/CPU-sec single-thread, modeled \
         {SEGMENT_WORKERS}-worker segment-parallel {restart_par_rate:.1} \
         ({restart_speedup:.2}x)"
    );

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let committed_path = format!("{root}/BENCH_decode.json");
    let committed = std::fs::read_to_string(&committed_path).ok();
    let committed_current = committed.as_deref().and_then(|t| committed_number(t, "current"));
    let committed_baseline =
        committed.as_deref().and_then(|t| committed_number(t, "baseline_pre_pr"));
    let committed_restart_speedup = committed
        .as_deref()
        .and_then(|t| committed_field(t, "restart_parallel", "speedup_vs_single_thread"));

    let doc = JsonValue::object([
        ("bench", JsonValue::str("decode_hot")),
        ("dataset", JsonValue::str("ham10000_like/tiny, 8 images per record")),
        ("scan_group", JsonValue::U64(full_group as u64)),
        ("workers", JsonValue::U64(1)),
        ("epochs", JsonValue::U64(epochs)),
        ("images", JsonValue::U64(images)),
        ("decode_cpu_seconds", JsonValue::F64(cpu_secs)),
        (
            "baseline_pre_pr",
            JsonValue::object([(
                "images_per_cpu_sec",
                committed_baseline.map_or(JsonValue::Null, JsonValue::F64),
            )]),
        ),
        (
            "current",
            JsonValue::object([
                ("images_per_cpu_sec", JsonValue::F64(rate)),
                (
                    "speedup_vs_baseline",
                    committed_baseline
                        .filter(|b| *b > 0.0)
                        .map_or(JsonValue::Null, |b| JsonValue::F64(rate / b)),
                ),
            ]),
        ),
        (
            "restart_parallel",
            JsonValue::object([
                ("restart_interval", JsonValue::U64(u64::from(RESTART_INTERVAL))),
                ("workers", JsonValue::U64(SEGMENT_WORKERS as u64)),
                ("modeled", JsonValue::Bool(true)),
                ("single_thread_images_per_cpu_sec", JsonValue::F64(restart_seq_rate)),
                ("images_per_cpu_sec", JsonValue::F64(restart_par_rate)),
                ("speedup_vs_single_thread", JsonValue::F64(restart_speedup)),
            ]),
        ),
    ]);
    let out = format!("{root}/target/BENCH_decode.json");
    match std::fs::write(&out, doc.render() + "\n") {
        Ok(()) => println!("measurement written to {out}"),
        Err(e) => println!("could not write {out}: {e}"),
    }

    // Regression gate against the committed trajectory point.
    if let Some(committed) = committed_current.filter(|c| *c > 0.0) {
        let tolerance: f64 = std::env::var("PCR_BENCH_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.20);
        let floor = committed * (1.0 - tolerance);
        println!(
            "committed current: {committed:.1} images/CPU-sec, floor at {:.0}% = {floor:.1}",
            (1.0 - tolerance) * 100.0
        );
        assert!(
            rate >= floor,
            "decode throughput regression: measured {rate:.1} images/CPU-sec is more than \
             {:.0}% below the committed {committed:.1} (floor {floor:.1}); investigate or \
             re-baseline BENCH_decode.json",
            tolerance * 100.0
        );
    } else {
        println!("no committed BENCH_decode.json current number: gate skipped");
    }

    // Multi-core gate. Gated on the modeled speedup ratio, not the
    // absolute modeled throughput: CPU steal on a shared runner scales
    // the numerator and denominator of the ratio together (both come
    // from the same observed segment times), so the ratio holds within a
    // few percent even when absolute numbers swing 35%. Absolute entropy
    // throughput is already covered by the single-thread gate above —
    // the restart corpus runs the same hot path. What this catches is
    // parallelization-quality regressions: a coarsened restart interval,
    // a serialized scan, or segment skew would all drop the ratio.
    if let Some(committed) = committed_restart_speedup.filter(|c| *c > 0.0) {
        let tolerance: f64 = std::env::var("PCR_BENCH_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.20);
        let floor = committed * (1.0 - tolerance);
        println!(
            "committed restart-parallel speedup: {committed:.2}x on \
             {SEGMENT_WORKERS} workers, floor {floor:.2}x"
        );
        assert!(
            restart_speedup >= floor,
            "restart-parallel decode regression: modeled {restart_speedup:.2}x over \
             single-thread is below the committed floor {floor:.2}x; investigate or \
             re-baseline BENCH_decode.json"
        );
        assert!(
            restart_speedup > 1.5,
            "restart-parallel model no longer clears 1.5x over single-thread \
             (got {restart_speedup:.2}x on {SEGMENT_WORKERS} workers)"
        );
    } else {
        println!("no committed restart_parallel speedup: multi-core gate skipped");
    }
}
