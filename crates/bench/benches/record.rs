//! PCR record-format benchmarks: build, parse, prefix assembly, and the
//! images-per-record layout ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcr_core::{PcrRecord, PcrRecordBuilder, SampleMeta};
use pcr_jpeg::{encode, EncodeConfig, ImageBuf};

fn test_image(seed: u32) -> ImageBuf {
    let side = 48u32;
    let mut data = Vec::with_capacity((side * side * 3) as usize);
    for y in 0..side {
        for x in 0..side {
            let v = ((x * 7 + y * 3 + seed * 13) % 256) as u8;
            data.push(v);
            data.push(v.wrapping_add(50));
            data.push(255 - v);
        }
    }
    ImageBuf::from_raw(side, side, 3, data).expect("valid")
}

fn progressive_jpegs(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| encode(&test_image(i as u32), &EncodeConfig::progressive(85)).unwrap())
        .collect()
}

fn build_record(jpegs: &[Vec<u8>]) -> Vec<u8> {
    let mut b = PcrRecordBuilder::with_default_groups();
    for (i, j) in jpegs.iter().enumerate() {
        b.add_progressive_jpeg(SampleMeta { label: i as u32, id: format!("i{i}") }, j.clone())
            .unwrap();
    }
    b.build().unwrap()
}

fn bench_build_and_parse(c: &mut Criterion) {
    let jpegs = progressive_jpegs(16);
    let mut g = c.benchmark_group("record");
    g.sample_size(30);
    g.bench_function("build_16_images", |b| b.iter(|| build_record(&jpegs)));
    let bytes = build_record(&jpegs);
    g.bench_function("parse_16_images", |b| b.iter(|| PcrRecord::parse(&bytes).unwrap()));
    let rec = PcrRecord::parse(&bytes).unwrap();
    g.bench_function("jpeg_at_group_2", |b| b.iter(|| rec.jpeg_at_group(7, 2).unwrap()));
    g.bench_function("jpeg_at_group_10", |b| b.iter(|| rec.jpeg_at_group(7, 10).unwrap()));
    g.finish();
}

fn bench_images_per_record(c: &mut Criterion) {
    let mut g = c.benchmark_group("record_size_ablation");
    g.sample_size(15);
    for n in [4usize, 16, 64] {
        let jpegs = progressive_jpegs(n);
        g.bench_with_input(BenchmarkId::new("build", n), &jpegs, |b, jpegs| {
            b.iter(|| build_record(jpegs))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build_and_parse, bench_images_per_record);
criterion_main!(benches);
