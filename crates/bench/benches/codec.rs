//! Codec microbenchmarks: encode/decode/transcode throughput, including
//! the paper's Appendix A.5 baseline-vs-progressive decode comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcr_jpeg::{decode, encode, to_progressive, EncodeConfig, ImageBuf};

fn test_image(side: u32) -> ImageBuf {
    let mut data = Vec::with_capacity((side * side * 3) as usize);
    for y in 0..side {
        for x in 0..side {
            let fx = x as f32 / side as f32;
            let fy = y as f32 / side as f32;
            let v = 128.0 + 80.0 * (fx * 11.0).sin() * (fy * 7.0).cos() + 20.0 * (fx * 50.0).sin();
            data.push(v.clamp(0.0, 255.0) as u8);
            data.push((v * 0.7 + 40.0).clamp(0.0, 255.0) as u8);
            data.push((220.0 - v * 0.6).clamp(0.0, 255.0) as u8);
        }
    }
    ImageBuf::from_raw(side, side, 3, data).expect("valid")
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode");
    g.sample_size(20);
    for side in [64u32, 128] {
        let img = test_image(side);
        let pixels = u64::from(side) * u64::from(side);
        g.throughput(Throughput::Elements(pixels));
        g.bench_with_input(BenchmarkId::new("baseline_q85", side), &img, |b, img| {
            b.iter(|| encode(img, &EncodeConfig::baseline(85)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("progressive_q85", side), &img, |b, img| {
            b.iter(|| encode(img, &EncodeConfig::progressive(85)).unwrap())
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode");
    g.sample_size(30);
    let img = test_image(128);
    let baseline = encode(&img, &EncodeConfig::baseline(85)).unwrap();
    let progressive = encode(&img, &EncodeConfig::progressive(85)).unwrap();
    // The paper's A.5 result: progressive decode costs ~40-50% extra.
    g.bench_function("baseline_128", |b| b.iter(|| decode(&baseline).unwrap()));
    g.bench_function("progressive_128", |b| b.iter(|| decode(&progressive).unwrap()));
    // Partial decode (scan 2 prefix) is *cheaper* than full decode.
    let layout = pcr_jpeg::split_scans(&progressive).unwrap();
    let prefix = pcr_jpeg::assemble_prefix(&progressive, &layout, 2).unwrap();
    g.bench_function("progressive_128_scan2_prefix", |b| b.iter(|| decode(&prefix).unwrap()));
    g.finish();
}

fn bench_transcode(c: &mut Criterion) {
    let mut g = c.benchmark_group("transcode");
    g.sample_size(20);
    let img = test_image(128);
    let baseline = encode(&img, &EncodeConfig::baseline(85)).unwrap();
    g.throughput(Throughput::Bytes(baseline.len() as u64));
    g.bench_function("to_progressive_128", |b| b.iter(|| to_progressive(&baseline).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_transcode);
criterion_main!(benches);
