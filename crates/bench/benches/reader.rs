//! Reader/loader benchmarks: wall-clock cost of planning + running a
//! simulated epoch at different scan groups, and of real decode loading.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcr_datasets::{to_pcr_dataset, DatasetSpec, Scale, SyntheticDataset};
use pcr_loader::{populate_store, DecodeMode, LoaderConfig, PcrLoader};
use pcr_storage::{DeviceProfile, ObjectStore};

fn setup() -> (ObjectStore, pcr_core::MetaDb) {
    let ds = SyntheticDataset::generate(&DatasetSpec::celebahq_smile_like(Scale::Tiny));
    let (pcr, _) = to_pcr_dataset(&ds, 8);
    let store = ObjectStore::new(DeviceProfile::ssd_sata());
    populate_store(&store, &pcr);
    (store, pcr.db)
}

fn bench_epoch_simulation(c: &mut Criterion) {
    let (store, db) = setup();
    let mut g = c.benchmark_group("loader_epoch_sim");
    g.sample_size(40);
    for group in [1usize, 5, 10] {
        g.bench_with_input(BenchmarkId::new("skip_decode", group), &group, |b, &group| {
            b.iter(|| {
                store.device().reset();
                let cfg = LoaderConfig {
                    threads: 8,
                    scan_group: group,
                    shuffle: true,
                    seed: 1,
                    decode: DecodeMode::Skip,
                    retry: Default::default(),
                };
                PcrLoader::new(&store, &db, cfg).run_epoch(0, 0.0)
            })
        });
    }
    g.finish();
}

fn bench_real_decode_epoch(c: &mut Criterion) {
    let (store, db) = setup();
    let mut g = c.benchmark_group("loader_epoch_real_decode");
    g.sample_size(10);
    for group in [1usize, 10] {
        g.bench_with_input(BenchmarkId::new("real", group), &group, |b, &group| {
            b.iter(|| {
                store.device().reset();
                let cfg = LoaderConfig {
                    threads: 8,
                    scan_group: group,
                    shuffle: false,
                    seed: 0,
                    decode: DecodeMode::Real,
                    retry: Default::default(),
                };
                PcrLoader::new(&store, &db, cfg).run_epoch(0, 0.0)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_epoch_simulation, bench_real_decode_epoch);
criterion_main!(benches);
