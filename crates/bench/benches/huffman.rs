//! Huffman ablation: optimized table construction cost and the size win of
//! optimized vs standard tables (the choice `jpegtran -optimize` makes and
//! progressive encoding requires).

use criterion::{criterion_group, criterion_main, Criterion};
use pcr_jpeg::huffman::{gen_optimal_table, HuffDecoder, HuffEncoder, HuffTable};
use pcr_jpeg::{encode, EncodeConfig, ImageBuf};

fn test_image(side: u32) -> ImageBuf {
    let mut data = Vec::with_capacity((side * side * 3) as usize);
    for y in 0..side {
        for x in 0..side {
            let v = ((x * 3 + y * 5) % 251) as u8;
            data.push(v);
            data.push(v.wrapping_add(60));
            data.push(200u8.wrapping_sub(v));
        }
    }
    ImageBuf::from_raw(side, side, 3, data).expect("valid")
}

fn bench_table_generation(c: &mut Criterion) {
    // A realistic skewed AC-symbol distribution.
    let mut freq = vec![0u32; 256];
    for (i, f) in freq.iter_mut().enumerate() {
        *f = (100_000 / (i + 1)) as u32;
    }
    c.bench_function("gen_optimal_table_256", |b| b.iter(|| gen_optimal_table(&freq).unwrap()));
    c.bench_function("huff_encoder_from_table", |b| {
        let t = HuffTable::std_ac_luma();
        b.iter(|| HuffEncoder::from_table(&t).unwrap())
    });
    c.bench_function("huff_decoder_from_table", |b| {
        let t = HuffTable::std_ac_luma();
        b.iter(|| HuffDecoder::from_table(&t).unwrap())
    });
}

fn bench_optimized_vs_standard_size(c: &mut Criterion) {
    let img = test_image(96);
    let std_size = encode(&img, &EncodeConfig::baseline(85)).unwrap().len();
    let opt_size = encode(
        &img,
        &EncodeConfig { optimize_huffman: true, ..EncodeConfig::baseline(85) },
    )
    .unwrap()
    .len();
    eprintln!(
        "# huffman ablation: standard tables {std_size} B, optimized {opt_size} B \
         ({:.1}% smaller)",
        100.0 * (1.0 - opt_size as f64 / std_size as f64)
    );
    let mut g = c.benchmark_group("encode_table_mode");
    g.sample_size(20);
    g.bench_function("standard_tables", |b| {
        b.iter(|| encode(&img, &EncodeConfig::baseline(85)).unwrap())
    });
    g.bench_function("optimized_tables", |b| {
        b.iter(|| {
            encode(&img, &EncodeConfig { optimize_huffman: true, ..EncodeConfig::baseline(85) })
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table_generation, bench_optimized_vs_standard_size);
criterion_main!(benches);
