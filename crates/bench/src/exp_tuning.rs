//! Tuning experiments: Figure 7 (MSSIM regression), Figure 8 (loss-probe
//! adaptive tuning), Figure 19 (gradient cosine distances incl. mixtures),
//! Figures 20-22 (cosine dynamic tuning and its rate trace).

use crate::context::{banner, Ctx, STANDARD_GROUPS};
use pcr_metrics::linear_regression;
use pcr_nn::ModelSpec;
use pcr_sim::{
    train_dynamic_cosine, train_dynamic_loss, train_fixed_group, DynamicConfig, Trainer,
};

/// Figure 7: MSSIM vs final accuracy on Cars-like with ShuffleNet, with and
/// without crop augmentation, plus the linear fits.
pub fn fig7(ctx: &Ctx) {
    let model = ModelSpec::shufflenet_like();
    banner("fig7", &[("columns", "variant,group,mssim,final_acc".into())]);
    for crop in [false, true] {
        let mut ds = ctx.dataset("cars");
        if crop {
            for s in ds.train.iter_mut().chain(ds.test.iter_mut()) {
                let w = s.image.width() * 3 / 4;
                let h = s.image.height() * 3 / 4;
                s.image = s.image.center_crop(w, h);
            }
        }
        let variant = if crop { "crop" } else { "no-crop" };
        let (feats, pcr) = ctx.prepare(&ds, &model);
        let cfg = ctx.train_config(&ds);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &g in &STANDARD_GROUPS {
            let trace = train_fixed_group(&feats, &pcr, &model, &cfg, g, &ds.spec.name);
            let m = feats.mean_mssim[&g];
            println!("{variant},{g},{m:.4},{:.4}", trace.final_acc);
            xs.push(m);
            ys.push(trace.final_acc * 100.0);
        }
        let fit = linear_regression(&xs, &ys);
        println!(
            "# {variant} fit: y={:.1}x{:+.1} r2={:.3} p={:.2e}",
            fit.slope, fit.intercept, fit.r2, fit.p_value
        );
    }
}

/// Figure 8: loss-probe adaptive tuning on HAM10000-like, both models,
/// versus the all-scans baseline.
pub fn fig8(ctx: &Ctx) {
    let ds = ctx.dataset("ham10000");
    for model in [ModelSpec::resnet_like(), ModelSpec::shufflenet_like()] {
        let (feats, pcr) = ctx.prepare(&ds, &model);
        let cfg = ctx.train_config(&ds);
        let dyn_cfg = DynamicConfig::default();
        let dynamic = train_dynamic_loss(&feats, &pcr, &model, &cfg, &dyn_cfg, &ds.spec.name);
        let baseline = train_fixed_group(&feats, &pcr, &model, &cfg, 10, &ds.spec.name);
        crate::exp_tta::print_traces("fig8-dynamic", std::slice::from_ref(&dynamic));
        crate::exp_tta::print_traces("fig8-baseline", std::slice::from_ref(&baseline));
        println!(
            "# fig8 {}: dynamic {:.1}s acc {:.4} | baseline {:.1}s acc {:.4}",
            model.name, dynamic.total_time, dynamic.final_acc, baseline.total_time, baseline.final_acc
        );
    }
}

/// Figure 19: gradient cosine similarity per scan group over training,
/// with hard selection and the 50% / 85% mixtures.
pub fn fig19(ctx: &Ctx) {
    let ds = ctx.dataset("ham10000");
    let model = ModelSpec::shufflenet_like();
    let (feats, pcr) = ctx.prepare(&ds, &model);
    let cfg = ctx.train_config(&ds);
    banner("fig19", &[("columns", "epoch,group,cosine_similarity".into())]);
    let mut trainer = Trainer::new(&feats, &pcr, model, cfg.clone());
    let checkpoints = [0usize, 4, 8, 12];
    let mut next = 0usize;
    for e in 0..=*checkpoints.last().unwrap() {
        if next < checkpoints.len() && e == checkpoints[next] {
            for (g, c) in trainer.gradient_similarities(4) {
                println!("{e},{g},{c:.4}");
            }
            next += 1;
        }
        trainer.train_epoch(10);
    }
    // Mixture tolerance: expected bytes per mixture (the continuum).
    banner("fig19-mixtures", &[("columns", "policy,selected,expected_bytes".into())]);
    let sizes: Vec<(usize, f64)> = STANDARD_GROUPS
        .iter()
        .map(|&g| (g, feats.mean_bytes[&g]))
        .collect();
    for (label, w) in [("hard", f64::INFINITY), ("mix85", 100.0), ("mix50", 10.0)] {
        for &g in &STANDARD_GROUPS {
            let policy = if w.is_infinite() {
                pcr_autotune::MixturePolicy::fixed(g)
            } else {
                pcr_autotune::MixturePolicy::selected(&STANDARD_GROUPS, g, w)
            };
            println!("{label},{g},{:.0}", policy.expected_bytes(&sizes));
        }
    }
}

/// Figures 20-22: cosine-distance dynamic tuning (HAM + CelebA), with
/// mixtures, plus the per-epoch training-rate trace of the CelebA run.
pub fn fig20_22(ctx: &Ctx) {
    // Fig 20: HAM on both models with no-mix / 50% / 85% mixtures.
    let ham = ctx.dataset("ham10000");
    for model in [ModelSpec::resnet_like(), ModelSpec::shufflenet_like()] {
        let (feats, pcr) = ctx.prepare(&ham, &model);
        let cfg = ctx.train_config(&ham);
        for (label, w) in [("no-mix", None), ("mix50", Some(10.0)), ("mix85", Some(100.0))] {
            let dyn_cfg = DynamicConfig { mixture_weight: w, ..Default::default() };
            let trace = train_dynamic_cosine(&feats, &pcr, &model, &cfg, &dyn_cfg, &ham.spec.name);
            crate::exp_tta::print_traces(&format!("fig20-{label}"), &[trace]);
        }
        let baseline = train_fixed_group(&feats, &pcr, &model, &cfg, 10, &ham.spec.name);
        crate::exp_tta::print_traces("fig20-baseline", &[baseline]);
    }
    // Fig 21/22: CelebA dynamic (no mix) vs baseline; rate trace printed
    // in the trace rows (img_per_s column = Figure 22).
    let celeb = ctx.dataset("celebahq");
    for model in [ModelSpec::resnet_like(), ModelSpec::shufflenet_like()] {
        let (feats, pcr) = ctx.prepare(&celeb, &model);
        let cfg = ctx.train_config(&celeb);
        let dyn_cfg = DynamicConfig {
            tune_every: 6,
            initial_tune_epoch: 2,
            ..Default::default()
        };
        let trace = train_dynamic_cosine(&feats, &pcr, &model, &cfg, &dyn_cfg, &celeb.spec.name);
        let baseline = train_fixed_group(&feats, &pcr, &model, &cfg, 10, &celeb.spec.name);
        crate::exp_tta::print_traces("fig21-22-dynamic", &[trace]);
        crate::exp_tta::print_traces("fig21-22-baseline", &[baseline]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr_datasets::Scale;

    #[test]
    fn fig19_mixture_bytes_are_continuum() {
        // Mixture expected bytes must sit strictly between hard choices.
        let ctx = Ctx { scale: Scale::Tiny };
        let ds = ctx.dataset("celebahq");
        let (feats, _) = ctx.prepare(&ds, &ModelSpec::resnet_like());
        let sizes: Vec<(usize, f64)> =
            STANDARD_GROUPS.iter().map(|&g| (g, feats.mean_bytes[&g])).collect();
        let hard1 = pcr_autotune::MixturePolicy::fixed(1).expected_bytes(&sizes);
        let hard10 = pcr_autotune::MixturePolicy::fixed(10).expected_bytes(&sizes);
        let mix = pcr_autotune::MixturePolicy::selected(&STANDARD_GROUPS, 1, 10.0)
            .expected_bytes(&sizes);
        assert!(hard1 < mix && mix < hard10);
    }
}
