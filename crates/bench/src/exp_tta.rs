//! Time-to-accuracy experiments: Figures 4, 5, 6 and the full-suite
//! Figures 23-30 (accuracy/loss vs time, accuracy vs epoch, Cars label
//! coarsening).

use crate::context::{banner, Ctx, STANDARD_GROUPS};
use pcr_datasets::{LabelMap, SyntheticDataset};
use pcr_nn::ModelSpec;
use pcr_sim::{train_fixed_group, TrainingTrace};

/// Runs the standard scan-group sweep for one dataset/model/labeling.
pub fn sweep(
    ctx: &Ctx,
    ds: &SyntheticDataset,
    model: &ModelSpec,
    label_map: LabelMap,
) -> Vec<TrainingTrace> {
    let (feats, pcr) = ctx.prepare(ds, model);
    let mut cfg = ctx.train_config(ds);
    cfg.label_map = label_map;
    STANDARD_GROUPS
        .iter()
        .map(|&g| train_fixed_group(&feats, &pcr, model, &cfg, g, &ds.spec.name))
        .collect()
}

/// Prints traces as `group,epoch,time_s,test_acc,train_loss,img_per_s`.
pub fn print_traces(id: &str, traces: &[TrainingTrace]) {
    for t in traces {
        banner(
            id,
            &[
                ("dataset", t.dataset.clone()),
                ("model", t.model.clone()),
                ("group", label_for_group(t.scan_group)),
                ("final_acc", format!("{:.4}", t.final_acc)),
                ("total_time_s", format!("{:.1}", t.total_time)),
            ],
        );
        println!("epoch,time_s,test_acc,train_loss,img_per_s,stall_frac,group");
        for p in &t.points {
            println!(
                "{},{:.2},{},{:.4},{:.0},{:.3},{}",
                p.epoch,
                p.time,
                if p.test_acc.is_nan() { "-".to_string() } else { format!("{:.4}", p.test_acc) },
                p.train_loss,
                p.images_per_sec,
                p.stall_fraction,
                p.scan_group,
            );
        }
    }
}

fn label_for_group(g: usize) -> String {
    match g {
        0 => "Dynamic".to_string(),
        10 => "Baseline".to_string(),
        g => format!("Group_{g}"),
    }
}

/// Summarizes the headline comparison: time for each group to first reach
/// (within tolerance) the baseline's final accuracy.
pub fn print_speedup_summary(id: &str, traces: &[TrainingTrace], tolerance: f64) {
    let baseline = traces
        .iter()
        .find(|t| t.scan_group == 10)
        .expect("baseline trace present");
    let target = baseline.final_acc - tolerance;
    banner(
        &format!("{id}-speedup"),
        &[
            ("target_acc", format!("{target:.4}")),
            ("columns", "group,time_to_target_s,speedup_vs_baseline,final_acc".into()),
        ],
    );
    let base_time = time_to_accuracy(baseline, target);
    for t in traces {
        let tt = time_to_accuracy(t, target);
        let speedup = match (tt, base_time) {
            (Some(t), Some(b)) => format!("{:.2}", b / t),
            _ => "-".to_string(),
        };
        println!(
            "{},{},{},{:.4}",
            label_for_group(t.scan_group),
            tt.map_or("-".to_string(), |t| format!("{t:.1}")),
            speedup,
            t.final_acc
        );
    }
}

/// First virtual time a trace reaches `target` test accuracy.
pub fn time_to_accuracy(trace: &TrainingTrace, target: f64) -> Option<f64> {
    trace
        .points
        .iter()
        .find(|p| !p.test_acc.is_nan() && p.test_acc >= target)
        .map(|p| p.time)
}

/// Figure 4: ImageNet-like and CelebAHQ-like on both models.
pub fn fig4(ctx: &Ctx) {
    for ds_name in ["imagenet", "celebahq"] {
        let ds = ctx.dataset(ds_name);
        for model in [ModelSpec::resnet_like(), ModelSpec::shufflenet_like()] {
            let traces = sweep(ctx, &ds, &model, LabelMap::Identity);
            print_traces("fig4", &traces);
            print_speedup_summary("fig4", &traces, 0.02);
        }
    }
}

/// Figure 5: HAM10000-like on both models.
pub fn fig5(ctx: &Ctx) {
    let ds = ctx.dataset("ham10000");
    for model in [ModelSpec::resnet_like(), ModelSpec::shufflenet_like()] {
        let traces = sweep(ctx, &ds, &model, LabelMap::Identity);
        print_traces("fig5", &traces);
        print_speedup_summary("fig5", &traces, 0.02);
    }
}

/// Figure 6: Cars-like original multiclass vs binary Is-Corvette (ResNet).
pub fn fig6(ctx: &Ctx) {
    let ds = ctx.dataset("cars");
    let model = ModelSpec::resnet_like();
    for map in [LabelMap::Identity, LabelMap::is_corvette()] {
        let traces = sweep(ctx, &ds, &model, map);
        let id = format!("fig6-{}", map.name());
        print_traces(&id, &traces);
        print_speedup_summary(&id, &traces, 0.02);
    }
}

/// Figures 23/24 (accuracy vs time), 25/26 (loss vs time), 27/28 (accuracy
/// vs epoch): all datasets on one model. The same trace data serves all
/// three views; epoch is printed alongside time in every row.
pub fn fig23_28(ctx: &Ctx, model_name: &str) {
    let model = match model_name {
        "shufflenet" => ModelSpec::shufflenet_like(),
        _ => ModelSpec::resnet_like(),
    };
    for ds in ctx.suite() {
        let traces = sweep(ctx, &ds, &model, LabelMap::Identity);
        print_traces(&format!("fig23-28-{model_name}"), &traces);
        print_speedup_summary(&format!("fig23-28-{model_name}"), &traces, 0.02);
    }
}

/// Figures 29/30: Cars label coarsening (Original / Make-Only /
/// Is-Corvette) on both models.
pub fn fig29_30(ctx: &Ctx) {
    let ds = ctx.dataset("cars");
    for model in [ModelSpec::resnet_like(), ModelSpec::shufflenet_like()] {
        for map in [LabelMap::Identity, LabelMap::cars_make_only(), LabelMap::is_corvette()] {
            let traces = sweep(ctx, &ds, &model, map);
            print_traces(&format!("fig29-30-{}", map.name()), &traces);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr_datasets::Scale;

    #[test]
    fn tta_sweep_tiny_celebahq_shows_ordering() {
        let ctx = Ctx { scale: Scale::Tiny };
        let ds = ctx.dataset("celebahq");
        let traces = sweep(&ctx, &ds, &ModelSpec::resnet_like(), LabelMap::Identity);
        assert_eq!(traces.len(), 4);
        // Lower groups must take (weakly) less total time.
        let t = |g: usize| traces.iter().find(|t| t.scan_group == g).unwrap().total_time;
        assert!(t(1) < t(10), "group1 {:.2} vs baseline {:.2}", t(1), t(10));
        assert!(t(2) <= t(5) + 1e-9);
        // And the binary low-frequency task retains accuracy even at g1.
        let a = |g: usize| traces.iter().find(|t| t.scan_group == g).unwrap().final_acc;
        assert!(a(1) > a(10) - 0.15, "g1 acc {} vs baseline {}", a(1), a(10));
    }

    #[test]
    fn time_to_accuracy_finds_crossing() {
        let ctx = Ctx { scale: Scale::Tiny };
        let ds = ctx.dataset("celebahq");
        let traces = sweep(&ctx, &ds, &ModelSpec::resnet_like(), LabelMap::Identity);
        let baseline = traces.iter().find(|t| t.scan_group == 10).unwrap();
        let tt = time_to_accuracy(baseline, baseline.final_acc - 0.05);
        assert!(tt.is_some());
        assert!(tt.unwrap() <= baseline.total_time);
    }
}
