//! Table 1 (dataset statistics), Figure 2 (scan quality progression),
//! Figure 12 (image-size histogram), and Figure 14 (throughput roofline).

use crate::context::{banner, Ctx};
use pcr_datasets::{to_pcr_dataset, IMAGES_PER_RECORD};
use pcr_jpeg::scansplit::{assemble_prefix, split_scans};
use pcr_jpeg::EncodeConfig;
use pcr_metrics::{Log2Histogram, Plane};
use pcr_nn::ModelSpec;
use pcr_storage::DeviceProfile;

/// Table 1: record count, image count, dataset size, JPEG quality, classes.
pub fn table1(ctx: &Ctx) {
    banner("table1", &[("columns", "dataset,records,images,size_mib,jpeg_quality,classes".into())]);
    for ds in ctx.suite() {
        let (pcr, _) = to_pcr_dataset(&ds, IMAGES_PER_RECORD);
        // Estimate the stored quality from the first image's tables.
        let rec = pcr.open_record(0).expect("record");
        let jpeg = rec.jpeg_at_group(1, rec.num_groups()).expect("jpeg");
        let quality = pcr_jpeg::decode_coeffs(&jpeg)
            .expect("decode")
            .estimated_quality()
            .unwrap_or(0);
        println!(
            "{},{},{},{:.2},{},{}",
            ds.spec.name,
            pcr.num_records(),
            pcr.db.num_images(),
            pcr.db.total_bytes() as f64 / (1024.0 * 1024.0),
            quality,
            ds.spec.num_classes,
        );
    }
}

/// Figure 2: bytes, PSNR, and MSSIM of scans 1, 3, and 10 of one image.
pub fn fig2(ctx: &Ctx) {
    let ds = ctx.dataset("imagenet");
    let img = &ds.train[0].image;
    let jpeg = pcr_jpeg::encode(img, &EncodeConfig::progressive(ds.spec.jpeg_quality))
        .expect("encode");
    let layout = split_scans(&jpeg).expect("layout");
    let full = pcr_jpeg::decode(&jpeg).expect("decode");
    let full_luma = full.to_luma();
    banner("fig2", &[("columns", "scan,bytes,psnr_db,msssim".into())]);
    for n in [1usize, 3, 10] {
        let prefix = assemble_prefix(&jpeg, &layout, n).expect("prefix");
        let dec = pcr_jpeg::decode(&prefix).expect("decode");
        let psnr = pcr_jpeg::psnr(&full, &dec);
        let luma = dec.to_luma();
        let ms = pcr_metrics::msssim(
            &Plane::from_u8(full_luma.width() as usize, full_luma.height() as usize, full_luma.data()),
            &Plane::from_u8(luma.width() as usize, luma.height() as usize, luma.data()),
        );
        println!("{n},{},{:.2},{:.4}", prefix.len(), psnr, ms);
    }
}

/// Figure 12: log2 histogram of full-quality encoded image sizes
/// (ImageNet-like).
pub fn fig12(ctx: &Ctx) {
    let ds = ctx.dataset("imagenet");
    let mut hist = Log2Histogram::image_sizes();
    for s in &ds.train {
        let jpeg = pcr_jpeg::encode(&s.image, &EncodeConfig::baseline(ds.spec.jpeg_quality))
            .expect("encode");
        hist.add(jpeg.len() as u64);
    }
    banner("fig12", &[("dataset", ds.spec.name.clone()), ("columns", "bucket_bytes,probability".into())]);
    for (bucket, p) in hist.probabilities() {
        if p > 0.0 {
            println!("{bucket},{p:.4}");
        }
    }
    println!("mode_bucket,{}", hist.mode_bucket());
}

/// Figure 14: system throughput vs per-image byte intensity, with the
/// compute roofs of both models.
pub fn fig14(_ctx: &Ctx) {
    let cluster = DeviceProfile::paper_cluster();
    banner(
        "fig14",
        &[("columns", "model,bytes_per_image,loader_img_s,system_img_s,compute_bound".into())],
    );
    for spec in [ModelSpec::resnet_like(), ModelSpec::shufflenet_like()] {
        let compute = spec.images_per_sec_fp16 * 10.0;
        for pt in pcr_sim::roofline_sweep(&cluster, compute, (2_000.0, 400_000.0), 24, 1024) {
            println!(
                "{},{:.0},{:.0},{:.0},{}",
                spec.name,
                pt.bytes_per_item,
                pt.loader_throughput,
                pt.system_throughput,
                pt.compute_bound
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr_datasets::Scale;

    #[test]
    fn table1_runs_tiny() {
        table1(&Ctx { scale: Scale::Tiny });
    }

    #[test]
    fn fig2_runs_tiny() {
        fig2(&Ctx { scale: Scale::Tiny });
    }

    #[test]
    fn fig14_runs() {
        fig14(&Ctx { scale: Scale::Tiny });
    }
}
