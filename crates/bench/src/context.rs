//! Shared experiment context: dataset generation, featurization caching,
//! training configuration defaults, and output formatting.

use pcr_core::PcrDataset;
use pcr_datasets::{to_pcr_dataset, DatasetSpec, Scale, SyntheticDataset, IMAGES_PER_RECORD};
use pcr_nn::{LrSchedule, ModelSpec};
use pcr_sim::{featurize, FeaturizedDataset, TrainConfig};
use pcr_storage::DeviceProfile;

/// The clustered scan groups used throughout the paper's plots.
pub const STANDARD_GROUPS: [usize; 4] = [1, 2, 5, 10];

/// Shared experiment context.
pub struct Ctx {
    /// Dataset scale.
    pub scale: Scale,
}

impl Ctx {
    /// Parses the scale from a CLI argument (`tiny` / `small` / `full`).
    pub fn from_arg(arg: Option<&str>) -> Self {
        let scale = match arg {
            Some("tiny") => Scale::Tiny,
            Some("full") => Scale::Full,
            _ => Scale::Small,
        };
        Self { scale }
    }

    /// Generates one of the paper's datasets by short name.
    pub fn dataset(&self, short: &str) -> SyntheticDataset {
        let spec = match short {
            "imagenet" => DatasetSpec::imagenet_like(self.scale),
            "celebahq" => DatasetSpec::celebahq_smile_like(self.scale),
            "ham10000" => DatasetSpec::ham10000_like(self.scale),
            "cars" => DatasetSpec::cars_like(self.scale),
            other => panic!("unknown dataset {other}"),
        };
        SyntheticDataset::generate(&spec)
    }

    /// All four datasets.
    pub fn suite(&self) -> Vec<SyntheticDataset> {
        ["imagenet", "celebahq", "ham10000", "cars"]
            .iter()
            .map(|s| self.dataset(s))
            .collect()
    }

    /// Featurizes a dataset for a model at the standard groups and builds
    /// its PCR encoding.
    pub fn prepare(
        &self,
        ds: &SyntheticDataset,
        model: &ModelSpec,
    ) -> (FeaturizedDataset, PcrDataset) {
        let feats = featurize(ds, model, &STANDARD_GROUPS);
        let (pcr, _) = to_pcr_dataset(ds, IMAGES_PER_RECORD);
        (feats, pcr)
    }

    /// The paper-shaped training configuration for a dataset: the 10-worker
    /// Ceph-like cluster, ImageNet schedule for ImageNet, fine-tune schedule
    /// otherwise, with epoch counts scaled to our dataset sizes.
    pub fn train_config(&self, ds: &SyntheticDataset) -> TrainConfig {
        let name = &ds.spec.name;
        let (epochs, lr) = if name.starts_with("ImageNet") {
            (40, LrSchedule { base_lr: 0.2, warmup_epochs: 3.0, decay_epochs: vec![25.0, 34.0], decay_factor: 0.1 })
        } else if name.starts_with("Cars") {
            (60, LrSchedule { base_lr: 0.3, warmup_epochs: 0.0, decay_epochs: vec![40.0], decay_factor: 0.1 })
        } else if name.starts_with("HAM") {
            (30, LrSchedule { base_lr: 0.1, warmup_epochs: 0.0, decay_epochs: vec![20.0], decay_factor: 0.1 })
        } else {
            (24, LrSchedule { base_lr: 0.05, warmup_epochs: 0.0, decay_epochs: vec![16.0], decay_factor: 0.1 })
        };
        // Batch scaled to dataset size so an epoch has several updates.
        let batch = (ds.train.len() / 8).clamp(4, 128);
        TrainConfig {
            storage: self.storage_for(ds),
            workers: 10,
            loader_threads: 8,
            batch_size: batch,
            epochs,
            lr,
            eval_every: 2,
            ..TrainConfig::default()
        }
    }

    /// A storage profile scaled so that our (smaller) datasets sit in the
    /// same storage-bound regime as the paper's testbed: the paper's 437
    /// MiB/s cluster feeding 4 050-7 500 img/s of compute at ~110 KiB/image
    /// is bandwidth-starved at full quality; we preserve the ratio
    /// `bandwidth / (compute_rate * mean_image_bytes)` for each dataset.
    pub fn storage_for(&self, ds: &SyntheticDataset) -> DeviceProfile {
        let paper = DeviceProfile::paper_cluster();
        // Rough mean full-quality image size for this dataset (bytes),
        // estimated from one encoded sample.
        let sample = pcr_jpeg::encode(
            &ds.train[0].image,
            &pcr_jpeg::EncodeConfig::progressive(ds.spec.jpeg_quality),
        )
        .expect("encode");
        let ours = sample.len() as f64;
        let paper_img = 110.0 * 1024.0;
        // Effective-bandwidth factor: the paper's raw 400+ MiB/s cluster
        // delivered noticeably lower *achieved* training rates at full
        // quality (Fig. 9: ImageNet/ResNet baseline trains at roughly a
        // third of the from-RAM rate), reflecting replication, placement,
        // and prefetch gaps our idealized queue does not model. 0.35
        // calibrates our simulated full-quality rates to those measured
        // ones.
        let efficiency = 0.35;
        let scale = ours / paper_img * efficiency;
        // Per-request costs scale with the same factor: our records are
        // smaller than the paper's ~90 MiB records by exactly `scale`, so
        // keeping seek:transfer proportions faithful requires shrinking
        // both axes together.
        DeviceProfile {
            name: format!("{}-scaled", paper.name),
            sequential_bw_mib_s: paper.sequential_bw_mib_s * scale,
            seek_latency_us: paper.seek_latency_us * scale,
            request_overhead_us: paper.request_overhead_us * scale,
        }
    }
}

/// Prints a labelled CSV header line: `# <id> | key=value ...`.
pub fn banner(id: &str, kv: &[(&str, String)]) {
    let kvs: Vec<String> = kv.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!("# {id} | {}", kvs.join(" "));
}

/// Formats seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else {
        format!("{s:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Ctx::from_arg(Some("tiny")).scale, Scale::Tiny);
        assert_eq!(Ctx::from_arg(Some("full")).scale, Scale::Full);
        assert_eq!(Ctx::from_arg(None).scale, Scale::Small);
        assert_eq!(Ctx::from_arg(Some("bogus")).scale, Scale::Small);
    }

    #[test]
    fn datasets_resolve() {
        let ctx = Ctx { scale: Scale::Tiny };
        for name in ["imagenet", "celebahq", "ham10000", "cars"] {
            let ds = ctx.dataset(name);
            assert!(!ds.train.is_empty());
        }
    }

    #[test]
    fn storage_scaling_preserves_regime() {
        // Full-quality loading must sit near/below the compute roof, and
        // scan-group-1 loading must clear it — for every dataset.
        let ctx = Ctx { scale: Scale::Tiny };
        for ds in ctx.suite() {
            let profile = ctx.storage_for(&ds);
            let sample = pcr_jpeg::encode(
                &ds.train[0].image,
                &pcr_jpeg::EncodeConfig::progressive(ds.spec.jpeg_quality),
            )
            .unwrap();
            let mean = sample.len() as f64;
            let x_full = pcr_sim::loader_throughput(&profile, mean, 16);
            let compute = 445.0 * 10.0;
            assert!(
                x_full < compute * 2.0,
                "{}: full-quality loading ({x_full:.0}/s) unexpectedly far above compute",
                ds.spec.name
            );
            let x_g1 = pcr_sim::loader_throughput(&profile, mean / 5.0, 16);
            assert!(x_g1 > x_full * 3.0);
        }
    }

    #[test]
    fn train_config_scales_batch() {
        let ctx = Ctx { scale: Scale::Tiny };
        let ds = ctx.dataset("celebahq");
        let cfg = ctx.train_config(&ds);
        assert!(cfg.batch_size >= 4);
        assert!(cfg.batch_size * 4 <= ds.train.len().max(16));
    }
}
