//! Systems microbenchmarks: Figure 9 (training image rates), Figure 11
//! (data-stall traces), Figure 18 (reader throughput + prediction + batch
//! times), Appendix A.5 (decode overhead), and the layout / record-size
//! ablations.

use crate::context::{banner, Ctx, STANDARD_GROUPS};
use pcr_datasets::{to_pcr_dataset, IMAGES_PER_RECORD};
use pcr_loader::{populate_store, DecodeMode, LoaderConfig, PcrLoader};
use pcr_nn::ModelSpec;
use pcr_sim::{run_pipeline, ComputeUnit, Trainer};
use pcr_storage::{DeviceProfile, ObjectStore};

/// Figure 9: achieved training rates per dataset, model, and scan group,
/// plus the from-RAM (compute-bound) reference rates.
pub fn fig9(ctx: &Ctx) {
    banner("fig9", &[("columns", "dataset,model,group,images_per_sec,ram_rate".into())]);
    for ds in ctx.suite() {
        for model in [ModelSpec::resnet_like(), ModelSpec::shufflenet_like()] {
            let (feats, pcr) = ctx.prepare(&ds, &model);
            let cfg = ctx.train_config(&ds);
            let trainer = Trainer::new(&feats, &pcr, model.clone(), cfg);
            let ram_rate = trainer.compute_rate();
            for &g in &STANDARD_GROUPS {
                let t = trainer.simulate_epoch_timing(g);
                println!(
                    "{},{},{},{:.0},{:.0}",
                    ds.spec.name,
                    model.name,
                    g,
                    t.images_per_sec(),
                    ram_rate
                );
            }
        }
    }
}

/// Figure 11: per-iteration data load (stall) times on the ImageNet-like
/// dataset with ResNet, for each scan group.
pub fn fig11(ctx: &Ctx) {
    let ds = ctx.dataset("imagenet");
    let model = ModelSpec::resnet_like();
    let (feats, pcr) = ctx.prepare(&ds, &model);
    let cfg = ctx.train_config(&ds);
    let trainer = Trainer::new(&feats, &pcr, model, cfg);
    banner("fig11", &[("columns", "group,iteration,data_stall_s".into())]);
    for &g in &STANDARD_GROUPS {
        let t = trainer.simulate_epoch_timing(g);
        for it in t.iterations.iter().take(40) {
            println!("{},{},{:.4}", g, it.iter, it.data_stall);
        }
        println!(
            "# group {} summary: stall_fraction={:.3} rate={:.0} img/s",
            g,
            t.stall_fraction(),
            t.images_per_sec()
        );
    }
}

/// Figure 18: reader microbenchmark on the CelebAHQ-like dataset and an
/// SSD profile — measured mean throughput per scan, the Lemma-A.3
/// prediction extrapolated from scan 10, and per-record batch times.
pub fn fig18(ctx: &Ctx) {
    let ds = ctx.dataset("celebahq");
    // The paper's reader benchmark uses 1024-image records; large records
    // amortize per-request overhead so the size-ratio prediction holds.
    let (pcr, _) = to_pcr_dataset(&ds, 128);
    let store = ObjectStore::new(DeviceProfile::ssd_sata());
    populate_store(&store, &pcr);
    banner(
        "fig18",
        &[("columns", "scan,measured_img_s,predicted_img_s,mean_batch_time_ms".into())],
    );
    // Scan-10 reference rate for the prediction.
    let full_bytes = pcr.db.mean_image_bytes_at_group(10);
    let run = |g: usize| {
        store.device().reset();
        let cfg = LoaderConfig {
            threads: 8,
            scan_group: g,
            shuffle: false,
            seed: 0,
            decode: DecodeMode::Skip,
            ..LoaderConfig::default()
        };
        PcrLoader::new(&store, &pcr.db, cfg).run_epoch(0, 0.0)
    };
    let full = run(10);
    let full_rate = full.images_per_sec();
    for g in 1..=10usize {
        let r = run(g);
        let predicted = full_rate * full_bytes / pcr.db.mean_image_bytes_at_group(g).max(1.0);
        let batch_times: Vec<f64> = r.records.iter().map(|rec| rec.ready - rec.issued).collect();
        let mean_batch = pcr_metrics::mean(&batch_times);
        println!(
            "{},{:.0},{:.0},{:.2}",
            g,
            r.images_per_sec(),
            predicted,
            mean_batch * 1000.0
        );
    }
}

/// Appendix A.5: real decode throughput, baseline vs progressive (and the
/// overhead ratio the paper pegs at 40-50%).
pub fn a5_decode_overhead(ctx: &Ctx) {
    let ds = ctx.dataset("imagenet");
    let images: Vec<_> = ds.train.iter().take(24).map(|s| &s.image).collect();
    let mut baseline_jpegs = Vec::new();
    let mut progressive_jpegs = Vec::new();
    for img in images.iter() {
        baseline_jpegs.push(
            pcr_jpeg::encode(img, &pcr_jpeg::EncodeConfig::baseline(ds.spec.jpeg_quality))
                .expect("encode"),
        );
        progressive_jpegs.push(
            pcr_jpeg::encode(img, &pcr_jpeg::EncodeConfig::progressive(ds.spec.jpeg_quality))
                .expect("encode"),
        );
    }
    let time_decode = |jpegs: &[Vec<u8>]| {
        let t0 = std::time::Instant::now();
        for j in jpegs {
            let _ = pcr_jpeg::decode(j).expect("decode");
        }
        t0.elapsed().as_secs_f64()
    };
    // Warm up, then measure.
    let _ = time_decode(&baseline_jpegs[..4.min(baseline_jpegs.len())]);
    let tb = time_decode(&baseline_jpegs);
    let tp = time_decode(&progressive_jpegs);
    let rb = images.len() as f64 / tb;
    let rp = images.len() as f64 / tp;
    banner("a5", &[("columns", "format,images_per_sec_per_core".into())]);
    println!("baseline,{rb:.1}");
    println!("progressive,{rp:.1}");
    println!("progressive_overhead,{:.2}", tb.max(1e-12).recip() / tp.max(1e-12).recip());
    println!("# paper: 230 vs 150 img/s (PIL), 40-50% overhead");
}

/// Ablation: PCR scan-group layout vs an interleaved progressive record
/// (scans of each image stored together). Reading quality g from the
/// interleaved layout needs one ranged read *per image* instead of one
/// sequential prefix read per record.
pub fn ablate_layout(ctx: &Ctx) {
    let ds = ctx.dataset("imagenet");
    let (pcr, _) = to_pcr_dataset(&ds, IMAGES_PER_RECORD);
    let store = ObjectStore::new(DeviceProfile::hdd_7200rpm());
    populate_store(&store, &pcr);
    banner("ablate-layout", &[("columns", "layout,group,epoch_seconds,device_reads".into())]);
    for &g in &STANDARD_GROUPS {
        // PCR: one sequential prefix read per record.
        store.device().reset();
        let cfg = LoaderConfig { threads: 8, scan_group: g, shuffle: false, decode: DecodeMode::Skip, ..LoaderConfig::default() };
        let pcr_epoch = PcrLoader::new(&store, &pcr.db, cfg).run_epoch(0, 0.0);
        println!("pcr,{},{:.4},{}", g, pcr_epoch.duration, store.device_stats().reads);

        // Interleaved: per image, read its header+scan byte ranges
        // individually (random access within each record).
        store.device().reset();
        let mut clock = 0.0f64;
        let mut reads = 0u64;
        for (ri, meta) in pcr.db.records.iter().enumerate() {
            let rec = pcr.open_record(ri).expect("record");
            for i in 0..rec.num_images() {
                // One ranged read per image approximating its scattered
                // scans up to group g: same byte count as the PCR chunks,
                // but not sequential with the previous image.
                let bytes: u64 = rec
                    .jpeg_at_group(i, g.min(rec.available_groups()))
                    .map(|j| j.len() as u64)
                    .unwrap_or(0);
                let offset = (i as u64) * 7919 % meta.total_len(); // scattered
                let r = store.read_at(clock, &meta.name, offset, bytes).expect("read");
                clock = r.finish;
                reads += 1;
            }
        }
        println!("interleaved,{},{:.4},{}", g, clock, reads);
    }
}

/// Ablation: images per record vs loader throughput at full quality.
pub fn ablate_record_size(ctx: &Ctx) {
    let ds = ctx.dataset("celebahq");
    banner("ablate-record-size", &[("columns", "images_per_record,images_per_sec".into())]);
    for ipr in [1usize, 4, 16, 64] {
        let (pcr, _) = to_pcr_dataset(&ds, ipr);
        let store = ObjectStore::new(DeviceProfile::hdd_7200rpm());
        populate_store(&store, &pcr);
        let cfg = LoaderConfig { threads: 8, scan_group: 10, shuffle: true, decode: DecodeMode::Skip, ..LoaderConfig::default() };
        let epoch = PcrLoader::new(&store, &pcr.db, cfg).run_epoch(0, 0.0);
        println!("{},{:.0}", ipr, epoch.images_per_sec());
    }
}

/// Validates the pipeline model against the queueing lemmas (a self-check
/// experiment, cf. Appendix A.2 "we find these bounds to be predictive").
pub fn lemma_check(ctx: &Ctx) {
    let ds = ctx.dataset("imagenet");
    let (pcr, _) = to_pcr_dataset(&ds, IMAGES_PER_RECORD);
    let profile = ctx.storage_for(&ds);
    let store = ObjectStore::new(profile.clone());
    populate_store(&store, &pcr);
    banner("lemma-check", &[("columns", "group,simulated_img_s,lemma_img_s,rel_err".into())]);
    for &g in &STANDARD_GROUPS {
        store.device().reset();
        let cfg = LoaderConfig { threads: 8, scan_group: g, shuffle: false, decode: DecodeMode::Skip, ..LoaderConfig::default() };
        let epoch = PcrLoader::new(&store, &pcr.db, cfg).run_epoch(0, 0.0);
        let compute = ComputeUnit { images_per_sec: 1e12, batch_size: 16 };
        let t = run_pipeline(&epoch, &compute, 0.0);
        let mean = pcr.db.mean_image_bytes_at_group(g);
        let lemma = pcr_sim::loader_throughput(&profile, mean, IMAGES_PER_RECORD);
        let rel = (t.images_per_sec() - lemma).abs() / lemma;
        println!("{},{:.0},{:.0},{:.3}", g, t.images_per_sec(), lemma, rel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr_datasets::Scale;

    #[test]
    fn fig18_prediction_close_to_measurement() {
        // Smoke-run fig18's internals at tiny scale and check Lemma A.3
        // predictions track measurements.
        let ctx = Ctx { scale: Scale::Tiny };
        let ds = ctx.dataset("celebahq");
        let (pcr, _) = to_pcr_dataset(&ds, 8);
        let store = ObjectStore::new(DeviceProfile::ssd_sata());
        populate_store(&store, &pcr);
        let run = |g: usize| {
            store.device().reset();
            let cfg = LoaderConfig { threads: 8, scan_group: g, shuffle: false, decode: DecodeMode::Skip, ..LoaderConfig::default() };
            PcrLoader::new(&store, &pcr.db, cfg).run_epoch(0, 0.0)
        };
        let full = run(10);
        let r2 = run(2);
        let predicted = full.images_per_sec() * pcr.db.mean_image_bytes_at_group(10)
            / pcr.db.mean_image_bytes_at_group(2);
        // At tiny scale the fixed per-request overheads (which the pure
        // size-ratio prediction ignores) are a large fraction of each read,
        // so the tolerance is loose; `experiments fig18` at small/full
        // scale tracks much tighter, as in the paper.
        let rel = (r2.images_per_sec() - predicted).abs() / predicted;
        assert!(rel < 0.6, "prediction off by {rel:.2}");
        // Ordering must hold regardless of scale.
        assert!(r2.images_per_sec() > full.images_per_sec());
    }

    #[test]
    fn a5_runs_tiny() {
        a5_decode_overhead(&Ctx { scale: Scale::Tiny });
    }
}
