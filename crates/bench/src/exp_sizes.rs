//! Byte-size and quality-vs-scan experiments: Figure 15 / Appendix A.4
//! (encoding times and space amplification), Figure 16 (scan sizes),
//! Figure 17 (MSSIM per scan), Figure 31 (per-scan sizes of examples), and
//! the 4:2:0 vs 4:4:4 subsampling ablation.

use crate::context::{banner, Ctx};
use pcr_datasets::{test_progressive_jpegs, to_pcr_dataset, to_record_files, IMAGES_PER_RECORD};
use pcr_jpeg::scansplit::split_scans;
use pcr_jpeg::{EncodeConfig, Subsampling};
use pcr_metrics::{quartiles, Plane};

/// Figure 15 + A.4: conversion time and bytes for PCR vs static re-encodes
/// at 50/75/90/95% quality.
pub fn fig15(ctx: &Ctx) {
    banner("fig15", &[("columns", "dataset,format,encode_s,total_mib,space_amplification".into())]);
    for ds in ctx.suite() {
        let (pcr, pcr_secs) = to_pcr_dataset(&ds, IMAGES_PER_RECORD);
        let pcr_bytes = pcr.db.total_bytes();
        println!(
            "{},PCR,{:.2},{:.2},1.00",
            ds.spec.name,
            pcr_secs,
            pcr_bytes as f64 / (1024.0 * 1024.0)
        );
        let mut static_total = 0u64;
        let mut static_secs = 0.0;
        for quality in [50u8, 75, 90, 95] {
            let (records, secs) = to_record_files(&ds, IMAGES_PER_RECORD, quality);
            let bytes: u64 = records.iter().map(|r| r.len() as u64).sum();
            static_total += bytes;
            static_secs += secs;
            println!(
                "{},static-q{},{:.2},{:.2},{:.2}",
                ds.spec.name,
                quality,
                secs,
                bytes as f64 / (1024.0 * 1024.0),
                bytes as f64 / pcr_bytes as f64
            );
        }
        println!(
            "{},static-all-4,{:.2},{:.2},{:.2}",
            ds.spec.name,
            static_secs,
            static_total as f64 / (1024.0 * 1024.0),
            static_total as f64 / pcr_bytes as f64
        );
    }
}

/// Figure 16: cumulative bytes read per scan group, with interquartile
/// ranges across images.
pub fn fig16(ctx: &Ctx) {
    banner("fig16", &[("columns", "dataset,scan,q1_bytes,median_bytes,q3_bytes".into())]);
    for ds in ctx.suite() {
        let jpegs = test_progressive_jpegs(&ds);
        let mut per_scan: Vec<Vec<f64>> = vec![Vec::new(); 11];
        for jpeg in &jpegs {
            let layout = split_scans(jpeg).expect("layout");
            per_scan[0].push(layout.header_len as f64);
            for (g, sizes) in per_scan.iter_mut().enumerate().skip(1) {
                let gg = g.min(layout.num_scans());
                sizes.push(layout.prefix_size(gg - 1) as f64);
            }
        }
        for (scan, sizes) in per_scan.iter().enumerate() {
            let (q1, med, q3) = quartiles(sizes);
            println!("{},{},{:.0},{:.0},{:.0}", ds.spec.name, scan, q1, med, q3);
        }
    }
}

/// Figure 17: MSSIM of the scan-n reconstruction vs full quality, with
/// interquartile ranges.
pub fn fig17(ctx: &Ctx) {
    banner("fig17", &[("columns", "dataset,scan,q1,median,q3".into())]);
    for ds in ctx.suite() {
        let jpegs = test_progressive_jpegs(&ds);
        let sample: Vec<&Vec<u8>> = jpegs.iter().take(16).collect();
        let mut per_scan: Vec<Vec<f64>> = vec![Vec::new(); 11];
        for jpeg in sample {
            let layout = split_scans(jpeg).expect("layout");
            let full = pcr_jpeg::decode(jpeg).expect("decode").to_luma();
            let fp = Plane::from_u8(full.width() as usize, full.height() as usize, full.data());
            for (g, vals) in per_scan.iter_mut().enumerate().skip(1) {
                let gg = g.min(layout.num_scans());
                let prefix =
                    pcr_jpeg::assemble_prefix(jpeg, &layout, gg).expect("prefix");
                let dec = pcr_jpeg::decode(&prefix).expect("decode").to_luma();
                let dp = Plane::from_u8(dec.width() as usize, dec.height() as usize, dec.data());
                vals.push(pcr_metrics::msssim(&fp, &dp));
            }
        }
        for (scan, vals) in per_scan.iter().enumerate().skip(1) {
            let (q1, med, q3) = quartiles(vals);
            println!("{},{},{:.4},{:.4},{:.4}", ds.spec.name, scan, q1, med, q3);
        }
    }
}

/// Figure 31: per-scan byte sizes of one example image per dataset.
pub fn fig31(ctx: &Ctx) {
    banner("fig31", &[("columns", "dataset,scan,cumulative_kib".into())]);
    for ds in ctx.suite() {
        let jpeg = pcr_jpeg::encode(
            &ds.test[0].image,
            &EncodeConfig::progressive(ds.spec.jpeg_quality),
        )
        .expect("encode");
        let layout = split_scans(&jpeg).expect("layout");
        for g in 1..=layout.num_scans() {
            println!(
                "{},{},{:.1}",
                ds.spec.name,
                g,
                layout.prefix_size(g - 1) as f64 / 1024.0
            );
        }
    }
}

/// Ablation: how chroma subsampling changes scan sizes.
pub fn ablate_subsampling(ctx: &Ctx) {
    let ds = ctx.dataset("imagenet");
    banner("ablate-subsampling", &[("columns", "subsampling,scan,median_cumulative_bytes".into())]);
    for (name, sub) in [("4:2:0", Subsampling::S420), ("4:4:4", Subsampling::S444)] {
        let mut per_scan: Vec<Vec<f64>> = vec![Vec::new(); 11];
        for s in ds.test.iter().take(12) {
            let cfg = EncodeConfig { subsampling: sub, ..EncodeConfig::progressive(ds.spec.jpeg_quality) };
            let jpeg = pcr_jpeg::encode(&s.image, &cfg).expect("encode");
            let layout = split_scans(&jpeg).expect("layout");
            for (g, sizes) in per_scan.iter_mut().enumerate().skip(1) {
                let gg = g.min(layout.num_scans());
                sizes.push(layout.prefix_size(gg - 1) as f64);
            }
        }
        for (scan, sizes) in per_scan.iter().enumerate().skip(1) {
            let (_, med, _) = quartiles(sizes);
            println!("{name},{scan},{med:.0}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr_datasets::Scale;

    #[test]
    fn fig16_runs_tiny() {
        fig16(&Ctx { scale: Scale::Tiny });
    }

    #[test]
    fn fig31_runs_tiny() {
        fig31(&Ctx { scale: Scale::Tiny });
    }
}
