//! Extension experiment (paper section 1 motivation): "even for a fixed
//! training task, the ratio of compute to storage in the underlying system
//! may fluctuate over time (e.g., cross-datacenter training, multi-tenant
//! cloud computing), reducing the effectiveness of statically chosen
//! compression parameters."
//!
//! We run the same training job under a bandwidth schedule that drops to
//! 30% mid-run and compare: the full-quality baseline, a statically tuned
//! scan group, and the dynamic gradient-cosine controller. PCRs let the
//! dynamic run keep training at speed through the bandwidth trough.

use crate::context::{banner, Ctx};
use pcr_autotune::select_lowest_qualifying;
use pcr_nn::ModelSpec;
use pcr_sim::Trainer;

/// Bandwidth schedule: nominal, 30% trough, nominal again.
fn bandwidth_at(epoch: usize, epochs: usize) -> f64 {
    let third = epochs / 3;
    if epoch >= third && epoch < 2 * third {
        0.3
    } else {
        1.0
    }
}

/// Runs the fluctuation comparison on the ImageNet-like dataset.
pub fn fluctuate(ctx: &Ctx) {
    let ds = ctx.dataset("imagenet");
    let model = ModelSpec::resnet_like();
    let (feats, pcr) = ctx.prepare(&ds, &model);
    let cfg = ctx.train_config(&ds);
    let epochs = cfg.epochs;
    banner(
        "fluctuate",
        &[
            ("dataset", ds.spec.name.clone()),
            ("schedule", "1.0 / 0.3 / 1.0 bandwidth by thirds".into()),
            ("columns", "strategy,epoch,bandwidth,group,img_per_s,time_s".into()),
        ],
    );

    // Static strategies: always group 10, always group 5.
    for (label, group) in [("static-baseline", 10usize), ("static-g5", 5)] {
        let mut trainer = Trainer::new(&feats, &pcr, model.clone(), cfg.clone());
        for e in 0..epochs {
            trainer.set_bandwidth_scale(bandwidth_at(e, epochs));
            let pt = trainer.train_epoch(group);
            println!(
                "{label},{},{:.2},{},{:.0},{:.2}",
                pt.epoch,
                bandwidth_at(e, epochs),
                pt.scan_group,
                pt.images_per_sec,
                pt.time
            );
        }
        println!(
            "# {label}: total {:.2}s final_acc {:.4}",
            trainer.now(),
            trainer.eval()
        );
    }

    // Dynamic: every 4 epochs pick the cheapest group whose gradients pass
    // the cosine threshold; bandwidth changes shift how much that choice
    // is worth, but the controller needs no reconfiguration.
    let mut trainer = Trainer::new(&feats, &pcr, model.clone(), cfg.clone());
    let mut current = 10usize;
    for e in 0..epochs {
        trainer.set_bandwidth_scale(bandwidth_at(e, epochs));
        if e >= 2 && e % 4 == 2 {
            let sims = trainer.gradient_similarities(4);
            current = select_lowest_qualifying(&sims, 0.9);
            trainer.charge_probe_time(sims.len() * 4);
        }
        let pt = trainer.train_epoch(current);
        println!(
            "dynamic,{},{:.2},{},{:.0},{:.2}",
            pt.epoch,
            bandwidth_at(e, epochs),
            pt.scan_group,
            pt.images_per_sec,
            pt.time
        );
    }
    println!("# dynamic: total {:.2}s final_acc {:.4}", trainer.now(), trainer.eval());
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr_datasets::Scale;

    #[test]
    fn schedule_shape() {
        assert_eq!(bandwidth_at(0, 30), 1.0);
        assert_eq!(bandwidth_at(10, 30), 0.3);
        assert_eq!(bandwidth_at(19, 30), 0.3);
        assert_eq!(bandwidth_at(20, 30), 1.0);
    }

    #[test]
    fn bandwidth_trough_slows_full_quality_epochs() {
        let ctx = Ctx { scale: Scale::Tiny };
        let ds = ctx.dataset("imagenet");
        let model = ModelSpec::resnet_like();
        let (feats, pcr) = ctx.prepare(&ds, &model);
        let cfg = ctx.train_config(&ds);
        let trainer = Trainer::new(&feats, &pcr, model, cfg);
        let nominal = trainer.simulate_epoch_timing(10).duration;
        trainer.set_bandwidth_scale(0.3);
        let trough = trainer.simulate_epoch_timing(10).duration;
        assert!(
            trough > nominal * 1.5,
            "trough epoch {trough:.4}s should be much slower than nominal {nominal:.4}s"
        );
        // Low scan groups are less affected (compute floor).
        trainer.set_bandwidth_scale(0.3);
        let trough_g1 = trainer.simulate_epoch_timing(1).duration;
        assert!(trough_g1 < trough);
    }
}
