//! # pcr-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! PCR paper (see `DESIGN.md` for the experiment index). The `experiments`
//! binary dispatches to the modules here; Criterion microbenchmarks live
//! under `benches/` (including `parallel_loader`, the wall-clock
//! worker-scaling sweep).
//!
//! ```
//! use pcr_bench::{Ctx, STANDARD_GROUPS};
//!
//! let ctx = Ctx::from_arg(Some("tiny"));
//! assert_eq!(ctx.scale, pcr_datasets::Scale::Tiny);
//! assert_eq!(STANDARD_GROUPS, [1, 2, 5, 10]);
//! ```

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod context;
pub mod exp_fluctuate;
pub mod exp_micro;
pub mod exp_sizes;
pub mod exp_tables;
pub mod exp_tta;
pub mod exp_tuning;

pub use context::{Ctx, STANDARD_GROUPS};
