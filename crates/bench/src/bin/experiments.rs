//! The experiment driver: regenerates every table and figure of
//! "Progressive Compressed Records" (VLDB 2021).
//!
//! Usage:
//! ```text
//! experiments <id> [scale]
//!   id:    table1 fig2 fig4 fig5 fig6 fig7 fig8 fig9 fig11 fig12 fig14
//!          fig15 fig16 fig17 fig18 fig19 fig20 fig23 fig24 fig29 fig31
//!          a5 lemma-check ablate-subsampling ablate-layout
//!          ablate-record-size fluctuate all
//!   scale: tiny | small (default) | full
//! ```
//!
//! Output is labelled CSV: `# <id> | key=value ...` banners followed by
//! comma-separated rows, matching the series plotted in the paper.

use pcr_bench::context::Ctx;
use pcr_bench::{exp_fluctuate, exp_micro, exp_sizes, exp_tables, exp_tta, exp_tuning};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let id = args.get(1).map(String::as_str).unwrap_or("help");
    let ctx = Ctx::from_arg(args.get(2).map(String::as_str));

    let start = std::time::Instant::now();
    match id {
        "table1" => exp_tables::table1(&ctx),
        "fig2" => exp_tables::fig2(&ctx),
        "fig4" => exp_tta::fig4(&ctx),
        "fig5" => exp_tta::fig5(&ctx),
        "fig6" => exp_tta::fig6(&ctx),
        "fig7" => exp_tuning::fig7(&ctx),
        "fig8" => exp_tuning::fig8(&ctx),
        "fig9" => exp_micro::fig9(&ctx),
        "fig11" => exp_micro::fig11(&ctx),
        "fig12" => exp_tables::fig12(&ctx),
        "fig14" => exp_tables::fig14(&ctx),
        "fig15" => exp_sizes::fig15(&ctx),
        "fig16" => exp_sizes::fig16(&ctx),
        "fig17" => exp_sizes::fig17(&ctx),
        "fig18" => exp_micro::fig18(&ctx),
        "fig19" => exp_tuning::fig19(&ctx),
        "fig20" | "fig21" | "fig22" => exp_tuning::fig20_22(&ctx),
        "fig23" | "fig25" | "fig27" => exp_tta::fig23_28(&ctx, "resnet"),
        "fig24" | "fig26" | "fig28" => exp_tta::fig23_28(&ctx, "shufflenet"),
        "fig29" | "fig30" => exp_tta::fig29_30(&ctx),
        "fig31" => exp_sizes::fig31(&ctx),
        "a5" => exp_micro::a5_decode_overhead(&ctx),
        "lemma-check" => exp_micro::lemma_check(&ctx),
        "ablate-subsampling" => exp_sizes::ablate_subsampling(&ctx),
        "ablate-layout" => exp_micro::ablate_layout(&ctx),
        "ablate-record-size" => exp_micro::ablate_record_size(&ctx),
        "fluctuate" => exp_fluctuate::fluctuate(&ctx),
        "all" => {
            exp_tables::table1(&ctx);
            exp_tables::fig2(&ctx);
            exp_tta::fig4(&ctx);
            exp_tta::fig5(&ctx);
            exp_tta::fig6(&ctx);
            exp_tuning::fig7(&ctx);
            exp_tuning::fig8(&ctx);
            exp_micro::fig9(&ctx);
            exp_micro::fig11(&ctx);
            exp_tables::fig12(&ctx);
            exp_tables::fig14(&ctx);
            exp_sizes::fig15(&ctx);
            exp_sizes::fig16(&ctx);
            exp_sizes::fig17(&ctx);
            exp_micro::fig18(&ctx);
            exp_tuning::fig19(&ctx);
            exp_tuning::fig20_22(&ctx);
            exp_tta::fig23_28(&ctx, "resnet");
            exp_tta::fig23_28(&ctx, "shufflenet");
            exp_tta::fig29_30(&ctx);
            exp_sizes::fig31(&ctx);
            exp_micro::a5_decode_overhead(&ctx);
            exp_micro::lemma_check(&ctx);
            exp_sizes::ablate_subsampling(&ctx);
            exp_micro::ablate_layout(&ctx);
            exp_micro::ablate_record_size(&ctx);
            exp_fluctuate::fluctuate(&ctx);
        }
        _ => {
            eprintln!(
                "usage: experiments <id> [tiny|small|full]\n\
                 ids: table1 fig2 fig4 fig5 fig6 fig7 fig8 fig9 fig11 fig12\n\
                 fig14 fig15 fig16 fig17 fig18 fig19 fig20 fig23 fig24 fig29\n\
                 fig31 a5 lemma-check ablate-subsampling ablate-layout\n\
                 ablate-record-size fluctuate all"
            );
            std::process::exit(if id == "help" { 0 } else { 2 });
        }
    }
    eprintln!("# experiment '{id}' finished in {:.1}s", start.elapsed().as_secs_f64());
}
