//! Fidelity-trace export: the per-epoch trajectory of an online
//! fidelity-controlled run — scan group chosen, bytes read, cache hit
//! rate, throughput, loss — serialized as JSON so bench runs can record a
//! `BENCH_*.json` file alongside their printed tables.
//!
//! Serialization goes through the workspace's hand-rolled
//! [`JsonValue`] builder (the build is offline,
//! without serde); the format is a single object `{"epochs": [...]}`
//! with one entry per epoch. Non-finite floats serialize as `null` to
//! keep the output valid JSON.

use crate::json::JsonValue;
use std::io;
use std::path::Path;

/// One epoch of a fidelity-controlled run.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityEpoch {
    /// Epoch index.
    pub epoch: u64,
    /// Scan group the controller chose for this epoch.
    pub scan_group: usize,
    /// Compressed bytes delivered to workers this epoch.
    pub bytes_read: u64,
    /// Images delivered this epoch.
    pub images: u64,
    /// Delivered throughput in images per wall-clock second.
    pub images_per_sec: f64,
    /// Store-wide cache hit rate observed at the end of the epoch.
    pub cache_hit_rate: f64,
    /// Training loss the controller observed for this epoch.
    pub loss: f64,
}

/// The per-epoch trajectory of a fidelity-controlled run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FidelityTrace {
    /// Epoch entries in order.
    pub epochs: Vec<FidelityEpoch>,
}

impl FidelityTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one epoch entry.
    pub fn push(&mut self, epoch: FidelityEpoch) {
        self.epochs.push(epoch);
    }

    /// Total bytes read across all epochs.
    pub fn total_bytes(&self) -> u64 {
        self.epochs.iter().map(|e| e.bytes_read).sum()
    }

    /// Total images delivered across all epochs.
    pub fn total_images(&self) -> u64 {
        self.epochs.iter().map(|e| e.images).sum()
    }

    /// Distinct scan groups in first-use order — the controller's
    /// decision trajectory at a glance.
    pub fn groups_used(&self) -> Vec<usize> {
        let mut groups = Vec::new();
        for e in &self.epochs {
            if !groups.contains(&e.scan_group) {
                groups.push(e.scan_group);
            }
        }
        groups
    }

    /// The trace as a [`JsonValue`] tree, for embedding into larger
    /// documents (e.g. `pcr bench --json` reports).
    pub fn to_json_value(&self) -> JsonValue {
        let epochs = self
            .epochs
            .iter()
            .map(|e| {
                JsonValue::object([
                    ("epoch", JsonValue::U64(e.epoch)),
                    ("scan_group", JsonValue::U64(e.scan_group as u64)),
                    ("bytes_read", JsonValue::U64(e.bytes_read)),
                    ("images", JsonValue::U64(e.images)),
                    ("images_per_sec", JsonValue::F64(e.images_per_sec)),
                    ("cache_hit_rate", JsonValue::F64(e.cache_hit_rate)),
                    ("loss", JsonValue::F64(e.loss)),
                ])
            })
            .collect();
        JsonValue::object([("epochs", JsonValue::Array(epochs))])
    }

    /// Serializes the trace as a JSON object `{"epochs": [...]}`.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Writes [`FidelityTrace::to_json`] to `path`.
    pub fn write_json<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FidelityTrace {
        let mut t = FidelityTrace::new();
        t.push(FidelityEpoch {
            epoch: 0,
            scan_group: 10,
            bytes_read: 1000,
            images: 32,
            images_per_sec: 128.5,
            cache_hit_rate: 0.0,
            loss: 1.25,
        });
        t.push(FidelityEpoch {
            epoch: 1,
            scan_group: 5,
            bytes_read: 400,
            images: 32,
            images_per_sec: 200.0,
            cache_hit_rate: 0.75,
            loss: 0.8,
        });
        t
    }

    #[test]
    fn totals_and_groups() {
        let t = sample();
        assert_eq!(t.total_bytes(), 1400);
        assert_eq!(t.total_images(), 64);
        assert_eq!(t.groups_used(), vec![10, 5]);
    }

    #[test]
    fn json_contains_every_field() {
        let json = sample().to_json();
        for needle in [
            "{\"epochs\":[",
            "\"epoch\":0",
            "\"scan_group\":10",
            "\"bytes_read\":1000",
            "\"images\":32",
            "\"images_per_sec\":128.5",
            "\"cache_hit_rate\":0.75",
            "\"loss\":0.8",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Balanced and well-terminated.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut t = FidelityTrace::new();
        t.push(FidelityEpoch {
            epoch: 0,
            scan_group: 1,
            bytes_read: 0,
            images: 0,
            images_per_sec: f64::NAN,
            cache_hit_rate: f64::INFINITY,
            loss: 0.0,
        });
        let json = t.to_json();
        assert!(json.contains("\"images_per_sec\":null"));
        assert!(json.contains("\"cache_hit_rate\":null"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn write_json_round_trips_to_disk() {
        let t = sample();
        let path = std::env::temp_dir().join(format!("pcr_trace_{}.json", std::process::id()));
        t.write_json(&path).unwrap();
        let read_back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read_back, t.to_json());
        let _ = std::fs::remove_file(&path);
    }
}
