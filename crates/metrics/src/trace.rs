//! Fidelity-trace export: the per-epoch trajectory of an online
//! fidelity-controlled run — scan group chosen, why it was chosen
//! ([`TriggerKind`] + per-group probe scores), bytes read, cache hit
//! rate, throughput, loss — serialized as JSON so bench runs can record a
//! `BENCH_*.json` file alongside their printed tables.
//!
//! The same schema backs the container's durable decision log
//! (`pcr-core::declog`, FORMAT.md §7): one [`FidelityEpoch`] per
//! controller decision, with the wall-clock-only `images_per_sec` field
//! excluded from the durable form so replays stay byte-deterministic.
//!
//! Serialization goes through the workspace's hand-rolled
//! [`JsonValue`] builder (the build is offline,
//! without serde); the format is a single object `{"epochs": [...]}`
//! with one entry per epoch. Non-finite floats serialize as `null` to
//! keep the output valid JSON.

use crate::json::JsonValue;
use std::fmt;
use std::io;
use std::path::Path;

/// Why an epoch ran at its scan group — the decision kind recorded per
/// epoch in traces and in the container's durable decision log.
///
/// The `u8` wire values are normative (FORMAT.md §7) and must never be
/// renumbered: committed decision logs encode them on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum TriggerKind {
    /// First epoch of a run: the controller starts at full quality.
    Start = 0,
    /// No plateau fired; the previous epoch's scan group carries over.
    #[default]
    Hold = 1,
    /// The plateau detector tripped for the first time and the
    /// controller tuned down to the cheapest qualifying group.
    Plateau = 2,
    /// A later plateau re-selected the group (`FidelityConfig::retune`).
    Retune = 3,
    /// No controller: a fixed scan group was requested for the run.
    Fixed = 4,
    /// Storage faults degraded or quarantined records this epoch. An
    /// additive audit record appended *after* the epoch's controller
    /// decision — never a controller decision itself. Its record reuses
    /// the standard wire fields: `images` carries the degraded-record
    /// count and `loss` the quarantined-record count (FORMAT.md §7).
    Degraded = 5,
}

impl TriggerKind {
    /// Every kind, in wire order.
    pub const ALL: [TriggerKind; 6] = [
        TriggerKind::Start,
        TriggerKind::Hold,
        TriggerKind::Plateau,
        TriggerKind::Retune,
        TriggerKind::Fixed,
        TriggerKind::Degraded,
    ];

    /// The normative wire discriminant (FORMAT.md §7).
    pub fn wire(self) -> u8 {
        self as u8
    }

    /// Parses a wire discriminant; `None` for unassigned values.
    pub fn from_wire(b: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.wire() == b)
    }

    /// Stable lowercase name, as printed by `pcr inspect --trace` and
    /// accepted by its `--trigger` filter.
    pub fn name(self) -> &'static str {
        match self {
            TriggerKind::Start => "start",
            TriggerKind::Hold => "hold",
            TriggerKind::Plateau => "plateau",
            TriggerKind::Retune => "retune",
            TriggerKind::Fixed => "fixed",
            TriggerKind::Degraded => "degraded",
        }
    }

    /// Inverse of [`TriggerKind::name`] (case-insensitive).
    pub fn from_name(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for TriggerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Fault-recovery counters for one epoch: what the retry/degradation
/// machinery did while the epoch ran. Trace-only observability — these
/// never enter the durable `DecisionRecord` wire form (a zero-fault run
/// must stay byte-identical), though an epoch with any degradation or
/// quarantine additionally logs a [`TriggerKind::Degraded`] record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochFaultCounters {
    /// Read attempts beyond the first, across all records.
    pub retries: u64,
    /// Records delivered at a lower scan group than requested.
    pub degraded_records: u64,
    /// Records dropped after the full degradation ladder failed.
    pub quarantined_records: u64,
    /// Images inside those quarantined records.
    pub quarantined_images: u64,
}

impl EpochFaultCounters {
    /// True when no fault machinery fired at all this epoch.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// One epoch of a fidelity-controlled run.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityEpoch {
    /// Epoch index.
    pub epoch: u64,
    /// Scan group the controller chose for this epoch.
    pub scan_group: usize,
    /// Why this epoch ran at `scan_group`.
    pub trigger: TriggerKind,
    /// `(group, MSSIM-vs-full)` probe scores the controller selects
    /// from; empty when no probe ran (e.g. fixed-group runs).
    pub probe_scores: Vec<(u16, f64)>,
    /// Compressed bytes delivered to workers this epoch.
    pub bytes_read: u64,
    /// Images delivered this epoch.
    pub images: u64,
    /// Delivered throughput in images per wall-clock second.
    pub images_per_sec: f64,
    /// Store-wide cache hit rate observed at the end of the epoch.
    pub cache_hit_rate: f64,
    /// Training loss the controller observed for this epoch.
    pub loss: f64,
    /// Retry/degradation counters for this epoch (all-zero when the
    /// storage plane delivered every read cleanly).
    pub faults: EpochFaultCounters,
}

/// The per-epoch trajectory of a fidelity-controlled run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FidelityTrace {
    /// Epoch entries in order.
    pub epochs: Vec<FidelityEpoch>,
    /// Decision-log records that failed to persist during the run (the
    /// run continues; the durable log is best-effort under disk faults).
    pub log_write_failures: u64,
}

impl FidelityTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one epoch entry.
    pub fn push(&mut self, epoch: FidelityEpoch) {
        self.epochs.push(epoch);
    }

    /// Total bytes read across all epochs.
    pub fn total_bytes(&self) -> u64 {
        self.epochs.iter().map(|e| e.bytes_read).sum()
    }

    /// Total images delivered across all epochs.
    pub fn total_images(&self) -> u64 {
        self.epochs.iter().map(|e| e.images).sum()
    }

    /// Distinct scan groups in first-use order — the controller's
    /// decision trajectory at a glance.
    pub fn groups_used(&self) -> Vec<usize> {
        let mut groups = Vec::new();
        for e in &self.epochs {
            if !groups.contains(&e.scan_group) {
                groups.push(e.scan_group);
            }
        }
        groups
    }

    /// The trace as a [`JsonValue`] tree, for embedding into larger
    /// documents (e.g. `pcr bench --json` reports).
    pub fn to_json_value(&self) -> JsonValue {
        let epochs = self
            .epochs
            .iter()
            .map(|e| {
                let probes = e
                    .probe_scores
                    .iter()
                    .map(|&(g, s)| {
                        JsonValue::object([
                            ("group", JsonValue::U64(u64::from(g))),
                            ("score", JsonValue::F64(s)),
                        ])
                    })
                    .collect();
                JsonValue::object([
                    ("epoch", JsonValue::U64(e.epoch)),
                    ("scan_group", JsonValue::U64(e.scan_group as u64)),
                    ("trigger", JsonValue::str(e.trigger.name())),
                    ("probe_scores", JsonValue::Array(probes)),
                    ("bytes_read", JsonValue::U64(e.bytes_read)),
                    ("images", JsonValue::U64(e.images)),
                    ("images_per_sec", JsonValue::F64(e.images_per_sec)),
                    ("cache_hit_rate", JsonValue::F64(e.cache_hit_rate)),
                    ("loss", JsonValue::F64(e.loss)),
                    (
                        "faults",
                        JsonValue::object([
                            ("retries", JsonValue::U64(e.faults.retries)),
                            ("degraded_records", JsonValue::U64(e.faults.degraded_records)),
                            (
                                "quarantined_records",
                                JsonValue::U64(e.faults.quarantined_records),
                            ),
                            ("quarantined_images", JsonValue::U64(e.faults.quarantined_images)),
                        ]),
                    ),
                ])
            })
            .collect();
        JsonValue::object([
            ("epochs", JsonValue::Array(epochs)),
            ("log_write_failures", JsonValue::U64(self.log_write_failures)),
        ])
    }

    /// Serializes the trace as a JSON object `{"epochs": [...]}`.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Writes [`FidelityTrace::to_json`] to `path`.
    pub fn write_json<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FidelityTrace {
        let mut t = FidelityTrace::new();
        t.push(FidelityEpoch {
            epoch: 0,
            scan_group: 10,
            trigger: TriggerKind::Start,
            probe_scores: vec![(1, 0.62), (5, 0.96), (10, 1.0)],
            bytes_read: 1000,
            images: 32,
            images_per_sec: 128.5,
            cache_hit_rate: 0.0,
            loss: 1.25,
            faults: EpochFaultCounters::default(),
        });
        t.push(FidelityEpoch {
            epoch: 1,
            scan_group: 5,
            trigger: TriggerKind::Plateau,
            probe_scores: vec![(1, 0.62), (5, 0.96), (10, 1.0)],
            bytes_read: 400,
            images: 32,
            images_per_sec: 200.0,
            cache_hit_rate: 0.75,
            loss: 0.8,
            faults: EpochFaultCounters {
                retries: 3,
                degraded_records: 2,
                quarantined_records: 1,
                quarantined_images: 4,
            },
        });
        t
    }

    #[test]
    fn totals_and_groups() {
        let t = sample();
        assert_eq!(t.total_bytes(), 1400);
        assert_eq!(t.total_images(), 64);
        assert_eq!(t.groups_used(), vec![10, 5]);
    }

    #[test]
    fn trigger_wire_values_are_stable_and_round_trip() {
        // Normative wire discriminants (FORMAT.md §7): renumbering any of
        // these breaks committed decision logs.
        let expected = [
            (TriggerKind::Start, 0u8, "start"),
            (TriggerKind::Hold, 1, "hold"),
            (TriggerKind::Plateau, 2, "plateau"),
            (TriggerKind::Retune, 3, "retune"),
            (TriggerKind::Fixed, 4, "fixed"),
            (TriggerKind::Degraded, 5, "degraded"),
        ];
        assert_eq!(expected.len(), TriggerKind::ALL.len());
        for (kind, wire, name) in expected {
            assert_eq!(kind.wire(), wire);
            assert_eq!(TriggerKind::from_wire(wire), Some(kind));
            assert_eq!(kind.name(), name);
            assert_eq!(kind.to_string(), name);
            assert_eq!(TriggerKind::from_name(name), Some(kind));
            assert_eq!(TriggerKind::from_name(&name.to_uppercase()), Some(kind));
        }
        assert_eq!(TriggerKind::from_wire(6), None);
        assert_eq!(TriggerKind::from_wire(255), None);
        assert_eq!(TriggerKind::from_name("bogus"), None);
    }

    #[test]
    fn json_contains_every_field() {
        let json = sample().to_json();
        for needle in [
            "{\"epochs\":[",
            "\"epoch\":0",
            "\"scan_group\":10",
            "\"trigger\":\"start\"",
            "\"trigger\":\"plateau\"",
            "\"probe_scores\":[{\"group\":1,\"score\":0.62}",
            "\"bytes_read\":1000",
            "\"images\":32",
            "\"images_per_sec\":128.5",
            "\"cache_hit_rate\":0.75",
            "\"loss\":0.8",
            "\"faults\":{\"retries\":3,\"degraded_records\":2,\"quarantined_records\":1,\"quarantined_images\":4}",
            "\"faults\":{\"retries\":0",
            "\"log_write_failures\":0",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Balanced and well-terminated.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.ends_with('}'));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut t = FidelityTrace::new();
        t.push(FidelityEpoch {
            epoch: 0,
            scan_group: 1,
            trigger: TriggerKind::Hold,
            probe_scores: Vec::new(),
            bytes_read: 0,
            images: 0,
            images_per_sec: f64::NAN,
            cache_hit_rate: f64::INFINITY,
            loss: 0.0,
            faults: EpochFaultCounters::default(),
        });
        let json = t.to_json();
        assert!(json.contains("\"images_per_sec\":null"));
        assert!(json.contains("\"cache_hit_rate\":null"));
        assert!(json.contains("\"probe_scores\":[]"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn write_json_round_trips_to_disk() {
        let t = sample();
        let path = std::env::temp_dir().join(format!("pcr_trace_{}.json", std::process::id()));
        t.write_json(&path).unwrap();
        let read_back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read_back, t.to_json());
        let _ = std::fs::remove_file(&path);
    }
}
