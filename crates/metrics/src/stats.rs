//! Summary statistics used by the experiment harnesses: means, confidence
//! intervals (the paper plots 95% CIs everywhere), and quartiles (Figures
//! 16-17 show interquartile ranges).

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n-1 denominator; 0 for n < 2).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Two-sided critical value of Student's t at 95% confidence for `df`
/// degrees of freedom (table lookup with asymptotic tail).
pub fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df - 1],
        31..=60 => 2.021,
        61..=120 => 2.000,
        _ => 1.96,
    }
}

/// Mean with a 95% confidence half-width: `(mean, half_width)`.
pub fn mean_ci95(xs: &[f64]) -> (f64, f64) {
    let m = mean(xs);
    if xs.len() < 2 {
        return (m, 0.0);
    }
    let se = std_dev(xs) / (xs.len() as f64).sqrt();
    (m, t_critical_95(xs.len() - 1) * se)
}

/// Linear-interpolated quantile (`q` in `[0, 1]`) of an unsorted slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Median, lower quartile, upper quartile.
pub fn quartiles(xs: &[f64]) -> (f64, f64, f64) {
    (quantile(xs, 0.25), quantile(xs, 0.5), quantile(xs, 0.75))
}

/// Cosine similarity between two equal-length vectors (`1.0` for parallel,
/// `0.0` for orthogonal) — the gradient-similarity measure of Appendix A.6.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// f32 variant of [`cosine_similarity`] for NN gradients.
pub fn cosine_similarity_f32(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut dot = 0f64;
    let mut na = 0f64;
    let mut nb = 0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn ci_formula() {
        let xs = [10.0, 12.0, 14.0];
        let (m, hw) = mean_ci95(&xs);
        assert!((m - 12.0).abs() < 1e-12);
        // sd = 2, se = 2/sqrt(3), t(2) = 4.303
        assert!((hw - 4.303 * 2.0 / 3f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn singleton_ci_is_zero() {
        let (m, hw) = mean_ci95(&[5.0]);
        assert_eq!((m, hw), (5.0, 0.0));
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        let (q1, med, q3) = quartiles(&xs);
        assert!((q1 - 1.75).abs() < 1e-12);
        assert!((med - 2.5).abs() < 1e-12);
        assert!((q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn cosine_basic() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn t_critical_monotone() {
        assert!(t_critical_95(1) > t_critical_95(5));
        assert!(t_critical_95(5) > t_critical_95(200));
        assert!((t_critical_95(1000) - 1.96).abs() < 1e-9);
    }
}
