//! Simple linear regression with a slope significance test — the tool
//! behind the paper's Figure 7 ("y=296.8x-246.2, P-value=4.67e-06" MSSIM vs
//! accuracy fits).

/// Result of an ordinary-least-squares fit `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
    /// Two-sided p-value of the slope (H0: slope = 0).
    pub p_value: f64,
    /// Number of points.
    pub n: usize,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits `y = a*x + b` by least squares. Requires at least 3 points for a
/// p-value (otherwise p = 1).
pub fn linear_regression(x: &[f64], y: &[f64]) -> LinearFit {
    assert_eq!(x.len(), y.len(), "length mismatch");
    let n = x.len();
    assert!(n >= 2, "need at least two points");
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let sxx: f64 = x.iter().map(|v| (v - mx) * (v - mx)).sum();
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let syy: f64 = y.iter().map(|v| (v - my) * (v - my)).sum();
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let intercept = my - slope * mx;
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(a, b)| {
            let e = b - (slope * a + intercept);
            e * e
        })
        .sum();
    let r2 = if syy == 0.0 { 1.0 } else { 1.0 - ss_res / syy };
    let p_value = if n < 3 || sxx == 0.0 {
        1.0
    } else {
        let df = nf - 2.0;
        let se = (ss_res / df / sxx).sqrt();
        if se == 0.0 {
            0.0
        } else {
            let t = (slope / se).abs();
            2.0 * student_t_sf(t, df)
        }
    };
    LinearFit { slope, intercept, r2, p_value, n }
}

/// Survival function (1 - CDF) of Student's t distribution at `t >= 0` with
/// `df` degrees of freedom, via the regularized incomplete beta function.
pub fn student_t_sf(t: f64, df: f64) -> f64 {
    if t <= 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    0.5 * inc_beta(0.5 * df, 0.5, x)
}

/// Regularized incomplete beta function I_x(a, b) via the continued
/// fraction (Numerical Recipes `betai`/`betacf`).
fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos approximation of ln Γ(x).
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_recovered() {
        let x: Vec<f64> = (0..20).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        let fit = linear_regression(&x, &y);
        assert!((fit.slope - 3.0).abs() < 1e-10);
        assert!((fit.intercept + 7.0).abs() < 1e-10);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
        assert!(fit.p_value < 1e-10);
    }

    #[test]
    fn noisy_line_significant() {
        let x: Vec<f64> = (0..30).map(f64::from).collect();
        let mut s = 99u64;
        let y: Vec<f64> = x
            .iter()
            .map(|v| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let noise = ((s >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 4.0;
                2.0 * v + 1.0 + noise
            })
            .collect();
        let fit = linear_regression(&x, &y);
        assert!((fit.slope - 2.0).abs() < 0.2);
        assert!(fit.p_value < 1e-6);
        assert!(fit.r2 > 0.95);
    }

    #[test]
    fn no_relationship_insignificant() {
        // y alternates independently of x.
        let x: Vec<f64> = (0..24).map(f64::from).collect();
        let y: Vec<f64> = (0..24).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let fit = linear_regression(&x, &y);
        assert!(fit.p_value > 0.3, "p = {}", fit.p_value);
        assert!(fit.r2 < 0.2);
    }

    #[test]
    fn t_sf_known_values() {
        // t=2.086, df=20 -> one-sided p ~= 0.025.
        assert!((student_t_sf(2.086, 20.0) - 0.025).abs() < 0.002);
        // t=12.706, df=1 -> ~0.025.
        assert!((student_t_sf(12.706, 1.0) - 0.025).abs() < 0.002);
        // t=1.96, df large -> ~0.025.
        assert!((student_t_sf(1.96, 10_000.0) - 0.025).abs() < 0.002);
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9); // Γ(5)=24
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn predict_uses_fit() {
        let fit = LinearFit { slope: 2.0, intercept: 1.0, r2: 1.0, p_value: 0.0, n: 2 };
        assert_eq!(fit.predict(3.0), 7.0);
    }
}
