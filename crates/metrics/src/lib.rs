//! # pcr-metrics
//!
//! Image-quality metrics and statistics for the PCR reproduction:
//! single-scale SSIM and multiscale SSIM (the paper's compression-tolerance
//! estimator), summary statistics with 95% confidence intervals,
//! ordinary-least-squares regression with slope p-values (Figure 7), log2
//! histograms (Figure 12), and the JSON [`FidelityTrace`] export that
//! records a fidelity-controlled run's per-epoch trajectory.
//!
//! ```
//! use pcr_metrics::{mean_ci95, ssim, Log2Histogram, Plane};
//!
//! // SSIM is 1 for identical planes and degrades with distortion.
//! let a = Plane::from_u8(32, 32, &[120u8; 32 * 32]);
//! let b = Plane::from_u8(32, 32, &[180u8; 32 * 32]);
//! assert!((ssim(&a, &a) - 1.0).abs() < 1e-9);
//! assert!(ssim(&a, &b) < 1.0);
//!
//! // Summary statistics with a 95% confidence interval (Table 2 style).
//! let (mean, ci) = mean_ci95(&[10.0, 11.0, 9.0, 10.5, 9.5]);
//! assert!((mean - 10.0).abs() < 1e-9 && ci > 0.0);
//!
//! // Log2 histogram of image sizes (Figure 12).
//! let mut h = Log2Histogram::image_sizes();
//! h.add(100_000);
//! h.add(110_000);
//! assert_eq!(h.total(), 2);
//! ```

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod histogram;
pub mod json;
pub mod regression;
pub mod ssim;
pub mod stats;
pub mod trace;

pub use histogram::Log2Histogram;
pub use json::JsonValue;
pub use regression::{linear_regression, student_t_sf, LinearFit};
pub use ssim::{msssim, msssim_u8, ssim, Plane};
pub use stats::{
    cosine_similarity, cosine_similarity_f32, mean, mean_ci95, quantile, quartiles, std_dev,
};
pub use trace::{EpochFaultCounters, FidelityEpoch, FidelityTrace, TriggerKind};
