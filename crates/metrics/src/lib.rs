//! # pcr-metrics
//!
//! Image-quality metrics and statistics for the PCR reproduction:
//! single-scale SSIM and multiscale SSIM (the paper's compression-tolerance
//! estimator), summary statistics with 95% confidence intervals,
//! ordinary-least-squares regression with slope p-values (Figure 7), and
//! log2 histograms (Figure 12).

#![warn(missing_docs)]

pub mod histogram;
pub mod regression;
pub mod ssim;
pub mod stats;

pub use histogram::Log2Histogram;
pub use regression::{linear_regression, student_t_sf, LinearFit};
pub use ssim::{msssim, msssim_u8, ssim, Plane};
pub use stats::{
    cosine_similarity, cosine_similarity_f32, mean, mean_ci95, quantile, quartiles, std_dev,
};
