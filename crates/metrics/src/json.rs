//! A minimal JSON document builder — the one serializer behind every
//! machine-readable artifact the workspace emits (`FidelityTrace`
//! exports, `pcr inspect --json`, `pcr bench --json`).
//!
//! The workspace builds offline without serde, so JSON writing is
//! hand-rolled once here instead of once per call site. Only
//! serialization is provided (nothing in the repo parses JSON);
//! non-finite floats render as `null` so output is always valid JSON.
//!
//! ```
//! use pcr_metrics::JsonValue;
//!
//! let doc = JsonValue::object([
//!     ("shards", JsonValue::U64(3)),
//!     ("name", JsonValue::str("derm-tiny")),
//!     ("hit_rate", JsonValue::F64(0.75)),
//!     ("groups", JsonValue::Array(vec![JsonValue::U64(1), JsonValue::U64(5)])),
//! ]);
//! assert_eq!(
//!     doc.render(),
//!     r#"{"shards":3,"name":"derm-tiny","hit_rate":0.75,"groups":[1,5]}"#
//! );
//! ```

use std::fmt::Write as _;

/// A JSON value; build a tree, then [`JsonValue::render`] it.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (rendered without a decimal point).
    U64(u64),
    /// Signed integer (rendered without a decimal point).
    I64(i64),
    /// Floating point; non-finite values render as `null`.
    F64(f64),
    /// String (escaped on render).
    Str(String),
    /// Array of values.
    Array(Vec<JsonValue>),
    /// Object: key-value pairs rendered in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience: a string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// Convenience: an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::U64(42).render(), "42");
        assert_eq!(JsonValue::I64(-7).render(), "-7");
        assert_eq!(JsonValue::F64(1.5).render(), "1.5");
        assert_eq!(JsonValue::F64(f64::NAN).render(), "null");
        assert_eq!(JsonValue::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        let v = JsonValue::str("a\"b\\c\nd\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn nested_structures_render_in_order() {
        let v = JsonValue::object([
            ("b", JsonValue::Array(vec![JsonValue::U64(1), JsonValue::Null])),
            ("a", JsonValue::object([("x", JsonValue::Bool(false))])),
        ]);
        assert_eq!(v.render(), r#"{"b":[1,null],"a":{"x":false}}"#);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::Array(vec![]).render(), "[]");
        assert_eq!(JsonValue::Object(vec![]).render(), "{}");
    }
}
