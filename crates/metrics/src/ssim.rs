//! SSIM and multiscale SSIM (MSSIM) image similarity, after Wang,
//! Simoncelli & Bovik 2003 — the estimator the paper uses to predict how
//! much compression a training task tolerates (section 4.4).

/// A grayscale f64 image plane for metric computation.
#[derive(Debug, Clone)]
pub struct Plane {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major samples (any scale; typically 0..255).
    pub data: Vec<f64>,
}

impl Plane {
    /// Builds a plane from 8-bit luma samples.
    pub fn from_u8(width: usize, height: usize, data: &[u8]) -> Self {
        assert_eq!(data.len(), width * height);
        Self { width, height, data: data.iter().map(|&v| f64::from(v)).collect() }
    }

    /// 2x2 box downsample (floors odd dimensions).
    pub fn downsample2(&self) -> Plane {
        let w = (self.width / 2).max(1);
        let h = (self.height / 2).max(1);
        let mut data = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                let mut s = 0.0;
                let mut n = 0.0;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let sx = (x * 2 + dx).min(self.width - 1);
                        let sy = (y * 2 + dy).min(self.height - 1);
                        s += self.data[sy * self.width + sx];
                        n += 1.0;
                    }
                }
                data.push(s / n);
            }
        }
        Plane { width: w, height: h, data }
    }
}

const C1: f64 = 6.5025; // (0.01 * 255)^2
const C2: f64 = 58.5225; // (0.03 * 255)^2

fn gaussian_kernel(radius: usize, sigma: f64) -> Vec<f64> {
    let mut k = Vec::with_capacity(2 * radius + 1);
    let denom = 2.0 * sigma * sigma;
    for i in 0..=2 * radius {
        let d = i as f64 - radius as f64;
        k.push((-d * d / denom).exp());
    }
    let sum: f64 = k.iter().sum();
    for v in &mut k {
        *v /= sum;
    }
    k
}

/// Separable gaussian filter with edge clamping.
fn filter(p: &Plane, kernel: &[f64]) -> Plane {
    let r = kernel.len() / 2;
    let (w, h) = (p.width, p.height);
    let mut tmp = vec![0.0; w * h];
    for y in 0..h {
        for x in 0..w {
            let mut s = 0.0;
            for (i, &k) in kernel.iter().enumerate() {
                let sx = (x + i).saturating_sub(r).min(w - 1);
                s += p.data[y * w + sx] * k;
            }
            tmp[y * w + x] = s;
        }
    }
    let mut out = vec![0.0; w * h];
    for y in 0..h {
        for x in 0..w {
            let mut s = 0.0;
            for (i, &k) in kernel.iter().enumerate() {
                let sy = (y + i).saturating_sub(r).min(h - 1);
                s += tmp[sy * w + x] * k;
            }
            out[y * w + x] = s;
        }
    }
    Plane { width: w, height: h, data: out }
}

/// Mean SSIM and mean contrast-structure (CS) over a pair of planes.
///
/// Returns `(ssim, cs)`; `cs` is used by the multiscale aggregation.
pub fn ssim_cs(a: &Plane, b: &Plane) -> (f64, f64) {
    assert_eq!((a.width, a.height), (b.width, b.height), "shape mismatch");
    // Kernel radius shrinks for tiny images.
    let radius = 5.min((a.width.min(a.height) - 1) / 2).max(1);
    let kernel = gaussian_kernel(radius, 1.5);

    let mu_a = filter(a, &kernel);
    let mu_b = filter(b, &kernel);
    let sq = |p: &Plane| Plane {
        width: p.width,
        height: p.height,
        data: p.data.iter().map(|v| v * v).collect(),
    };
    let prod = Plane {
        width: a.width,
        height: a.height,
        data: a.data.iter().zip(&b.data).map(|(x, y)| x * y).collect(),
    };
    let sigma_a2 = filter(&sq(a), &kernel);
    let sigma_b2 = filter(&sq(b), &kernel);
    let sigma_ab = filter(&prod, &kernel);

    let n = a.data.len() as f64;
    let mut ssim_sum = 0.0;
    let mut cs_sum = 0.0;
    for i in 0..a.data.len() {
        let (ma, mb) = (mu_a.data[i], mu_b.data[i]);
        let va = (sigma_a2.data[i] - ma * ma).max(0.0);
        let vb = (sigma_b2.data[i] - mb * mb).max(0.0);
        let cov = sigma_ab.data[i] - ma * mb;
        let l = (2.0 * ma * mb + C1) / (ma * ma + mb * mb + C1);
        let cs = (2.0 * cov + C2) / (va + vb + C2);
        ssim_sum += l * cs;
        cs_sum += cs;
    }
    (ssim_sum / n, cs_sum / n)
}

/// Single-scale mean SSIM.
pub fn ssim(a: &Plane, b: &Plane) -> f64 {
    ssim_cs(a, b).0
}

/// The standard 5-scale MS-SSIM weights.
pub const MSSSIM_WEIGHTS: [f64; 5] = [0.0448, 0.2856, 0.3001, 0.2363, 0.1333];

/// Multiscale SSIM. Scales are dropped (with weight renormalization) if the
/// image becomes smaller than 8 pixels on a side.
pub fn msssim(a: &Plane, b: &Plane) -> f64 {
    assert_eq!((a.width, a.height), (b.width, b.height), "shape mismatch");
    let mut pa = a.clone();
    let mut pb = b.clone();
    let mut values = Vec::new(); // (cs or ssim, weight)
    let mut used_weights = Vec::new();
    for (level, &w) in MSSSIM_WEIGHTS.iter().enumerate() {
        let last = level == MSSSIM_WEIGHTS.len() - 1
            || pa.width / 2 < 8
            || pa.height / 2 < 8;
        let (s, cs) = ssim_cs(&pa, &pb);
        values.push(if last { s } else { cs });
        used_weights.push(w);
        if last {
            break;
        }
        pa = pa.downsample2();
        pb = pb.downsample2();
    }
    let wsum: f64 = used_weights.iter().sum();
    let mut out = 1.0f64;
    for (v, w) in values.iter().zip(&used_weights) {
        // Components can be slightly negative on pathological inputs; clamp
        // for the weighted geometric mean.
        out *= v.max(1e-6).powf(w / wsum);
    }
    out
}

/// Convenience: MS-SSIM between two 8-bit luma buffers.
pub fn msssim_u8(width: usize, height: usize, a: &[u8], b: &[u8]) -> f64 {
    msssim(&Plane::from_u8(width, height, a), &Plane::from_u8(width, height, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: usize, h: usize) -> Plane {
        let mut data = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                data.push(((x * 3 + y * 2) % 256) as f64);
            }
        }
        Plane { width: w, height: h, data }
    }

    #[test]
    fn identical_images_score_one() {
        let p = gradient(64, 64);
        assert!((ssim(&p, &p) - 1.0).abs() < 1e-9);
        assert!((msssim(&p, &p) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn noise_lowers_score_monotonically() {
        let p = gradient(64, 64);
        let noisy = |amp: f64| {
            let mut q = p.clone();
            let mut s = 12345u64;
            for v in &mut q.data {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let r = ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
                *v = (*v + amp * r).clamp(0.0, 255.0);
            }
            q
        };
        let s1 = msssim(&p, &noisy(20.0));
        let s2 = msssim(&p, &noisy(80.0));
        assert!(s1 > s2, "{s1} vs {s2}");
        assert!(s1 < 1.0);
        assert!(s2 > 0.0);
    }

    #[test]
    fn constant_shift_hurts_less_than_structure_change() {
        let p = gradient(64, 64);
        let shifted = Plane {
            width: 64,
            height: 64,
            data: p.data.iter().map(|v| (v + 10.0).min(255.0)).collect(),
        };
        let scrambled = Plane {
            width: 64,
            height: 64,
            data: p.data.iter().rev().cloned().collect(),
        };
        assert!(msssim(&p, &shifted) > msssim(&p, &scrambled));
    }

    #[test]
    fn downsample_halves_dimensions() {
        let p = gradient(64, 48);
        let d = p.downsample2();
        assert_eq!((d.width, d.height), (32, 24));
        let dd = d.downsample2().downsample2().downsample2().downsample2();
        assert_eq!((dd.width, dd.height), (2, 1));
    }

    #[test]
    fn small_images_do_not_panic() {
        let p = gradient(16, 16);
        let q = gradient(16, 16);
        let s = msssim(&p, &q);
        assert!((s - 1.0).abs() < 1e-6);
        let tiny = gradient(8, 8);
        assert!(msssim(&tiny, &tiny) > 0.99);
    }

    #[test]
    fn symmetric() {
        let p = gradient(32, 32);
        let mut q = p.clone();
        for (i, v) in q.data.iter_mut().enumerate() {
            *v = (*v + (i % 17) as f64).min(255.0);
        }
        let ab = msssim(&p, &q);
        let ba = msssim(&q, &p);
        assert!((ab - ba).abs() < 1e-12);
    }
}
