//! Log2-bucketed histograms (the paper's Figure 12 image-size histogram
//! uses power-of-two buckets from 32 bytes to 8 MiB).

/// A histogram over power-of-two buckets.
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    /// Lower bound (inclusive) of the first bucket, a power of two.
    pub min_pow: u32,
    /// Upper bound of the last bucket (exclusive), a power of two.
    pub max_pow: u32,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Log2Histogram {
    /// Buckets `[2^min_pow, 2^(min_pow+1)), ..., [2^(max_pow-1), 2^max_pow)`.
    pub fn new(min_pow: u32, max_pow: u32) -> Self {
        assert!(max_pow > min_pow, "empty bucket range");
        Self {
            min_pow,
            max_pow,
            counts: vec![0; (max_pow - min_pow) as usize],
            total: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// The paper's Figure 12 range: 32 B .. 8 MiB.
    pub fn image_sizes() -> Self {
        Self::new(5, 23)
    }

    /// Adds one observation.
    pub fn add(&mut self, value: u64) {
        self.total += 1;
        if value < (1u64 << self.min_pow) {
            self.underflow += 1;
            return;
        }
        let pow = 63 - value.leading_zeros();
        if pow >= self.max_pow {
            self.overflow += 1;
            return;
        }
        self.counts[(pow - self.min_pow) as usize] += 1;
    }

    /// Number of observations recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(bucket lower bound, count)` pairs.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (1u64 << (self.min_pow + i as u32), c))
            .collect()
    }

    /// `(bucket lower bound, probability)` pairs.
    pub fn probabilities(&self) -> Vec<(u64, f64)> {
        let t = self.total.max(1) as f64;
        self.buckets().into_iter().map(|(b, c)| (b, c as f64 / t)).collect()
    }

    /// The bucket lower bound with the highest count (the mode).
    pub fn mode_bucket(&self) -> u64 {
        self.buckets()
            .into_iter()
            .max_by_key(|&(_, c)| c)
            .map(|(b, _)| b)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_right_buckets() {
        let mut h = Log2Histogram::new(5, 10); // 32..1024
        h.add(32); // [32,64)
        h.add(63);
        h.add(64); // [64,128)
        h.add(1023); // [512,1024)
        let b = h.buckets();
        assert_eq!(b[0], (32, 2));
        assert_eq!(b[1], (64, 1));
        assert_eq!(b[4], (512, 1));
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Log2Histogram::new(5, 10);
        h.add(1); // underflow
        h.add(4096); // overflow
        assert_eq!(h.total(), 2);
        assert_eq!(h.buckets().iter().map(|&(_, c)| c).sum::<u64>(), 0);
    }

    #[test]
    fn probabilities_sum_to_at_most_one() {
        let mut h = Log2Histogram::image_sizes();
        for v in [100u64, 1000, 10_000, 110_000, 110_000, 200_000] {
            h.add(v);
        }
        let sum: f64 = h.probabilities().iter().map(|&(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Mode at 65536..131072 (two 110kB images).
        assert_eq!(h.mode_bucket(), 65_536);
    }
}
