//! Top-level JPEG encoding: pixels or raw coefficients -> complete streams.

use crate::bitio::BitWriter;
use crate::consts::*;
use crate::entropy::{encode_scan, encode_scan_restart, EntropySink, StatsSink, WriteSink};
use crate::error::Result;
use crate::frame::{CoeffPlanes, FrameInfo, ScanComponent, ScanInfo, Subsampling};
use crate::huffman::{gen_optimal_table, HuffEncoder, HuffTable};
use crate::image::ImageBuf;
use crate::marker;
use crate::sample::{image_to_planes, planes_to_coeffs};

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeConfig {
    /// libjpeg-style quality factor 1..=100.
    pub quality: u8,
    /// Chroma subsampling for color images.
    pub subsampling: Subsampling,
    /// Emit progressive (SOF2) with the default 10-scan script.
    pub progressive: bool,
    /// Use per-scan optimized Huffman tables. Always effectively true for
    /// progressive output (as with `jpegtran`); selectable for baseline.
    pub optimize_huffman: bool,
    /// Requested restart interval in MCU units (0 = no restart markers).
    /// The encoder rounds it *up* per scan to a whole number of MCU rows
    /// (see [`scan_restart_interval`]) so every restart segment covers a
    /// disjoint band of block rows — the alignment the segment-parallel
    /// decoder exploits.
    pub restart_interval: u16,
}

impl Default for EncodeConfig {
    fn default() -> Self {
        Self {
            quality: 75,
            subsampling: Subsampling::S420,
            progressive: false,
            optimize_huffman: false,
            restart_interval: 0,
        }
    }
}

impl EncodeConfig {
    /// Baseline sequential at the given quality.
    pub fn baseline(quality: u8) -> Self {
        Self { quality, ..Self::default() }
    }

    /// Progressive with the default scan script at the given quality.
    pub fn progressive(quality: u8) -> Self {
        Self { quality, progressive: true, optimize_huffman: true, ..Self::default() }
    }

    /// Same config with the given requested restart interval.
    pub fn with_restart_interval(self, interval: u16) -> Self {
        Self { restart_interval: interval, ..self }
    }
}

/// The effective restart interval for one scan: the requested interval
/// rounded up to a whole number of MCU rows (`blocks_w` of the scanned
/// component for non-interleaved scans, `mcus_x` for interleaved ones),
/// clamped to the largest row multiple a DRI field can hold. Returns 0
/// iff `requested` is 0.
pub fn scan_restart_interval(frame: &FrameInfo, scan: &ScanInfo, requested: u16) -> u16 {
    if requested == 0 {
        return 0;
    }
    let row = if scan.components.len() == 1 {
        frame.components[scan.components[0].comp_index].blocks_w
    } else {
        frame.mcus_x
    };
    let rounded = u32::from(requested).div_ceil(row) * row;
    let max_fit = (u32::from(u16::MAX) / row) * row;
    rounded.min(max_fit) as u16
}

/// The libjpeg default progressive scan script for YCbCr images
/// (`jcparam.c: std_huff_tables` / `jpeg_simple_progression`), producing 10
/// scans. This is what `jpegtran` emits by default and therefore what the
/// paper's scan numbering refers to.
///
/// Scans: 1) DC of all components (Al=1); 2) Y AC 1-5 (Al=2); 3) Cb AC full
/// band (Al=1); 4) Cr AC full band (Al=1); 5) Y AC 6-63 (Al=2); 6) Y AC
/// refine (Al=1); 7) DC refine (Al=0); 8) Cb AC refine (Al=0); 9) Cr AC
/// refine (Al=0); 10) Y AC refine (Al=0).
pub fn default_progressive_script(ncomp: usize) -> Vec<ScanInfo> {
    let sc = |i: usize, dc: u8, ac: u8| ScanComponent { comp_index: i, dc_table: dc, ac_table: ac };
    if ncomp == 1 {
        // Grayscale: libjpeg uses a 6-scan variant.
        return vec![
            ScanInfo { components: vec![sc(0, 0, 0)], ss: 0, se: 0, ah: 0, al: 1 },
            ScanInfo { components: vec![sc(0, 0, 0)], ss: 1, se: 5, ah: 0, al: 2 },
            ScanInfo { components: vec![sc(0, 0, 0)], ss: 6, se: 63, ah: 0, al: 2 },
            ScanInfo { components: vec![sc(0, 0, 0)], ss: 1, se: 63, ah: 2, al: 1 },
            ScanInfo { components: vec![sc(0, 0, 0)], ss: 0, se: 0, ah: 1, al: 0 },
            ScanInfo { components: vec![sc(0, 0, 0)], ss: 1, se: 63, ah: 1, al: 0 },
        ];
    }
    vec![
        // 1: initial DC, all components interleaved.
        ScanInfo {
            components: vec![sc(0, 0, 0), sc(1, 1, 0), sc(2, 1, 0)],
            ss: 0,
            se: 0,
            ah: 0,
            al: 1,
        },
        // 2: low-frequency luma band.
        ScanInfo { components: vec![sc(0, 0, 0)], ss: 1, se: 5, ah: 0, al: 2 },
        // 3/4: full chroma bands at reduced precision.
        ScanInfo { components: vec![sc(1, 0, 1)], ss: 1, se: 63, ah: 0, al: 1 },
        ScanInfo { components: vec![sc(2, 0, 1)], ss: 1, se: 63, ah: 0, al: 1 },
        // 5: rest of luma band.
        ScanInfo { components: vec![sc(0, 0, 0)], ss: 6, se: 63, ah: 0, al: 2 },
        // 6: luma refinement to Al=1.
        ScanInfo { components: vec![sc(0, 0, 0)], ss: 1, se: 63, ah: 2, al: 1 },
        // 7: DC refinement to full precision.
        ScanInfo {
            components: vec![sc(0, 0, 0), sc(1, 1, 0), sc(2, 1, 0)],
            ss: 0,
            se: 0,
            ah: 1,
            al: 0,
        },
        // 8/9: chroma refinement to full precision.
        ScanInfo { components: vec![sc(1, 0, 1)], ss: 1, se: 63, ah: 1, al: 0 },
        ScanInfo { components: vec![sc(2, 0, 1)], ss: 1, se: 63, ah: 1, al: 0 },
        // 10: luma refinement to full precision.
        ScanInfo { components: vec![sc(0, 0, 0)], ss: 1, se: 63, ah: 1, al: 0 },
    ]
}

/// Quantization table set: slot per table id.
pub type QTables = [Option<[u16; 64]>; 4];

/// Builds the standard scaled tables for a config: luma in slot 0, chroma in
/// slot 1 (color only).
pub fn qtables_for(config: &EncodeConfig, ncomp: usize) -> QTables {
    let mut q: QTables = [None, None, None, None];
    q[0] = Some(scale_qtable(&STD_LUMA_QTABLE, config.quality));
    if ncomp > 1 {
        q[1] = Some(scale_qtable(&STD_CHROMA_QTABLE, config.quality));
    }
    q
}

/// Encodes an image to a complete JPEG stream.
pub fn encode(img: &ImageBuf, config: &EncodeConfig) -> Result<Vec<u8>> {
    let frame = FrameInfo::for_encode(
        img.width(),
        img.height(),
        img.channels(),
        config.subsampling,
        config.progressive,
    )?;
    let qtables = qtables_for(config, frame.components.len());
    let planes = image_to_planes(img, &frame)?;
    let coeffs = planes_to_coeffs(&planes, &frame, &qtables)?;
    encode_from_coeffs_restart(
        &frame,
        &coeffs,
        &qtables,
        config.optimize_huffman,
        None,
        config.restart_interval,
    )
}

/// Encodes a complete JPEG stream from already-quantized coefficients.
///
/// This is the `jpegtran` path: the transcoder decodes an existing stream to
/// coefficients and re-encodes them here losslessly. `script` overrides the
/// scan structure (defaults to single sequential scan or the standard
/// progressive script depending on `frame.progressive`).
pub fn encode_from_coeffs(
    frame: &FrameInfo,
    coeffs: &CoeffPlanes,
    qtables: &QTables,
    optimize_huffman: bool,
    script: Option<Vec<ScanInfo>>,
) -> Result<Vec<u8>> {
    encode_from_coeffs_restart(frame, coeffs, qtables, optimize_huffman, script, 0)
}

/// [`encode_from_coeffs`] with restart markers: each scan is split into
/// restart segments of [`scan_restart_interval`] MCU units, with a DRI
/// segment written ahead of any scan whose effective interval differs
/// from the previous one. `restart_interval == 0` is byte-identical to
/// [`encode_from_coeffs`].
pub fn encode_from_coeffs_restart(
    frame: &FrameInfo,
    coeffs: &CoeffPlanes,
    qtables: &QTables,
    optimize_huffman: bool,
    script: Option<Vec<ScanInfo>>,
    restart_interval: u16,
) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(&[0xFF, SOI]);
    marker::write_jfif(&mut out);
    for (id, q) in qtables.iter().enumerate() {
        if let Some(q) = q {
            // Only write tables actually referenced by components.
            if frame.components.iter().any(|c| usize::from(c.tq) == id) {
                marker::write_dqt(&mut out, id as u8, q);
            }
        }
    }
    marker::write_sof(&mut out, frame);

    let scans = script.unwrap_or_else(|| {
        if frame.progressive {
            default_progressive_script(frame.components.len())
        } else {
            vec![sequential_scan(frame)]
        }
    });

    let use_optimized = optimize_huffman || frame.progressive;
    if !use_optimized {
        // Standard tables once, up front.
        marker::write_dht(&mut out, 0, 0, &HuffTable::std_dc_luma());
        marker::write_dht(&mut out, 1, 0, &HuffTable::std_ac_luma());
        if frame.components.len() > 1 {
            marker::write_dht(&mut out, 0, 1, &HuffTable::std_dc_chroma());
            marker::write_dht(&mut out, 1, 1, &HuffTable::std_ac_chroma());
        }
    }

    let mut last_dri: u16 = 0;
    for scan in &scans {
        let interval = scan_restart_interval(frame, scan, restart_interval);
        let (dc_tables, ac_tables) = if use_optimized {
            let mut stats = StatsSink::new();
            encode_scan_restart(frame, coeffs, scan, &mut stats, u32::from(interval))?;
            let mut dc: [Option<HuffTable>; 4] = [None, None, None, None];
            let mut ac: [Option<HuffTable>; 4] = [None, None, None, None];
            for t in 0..4u8 {
                if stats.dc_used(t) {
                    dc[t as usize] = Some(gen_optimal_table(&stats.dc_counts[t as usize])?);
                }
                if stats.ac_used(t) {
                    ac[t as usize] = Some(gen_optimal_table(&stats.ac_counts[t as usize])?);
                }
            }
            for (id, t) in dc.iter().enumerate() {
                if let Some(t) = t {
                    marker::write_dht(&mut out, 0, id as u8, t);
                }
            }
            for (id, t) in ac.iter().enumerate() {
                if let Some(t) = t {
                    marker::write_dht(&mut out, 1, id as u8, t);
                }
            }
            (dc, ac)
        } else {
            let std_dc = [
                Some(HuffTable::std_dc_luma()),
                Some(HuffTable::std_dc_chroma()),
                None,
                None,
            ];
            let std_ac = [
                Some(HuffTable::std_ac_luma()),
                Some(HuffTable::std_ac_chroma()),
                None,
                None,
            ];
            (std_dc, std_ac)
        };

        if interval != last_dri {
            marker::write_dri(&mut out, interval);
            last_dri = interval;
        }
        marker::write_sos(&mut out, frame, scan);

        let mut writer = BitWriter::new();
        {
            let mk = |t: &Option<HuffTable>| -> Result<Option<HuffEncoder>> {
                t.as_ref().map(HuffEncoder::from_table).transpose()
            };
            let mut sink = WriteSink {
                writer: &mut writer,
                dc: [
                    mk(&dc_tables[0])?,
                    mk(&dc_tables[1])?,
                    mk(&dc_tables[2])?,
                    mk(&dc_tables[3])?,
                ],
                ac: [
                    mk(&ac_tables[0])?,
                    mk(&ac_tables[1])?,
                    mk(&ac_tables[2])?,
                    mk(&ac_tables[3])?,
                ],
            };
            encode_scan_restart(frame, coeffs, scan, &mut sink, u32::from(interval))?;
        }
        out.extend_from_slice(&writer.finish());
    }

    out.extend_from_slice(&[0xFF, EOI]);
    Ok(out)
}

/// The single interleaved scan used by sequential frames.
pub fn sequential_scan(frame: &FrameInfo) -> ScanInfo {
    ScanInfo {
        components: frame
            .components
            .iter()
            .enumerate()
            .map(|(i, _)| ScanComponent {
                comp_index: i,
                dc_table: u8::from(i > 0),
                ac_table: u8::from(i > 0),
            })
            .collect(),
        ss: 0,
        se: 63,
        ah: 0,
        al: 0,
    }
}

/// Estimates the entropy-coded size in bytes of one scan without emitting it
/// (used by size-planning tools).
pub fn scan_size_estimate(
    frame: &FrameInfo,
    coeffs: &CoeffPlanes,
    scan: &ScanInfo,
) -> Result<usize> {
    struct CountingSink {
        bits: u64,
    }
    impl EntropySink for CountingSink {
        fn dc_symbol(&mut self, _t: u8, _s: u8) {
            self.bits += 6; // rough average code length
        }
        fn ac_symbol(&mut self, _t: u8, _s: u8) {
            self.bits += 6;
        }
        fn bits(&mut self, _v: u32, n: u32) {
            self.bits += u64::from(n);
        }
    }
    let mut sink = CountingSink { bits: 0 };
    encode_scan(frame, coeffs, scan, &mut sink)?;
    Ok((sink.bits / 8) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_script_shape() {
        let s = default_progressive_script(3);
        assert_eq!(s.len(), 10);
        // First scan: interleaved DC.
        assert_eq!(s[0].components.len(), 3);
        assert!(s[0].is_dc() && !s[0].is_refinement());
        // Scan 7 (index 6): DC refinement.
        assert!(s[6].is_dc() && s[6].is_refinement());
        // Last scan: luma full-precision AC refinement.
        assert_eq!(s[9].al, 0);
        assert_eq!(s[9].ah, 1);
        // Every AC scan is single-component.
        for scan in &s {
            if !scan.is_dc() {
                assert_eq!(scan.components.len(), 1);
            }
        }
    }

    #[test]
    fn gray_script_shape() {
        let s = default_progressive_script(1);
        assert_eq!(s.len(), 6);
        for scan in &s {
            assert_eq!(scan.components.len(), 1);
        }
    }

    #[test]
    fn script_precisions_telescope() {
        // Successive approximation: each band must be refined from its
        // first-pass Al down to 0 in steps of 1.
        let s = default_progressive_script(3);
        // Luma AC band: first pass Al=2 (scans 2 and 5), refined by scan 6
        // (ah=2, al=1) and scan 10 (ah=1, al=0).
        let luma_ac: Vec<_> =
            s.iter().filter(|sc| !sc.is_dc() && sc.components[0].comp_index == 0).collect();
        assert_eq!(luma_ac.len(), 4);
        assert_eq!((luma_ac[2].ah, luma_ac[2].al), (2, 1));
        assert_eq!((luma_ac[3].ah, luma_ac[3].al), (1, 0));
    }

    #[test]
    fn encode_produces_valid_marker_structure() {
        let img = ImageBuf::from_raw(16, 16, 3, vec![128; 16 * 16 * 3]).unwrap();
        let data = encode(&img, &EncodeConfig::baseline(80)).unwrap();
        assert_eq!(&data[..2], &[0xFF, SOI]);
        assert_eq!(&data[data.len() - 2..], &[0xFF, EOI]);
        let data = encode(&img, &EncodeConfig::progressive(80)).unwrap();
        assert_eq!(&data[..2], &[0xFF, SOI]);
        assert_eq!(&data[data.len() - 2..], &[0xFF, EOI]);
        // Progressive must contain SOF2.
        assert!(data.windows(2).any(|w| w == [0xFF, SOF2]));
    }
}
