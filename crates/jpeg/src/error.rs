//! Error types for the JPEG codec.

use std::fmt;

/// Errors produced while encoding, decoding, or transcoding JPEG streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The stream does not begin with an SOI marker or is otherwise not JPEG.
    NotJpeg,
    /// Unexpected end of the input stream.
    UnexpectedEof,
    /// A marker segment declared a length inconsistent with its contents.
    BadSegmentLength {
        /// The marker whose segment was malformed.
        marker: u8,
    },
    /// A frame header (SOF) was invalid or used an unsupported mode.
    UnsupportedFrame(String),
    /// A scan header (SOS) was inconsistent with the frame.
    BadScan(String),
    /// A Huffman table was malformed or a required table was missing.
    BadHuffman(String),
    /// A quantization table was malformed or a required table was missing.
    BadQuant(String),
    /// Entropy-coded data was corrupt (invalid Huffman code or overlong run).
    CorruptData(String),
    /// The image dimensions are zero or exceed implementation limits.
    BadDimensions {
        /// Declared width.
        width: u32,
        /// Declared height.
        height: u32,
    },
    /// Encoder input did not match the declared layout.
    BadInput(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotJpeg => write!(f, "stream is not a JPEG (missing SOI)"),
            Error::UnexpectedEof => write!(f, "unexpected end of JPEG stream"),
            Error::BadSegmentLength { marker } => {
                write!(f, "bad segment length for marker 0xFF{marker:02X}")
            }
            Error::UnsupportedFrame(s) => write!(f, "unsupported frame: {s}"),
            Error::BadScan(s) => write!(f, "bad scan header: {s}"),
            Error::BadHuffman(s) => write!(f, "bad Huffman table: {s}"),
            Error::BadQuant(s) => write!(f, "bad quantization table: {s}"),
            Error::CorruptData(s) => write!(f, "corrupt entropy-coded data: {s}"),
            Error::BadDimensions { width, height } => {
                write!(f, "bad image dimensions {width}x{height}")
            }
            Error::BadInput(s) => write!(f, "bad encoder input: {s}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias used throughout the codec.
pub type Result<T> = std::result::Result<T, Error>;
