//! Lossless transcoding between sequential and progressive representations.
//!
//! This is the `jpegtran` role in the paper's pipeline: entropy-decode an
//! existing JPEG to its quantized coefficients, then re-encode the *same*
//! coefficients with a different scan structure. No requantization happens,
//! so the full-quality reconstruction is bit-identical.

use crate::decoder::decode_coeffs;
use crate::encoder::{encode_from_coeffs, sequential_scan};
use crate::error::{Error, Result};
use crate::frame::ScanInfo;

/// Losslessly converts any supported JPEG into a progressive JPEG using the
/// default 10-scan script (6 scans for grayscale).
pub fn to_progressive(data: &[u8]) -> Result<Vec<u8>> {
    transcode(data, true, None)
}

/// Losslessly converts any supported JPEG into a baseline sequential JPEG
/// with optimized Huffman tables.
pub fn to_sequential(data: &[u8]) -> Result<Vec<u8>> {
    transcode(data, false, None)
}

/// Losslessly re-encodes with full control over the target scan script.
pub fn transcode(data: &[u8], progressive: bool, script: Option<Vec<ScanInfo>>) -> Result<Vec<u8>> {
    let decoded = decode_coeffs(data)?;
    if !decoded.saw_eoi {
        return Err(Error::CorruptData("refusing to transcode truncated stream".into()));
    }
    let mut frame = decoded.frame;
    frame.progressive = progressive;
    let script = match (progressive, script) {
        (_, Some(s)) => Some(s),
        (false, None) => Some(vec![sequential_scan(&frame)]),
        (true, None) => None, // default progressive script
    };
    encode_from_coeffs(&frame, &decoded.coeffs, &decoded.qtables, true, script)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::{count_scans, decode, decode_coeffs};
    use crate::encoder::{encode, EncodeConfig};
    use crate::image::ImageBuf;

    fn test_image(w: u32, h: u32) -> ImageBuf {
        let mut data = Vec::with_capacity((w * h * 3) as usize);
        for y in 0..h {
            for x in 0..w {
                data.push(((x * 7 + y * 3) % 256) as u8);
                data.push(((x + y * y) % 256) as u8);
                data.push(((x * y) % 256) as u8);
            }
        }
        ImageBuf::from_raw(w, h, 3, data).unwrap()
    }

    #[test]
    fn to_progressive_is_lossless_on_coefficients() {
        let img = test_image(48, 48);
        let base = encode(&img, &EncodeConfig::baseline(85)).unwrap();
        let prog = to_progressive(&base).unwrap();
        let a = decode_coeffs(&base).unwrap();
        let b = decode_coeffs(&prog).unwrap();
        assert_eq!(a.coeffs, b.coeffs);
        assert_eq!(a.qtables, b.qtables);
        assert_eq!(count_scans(&prog).unwrap(), 10);
    }

    #[test]
    fn roundtrip_back_to_sequential_is_lossless() {
        let img = test_image(32, 24);
        let base = encode(&img, &EncodeConfig::baseline(75)).unwrap();
        let prog = to_progressive(&base).unwrap();
        let back = to_sequential(&prog).unwrap();
        assert_eq!(decode(&base).unwrap(), decode(&back).unwrap());
        assert_eq!(count_scans(&back).unwrap(), 1);
    }

    #[test]
    fn progressive_size_comparable_to_baseline() {
        // The paper notes progressive files are within ~5% of (often smaller
        // than) baseline. Our optimized progressive should not blow up.
        let img = test_image(96, 96);
        let base = encode(&img, &EncodeConfig::baseline(85)).unwrap();
        let prog = to_progressive(&base).unwrap();
        let ratio = prog.len() as f64 / base.len() as f64;
        assert!(ratio < 1.25, "progressive/baseline size ratio {ratio:.3}");
    }

    #[test]
    fn refuses_truncated_input() {
        let img = test_image(24, 24);
        let base = encode(&img, &EncodeConfig::baseline(85)).unwrap();
        let cut = &base[..base.len() - 10];
        assert!(to_progressive(cut).is_err());
    }
}
