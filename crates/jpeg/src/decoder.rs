//! Top-level JPEG decoding: complete or truncated streams -> coefficients
//! and pixels.
//!
//! Truncated progressive streams (a prefix of scans followed by EOI — the
//! PCR partial-read representation) decode to the best approximation the
//! present scans allow, exactly like libjpeg renders an interrupted
//! download.

use crate::bitio::{split_restart_segments, BitReader};
use crate::consts::*;
use crate::dentropy::{decode_scan_range, mcu_units, DecodeTables};
use crate::error::{Error, Result};
use crate::frame::{CoeffPlanes, FrameInfo, RowBandStore, ScanInfo};
use crate::huffman::HuffDecoder;
use crate::image::ImageBuf;
use crate::marker::{self, Segment, SegmentReader};
use crate::sample::{coeffs_to_planes, coeffs_to_planes_pooled, planes_to_image};

/// Callbacks around entropy-decode work units, letting callers outside
/// this crate attribute wall-clock time to scans and restart segments
/// (the decoder itself takes no timestamps). Only the sequential decode
/// path reports segments; all methods default to no-ops.
pub trait DecodeObserver {
    /// A scan is about to decode as `nsegs` restart segments.
    fn scan_begin(&mut self, scan_idx: usize, nsegs: usize) {
        let _ = (scan_idx, nsegs);
    }
    /// Restart segment `seg` covering `units` MCU units is about to decode.
    fn segment_begin(&mut self, scan_idx: usize, seg: usize, units: u32) {
        let _ = (scan_idx, seg, units);
    }
    /// Restart segment `seg` finished decoding.
    fn segment_end(&mut self, scan_idx: usize, seg: usize) {
        let _ = (scan_idx, seg);
    }
}

/// The default do-nothing observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl DecodeObserver for NoopObserver {}

/// Reusable decode buffers: coefficient planes and sample planes survive
/// across calls to [`decode_with`], so a data-loading hot loop performs no
/// per-image plane allocations (the pixel buffer of the returned
/// [`ImageBuf`] is the only allocation that escapes).
///
/// Buffers are keyed by nothing — any image geometry can reuse them, since
/// pooled vectors are resized (retaining capacity) to each frame's needs.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    coeff_pool: Vec<Vec<i16>>,
    plane_pool: Vec<Vec<u8>>,
}

impl DecodeScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Everything recovered from a JPEG stream before pixel reconstruction.
#[derive(Debug, Clone)]
pub struct DecodedCoeffs {
    /// Frame geometry.
    pub frame: FrameInfo,
    /// Quantized coefficients (partially filled for truncated streams).
    pub coeffs: CoeffPlanes,
    /// Quantization tables by id.
    pub qtables: [Option<[u16; 64]>; 4],
    /// Scan headers in stream order that were (at least partially) decoded.
    pub scans: Vec<ScanInfo>,
    /// True if the stream ended with EOI; false if it simply ran out.
    pub saw_eoi: bool,
}

impl DecodedCoeffs {
    /// Reconstructs pixels from whatever coefficients were decoded.
    pub fn to_image(&self) -> Result<ImageBuf> {
        let planes = coeffs_to_planes(&self.coeffs, &self.frame, &self.qtables)?;
        planes_to_image(&planes, &self.frame)
    }

    /// Estimated source quality factor from the luma quantization table.
    pub fn estimated_quality(&self) -> Option<u8> {
        self.qtables[self.frame.components.first()?.tq as usize]
            .as_ref()
            .map(estimate_quality)
    }
}

/// Decodes a stream fully to an image.
pub fn decode(data: &[u8]) -> Result<ImageBuf> {
    decode_coeffs(data)?.to_image()
}

/// Decodes a stream fully to an image, reusing `scratch` buffers for the
/// coefficient and sample planes. Equivalent to [`decode`] but without the
/// per-image intermediate allocations — the variant wall-clock data
/// loaders call in their worker hot loop.
pub fn decode_with(data: &[u8], scratch: &mut DecodeScratch) -> Result<ImageBuf> {
    let decoded = decode_coeffs_pooled(data, &mut scratch.coeff_pool)?;
    let planes =
        coeffs_to_planes_pooled(&decoded.coeffs, &decoded.frame, &decoded.qtables, &mut scratch.plane_pool)?;
    let img = planes_to_image(&planes, &decoded.frame);
    for p in planes {
        p.recycle_into(&mut scratch.plane_pool);
    }
    decoded.coeffs.recycle_into(&mut scratch.coeff_pool);
    img
}

/// [`decode_with`] plus segment parallelism: restart segments of
/// row-aligned scans decode on up to `workers` threads. Pixel output is
/// identical for every worker count.
pub fn decode_with_workers(
    data: &[u8],
    scratch: &mut DecodeScratch,
    workers: usize,
) -> Result<ImageBuf> {
    let decoded = decode_coeffs_workers(data, &mut scratch.coeff_pool, workers)?;
    let planes = coeffs_to_planes_pooled(
        &decoded.coeffs,
        &decoded.frame,
        &decoded.qtables,
        &mut scratch.plane_pool,
    )?;
    let img = planes_to_image(&planes, &decoded.frame);
    for p in planes {
        p.recycle_into(&mut scratch.plane_pool);
    }
    decoded.coeffs.recycle_into(&mut scratch.coeff_pool);
    img
}

/// Decodes a stream to quantized coefficients plus tables and scan list.
pub fn decode_coeffs(data: &[u8]) -> Result<DecodedCoeffs> {
    decode_coeffs_pooled(data, &mut Vec::new())
}

/// [`decode_coeffs`] with coefficient-plane storage drawn from `pool`
/// (recycle with [`CoeffPlanes::recycle_into`]).
pub fn decode_coeffs_pooled(data: &[u8], pool: &mut Vec<Vec<i16>>) -> Result<DecodedCoeffs> {
    decode_coeffs_opts(data, pool, 1, &mut NoopObserver)
}

/// [`decode_coeffs_pooled`] with restart segments of row-aligned scans
/// decoded on up to `workers` threads. `workers <= 1` is the sequential
/// path; any worker count produces identical coefficients.
pub fn decode_coeffs_workers(
    data: &[u8],
    pool: &mut Vec<Vec<i16>>,
    workers: usize,
) -> Result<DecodedCoeffs> {
    decode_coeffs_opts(data, pool, workers, &mut NoopObserver)
}

/// Sequential [`decode_coeffs_pooled`] reporting every scan and restart
/// segment to `obs` — the hook benchmarks use to time segments without
/// this crate owning a clock.
pub fn decode_coeffs_observed(
    data: &[u8],
    pool: &mut Vec<Vec<i16>>,
    obs: &mut dyn DecodeObserver,
) -> Result<DecodedCoeffs> {
    decode_coeffs_opts(data, pool, 1, obs)
}

fn decode_coeffs_opts(
    data: &[u8],
    pool: &mut Vec<Vec<i16>>,
    workers: usize,
    obs: &mut dyn DecodeObserver,
) -> Result<DecodedCoeffs> {
    let mut reader = SegmentReader::new(data);
    match reader.next_segment()? {
        Segment::Soi => {}
        _ => return Err(Error::NotJpeg),
    }

    let mut qtables: [Option<[u16; 64]>; 4] = [None, None, None, None];
    let mut dc_tables: [Option<HuffDecoder>; 4] = [None, None, None, None];
    let mut ac_tables: [Option<HuffDecoder>; 4] = [None, None, None, None];
    let mut frame: Option<FrameInfo> = None;
    let mut coeffs: Option<CoeffPlanes> = None;
    let mut scans: Vec<ScanInfo> = Vec::new();
    let mut saw_eoi = false;
    let mut restart_interval: u16 = 0;

    loop {
        let seg = match reader.next_segment() {
            Ok(seg) => seg,
            // A truncated stream (no EOI) still yields what was decoded.
            Err(Error::UnexpectedEof) if frame.is_some() => break,
            Err(e) => return Err(e),
        };
        match seg {
            Segment::Soi => return Err(Error::CorruptData("nested SOI".into())),
            Segment::Eoi => {
                saw_eoi = true;
                break;
            }
            Segment::Marker { marker: m, payload } => match m {
                DQT => {
                    for (id, table) in marker::parse_dqt(payload)? {
                        qtables[id as usize] = Some(table);
                    }
                }
                DHT => {
                    for (class, id, table) in marker::parse_dht(payload)? {
                        let dec = HuffDecoder::from_table(&table)?;
                        if class == 0 {
                            dc_tables[id as usize] = Some(dec);
                        } else {
                            ac_tables[id as usize] = Some(dec);
                        }
                    }
                }
                SOF0 | SOF1 | SOF2 => {
                    if frame.is_some() {
                        return Err(Error::CorruptData("multiple SOF".into()));
                    }
                    let f = marker::parse_sof(payload, m == SOF2)?;
                    coeffs = Some(CoeffPlanes::with_pool(&f, pool));
                    frame = Some(f);
                }
                DRI => {
                    if payload.len() != 2 {
                        return Err(Error::BadSegmentLength { marker: DRI });
                    }
                    restart_interval = u16::from_be_bytes([payload[0], payload[1]]);
                }
                // APPn / COM and other informational segments: skipped.
                _ => {}
            },
            Segment::Sos { payload, entropy_start } => {
                let f = frame
                    .as_ref()
                    .ok_or_else(|| Error::BadScan("SOS before SOF".into()))?;
                let scan = marker::parse_sos(payload, f)?;
                let (_, entropy_end) = reader.skip_entropy();
                let entropy = &data[entropy_start..entropy_end];
                let tables = DecodeTables { dc: &dc_tables, ac: &ac_tables };
                decode_scan_entropy(
                    f,
                    coeffs.as_mut().expect("coeffs with frame"),
                    &scan,
                    &tables,
                    entropy,
                    restart_interval,
                    workers,
                    scans.len(),
                    obs,
                )?;
                scans.push(scan);
            }
        }
    }

    let frame = frame.ok_or(Error::UnsupportedFrame("no SOF in stream".into()))?;
    let coeffs = coeffs.expect("coeffs allocated with frame");
    Ok(DecodedCoeffs { frame, coeffs, qtables, scans, saw_eoi })
}

/// Decodes one scan's entropy data, splitting at restart markers when
/// the stream declared a DRI interval.
///
/// Fewer restart segments than the interval implies is treated exactly
/// like a truncated scan-list: present segments decode, missing ones
/// leave their blocks at the prior approximation. Extra segments beyond
/// the expected count are ignored.
#[allow(clippy::too_many_arguments)]
fn decode_scan_entropy(
    frame: &FrameInfo,
    coeffs: &mut CoeffPlanes,
    scan: &ScanInfo,
    tables: &DecodeTables<'_, HuffDecoder>,
    entropy: &[u8],
    interval: u16,
    workers: usize,
    scan_idx: usize,
    obs: &mut dyn DecodeObserver,
) -> Result<()> {
    let total = mcu_units(frame, scan);
    let interval = u32::from(interval);
    if interval == 0 || interval >= total {
        obs.scan_begin(scan_idx, 1);
        obs.segment_begin(scan_idx, 0, total);
        let mut bits = BitReader::new(entropy);
        decode_scan_range(frame, coeffs, scan, tables, &mut bits, 0..total)?;
        obs.segment_end(scan_idx, 0);
        return Ok(());
    }
    let ranges = split_restart_segments(entropy);
    let expected = total.div_ceil(interval) as usize;
    let nseg = ranges.len().min(expected);
    obs.scan_begin(scan_idx, nseg);
    // Segment-parallel decode requires every segment to cover whole block
    // rows of a single component, so the bands are disjoint `&mut` slices.
    let row_aligned = scan.components.len() == 1
        && interval % frame.components[scan.components[0].comp_index].blocks_w == 0;
    if workers > 1 && nseg > 1 && row_aligned {
        return decode_segments_parallel(
            frame,
            coeffs,
            scan,
            tables,
            entropy,
            &ranges[..nseg],
            interval,
            total,
            workers,
        );
    }
    for (seg, &(s, e)) in ranges[..nseg].iter().enumerate() {
        let start = seg as u32 * interval;
        let units = start..(start + interval).min(total);
        obs.segment_begin(scan_idx, seg, units.end - units.start);
        let mut bits = BitReader::new(&entropy[s..e]);
        decode_scan_range(frame, coeffs, scan, tables, &mut bits, units)?;
        obs.segment_end(scan_idx, seg);
    }
    Ok(())
}

/// Decodes row-aligned restart segments of a single-component scan on up
/// to `workers` threads, each writing its own disjoint row band.
#[allow(clippy::too_many_arguments)]
fn decode_segments_parallel(
    frame: &FrameInfo,
    coeffs: &mut CoeffPlanes,
    scan: &ScanInfo,
    tables: &DecodeTables<'_, HuffDecoder>,
    entropy: &[u8],
    ranges: &[(usize, usize)],
    interval: u32,
    total: u32,
    workers: usize,
) -> Result<()> {
    let ci = scan.components[0].comp_index;
    let c = &frame.components[ci];
    // Carve the component plane into per-segment row bands.
    let mut jobs: Vec<(std::ops::Range<u32>, &[u8], RowBandStore<'_>)> =
        Vec::with_capacity(ranges.len());
    let mut rest: &mut [i16] = coeffs.plane_mut(ci);
    let mut row0 = 0u32;
    for (seg, &(s, e)) in ranges.iter().enumerate() {
        let start = seg as u32 * interval;
        let units = start..(start + interval).min(total);
        let rows = (units.end - units.start).div_ceil(c.blocks_w);
        let take = (rows as usize * c.alloc_w as usize * 64).min(rest.len());
        let (band, tail) = rest.split_at_mut(take);
        rest = tail;
        jobs.push((units, &entropy[s..e], RowBandStore { comp: ci, row0, alloc_w: c.alloc_w, data: band }));
        row0 += rows;
    }
    // Contiguous chunks keep results in segment order, so the first error
    // reported matches what the sequential path would have returned.
    let per = jobs.len().div_ceil(workers);
    let results: Vec<Result<()>> = std::thread::scope(|sc| {
        let mut handles = Vec::new();
        while !jobs.is_empty() {
            let chunk: Vec<_> = jobs.drain(..per.min(jobs.len())).collect();
            handles.push(sc.spawn(move || {
                chunk
                    .into_iter()
                    .map(|(units, data, mut band)| {
                        let mut bits = BitReader::new(data);
                        decode_scan_range(frame, &mut band, scan, tables, &mut bits, units)
                    })
                    .collect::<Vec<_>>()
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("segment decode worker panicked"))
            .collect()
    });
    for r in results {
        r?;
    }
    Ok(())
}

/// Counts the scans present in a stream without entropy-decoding them.
pub fn count_scans(data: &[u8]) -> Result<usize> {
    let mut reader = SegmentReader::new(data);
    match reader.next_segment()? {
        Segment::Soi => {}
        _ => return Err(Error::NotJpeg),
    }
    let mut n = 0usize;
    loop {
        match reader.next_segment() {
            Ok(Segment::Sos { .. }) => {
                n += 1;
                reader.skip_entropy();
            }
            Ok(Segment::Eoi) | Err(Error::UnexpectedEof) => break,
            Ok(_) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode, EncodeConfig};
    use crate::frame::Subsampling;

    fn test_image(w: u32, h: u32) -> ImageBuf {
        let mut data = Vec::with_capacity((w * h * 3) as usize);
        for y in 0..h {
            for x in 0..w {
                // Smooth gradients plus a block pattern: exercises both DC
                // and AC paths without being pathological for quantization.
                let base = ((x * 3 + y * 2) % 200) as u8;
                let block = if (x / 8 + y / 8) % 2 == 0 { 30 } else { 0 };
                data.push(base.saturating_add(block));
                data.push((255 - base).saturating_sub(block));
                data.push(((x * 2 + y * 5) % 256) as u8);
            }
        }
        ImageBuf::from_raw(w, h, 3, data).unwrap()
    }

    fn mean_abs_err(a: &ImageBuf, b: &ImageBuf) -> f64 {
        let s: u64 = a
            .data()
            .iter()
            .zip(b.data().iter())
            .map(|(x, y)| u64::from(x.abs_diff(*y)))
            .sum();
        s as f64 / a.data().len() as f64
    }

    #[test]
    fn baseline_roundtrip_quality() {
        let img = test_image(64, 48);
        let data = encode(&img, &EncodeConfig::baseline(90)).unwrap();
        let out = decode(&data).unwrap();
        assert_eq!(out.width(), 64);
        assert_eq!(out.height(), 48);
        // The pattern is deliberately harsh (checkerboard edges + per-pixel
        // chroma noise under 4:2:0); quality 90 should still keep mean
        // error moderate and PSNR reasonable.
        assert!(mean_abs_err(&img, &out) < 16.0, "mae {}", mean_abs_err(&img, &out));
        assert!(crate::metrics_psnr::psnr(&img, &out) > 22.0);
    }

    #[test]
    fn baseline_optimized_tables_match_standard_pixels() {
        let img = test_image(40, 40);
        let std = encode(&img, &EncodeConfig::baseline(85)).unwrap();
        let opt = encode(
            &img,
            &EncodeConfig { optimize_huffman: true, ..EncodeConfig::baseline(85) },
        )
        .unwrap();
        assert!(opt.len() <= std.len(), "optimized {} > standard {}", opt.len(), std.len());
        assert_eq!(decode(&std).unwrap(), decode(&opt).unwrap());
    }

    #[test]
    fn progressive_roundtrip_matches_baseline_pixels() {
        let img = test_image(56, 40);
        let base = encode(&img, &EncodeConfig::baseline(85)).unwrap();
        let prog = encode(&img, &EncodeConfig::progressive(85)).unwrap();
        // Same coefficients -> identical pixel output.
        assert_eq!(decode(&base).unwrap(), decode(&prog).unwrap());
    }

    #[test]
    fn progressive_s444_roundtrip() {
        let img = test_image(33, 17);
        let cfg = EncodeConfig { subsampling: Subsampling::S444, ..EncodeConfig::progressive(90) };
        let base_cfg = EncodeConfig { subsampling: Subsampling::S444, ..EncodeConfig::baseline(90) };
        let prog = encode(&img, &cfg).unwrap();
        let base = encode(&img, &base_cfg).unwrap();
        assert_eq!(decode(&prog).unwrap(), decode(&base).unwrap());
    }

    #[test]
    fn grayscale_progressive_roundtrip() {
        let img = test_image(48, 32).to_luma();
        let prog = encode(&img, &EncodeConfig::progressive(88)).unwrap();
        let base = encode(&img, &EncodeConfig::baseline(88)).unwrap();
        assert_eq!(decode(&prog).unwrap(), decode(&base).unwrap());
    }

    #[test]
    fn count_scans_progressive() {
        let img = test_image(32, 32);
        let prog = encode(&img, &EncodeConfig::progressive(80)).unwrap();
        assert_eq!(count_scans(&prog).unwrap(), 10);
        let base = encode(&img, &EncodeConfig::baseline(80)).unwrap();
        assert_eq!(count_scans(&base).unwrap(), 1);
    }

    #[test]
    fn quality_estimate_from_stream() {
        let img = test_image(32, 32);
        for q in [60u8, 75, 91] {
            let data = encode(&img, &EncodeConfig::baseline(q)).unwrap();
            let d = decode_coeffs(&data).unwrap();
            let est = d.estimated_quality().unwrap();
            assert!((i16::from(est) - i16::from(q)).abs() <= 2, "q {q} est {est}");
        }
    }

    #[test]
    fn scratch_decode_matches_fresh_decode() {
        let mut scratch = DecodeScratch::new();
        // Mixed geometries and modes through one scratch: pools must adapt.
        for (w, h, progressive) in [(40u32, 24u32, false), (64, 48, true), (17, 9, true)] {
            let img = test_image(w, h);
            let cfg = if progressive {
                EncodeConfig::progressive(87)
            } else {
                EncodeConfig::baseline(87)
            };
            let data = encode(&img, &cfg).unwrap();
            let fresh = decode(&data).unwrap();
            let pooled = decode_with(&data, &mut scratch).unwrap();
            assert_eq!(fresh, pooled);
        }
        // After a color decode the pools hold the recycled buffers.
        assert_eq!(scratch.coeff_pool.len(), 3);
        assert_eq!(scratch.plane_pool.len(), 3);
    }

    #[test]
    fn rejects_non_jpeg() {
        assert!(decode(b"not a jpeg").is_err());
        assert!(decode(&[0xFF, 0xD8]).is_err()); // SOI only
    }

    #[test]
    fn odd_dimensions_roundtrip() {
        for (w, h) in [(1u32, 1u32), (7, 3), (17, 9), (15, 16), (16, 15)] {
            let img = test_image(w, h);
            let data = encode(&img, &EncodeConfig::baseline(90)).unwrap();
            let out = decode(&data).unwrap();
            assert_eq!((out.width(), out.height()), (w, h));
            let data = encode(&img, &EncodeConfig::progressive(90)).unwrap();
            let out = decode(&data).unwrap();
            assert_eq!((out.width(), out.height()), (w, h));
        }
    }
}
